"""Behavioural models of the analog control electronics (AWG, DAQ)."""

from repro.analog.awg import AWG, CHANNELS_PER_BOARD, PulseEvent
from repro.analog.channels import (Channel, ChannelKind, ChannelMap,
                                   FLUX_GATES)
from repro.analog.codeword import Codeword, WaveformTable
from repro.analog.daq import (DAQ, DEFAULT_ACQUISITION_NS,
                              DEFAULT_PULSE_NS, MeasurementRecord)
from repro.analog.discrimination import (IQDiscriminator, IQPoint,
                                         discriminator_for_fidelity)
from repro.analog.waveforms import (PulseLibrary, Waveform,
                                    drag_envelope, flat_top_envelope,
                                    gaussian_envelope, square_envelope)

__all__ = [
    "AWG", "CHANNELS_PER_BOARD", "Channel", "ChannelKind", "ChannelMap",
    "Codeword", "DAQ", "DEFAULT_ACQUISITION_NS", "DEFAULT_PULSE_NS",
    "FLUX_GATES", "IQDiscriminator", "IQPoint", "MeasurementRecord",
    "PulseEvent", "PulseLibrary", "Waveform", "WaveformTable",
    "discriminator_for_fidelity", "drag_envelope",
    "flat_top_envelope", "gaussian_envelope", "square_envelope",
]
