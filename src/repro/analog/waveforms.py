"""Pulse-envelope synthesis for the AWG waveform tables.

The prototype's AWGs hold a *waveform table* of pre-loaded envelope
samples that codewords trigger (Figure 9).  This module synthesises the
standard superconducting-qubit envelopes at the DAC sample rate:

* Gaussian microwave pulses for single-qubit rotations, with a DRAG
  quadrature component (the derivative term that suppresses leakage to
  the second excited state);
* flat-top (square with cosine ramps) flux pulses for two-qubit gates;
* a long square readout tone for measurement.

Amplitudes are normalised so a rotation's area scales linearly with its
angle — the calibration convention real stacks use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: DAC sample rate of the modelled AWG (1 GS/s: 1 sample per ns).
SAMPLE_RATE_GSPS = 1.0


def sample_count(duration_ns: float) -> int:
    """Number of DAC samples covering ``duration_ns``."""
    return max(1, int(round(duration_ns * SAMPLE_RATE_GSPS)))


def gaussian_envelope(duration_ns: float, amplitude: float = 1.0,
                      sigma_fraction: float = 0.25) -> np.ndarray:
    """A truncated Gaussian envelope spanning ``duration_ns``."""
    if duration_ns <= 0:
        raise ValueError("duration must be positive")
    if not 0 < sigma_fraction <= 0.5:
        raise ValueError("sigma fraction must be in (0, 0.5]")
    n = sample_count(duration_ns)
    t = np.arange(n) - (n - 1) / 2.0
    sigma = sigma_fraction * n
    envelope = np.exp(-0.5 * (t / sigma) ** 2)
    envelope -= envelope[0]          # touch zero at the edges
    peak = envelope.max()
    if peak > 0:
        envelope = envelope / peak
    return amplitude * envelope


def drag_envelope(duration_ns: float, amplitude: float = 1.0,
                  drag_coefficient: float = 0.5,
                  sigma_fraction: float = 0.25) -> np.ndarray:
    """Complex DRAG pulse: Gaussian I, scaled-derivative Q."""
    in_phase = gaussian_envelope(duration_ns, amplitude, sigma_fraction)
    quadrature = np.gradient(in_phase)
    scale = drag_coefficient / max(np.abs(quadrature).max(), 1e-12)
    return in_phase + 1j * amplitude * scale * quadrature


def flat_top_envelope(duration_ns: float, amplitude: float = 1.0,
                      ramp_fraction: float = 0.2) -> np.ndarray:
    """Square pulse with raised-cosine ramps (flux pulses)."""
    if not 0 <= ramp_fraction <= 0.5:
        raise ValueError("ramp fraction must be in [0, 0.5]")
    n = sample_count(duration_ns)
    ramp = max(1, int(round(ramp_fraction * n)))
    envelope = np.ones(n)
    rise = 0.5 * (1 - np.cos(np.linspace(0, math.pi, ramp)))
    envelope[:ramp] = rise
    envelope[-ramp:] = rise[::-1]
    return amplitude * envelope


def square_envelope(duration_ns: float,
                    amplitude: float = 1.0) -> np.ndarray:
    """Constant readout tone."""
    return amplitude * np.ones(sample_count(duration_ns))


@dataclass(frozen=True)
class Waveform:
    """One synthesised entry of the waveform table."""

    gate: str
    duration_ns: float
    samples: np.ndarray

    @property
    def n_samples(self) -> int:
        return len(self.samples)

    @property
    def energy(self) -> float:
        """Integrated |envelope|^2 (proportional to pulse power)."""
        return float(np.sum(np.abs(self.samples) ** 2))


class PulseLibrary:
    """Synthesises and caches envelopes per gate.

    Rotation amplitude scales with the gate's rotation angle relative
    to a pi pulse, matching a linear-amplitude calibration.
    """

    #: Rotation angle (in units of pi) per fixed single-qubit gate.
    ROTATION_UNITS = {"x": 1.0, "y": 1.0, "z": 0.0, "h": 1.0,
                      "x90": 0.5, "y90": 0.5, "xm90": 0.5, "ym90": 0.5,
                      "s": 0.0, "sdg": 0.0, "t": 0.0, "tdg": 0.0,
                      "i": 0.0}

    def __init__(self, drag_coefficient: float = 0.5) -> None:
        self.drag_coefficient = drag_coefficient
        self._cache: dict[tuple, Waveform] = {}

    def waveform(self, gate: str, duration_ns: float,
                 params: tuple[float, ...] = ()) -> Waveform:
        """The envelope an AWG plays for ``gate``."""
        key = (gate, round(duration_ns, 3),
               tuple(round(p, 6) for p in params))
        if key in self._cache:
            return self._cache[key]
        samples = self._synthesise(gate, duration_ns, params)
        waveform = Waveform(gate=gate, duration_ns=duration_ns,
                            samples=samples)
        self._cache[key] = waveform
        return waveform

    def _synthesise(self, gate: str, duration_ns: float,
                    params: tuple[float, ...]) -> np.ndarray:
        if gate == "measure":
            return square_envelope(duration_ns, amplitude=0.3)
        if gate in ("cnot", "cz", "swap", "iswap"):
            return flat_top_envelope(duration_ns)
        if gate == "reset":
            return flat_top_envelope(duration_ns, amplitude=0.8)
        if gate in ("rx", "ry"):
            angle = abs(params[0]) if params else math.pi
            amplitude = min(1.0, angle / math.pi)
            return drag_envelope(duration_ns, amplitude,
                                 self.drag_coefficient)
        if gate == "rz":
            # Virtual Z: a frame update, no physical pulse.
            return np.zeros(sample_count(duration_ns))
        units = self.ROTATION_UNITS.get(gate)
        if units is None:
            raise KeyError(f"no pulse recipe for gate {gate!r}")
        if units == 0.0:
            # Virtual phase gates need no drive power.
            return np.zeros(sample_count(duration_ns))
        return drag_envelope(duration_ns, units, self.drag_coefficient)

    def __len__(self) -> int:
        return len(self._cache)
