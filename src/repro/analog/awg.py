"""Arbitrary Waveform Generator (AWG) board model.

The QCP "sends codeword to AWGs to trigger the waveform generation"
(Section 6.2).  The behavioural model validates the codeword against the
waveform table, logs the pulse, and forwards the operation to the QPU
device after a fixed trigger latency.  Each board serves a bounded
number of channels (two FPGAs x eight DACs in the prototype).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analog.codeword import Codeword, WaveformTable
from repro.analog.waveforms import PulseLibrary, Waveform
from repro.circuit.gates import gate_duration_ns
from repro.qpu.device import QPUBase
from repro.sim.kernel import SimKernel

#: DAC channels per AWG board (2 FPGAs x 8 DACs, Section 6.2).
CHANNELS_PER_BOARD = 16


@dataclass
class PulseEvent:
    """One played pulse, for trace inspection."""

    start_ns: int
    codeword: Codeword
    #: Synthesised envelope, when a pulse library is attached.
    waveform: Waveform | None = None


@dataclass
class AWG:
    """One AWG board: triggers waveforms for up to 16 channels."""

    kernel: SimKernel
    qpu: QPUBase
    waveforms: WaveformTable = field(default_factory=WaveformTable)
    #: Optional envelope synthesiser; populates PulseEvent.waveform.
    pulse_library: PulseLibrary | None = None
    trigger_latency_ns: int = 10
    channel_capacity: int = CHANNELS_PER_BOARD
    pulses: list[PulseEvent] = field(default_factory=list)
    _channels_seen: set[int] = field(default_factory=set)

    def trigger(self, codeword: Codeword) -> None:
        """Accept a codeword from the emitter; play it after the latency."""
        self._channels_seen.add(codeword.channel.index)
        if len(self._channels_seen) > self.channel_capacity:
            raise RuntimeError(
                f"AWG board drives {len(self._channels_seen)} channels, "
                f"capacity is {self.channel_capacity}")
        if not self.waveforms.contains(codeword.gate, codeword.params):
            # A real system pre-loads waveforms at program upload; the
            # model allocates lazily and keeps going.
            self.waveforms.waveform_id(codeword.gate, codeword.params)
        self.kernel.schedule(self.trigger_latency_ns, self._play, codeword)

    def _play(self, codeword: Codeword) -> None:
        waveform = None
        if self.pulse_library is not None:
            waveform = self.pulse_library.waveform(
                codeword.gate, gate_duration_ns(codeword.gate),
                codeword.params)
        self.pulses.append(PulseEvent(self.kernel.now, codeword,
                                      waveform))
        if codeword.gate == "measure":
            # Measurement pulses are handled by the DAQ path; the AWG
            # only emits the probe tone, which needs no state change.
            return
        if not codeword.primary:
            # Companion pulse of a multi-channel operation: the primary
            # codeword already applied the state change.
            return
        self.qpu.apply_gate(self.kernel.now, codeword.gate,
                            codeword.qubits, codeword.params)
