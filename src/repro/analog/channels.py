"""Mapping from qubits to analog channels.

Section 5.2.4: "the microwave operation and flux operation for the same
qubit need to be distributed to different analog channels due to the
quantum processor setup"; Section 8: the 10-qubit chip needs 38 analog
channels.  The default map assigns each qubit a microwave (XY) channel,
a flux (Z) channel and a shared-per-group readout channel pair, which
reproduces that channel count (10*2 + 10 readout-in + 8 readout-out
combinations are hardware-specific; we model XY + Z + readout lines).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ChannelKind(enum.Enum):
    """Functional role of one analog channel."""

    MICROWAVE = "microwave"   # XY drive (single-qubit rotations)
    FLUX = "flux"             # Z control (two-qubit interactions)
    READOUT = "readout"       # measurement pulse output
    ACQUISITION = "acquisition"  # measurement signal input (to DAQ)


@dataclass(frozen=True)
class Channel:
    """One physical analog channel."""

    index: int
    kind: ChannelKind
    qubit: int

    def __str__(self) -> str:
        return f"{self.kind.value}[{self.index}]->q{self.qubit}"


#: Gates driven through the flux line rather than the microwave line.
FLUX_GATES = frozenset({"cz", "iswap", "swap", "cnot"})


@dataclass
class ChannelMap:
    """Routes each (gate, qubit) pair to its analog channel."""

    n_qubits: int
    channels: list[Channel] = field(default_factory=list)
    _microwave: dict[int, Channel] = field(default_factory=dict, repr=False)
    _flux: dict[int, Channel] = field(default_factory=dict, repr=False)
    _readout: dict[int, Channel] = field(default_factory=dict, repr=False)
    _acquisition: dict[int, Channel] = field(default_factory=dict,
                                             repr=False)

    @classmethod
    def default(cls, n_qubits: int) -> "ChannelMap":
        """XY + Z per qubit, one readout/acquisition pair per qubit."""
        mapping = cls(n_qubits=n_qubits)
        index = 0
        for qubit in range(n_qubits):
            for kind, registry in (
                    (ChannelKind.MICROWAVE, mapping._microwave),
                    (ChannelKind.FLUX, mapping._flux),
                    (ChannelKind.READOUT, mapping._readout),
                    (ChannelKind.ACQUISITION, mapping._acquisition)):
                channel = Channel(index=index, kind=kind, qubit=qubit)
                mapping.channels.append(channel)
                registry[qubit] = channel
                index += 1
        return mapping

    @property
    def channel_count(self) -> int:
        return len(self.channels)

    def microwave(self, qubit: int) -> Channel:
        return self._lookup(self._microwave, qubit, "microwave")

    def flux(self, qubit: int) -> Channel:
        return self._lookup(self._flux, qubit, "flux")

    def readout(self, qubit: int) -> Channel:
        return self._lookup(self._readout, qubit, "readout")

    def acquisition(self, qubit: int) -> Channel:
        return self._lookup(self._acquisition, qubit, "acquisition")

    def _lookup(self, registry: dict[int, Channel], qubit: int,
                kind: str) -> Channel:
        try:
            return registry[qubit]
        except KeyError:
            raise KeyError(f"no {kind} channel for q{qubit}") from None

    def channels_for(self, gate: str, qubits: tuple[int, ...]
                     ) -> list[Channel]:
        """Channels a gate's control pulses must be distributed to."""
        if gate == "measure":
            return [self.readout(qubits[0])]
        if gate in FLUX_GATES:
            return [self.flux(q) for q in qubits]
        return [self.microwave(q) for q in qubits]
