"""IQ-plane state discrimination — the DAQ's classification stage.

Figure 9 of the paper places a "Measurement Discrimination" block in
each DAQ FPGA: the demodulated readout signal is integrated into one
point in the IQ plane and thresholded into a classical bit.  This
module models that pipeline physically: the two qubit states map to two
Gaussian clouds in the IQ plane, and the discriminator classifies each
shot by distance to the calibrated blob centres.

The separation-to-noise ratio sets the assignment fidelity — exposing
the real trade-off between readout pulse length (integration reduces
noise) and decoherence during measurement.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class IQPoint:
    """One integrated readout shot."""

    i: float
    q: float

    def distance_to(self, other: "IQPoint") -> float:
        return math.hypot(self.i - other.i, self.q - other.q)


@dataclass
class IQDiscriminator:
    """Two-state Gaussian-blob classifier.

    ``ground`` / ``excited`` are the calibrated blob centres;
    ``sigma`` is the per-axis noise of one integrated shot.
    """

    ground: IQPoint = IQPoint(0.0, 0.0)
    excited: IQPoint = IQPoint(1.0, 0.0)
    sigma: float = 0.15

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if self.ground.distance_to(self.excited) == 0:
            raise ValueError("blob centres must be distinct")

    @property
    def separation(self) -> float:
        """Distance between the blob centres."""
        return self.ground.distance_to(self.excited)

    @property
    def snr(self) -> float:
        """Separation over noise: the discrimination quality figure."""
        return self.separation / self.sigma

    def assignment_fidelity(self) -> float:
        """Probability a shot is classified correctly.

        For two equal Gaussians split by a mid-point threshold this is
        ``Phi(separation / (2 sigma))``.
        """
        return 0.5 * (1.0 + math.erf(self.snr / (2.0 * math.sqrt(2.0))))

    def sample_point(self, state_bit: int,
                     rng: random.Random) -> IQPoint:
        """Draw the integrated IQ point for a qubit in ``state_bit``."""
        centre = self.excited if state_bit else self.ground
        return IQPoint(rng.gauss(centre.i, self.sigma),
                       rng.gauss(centre.q, self.sigma))

    def discriminate(self, point: IQPoint) -> int:
        """Threshold a shot: nearest blob centre wins."""
        return int(point.distance_to(self.excited)
                   < point.distance_to(self.ground))

    def classify_state(self, state_bit: int, rng: random.Random
                       ) -> tuple[int, IQPoint]:
        """Full pipeline: physical state -> IQ shot -> classified bit."""
        point = self.sample_point(state_bit, rng)
        return self.discriminate(point), point


def discriminator_for_fidelity(target_fidelity: float
                               ) -> IQDiscriminator:
    """Calibrate the noise so assignment fidelity hits the target."""
    if not 0.5 < target_fidelity < 1.0:
        raise ValueError("fidelity must be in (0.5, 1)")
    # Invert Phi(snr / (2 sqrt 2)) = F for the unit-separation case.
    from scipy.special import erfinv

    snr = 2.0 * math.sqrt(2.0) * erfinv(2.0 * target_fidelity - 1.0)
    return IQDiscriminator(sigma=1.0 / snr)
