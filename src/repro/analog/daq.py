"""Digital Acquisition (DAQ) board model.

Stage II of the feedback-control timeline (Section 2.4): the DAQ
receives the analog readout signal, performs demodulation, integration
and thresholding, and writes the classical bit into the measurement
result registers.  The stage I latency (the measurement pulse itself)
plus this stage's latency are non-deterministic in real dispersive
readout; ``jitter_ns`` models that spread.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.analog.discrimination import IQDiscriminator, IQPoint
from repro.qpu.device import QPUBase
from repro.sim.kernel import SimKernel

#: Readout pulse duration (stage I), within the paper's 100 ns - 2 us.
DEFAULT_PULSE_NS = 300
#: Demodulation + integration + thresholding latency (stage II).
DEFAULT_ACQUISITION_NS = 100


@dataclass
class MeasurementRecord:
    """One completed acquisition, for trace inspection."""

    qubit: int
    start_ns: int
    done_ns: int
    outcome: int
    #: Integrated IQ shot, when a discriminator is attached.
    iq: IQPoint | None = None


@dataclass
class DAQ:
    """Digital acquisition pipeline turning pulses into classical bits.

    ``deliver`` is called with ``(qubit, outcome, time_ns)`` when the
    result becomes valid; the control processor wires this to its
    measurement result registers.
    """

    kernel: SimKernel
    qpu: QPUBase
    deliver: Callable[[int, int, int], None]
    pulse_ns: int = DEFAULT_PULSE_NS
    acquisition_ns: int = DEFAULT_ACQUISITION_NS
    jitter_ns: int = 0
    seed: int | None = None
    #: Optional IQ-plane classifier (Figure 9's "Measurement
    #: Discrimination" block); adds physically modelled assignment
    #: error on top of the QPU outcome.
    discriminator: IQDiscriminator | None = None
    records: list[MeasurementRecord] = field(default_factory=list)
    _rng: random.Random = field(init=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    @property
    def nominal_latency_ns(self) -> int:
        """Stage I + II latency without jitter."""
        return self.pulse_ns + self.acquisition_ns

    def begin_measurement(self, qubit: int, time_ns: int) -> None:
        """Start a measurement pulse on ``qubit`` at ``time_ns``."""
        start_delay = max(0, time_ns - self.kernel.now)
        self.kernel.schedule(start_delay + self.pulse_ns,
                             self._acquire, qubit, time_ns)

    def _acquire(self, qubit: int, start_ns: int) -> None:
        outcome = self.qpu.measure(self.kernel.now, qubit)
        iq = None
        if self.discriminator is not None:
            # Demodulate + integrate + threshold: the classified bit
            # may differ from the physical outcome (assignment error).
            outcome, iq = self.discriminator.classify_state(outcome,
                                                            self._rng)
        latency = self.acquisition_ns
        if self.jitter_ns:
            latency += self._rng.randrange(self.jitter_ns + 1)
        self.kernel.schedule(latency, self._complete, qubit, start_ns,
                             outcome, iq)

    def _complete(self, qubit: int, start_ns: int, outcome: int,
                  iq: IQPoint | None = None) -> None:
        self.records.append(MeasurementRecord(
            qubit=qubit, start_ns=start_ns, done_ns=self.kernel.now,
            outcome=outcome, iq=iq))
        self.deliver(qubit, outcome, self.kernel.now)
