"""Codewords: the digital interface between QCP and analog boards.

The emitter's "last stage of the execution unit is to convert the
operation for each qubit into a codeword sent to the low-level control
electronics" (Section 5.2.4).  A codeword names a waveform-table entry
on a specific channel; the AWG looks the entry up and plays the pulse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analog.channels import Channel


@dataclass(frozen=True)
class Codeword:
    """One waveform trigger for one channel.

    A multi-qubit operation is distributed over several channels (one
    pulse per driven line); exactly one of its codewords is *primary*
    and carries the state-changing effect in the behavioural QPU model,
    the others are companion pulses.
    """

    channel: Channel
    waveform_id: int
    issue_time_ns: int
    # Original operation metadata, carried for the behavioural QPU model.
    gate: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = ()
    primary: bool = True

    def __str__(self) -> str:
        return (f"cw(t={self.issue_time_ns}ns, {self.channel}, "
                f"wf={self.waveform_id}, {self.gate})")


class WaveformTable:
    """Maps gate names (plus quantised parameters) to waveform ids.

    Real hardware pre-loads envelope samples; the behavioural model only
    needs stable identifiers, assigned on first use.
    """

    #: Parameter quantisation step (radians) when keying parametric gates.
    PARAM_RESOLUTION = 1e-6

    def __init__(self) -> None:
        self._table: dict[tuple, int] = {}

    def __len__(self) -> int:
        return len(self._table)

    def _key(self, gate: str, params: tuple[float, ...]) -> tuple:
        quantised = tuple(round(p / self.PARAM_RESOLUTION) for p in params)
        return (gate, quantised)

    def waveform_id(self, gate: str,
                    params: tuple[float, ...] = ()) -> int:
        """Return (allocating if new) the waveform id for a gate."""
        key = self._key(gate, params)
        if key not in self._table:
            self._table[key] = len(self._table)
        return self._table[key]

    def contains(self, gate: str, params: tuple[float, ...] = ()) -> bool:
        return self._key(gate, params) in self._table
