"""Dependency DAG over circuit operations.

Two operations depend on each other when they share a qubit (including
the measured qubit of a conditional operation); barriers order everything
on the qubits they span.  The DAG drives the ASAP scheduler in
:mod:`repro.circuit.steps` and the block partitioner in
:mod:`repro.compiler.blocks`.
"""

from __future__ import annotations

import networkx as nx

from repro.circuit.circuit import Operation, QuantumCircuit


def op_qubits(operation: Operation) -> tuple[int, ...]:
    """All qubits an operation touches, including its condition qubit."""
    if operation.condition is None:
        return operation.qubits
    return operation.qubits + (operation.condition[0],)


def build_dag(circuit: QuantumCircuit) -> nx.DiGraph:
    """Build the operation dependency DAG.

    Nodes are operation indices into ``circuit.operations`` (barriers
    included); node attribute ``op`` holds the operation.  Edges point
    from earlier to later operations that must stay ordered.
    """
    dag = nx.DiGraph()
    last_on_qubit: dict[int, int] = {}
    for index, operation in enumerate(circuit.operations):
        dag.add_node(index, op=operation)
        for qubit in op_qubits(operation):
            previous = last_on_qubit.get(qubit)
            if previous is not None and previous != index:
                dag.add_edge(previous, index)
            last_on_qubit[qubit] = index
    return dag


def dependency_closure(circuit: QuantumCircuit) -> nx.DiGraph:
    """Transitive reduction of the dependency DAG (minimal edges)."""
    return nx.transitive_reduction(build_dag(circuit))


def critical_path_ns(circuit: QuantumCircuit) -> int:
    """Length of the longest dependency chain, weighted by duration."""
    dag = build_dag(circuit)
    finish: dict[int, int] = {}
    for node in nx.topological_sort(dag):
        operation: Operation = dag.nodes[node]["op"]
        start = max((finish[p] for p in dag.predecessors(node)), default=0)
        finish[node] = start + operation.duration_ns
    return max(finish.values(), default=0)


def parallel_components(circuit: QuantumCircuit) -> list[set[int]]:
    """Qubit groups with no operation spanning between them.

    Each returned set is a connected component of the qubit-interaction
    graph; sub-circuits confined to different components exhibit the
    paper's Circuit Level Parallelism.
    """
    graph = nx.Graph()
    graph.add_nodes_from(circuit.used_qubits())
    for operation in circuit.operations:
        if operation.is_barrier:
            continue
        qubits = op_qubits(operation)
        for left, right in zip(qubits, qubits[1:]):
            graph.add_edge(left, right)
    return [set(component) for component in nx.connected_components(graph)]
