"""ASAP scheduling of circuits into *circuit steps*.

Section 3.2.1 of the paper defines a circuit step as "all parallel
quantum operations at a certain timing point".  We compute, for every
operation, the earliest start time permitted by its qubit dependencies
(and barriers), then group operations that start simultaneously into one
:class:`CircuitStep`.  The step sequence is what the CES and TR metrics
are evaluated over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.circuit import Operation, QuantumCircuit
from repro.circuit.dag import op_qubits


@dataclass
class CircuitStep:
    """All operations starting at one timing point."""

    index: int
    start_ns: int
    operations: list[Operation] = field(default_factory=list)

    @property
    def duration_ns(self) -> int:
        """QPU time of the step: its longest operation.

        Per Equation (2) the QPU executes the step's operations in full
        parallel, so the step occupies the QPU for the duration of its
        slowest gate.
        """
        return max((op.duration_ns for op in self.operations), default=0)

    @property
    def quantum_instruction_count(self) -> int:
        """QICES: quantum instructions contained in this step."""
        return len(self.operations)

    def qubits(self) -> set[int]:
        touched: set[int] = set()
        for operation in self.operations:
            touched.update(op_qubits(operation))
        return touched


@dataclass
class Schedule:
    """An ASAP schedule: ordered steps plus per-operation start times."""

    circuit: QuantumCircuit
    steps: list[CircuitStep]
    start_times: dict[int, int]  # operation index -> start ns

    @property
    def makespan_ns(self) -> int:
        """Total QPU time of the schedule."""
        if not self.steps:
            return 0
        last = self.steps[-1]
        return last.start_ns + last.duration_ns

    @property
    def max_parallelism(self) -> int:
        """Largest QICES over all steps."""
        return max((step.quantum_instruction_count
                    for step in self.steps), default=0)

    @property
    def mean_parallelism(self) -> float:
        """Average QICES over all steps (degree of exploitable QOLP)."""
        if not self.steps:
            return 0.0
        total = sum(step.quantum_instruction_count for step in self.steps)
        return total / len(self.steps)


def schedule_asap(circuit: QuantumCircuit) -> Schedule:
    """Compute the ASAP schedule of ``circuit``.

    Every operation starts as soon as the last operation touching any of
    its qubits has finished.  Barriers force all later operations on the
    barrier's qubits to start no earlier than the barrier time (the
    maximum finish time across the barrier's span).
    """
    ready_at: dict[int, int] = {q: 0 for q in range(circuit.n_qubits)}
    start_times: dict[int, int] = {}
    for index, operation in enumerate(circuit.operations):
        if operation.is_barrier:
            fence = max((ready_at[q] for q in operation.qubits), default=0)
            for qubit in operation.qubits:
                ready_at[qubit] = fence
            continue
        qubits = op_qubits(operation)
        start = max(ready_at[q] for q in qubits)
        start_times[index] = start
        finish = start + operation.duration_ns
        for qubit in qubits:
            ready_at[qubit] = finish

    by_start: dict[int, list[int]] = {}
    for index, start in start_times.items():
        by_start.setdefault(start, []).append(index)

    steps = []
    for step_index, start in enumerate(sorted(by_start)):
        operations = [circuit.operations[i] for i in sorted(by_start[start])]
        steps.append(CircuitStep(index=step_index, start_ns=start,
                                 operations=operations))
    return Schedule(circuit=circuit, steps=steps, start_times=start_times)
