"""Quantum-circuit intermediate representation.

A :class:`QuantumCircuit` is an ordered list of operations on integer
qubit indices.  Operations may carry a *condition* referencing a prior
measurement on a single qubit — the "simple feedback control" of the
paper's Section 5.4 that the compiler lowers to an ``MRCE`` instruction.
Barriers delimit circuit steps explicitly where the data dependencies
alone would allow more reordering than the experiment intends.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.circuit.gates import GateDef, lookup_gate


@dataclass(frozen=True)
class Operation:
    """One gate application (or measure/reset/barrier) in a circuit."""

    gate: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = ()
    condition: tuple[int, int] | None = None  # (measured qubit, value)

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(self.qubits))
        object.__setattr__(self, "params", tuple(self.params))
        if self.gate != "barrier":
            definition = lookup_gate(self.gate)
            if len(self.qubits) != definition.n_qubits:
                raise ValueError(
                    f"gate {self.gate!r} expects {definition.n_qubits} "
                    f"qubits, got {len(self.qubits)}")
            if len(self.params) != definition.n_params:
                raise ValueError(
                    f"gate {self.gate!r} expects {definition.n_params} "
                    f"parameters, got {len(self.params)}")
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits: {self.qubits}")

    @property
    def is_barrier(self) -> bool:
        return self.gate == "barrier"

    @property
    def definition(self) -> GateDef:
        return lookup_gate(self.gate)

    @property
    def duration_ns(self) -> int:
        return 0 if self.is_barrier else self.definition.duration_ns

    @property
    def is_measurement(self) -> bool:
        return self.gate == "measure"

    def __str__(self) -> str:
        qubits = ", ".join(f"q{q}" for q in self.qubits)
        params = "".join(f"({p:g})" for p in self.params)
        text = f"{self.gate}{params} {qubits}"
        if self.condition is not None:
            qubit, value = self.condition
            text += f" if m[q{qubit}] == {value}"
        return text


@dataclass
class QuantumCircuit:
    """Mutable gate-list circuit on ``n_qubits`` qubits."""

    n_qubits: int
    name: str = "circuit"
    operations: list[Operation] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_qubits <= 0:
            raise ValueError("circuit needs at least one qubit")

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def _check_qubits(self, qubits: tuple[int, ...]) -> None:
        for qubit in qubits:
            if not 0 <= qubit < self.n_qubits:
                raise ValueError(
                    f"qubit q{qubit} out of range for "
                    f"{self.n_qubits}-qubit circuit")

    def append(self, gate: str, qubits: Iterator[int] | tuple[int, ...] |
               list[int] | int, params: tuple[float, ...] = (),
               condition: tuple[int, int] | None = None) -> Operation:
        """Append a gate; accepts a single qubit index or a sequence."""
        if isinstance(qubits, int):
            qubits = (qubits,)
        operation = Operation(gate, tuple(qubits), tuple(params), condition)
        if not operation.is_barrier:
            self._check_qubits(operation.qubits)
        if operation.condition is not None:
            self._check_qubits((operation.condition[0],))
        self.operations.append(operation)
        return operation

    # -- convenience emitters (chainable) ---------------------------------

    def i(self, q: int) -> "QuantumCircuit":
        self.append("i", q)
        return self

    def x(self, q: int) -> "QuantumCircuit":
        self.append("x", q)
        return self

    def y(self, q: int) -> "QuantumCircuit":
        self.append("y", q)
        return self

    def z(self, q: int) -> "QuantumCircuit":
        self.append("z", q)
        return self

    def h(self, q: int) -> "QuantumCircuit":
        self.append("h", q)
        return self

    def s(self, q: int) -> "QuantumCircuit":
        self.append("s", q)
        return self

    def sdg(self, q: int) -> "QuantumCircuit":
        self.append("sdg", q)
        return self

    def t(self, q: int) -> "QuantumCircuit":
        self.append("t", q)
        return self

    def tdg(self, q: int) -> "QuantumCircuit":
        self.append("tdg", q)
        return self

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        self.append("rx", q, params=(theta,))
        return self

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        self.append("ry", q, params=(theta,))
        return self

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        self.append("rz", q, params=(theta,))
        return self

    def cnot(self, control: int, target: int) -> "QuantumCircuit":
        self.append("cnot", (control, target))
        return self

    cx = cnot

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        self.append("cz", (a, b))
        return self

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        self.append("swap", (a, b))
        return self

    def measure(self, q: int) -> "QuantumCircuit":
        self.append("measure", q)
        return self

    def reset(self, q: int) -> "QuantumCircuit":
        self.append("reset", q)
        return self

    def barrier(self, *qubits: int) -> "QuantumCircuit":
        """Scheduling barrier; with no qubits it spans the whole circuit."""
        span = tuple(qubits) if qubits else tuple(range(self.n_qubits))
        self._check_qubits(span)
        self.operations.append(Operation("barrier", span))
        return self

    def conditional(self, gate: str, target: int, measured_qubit: int,
                    value: int = 1,
                    params: tuple[float, ...] = ()) -> "QuantumCircuit":
        """Append a simple-feedback-controlled gate (lowered to MRCE)."""
        self.append(gate, target, params=params,
                    condition=(measured_qubit, value))
        return self

    # -- queries -----------------------------------------------------------

    @property
    def gate_count(self) -> int:
        """Number of non-barrier operations."""
        return sum(1 for op in self.operations if not op.is_barrier)

    @property
    def measurement_count(self) -> int:
        return sum(1 for op in self.operations if op.is_measurement)

    def used_qubits(self) -> set[int]:
        """Set of qubit indices touched by any non-barrier operation."""
        used: set[int] = set()
        for op in self.operations:
            if not op.is_barrier:
                used.update(op.qubits)
                if op.condition is not None:
                    used.add(op.condition[0])
        return used

    def copy(self, name: str | None = None) -> "QuantumCircuit":
        """Shallow-copy the circuit (operations are immutable)."""
        return QuantumCircuit(self.n_qubits, name or self.name,
                              list(self.operations))

    def compose(self, other: "QuantumCircuit",
                qubit_map: dict[int, int] | None = None) -> "QuantumCircuit":
        """Append ``other``'s operations, optionally remapping qubits."""
        for op in other.operations:
            if qubit_map is None:
                mapped = op
            else:
                qubits = tuple(qubit_map.get(q, q) for q in op.qubits)
                condition = op.condition
                if condition is not None:
                    condition = (qubit_map.get(condition[0], condition[0]),
                                 condition[1])
                mapped = replace(op, qubits=qubits, condition=condition)
            if mapped.is_barrier:
                self.operations.append(mapped)
            else:
                self.append(mapped.gate, mapped.qubits, mapped.params,
                            mapped.condition)
        return self

    def __str__(self) -> str:
        header = f"{self.name}({self.n_qubits} qubits, {len(self)} ops)"
        body = "\n".join(f"  {op}" for op in self.operations)
        return f"{header}\n{body}" if body else header
