"""OpenQASM 2.0 interchange for the circuit IR.

The paper's benchmark suites (Qiskit, ScaffCC via QASM backends,
RevLib conversions) circulate as OpenQASM 2.0 files; this module lets
the reproduction exchange circuits with those toolchains.  The
supported subset covers everything the gate library can express:

* one quantum register, one optional classical register;
* the library's named gates plus the ``u1``/``u2``/``u3``,
  ``cx``/``cz``/``swap`` spellings and parametric ``rx``/``ry``/``rz``;
* ``measure q[i] -> c[j]``, ``reset``, ``barrier``;
* ``if (c == n) gate`` single-qubit conditionals, mapped to the simple
  feedback control (MRCE) path when the classical register has one bit.

Arbitrary-angle expressions support ``pi``, the four arithmetic
operators and parentheses.
"""

from __future__ import annotations

import ast
import math
import re

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import GATE_ALIASES, lookup_gate


class QasmError(ValueError):
    """Raised for malformed or unsupported OpenQASM input."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


#: QASM spellings accepted in addition to the native gate names.
_QASM_GATES = dict(GATE_ALIASES)
_QASM_GATES.update({"u1": "rz"})

_QREG_RE = re.compile(r"^qreg\s+(\w+)\s*\[\s*(\d+)\s*\]$")
_CREG_RE = re.compile(r"^creg\s+(\w+)\s*\[\s*(\d+)\s*\]$")
_APPLY_RE = re.compile(
    r"^(?P<name>[A-Za-z_]\w*)\s*(?:\((?P<params>[^)]*)\))?\s*"
    r"(?P<args>.+)$")
_INDEX_RE = re.compile(r"^(\w+)\s*\[\s*(\d+)\s*\]$")
_MEASURE_RE = re.compile(
    r"^measure\s+(\w+)\s*\[\s*(\d+)\s*\]\s*->\s*(\w+)\s*\[\s*(\d+)\s*\]$")
_IF_RE = re.compile(r"^if\s*\(\s*(\w+)\s*==\s*(\d+)\s*\)\s*(.+)$")


def _safe_eval(expression: str, line_no: int) -> float:
    """Evaluate a parameter expression with pi and arithmetic only."""
    try:
        tree = ast.parse(expression.strip(), mode="eval")
    except SyntaxError:
        raise QasmError(line_no,
                        f"bad parameter expression {expression!r}") \
            from None
    return _eval_node(tree.body, line_no)


def _eval_node(node: ast.AST, line_no: int) -> float:
    if isinstance(node, ast.Constant) and isinstance(node.value,
                                                     (int, float)):
        return float(node.value)
    if isinstance(node, ast.Name) and node.id == "pi":
        return math.pi
    if isinstance(node, ast.UnaryOp) and isinstance(node.op,
                                                    (ast.USub, ast.UAdd)):
        value = _eval_node(node.operand, line_no)
        return -value if isinstance(node.op, ast.USub) else value
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)):
        left = _eval_node(node.left, line_no)
        right = _eval_node(node.right, line_no)
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            return left * right
        return left / right
    raise QasmError(line_no, "unsupported parameter expression")


def _strip_comments(text: str) -> list[tuple[int, str]]:
    statements: list[tuple[int, str]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("//")[0].strip()
        if not line:
            continue
        for statement in line.split(";"):
            statement = statement.strip()
            if statement:
                statements.append((line_no, statement))
    return statements


def from_openqasm(text: str, name: str = "qasm") -> QuantumCircuit:
    """Parse an OpenQASM 2.0 program into a :class:`QuantumCircuit`."""
    circuit: QuantumCircuit | None = None
    qreg_name = ""
    creg_bits: dict[str, int] = {}
    clbit_to_qubit: dict[tuple[str, int], int] = {}

    def parse_qubit(token: str, line_no: int) -> int:
        match = _INDEX_RE.match(token.strip())
        if not match or match.group(1) != qreg_name:
            raise QasmError(line_no, f"bad qubit reference {token!r}")
        return int(match.group(2))

    def apply(statement: str, line_no: int,
              condition: tuple[int, int] | None = None) -> None:
        nonlocal circuit
        if circuit is None:
            raise QasmError(line_no, "statement before qreg")
        measure = _MEASURE_RE.match(statement)
        if measure:
            qubit = int(measure.group(2))
            clbit = (measure.group(3), int(measure.group(4)))
            if measure.group(3) not in creg_bits:
                raise QasmError(line_no,
                                f"unknown creg {measure.group(3)!r}")
            clbit_to_qubit[clbit] = qubit
            circuit.measure(qubit)
            return
        match = _APPLY_RE.match(statement)
        if not match:
            raise QasmError(line_no, f"cannot parse {statement!r}")
        gate_name = match.group("name").lower()
        params_text = match.group("params")
        args = [token.strip()
                for token in match.group("args").split(",")]
        if gate_name == "barrier":
            qubits = []
            for token in args:
                if token == qreg_name:
                    qubits = list(range(circuit.n_qubits))
                    break
                qubits.append(parse_qubit(token, line_no))
            circuit.barrier(*qubits)
            return
        if gate_name == "reset":
            circuit.reset(parse_qubit(args[0], line_no))
            return
        params: tuple[float, ...] = ()
        if params_text:
            params = tuple(_safe_eval(p, line_no)
                           for p in params_text.split(","))
        gate_name, params = _normalise_gate(gate_name, params, line_no)
        qubits = tuple(parse_qubit(token, line_no) for token in args)
        try:
            lookup_gate(gate_name)
        except KeyError:
            raise QasmError(line_no,
                            f"unsupported gate {gate_name!r}") from None
        circuit.append(gate_name, qubits, params=params,
                       condition=condition)

    for line_no, statement in _strip_comments(text):
        lowered = statement.lower()
        if lowered.startswith("openqasm") or lowered.startswith(
                "include"):
            continue
        qreg = _QREG_RE.match(statement)
        if qreg:
            if circuit is not None:
                raise QasmError(line_no,
                                "multiple qregs are not supported")
            qreg_name = qreg.group(1)
            circuit = QuantumCircuit(int(qreg.group(2)), name)
            continue
        creg = _CREG_RE.match(statement)
        if creg:
            creg_bits[creg.group(1)] = int(creg.group(2))
            continue
        conditional = _IF_RE.match(statement)
        if conditional:
            register = conditional.group(1)
            value = int(conditional.group(2))
            if register not in creg_bits:
                raise QasmError(line_no, f"unknown creg {register!r}")
            if creg_bits[register] != 1:
                raise QasmError(
                    line_no,
                    "conditionals are supported on 1-bit cregs only "
                    "(simple feedback control)")
            source = clbit_to_qubit.get((register, 0))
            if source is None:
                raise QasmError(
                    line_no,
                    f"creg {register!r} was never written by a measure")
            apply(conditional.group(3), line_no,
                  condition=(source, value))
            continue
        apply(statement, line_no)

    if circuit is None:
        raise QasmError(0, "no qreg declaration found")
    return circuit


def _normalise_gate(gate_name: str, params: tuple[float, ...],
                    line_no: int) -> tuple[str, tuple[float, ...]]:
    """Map QASM gate spellings onto the native library."""
    if gate_name in ("u2", "u3"):
        raise QasmError(
            line_no,
            f"{gate_name} is not supported; decompose to rz/ry/rx")
    return _QASM_GATES.get(gate_name, gate_name), params


def to_openqasm(circuit: QuantumCircuit) -> str:
    """Serialise a circuit to OpenQASM 2.0.

    Measurements are mapped to one classical bit per measured qubit;
    conditional operations are emitted as ``if (c_<qubit> == v)``
    statements on dedicated 1-bit registers, matching the subset the
    importer accepts (round-trip safe).
    """
    measured = sorted({op.qubits[0] for op in circuit.operations
                       if op.is_measurement})
    lines = ["OPENQASM 2.0;", 'include "qelib1.inc";',
             f"qreg q[{circuit.n_qubits}];"]
    lines.extend(f"creg c_{qubit}[1];" for qubit in measured)
    native_to_qasm = {"cnot": "cx", "i": "id", "x90": "sx",
                      "xm90": "sxdg"}
    for op in circuit.operations:
        if op.is_barrier:
            lines.append("barrier "
                         + ", ".join(f"q[{q}]" for q in op.qubits)
                         + ";")
            continue
        if op.is_measurement:
            qubit = op.qubits[0]
            lines.append(f"measure q[{qubit}] -> c_{qubit}[0];")
            continue
        gate = native_to_qasm.get(op.gate, op.gate)
        if gate in ("y90", "ym90"):
            # No standard QASM spelling: emit the equivalent rotation.
            angle = math.pi / 2 if gate == "y90" else -math.pi / 2
            gate, op_params = "ry", (angle,)
        else:
            op_params = op.params
        params = (f"({', '.join(repr(p) for p in op_params)})"
                  if op_params else "")
        args = ", ".join(f"q[{q}]" for q in op.qubits)
        statement = f"{gate}{params} {args};"
        if op.condition is not None:
            source, value = op.condition
            statement = f"if (c_{source} == {value}) {statement}"
        lines.append(statement)
    return "\n".join(lines) + "\n"
