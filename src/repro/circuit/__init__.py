"""Quantum-circuit intermediate representation and scheduling."""

from repro.circuit.circuit import Operation, QuantumCircuit
from repro.circuit.dag import (build_dag, critical_path_ns,
                               dependency_closure, op_qubits,
                               parallel_components)
from repro.circuit.openqasm import (QasmError, from_openqasm,
                                     to_openqasm)
from repro.circuit.gates import (GATE_ALIASES, GATE_LIBRARY, GateDef,
                                 MEASURE_NS, RESET_NS, SINGLE_QUBIT_NS,
                                 TWO_QUBIT_NS, gate_duration_ns,
                                 lookup_gate)
from repro.circuit.steps import CircuitStep, Schedule, schedule_asap

__all__ = [
    "CircuitStep", "GATE_ALIASES", "GATE_LIBRARY", "GateDef", "MEASURE_NS",
    "Operation", "QuantumCircuit", "RESET_NS", "SINGLE_QUBIT_NS",
    "Schedule", "TWO_QUBIT_NS", "build_dag", "critical_path_ns",
    "dependency_closure", "gate_duration_ns", "lookup_gate", "op_qubits",
    "parallel_components", "schedule_asap", "QasmError",
    "from_openqasm", "to_openqasm",
]
