"""Gate library: names, arities, durations and unitaries.

Durations follow Section 2.3 of the paper: 20 ns for single-qubit
operations, 40 ns for two-qubit operations, and a readout pulse in the
100 ns - 2 us range (we default to 300 ns, which combines with the DAQ
latency and conditional-logic cycles to the ~450 ns feedback latency the
paper measures).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

#: Default durations in nanoseconds (Section 2.3).
SINGLE_QUBIT_NS = 20
TWO_QUBIT_NS = 40
MEASURE_NS = 300
RESET_NS = 40

_SQRT2 = math.sqrt(2.0)


def _rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def _ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def _rz(theta: float) -> np.ndarray:
    phase = np.exp(1j * theta / 2)
    return np.array([[1 / phase, 0], [0, phase]], dtype=complex)


@dataclass(frozen=True)
class GateDef:
    """Static description of one gate type.

    ``matrix`` is either a constant unitary or a function of the gate's
    parameters; ``None`` for non-unitary operations (measure/reset).
    """

    name: str
    n_qubits: int
    duration_ns: int
    n_params: int = 0
    matrix: np.ndarray | Callable[..., np.ndarray] | None = None
    self_inverse: bool = False

    @property
    def is_measurement(self) -> bool:
        return self.name == "measure"

    @property
    def is_reset(self) -> bool:
        return self.name == "reset"

    @property
    def is_unitary(self) -> bool:
        return self.matrix is not None

    def unitary(self, params: tuple[float, ...] = ()) -> np.ndarray:
        """Concrete unitary for the given parameters."""
        if self.matrix is None:
            raise ValueError(f"gate {self.name!r} has no unitary")
        if len(params) != self.n_params:
            raise ValueError(
                f"gate {self.name!r} expects {self.n_params} parameters, "
                f"got {len(params)}")
        if callable(self.matrix):
            return self.matrix(*params)
        return self.matrix


def _library() -> dict[str, GateDef]:
    identity = np.eye(2, dtype=complex)
    pauli_x = np.array([[0, 1], [1, 0]], dtype=complex)
    pauli_y = np.array([[0, -1j], [1j, 0]], dtype=complex)
    pauli_z = np.array([[1, 0], [0, -1]], dtype=complex)
    hadamard = np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2
    s_gate = np.diag([1, 1j]).astype(complex)
    t_gate = np.diag([1, np.exp(1j * math.pi / 4)]).astype(complex)
    cnot = np.array([[1, 0, 0, 0], [0, 1, 0, 0],
                     [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex)
    cz = np.diag([1, 1, 1, -1]).astype(complex)
    swap = np.array([[1, 0, 0, 0], [0, 0, 1, 0],
                     [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex)
    iswap = np.array([[1, 0, 0, 0], [0, 0, 1j, 0],
                      [0, 1j, 0, 0], [0, 0, 0, 1]], dtype=complex)

    single = SINGLE_QUBIT_NS
    double = TWO_QUBIT_NS
    defs = [
        GateDef("i", 1, single, matrix=identity, self_inverse=True),
        GateDef("x", 1, single, matrix=pauli_x, self_inverse=True),
        GateDef("y", 1, single, matrix=pauli_y, self_inverse=True),
        GateDef("z", 1, single, matrix=pauli_z, self_inverse=True),
        GateDef("h", 1, single, matrix=hadamard, self_inverse=True),
        GateDef("s", 1, single, matrix=s_gate),
        GateDef("sdg", 1, single, matrix=s_gate.conj().T),
        GateDef("t", 1, single, matrix=t_gate),
        GateDef("tdg", 1, single, matrix=t_gate.conj().T),
        GateDef("x90", 1, single, matrix=_rx(math.pi / 2)),
        GateDef("xm90", 1, single, matrix=_rx(-math.pi / 2)),
        GateDef("y90", 1, single, matrix=_ry(math.pi / 2)),
        GateDef("ym90", 1, single, matrix=_ry(-math.pi / 2)),
        GateDef("rx", 1, single, n_params=1, matrix=_rx),
        GateDef("ry", 1, single, n_params=1, matrix=_ry),
        GateDef("rz", 1, single, n_params=1, matrix=_rz),
        GateDef("cnot", 2, double, matrix=cnot, self_inverse=True),
        GateDef("cz", 2, double, matrix=cz, self_inverse=True),
        GateDef("swap", 2, double, matrix=swap, self_inverse=True),
        GateDef("iswap", 2, double, matrix=iswap),
        GateDef("measure", 1, MEASURE_NS),
        GateDef("reset", 1, RESET_NS),
    ]
    return {gate.name: gate for gate in defs}


#: The global gate library, keyed by lower-case gate name.
GATE_LIBRARY: dict[str, GateDef] = _library()

#: Aliases accepted by the circuit API.
GATE_ALIASES = {"cx": "cnot", "id": "i", "meas": "measure",
                "sx": "x90", "sxdg": "xm90"}


def lookup_gate(name: str) -> GateDef:
    """Resolve a gate name (or alias) to its definition."""
    key = name.lower()
    key = GATE_ALIASES.get(key, key)
    try:
        return GATE_LIBRARY[key]
    except KeyError:
        raise KeyError(f"unknown gate {name!r}") from None


def gate_duration_ns(name: str) -> int:
    """Duration in nanoseconds of the named gate."""
    return lookup_gate(name).duration_ns
