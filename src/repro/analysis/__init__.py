"""Result aggregation and report formatting."""

from repro.analysis.speedup import (SpeedupSeries, TimingSample,
                                    collect_speedups)
from repro.analysis.tables import format_comparison, format_table
from repro.analysis.timeline import lateness_summary, render_timeline

__all__ = ["SpeedupSeries", "TimingSample", "collect_speedups",
           "format_comparison", "format_table", "lateness_summary",
           "render_timeline"]
