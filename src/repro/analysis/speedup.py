"""Execution-time and speedup aggregation for the CLP experiments."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class TimingSample:
    """Execution times (ns) collected for one configuration."""

    label: str
    times_ns: list[int] = field(default_factory=list)

    @property
    def mean_ns(self) -> float:
        return statistics.fmean(self.times_ns)

    @property
    def stdev_ns(self) -> float:
        if len(self.times_ns) < 2:
            return 0.0
        return statistics.stdev(self.times_ns)

    @property
    def runs(self) -> int:
        return len(self.times_ns)


@dataclass
class SpeedupSeries:
    """Mean execution time and speedup across processor counts."""

    baseline_label: str
    samples: dict[str, TimingSample] = field(default_factory=dict)

    def add(self, label: str, time_ns: int) -> None:
        self.samples.setdefault(label,
                                TimingSample(label)).times_ns.append(
                                    int(time_ns))

    def mean(self, label: str) -> float:
        return self.samples[label].mean_ns

    def speedup(self, label: str) -> float:
        """Mean-time ratio of the baseline to ``label``."""
        return self.mean(self.baseline_label) / self.mean(label)

    def rows(self) -> list[tuple[str, float, float, float]]:
        """(label, mean us, stdev us, speedup) per configuration."""
        result = []
        for label, sample in self.samples.items():
            result.append((label, sample.mean_ns / 1000.0,
                           sample.stdev_ns / 1000.0,
                           self.speedup(label)))
        return result


def collect_speedups(run: Callable[[int, int], int],
                     processor_counts: list[int], repeats: int,
                     baseline: int | None = None) -> SpeedupSeries:
    """Run ``run(n_processors, seed)`` over a grid and aggregate.

    ``run`` must return the execution time in nanoseconds.
    """
    baseline = baseline if baseline is not None else processor_counts[0]
    series = SpeedupSeries(baseline_label=f"{baseline}p")
    for count in processor_counts:
        for seed in range(repeats):
            series.add(f"{count}p", run(count, seed))
    return series
