"""ASCII timeline rendering of execution traces.

Turns the issue trace of one run into a per-qubit Gantt chart, the
textual analogue of the paper's Figure 2/3 timelines.  Used by the
examples and handy when debugging scheduling behaviour.
"""

from __future__ import annotations

from repro.circuit.gates import gate_duration_ns
from repro.qcp.trace import Trace

#: Single-character markers per gate family.
_MARKERS = {"measure": "M", "reset": "R"}


def _marker(gate: str) -> str:
    if gate in _MARKERS:
        return _MARKERS[gate]
    return gate[0].upper()


def render_timeline(trace: Trace, resolution_ns: int = 10,
                    max_columns: int = 100,
                    qubits: list[int] | None = None) -> str:
    """Render the issue trace as one row of boxes per qubit.

    Each column covers ``resolution_ns``; an operation paints its gate
    marker across its duration.  ``.`` is idle time.  A trace longer
    than ``max_columns`` columns is truncated with an ellipsis note.
    """
    if resolution_ns <= 0:
        raise ValueError("resolution must be positive")
    if not trace.issues:
        return "(no operations issued)"
    touched = sorted({q for record in trace.issues
                      for q in record.qubits})
    rows = {q: [] for q in (qubits if qubits is not None else touched)}
    horizon_ns = max(record.time_ns
                     + gate_duration_ns(record.gate)
                     for record in trace.issues)
    columns = min(-(-horizon_ns // resolution_ns), max_columns)
    for qubit in rows:
        rows[qubit] = ["."] * columns

    truncated = False
    for record in trace.issues:
        start = record.time_ns // resolution_ns
        width = max(1, gate_duration_ns(record.gate) // resolution_ns)
        for qubit in record.qubits:
            if qubit not in rows:
                continue
            for column in range(start, start + width):
                if column >= columns:
                    truncated = True
                    break
                rows[qubit][column] = _marker(record.gate)

    label_width = max(len(f"q{q}") for q in rows) if rows else 2
    lines = [f"{'':>{label_width}}  " + _ruler(columns, resolution_ns)]
    for qubit, cells in rows.items():
        lines.append(f"{f'q{qubit}':>{label_width}}  " + "".join(cells))
    if truncated:
        lines.append(f"(truncated at {columns * resolution_ns} ns)")
    return "\n".join(lines)


def _ruler(columns: int, resolution_ns: int) -> str:
    """Tick row: a '|' every 10 columns."""
    cells = []
    for column in range(columns):
        cells.append("|" if column % 10 == 0 else " ")
    return "".join(cells)


def lateness_summary(trace: Trace) -> str:
    """One-paragraph summary of timing-deadline behaviour."""
    late = trace.late_issues
    if not late:
        return ("all operations issued exactly at their scheduled "
                "timing points")
    worst = max(late, key=lambda r: r.late_ns)
    return (f"{len(late)} of {len(trace.issues)} operations issued "
            f"late (total {trace.total_late_ns} ns, worst "
            f"{worst.late_ns} ns on {worst.gate} "
            f"q{','.join(str(q) for q in worst.qubits)})")
