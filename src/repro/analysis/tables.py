"""Plain-text table formatting for benchmark reports.

The benchmark harness prints the same rows/series the paper's figures
show; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render an aligned monospace table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}")
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [max(len(headers[i]),
                  max((len(row[i]) for row in rendered), default=0))
              for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in rendered:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(columns)))
    return "\n".join(lines)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_comparison(name: str, paper_value: float,
                      measured_value: float, unit: str = "x") -> str:
    """One paper-vs-measured line for EXPERIMENTS.md-style reporting."""
    return (f"{name}: paper {paper_value:.2f}{unit}, "
            f"measured {measured_value:.2f}{unit}")
