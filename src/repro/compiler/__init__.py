"""Circuit-to-instruction compiler (the paper's preliminary compiler)."""

from repro.compiler.blocks import (BlockPlan, PARTITION_STRATEGIES,
                                   plan_components, plan_halves,
                                   plan_single)
from repro.compiler.bundling import bundle_instructions, bundle_program
from repro.compiler.crosstalk import (blocks_conflict,
                                      count_crosstalk_pairs,
                                      plan_qubits,
                                      serialize_crosstalk)
from repro.compiler.compiler import (CompiledProgram,
                                     DEFAULT_CLOCK_PERIOD_NS,
                                     compile_circuit)
from repro.compiler.lowering import LoweringError, lower_block, lower_plans

__all__ = [
    "BlockPlan", "blocks_conflict", "bundle_instructions", "bundle_program",
    "count_crosstalk_pairs", "plan_qubits", "serialize_crosstalk", "CompiledProgram", "DEFAULT_CLOCK_PERIOD_NS",
    "LoweringError", "PARTITION_STRATEGIES", "compile_circuit",
    "lower_block", "lower_plans", "plan_components", "plan_halves",
    "plan_single",
]
