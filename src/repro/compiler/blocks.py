"""Block division strategies (the paper's "preliminary compiler").

The paper divides a program into *program blocks* to expose Circuit Level
Parallelism.  Three strategies are implemented:

* ``single`` — the whole circuit in one block (uniprocessor layout);
* ``halves`` — the strategy of the Figure 12 experiment: "divide the part
  of the program with parallel operations into two blocks, each
  corresponding to half of the qubits"; generalised to ``n_parts``;
* ``components`` — one block per connected component of the qubit
  interaction graph (natural sub-circuits).

Each strategy returns :class:`BlockPlan` objects mapping schedule steps to
the global operation indices the block will execute.  Parallel blocks
share a priority; serial segments get increasing priorities, matching the
priority-counter dependency representation of Section 5.2.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.dag import op_qubits, parallel_components
from repro.circuit.steps import Schedule


@dataclass
class BlockPlan:
    """A planned program block: which operations it executes, when."""

    name: str
    priority: int
    deps: tuple[str, ...] = ()
    # (step index, global operation indices) in execution order
    steps: list[tuple[int, list[int]]] = field(default_factory=list)

    @property
    def op_count(self) -> int:
        return sum(len(ops) for _, ops in self.steps)


def _index_by_step(schedule: Schedule) -> list[list[int]]:
    """Global operation indices grouped per schedule step."""
    order: dict[int, list[int]] = {}
    starts = sorted({step.start_ns for step in schedule.steps})
    step_of_start = {start: i for i, start in enumerate(starts)}
    for op_index, start in schedule.start_times.items():
        order.setdefault(step_of_start[start], []).append(op_index)
    return [sorted(order.get(i, [])) for i in range(len(schedule.steps))]


def plan_single(schedule: Schedule, name: str = "main") -> list[BlockPlan]:
    """One block containing every step."""
    per_step = _index_by_step(schedule)
    block = BlockPlan(name=name, priority=0)
    for step_index, ops in enumerate(per_step):
        if ops:
            block.steps.append((step_index, ops))
    return [block]


def _qubit_groups(circuit: QuantumCircuit, n_parts: int) -> list[set[int]]:
    """Split the circuit's qubits into ``n_parts`` contiguous groups."""
    qubits = sorted(circuit.used_qubits())
    if not qubits:
        return [set() for _ in range(n_parts)]
    size = -(-len(qubits) // n_parts)
    return [set(qubits[i * size:(i + 1) * size]) for i in range(n_parts)]


def _group_of(qubits: tuple[int, ...],
              groups: list[set[int]]) -> int | None:
    """Group index containing all ``qubits``, or None if they cross."""
    for index, group in enumerate(groups):
        if all(q in group for q in qubits):
            return index
    return None


def plan_halves(schedule: Schedule, n_parts: int = 2,
                max_blocks: int = 64) -> list[BlockPlan]:
    """Figure-12 style partition into per-qubit-group parallel blocks.

    Steps are scanned in order and classified: a step is *splittable*
    when every operation lies inside a single qubit group, otherwise it
    is *crossing*.  Maximal runs of splittable steps become ``n_parts``
    parallel blocks (same priority); each crossing run becomes one serial
    block.  Priorities increase per segment, so the priority counter
    reproduces the intended order.

    ``max_blocks`` caps the total block count at the hardware block
    information table size (64 entries in the prototype): adjacent
    segments are merged into serial segments until the plan fits.
    """
    circuit = schedule.circuit
    groups = _qubit_groups(circuit, n_parts)
    per_step = _index_by_step(schedule)

    def step_kind(ops: list[int]) -> str:
        for op_index in ops:
            operation = circuit.operations[op_index]
            if _group_of(op_qubits(operation), groups) is None:
                return "crossing"
        return "splittable"

    # Pass 1: segment the step sequence into maximal same-kind runs.
    segments: list[tuple[str, list[int]]] = []  # (kind, step indices)
    for step_index, ops in enumerate(per_step):
        kind = step_kind(ops)
        if segments and segments[-1][0] == kind:
            segments[-1][1].append(step_index)
        else:
            segments.append((kind, [step_index]))

    # Pass 2: merge segments until the projected block count fits the
    # block information table.
    def projected(segment_list) -> int:
        return sum(n_parts if kind == "splittable" else 1
                   for kind, _ in segment_list)

    while len(segments) > 1 and projected(segments) > max_blocks:
        # Merge the adjacent pair covering the fewest steps (cheapest
        # loss of parallelism).
        best = min(range(len(segments) - 1),
                   key=lambda i: len(segments[i][1])
                   + len(segments[i + 1][1]))
        merged_steps = segments[best][1] + segments[best + 1][1]
        segments[best:best + 2] = [("crossing", merged_steps)]

    # Pass 3: emit block plans per segment.
    plans: list[BlockPlan] = []
    for priority, (kind, step_indices) in enumerate(segments):
        if kind == "crossing":
            block = BlockPlan(name=f"serial_p{priority}",
                              priority=priority)
            for step_index in step_indices:
                if per_step[step_index]:
                    block.steps.append(
                        (step_index, per_step[step_index]))
            if block.steps:
                plans.append(block)
            continue
        part_blocks = [BlockPlan(name=f"part{part}_p{priority}",
                                 priority=priority)
                       for part in range(n_parts)]
        for step_index in step_indices:
            assigned: dict[int, list[int]] = {}
            for op_index in per_step[step_index]:
                operation = circuit.operations[op_index]
                part = _group_of(op_qubits(operation), groups)
                assigned.setdefault(part, []).append(op_index)
            for part, ops in assigned.items():
                part_blocks[part].steps.append((step_index, ops))
        plans.extend(block for block in part_blocks if block.steps)
    return _compact_priorities(plans)


def plan_components(schedule: Schedule) -> list[BlockPlan]:
    """One block per connected qubit component (all priority 0)."""
    circuit = schedule.circuit
    components = parallel_components(circuit)
    per_step = _index_by_step(schedule)
    plans = [BlockPlan(name=f"component{i}", priority=0)
             for i in range(len(components))]
    component_of: dict[int, int] = {}
    for index, component in enumerate(components):
        for qubit in component:
            component_of[qubit] = index
    for step_index, ops in enumerate(per_step):
        assigned: dict[int, list[int]] = {}
        for op_index in ops:
            operation = circuit.operations[op_index]
            component = component_of[op_qubits(operation)[0]]
            assigned.setdefault(component, []).append(op_index)
        for component, op_list in assigned.items():
            plans[component].steps.append((step_index, op_list))
    return [plan for plan in plans if plan.steps]


def _compact_priorities(plans: list[BlockPlan]) -> list[BlockPlan]:
    """Renumber priorities to consecutive integers starting at zero."""
    present = sorted({plan.priority for plan in plans})
    renumber = {old: new for new, old in enumerate(present)}
    for plan in plans:
        plan.priority = renumber[plan.priority]
    return plans


PARTITION_STRATEGIES = {
    "single": lambda schedule, n_parts: plan_single(schedule),
    "halves": plan_halves,
    "components": lambda schedule, n_parts: plan_components(schedule),
}
