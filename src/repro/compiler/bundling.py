"""Bundling pass: RISC quantum instructions -> VLIW bundles.

Transforms a compiled program into its QuMA_v2-style VLIW equivalent:
maximal runs of quantum instructions sharing a timing point (a leader
plus following label-0 instructions) are packed into fixed-width
:class:`~repro.isa.vliw.Bundle` words, padded with QNOPs.  Classical
instructions and MRCEs pass through unchanged.  Branch targets are
remapped to the bundled program's addresses.
"""

from __future__ import annotations

import copy

from repro.isa.instructions import Instruction, Qmeas, Qop
from repro.isa.program import BlockInfo, Program
from repro.isa.vliw import Bundle


def bundle_instructions(instructions: list[Instruction],
                        width: int) -> tuple[list[Instruction],
                                             dict[int, int]]:
    """Bundle one instruction sequence.

    Returns the new sequence plus a map from old pc to new pc (every
    old instruction maps to the bundled instruction containing it).
    """
    bundled: list[Instruction] = []
    pc_map: dict[int, int] = {}
    index = 0
    while index < len(instructions):
        instr = instructions[index]
        if not isinstance(instr, (Qop, Qmeas)):
            pc_map[index] = len(bundled)
            # Copy: branch targets are rewritten to bundled addresses,
            # which must not mutate the source program.
            bundled.append(copy.copy(instr))
            index += 1
            continue
        group: list[Qop | Qmeas] = [instr]
        pc_map[index] = len(bundled)
        lookahead = index + 1
        while (lookahead < len(instructions)
               and isinstance(instructions[lookahead], (Qop, Qmeas))
               and instructions[lookahead].timing == 0
               and len(group) < width):
            pc_map[lookahead] = len(bundled)
            group.append(instructions[lookahead])
            lookahead += 1
        bundle = Bundle(timing=instr.timing, width=width,
                        slots=tuple(group))
        bundle.step_id = instr.step_id
        bundle.block = instr.block
        bundled.append(bundle)
        index = lookahead
    return bundled, pc_map


def bundle_program(program: Program, width: int = 8) -> Program:
    """Produce the VLIW version of ``program``.

    Bundling never crosses a block boundary (blocks are independent
    scheduling units), and branch targets are rewritten to the bundled
    addresses.
    """
    if width < 1:
        raise ValueError("bundle width must be at least 1")
    new_instructions: list[Instruction] = []
    new_blocks: list[BlockInfo] = []
    global_pc_map: dict[int, int] = {}
    for block in program.blocks:
        chunk = program.instructions[block.start:block.end]
        bundled, local_map = bundle_instructions(chunk, width)
        offset = len(new_instructions)
        for old_local, new_local in local_map.items():
            global_pc_map[block.start + old_local] = offset + new_local
        new_instructions.extend(bundled)
        new_blocks.append(BlockInfo(
            name=block.name, start=offset,
            end=offset + len(bundled), priority=block.priority,
            deps=block.deps))
    for instr in new_instructions:
        target = getattr(instr, "target", None)
        if isinstance(target, int):
            instr.target = global_pc_map[target]
    new_labels = {label: global_pc_map[pc]
                  for label, pc in program.labels.items()
                  if pc in global_pc_map}
    bundled_program = Program(instructions=new_instructions,
                              labels=new_labels, blocks=new_blocks,
                              name=f"{program.name}_vliw{width}")
    bundled_program.validate()
    return bundled_program
