"""Crosstalk-aware block division (the paper's stated future work).

Section 9: "we can conduct more in-depth explorations based on our
microarchitecture-level proposal in the future, e.g. block division
methods and trade-offs between parallelism and cross-talk."

Running two program blocks simultaneously is only free when their
qubits do not interact; if the blocks drive *coupled* qubits at the
same time, the always-on ZZ interaction correlates their errors (the
same mechanism that degrades simultaneous RB in Figure 14).  This pass
takes a block plan and a device topology and serializes the pairs of
parallel blocks that would otherwise drive coupled qubits together —
trading CLP for fidelity.
"""

from __future__ import annotations

from repro.circuit.dag import op_qubits
from repro.circuit.steps import Schedule
from repro.compiler.blocks import BlockPlan, _compact_priorities
from repro.qpu.topology import Topology


def plan_qubits(plan: BlockPlan, schedule: Schedule) -> set[int]:
    """All qubits a block plan touches."""
    touched: set[int] = set()
    for _, op_indices in plan.steps:
        for op_index in op_indices:
            operation = schedule.circuit.operations[op_index]
            touched.update(op_qubits(operation))
    return touched


def blocks_conflict(left: set[int], right: set[int],
                    topology: Topology) -> bool:
    """True when two qubit sets contain a coupled (neighbouring) pair.

    Shared qubits are *not* crosstalk — such blocks are already ordered
    by data dependencies; the crosstalk hazard is distinct qubits that
    the device couples.
    """
    for qubit in left:
        if qubit in right:
            continue
        if topology.neighbors(qubit) & (right - left):
            return True
    return False


def serialize_crosstalk(plans: list[BlockPlan], schedule: Schedule,
                        topology: Topology) -> list[BlockPlan]:
    """Split same-priority blocks that would drive coupled qubits.

    Conflicting blocks within a priority level are layered greedily:
    each block lands in the first layer where it conflicts with
    nothing; layers become consecutive priorities.  Non-conflicting
    parallelism is preserved.
    """
    qubit_sets = {id(plan): plan_qubits(plan, schedule)
                  for plan in plans}
    by_priority: dict[int, list[BlockPlan]] = {}
    for plan in plans:
        by_priority.setdefault(plan.priority, []).append(plan)

    result: list[BlockPlan] = []
    next_priority = 0
    for priority in sorted(by_priority):
        layers: list[list[BlockPlan]] = []
        for plan in by_priority[priority]:
            placed = False
            for layer in layers:
                if not any(blocks_conflict(qubit_sets[id(plan)],
                                           qubit_sets[id(other)],
                                           topology)
                           for other in layer):
                    layer.append(plan)
                    placed = True
                    break
            if not placed:
                layers.append([plan])
        for layer in layers:
            for plan in layer:
                plan.priority = next_priority
                result.append(plan)
            next_priority += 1
    return _compact_priorities(result)


def count_crosstalk_pairs(plans: list[BlockPlan], schedule: Schedule,
                          topology: Topology) -> int:
    """Number of same-priority block pairs that drive coupled qubits."""
    qubit_sets = [plan_qubits(plan, schedule) for plan in plans]
    conflicts = 0
    for i, left in enumerate(plans):
        for j in range(i + 1, len(plans)):
            right = plans[j]
            if left.priority != right.priority:
                continue
            if blocks_conflict(qubit_sets[i], qubit_sets[j], topology):
                conflicts += 1
    return conflicts
