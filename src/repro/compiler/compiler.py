"""Top-level circuit compiler.

``compile_circuit`` mirrors the paper's preliminary compiler: schedule
the circuit ASAP into circuit steps, divide it into program blocks
(Section 5.2.1) and lower each block to timed-QASM instructions whose
timing labels encode the step gaps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.steps import Schedule, schedule_asap
from repro.compiler.blocks import PARTITION_STRATEGIES, BlockPlan
from repro.compiler.lowering import lower_plans
from repro.isa.program import Program

#: Control-processor clock period (100 MHz core fabric, Section 6.1).
DEFAULT_CLOCK_PERIOD_NS = 10


@dataclass
class CompiledProgram:
    """Compiler output: the program plus the schedule it encodes."""

    program: Program
    schedule: Schedule
    plans: list[BlockPlan]
    clock_period_ns: int

    @property
    def step_durations_ns(self) -> dict[int, int]:
        """QPU duration of every circuit step (for TR bookkeeping)."""
        return {step.index: step.duration_ns
                for step in self.schedule.steps}

    @property
    def step_count(self) -> int:
        return len(self.schedule.steps)


def compile_circuit(circuit: QuantumCircuit,
                    partition: str = "single",
                    n_parts: int = 2,
                    clock_period_ns: int = DEFAULT_CLOCK_PERIOD_NS,
                    name: str | None = None) -> CompiledProgram:
    """Compile ``circuit`` into a timed-QASM program.

    ``partition`` selects the block-division strategy (``"single"``,
    ``"halves"`` or ``"components"``); ``n_parts`` applies to
    ``"halves"``.
    """
    if partition not in PARTITION_STRATEGIES:
        raise ValueError(
            f"unknown partition strategy {partition!r}; expected one of "
            f"{sorted(PARTITION_STRATEGIES)}")
    schedule = schedule_asap(circuit)
    plans = PARTITION_STRATEGIES[partition](schedule, n_parts)
    builder = lower_plans(circuit, schedule, plans, clock_period_ns,
                          name=name)
    program = builder.build()
    program.ensure_block_terminators()
    return CompiledProgram(program=program, schedule=schedule,
                           plans=plans, clock_period_ns=clock_period_ns)
