"""Lowering a scheduled circuit to timed-QASM instructions.

Each block plan becomes one program block.  Within a block the timing
label of the first quantum instruction of a step is the gap, in clock
cycles, since the previous step *present in the same block* (blocks run
on their own processor timeline); remaining instructions of the step get
label ``0`` so the superscalar pre-decoder can dispatch them together.
"""

from __future__ import annotations

from repro.circuit.circuit import Operation, QuantumCircuit
from repro.circuit.steps import Schedule
from repro.compiler.blocks import BlockPlan
from repro.isa.builder import ProgramBuilder


class LoweringError(ValueError):
    """Raised when a circuit feature cannot be lowered."""


def _timing_cycles(delta_ns: int, period_ns: int) -> int:
    if delta_ns % period_ns:
        raise LoweringError(
            f"step gap of {delta_ns} ns is not a multiple of the "
            f"{period_ns} ns clock period")
    return delta_ns // period_ns


def _emit_operation(builder: ProgramBuilder, operation: Operation,
                    timing: int) -> None:
    if operation.condition is not None:
        measured_qubit, value = operation.condition
        if len(operation.qubits) != 1:
            raise LoweringError(
                "simple feedback control (MRCE) supports single-qubit "
                f"conditional gates only, got {operation}")
        if operation.params:
            raise LoweringError(
                "parametric conditional gates cannot be encoded in MRCE")
        op_if_zero, op_if_one = ("i", operation.gate)
        if value == 0:
            op_if_zero, op_if_one = (operation.gate, "i")
        builder.mrce(measured_qubit, operation.qubits[0],
                     op_if_zero, op_if_one, timing=timing)
    elif operation.is_measurement:
        builder.qmeas(operation.qubits[0], timing=timing)
    else:
        builder.qop(operation.gate, operation.qubits, timing=timing,
                    params=operation.params)


def lower_block(builder: ProgramBuilder, schedule: Schedule,
                plan: BlockPlan, period_ns: int) -> None:
    """Emit one block plan into ``builder`` (inside an open block)."""
    circuit = schedule.circuit
    previous_start: int | None = None
    for step_index, op_indices in plan.steps:
        step = schedule.steps[step_index]
        if previous_start is None:
            timing = 0
        else:
            timing = _timing_cycles(step.start_ns - previous_start,
                                    period_ns)
        previous_start = step.start_ns
        with builder.step(step_index):
            for position, op_index in enumerate(op_indices):
                operation = circuit.operations[op_index]
                _emit_operation(builder, operation,
                                timing if position == 0 else 0)
    builder.halt()


def lower_plans(circuit: QuantumCircuit, schedule: Schedule,
                plans: list[BlockPlan], period_ns: int,
                name: str | None = None) -> ProgramBuilder:
    """Lower every block plan; returns the populated builder."""
    builder = ProgramBuilder(name or circuit.name)
    for plan in plans:
        with builder.block(plan.name, priority=plan.priority,
                           deps=plan.deps):
            lower_block(builder, schedule, plan, period_ns)
    return builder
