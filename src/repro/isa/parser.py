"""Text assembler for the timed-QASM ISA.

Grammar (one statement per line; ``;`` or ``#`` start a comment)::

    .block NAME [prio=P] [deps=A,B]     open a program block
    .endblock                            close it
    LABEL:                               define a label
    qop TIMING, GATE[(P0[,P1...])], qA[, qB]
    qmeas TIMING, qA
    mrce qRESULT, qTARGET, OP0, OP1 [, TIMING]
    fmr rD, qA
    ldi rD, IMM          mov rD, rS        ldm rD, [ADDR]    stm rS, [ADDR]
    add/sub/and/or/xor rD, rS, rT          addi rD, rS, IMM   not rD, rS
    jmp TARGET           beq/bne/blt/bge rS, rT, TARGET
    nop                  halt

This mirrors the assembly style of the paper's Section 2.2 example, with
the timing label leading each quantum instruction.
"""

from __future__ import annotations

import re

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program, ProgramError


class AsmSyntaxError(ProgramError):
    """Raised with a line number when the assembly text is malformed."""

    def __init__(self, line_no: int, message: str) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_GATE_RE = re.compile(r"^([A-Za-z_]\w*)(?:\(([^)]*)\))?$")


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas that are not inside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_register(token: str, line_no: int) -> int:
    if not token.startswith("r"):
        raise AsmSyntaxError(line_no, f"expected register, got {token!r}")
    try:
        return int(token[1:])
    except ValueError:
        raise AsmSyntaxError(line_no, f"bad register {token!r}") from None


def _parse_qubit(token: str, line_no: int) -> int:
    if not token.startswith("q"):
        raise AsmSyntaxError(line_no, f"expected qubit, got {token!r}")
    try:
        return int(token[1:])
    except ValueError:
        raise AsmSyntaxError(line_no, f"bad qubit {token!r}") from None


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AsmSyntaxError(line_no, f"bad integer {token!r}") from None


def _parse_addr(token: str, line_no: int) -> int:
    if token.startswith("[") and token.endswith("]"):
        token = token[1:-1]
    return _parse_int(token, line_no)


def _parse_target(token: str, line_no: int) -> str | int:
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    if re.fullmatch(r"[A-Za-z_][\w.]*", token):
        return token
    raise AsmSyntaxError(line_no, f"bad branch target {token!r}")


def _parse_gate(token: str, line_no: int) -> tuple[str, tuple[float, ...]]:
    match = _GATE_RE.match(token)
    if not match:
        raise AsmSyntaxError(line_no, f"bad gate spec {token!r}")
    name = match.group(1).lower()
    params: tuple[float, ...] = ()
    if match.group(2):
        try:
            params = tuple(float(p) for p in match.group(2).split(","))
        except ValueError:
            raise AsmSyntaxError(
                line_no, f"bad gate parameters in {token!r}") from None
    return name, params


def _parse_block_directive(rest: str, line_no: int):
    tokens = rest.split()
    if not tokens:
        raise AsmSyntaxError(line_no, ".block needs a name")
    name = tokens[0]
    priority = 0
    deps: tuple[str, ...] = ()
    for token in tokens[1:]:
        if token.startswith("prio="):
            priority = _parse_int(token[5:], line_no)
        elif token.startswith("deps="):
            deps = tuple(d for d in token[5:].split(",") if d)
        else:
            raise AsmSyntaxError(line_no, f"unknown block option {token!r}")
    return name, priority, deps


def parse_asm(text: str, name: str = "program") -> Program:
    """Assemble ``text`` into a :class:`~repro.isa.program.Program`."""
    builder = ProgramBuilder(name)
    block_ctx = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        if line.startswith(".block"):
            if block_ctx is not None:
                raise AsmSyntaxError(line_no, "nested .block")
            block_name, priority, deps = _parse_block_directive(
                line[len(".block"):].strip(), line_no)
            block_ctx = builder.block(block_name, priority=priority,
                                      deps=deps)
            block_ctx.__enter__()
            continue
        if line == ".endblock":
            if block_ctx is None:
                raise AsmSyntaxError(line_no, ".endblock without .block")
            block_ctx.__exit__(None, None, None)
            block_ctx = None
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            builder.label(label_match.group(1))
            continue
        _parse_statement(builder, line, line_no)
    if block_ctx is not None:
        raise AsmSyntaxError(line_no, "unterminated .block")
    return builder.build()


def _parse_statement(builder: ProgramBuilder, line: str,
                     line_no: int) -> None:
    mnemonic, _, rest = line.partition(" ")
    mnemonic = mnemonic.lower()
    ops = _split_operands(rest)

    def need(count: int) -> None:
        if len(ops) != count:
            raise AsmSyntaxError(
                line_no,
                f"{mnemonic} expects {count} operands, got {len(ops)}")

    if mnemonic == "nop":
        need(0)
        builder.nop()
    elif mnemonic == "halt":
        need(0)
        builder.halt()
    elif mnemonic == "jmp":
        need(1)
        builder.jmp(_parse_target(ops[0], line_no))
    elif mnemonic in ("beq", "bne", "blt", "bge"):
        need(3)
        method = getattr(builder, mnemonic)
        method(_parse_register(ops[0], line_no),
               _parse_register(ops[1], line_no),
               _parse_target(ops[2], line_no))
    elif mnemonic == "ldi":
        need(2)
        builder.ldi(_parse_register(ops[0], line_no),
                    _parse_int(ops[1], line_no))
    elif mnemonic == "mov":
        need(2)
        builder.mov(_parse_register(ops[0], line_no),
                    _parse_register(ops[1], line_no))
    elif mnemonic == "ldm":
        need(2)
        builder.ldm(_parse_register(ops[0], line_no),
                    _parse_addr(ops[1], line_no))
    elif mnemonic == "stm":
        need(2)
        builder.stm(_parse_register(ops[0], line_no),
                    _parse_addr(ops[1], line_no))
    elif mnemonic == "fmr":
        need(2)
        builder.fmr(_parse_register(ops[0], line_no),
                    _parse_qubit(ops[1], line_no))
    elif mnemonic in ("add", "sub", "and", "or", "xor"):
        need(3)
        method = getattr(builder, mnemonic + "_"
                         if mnemonic in ("and", "or") else mnemonic)
        method(_parse_register(ops[0], line_no),
               _parse_register(ops[1], line_no),
               _parse_register(ops[2], line_no))
    elif mnemonic == "addi":
        need(3)
        builder.addi(_parse_register(ops[0], line_no),
                     _parse_register(ops[1], line_no),
                     _parse_int(ops[2], line_no))
    elif mnemonic == "not":
        need(2)
        builder.not_(_parse_register(ops[0], line_no),
                     _parse_register(ops[1], line_no))
    elif mnemonic == "qop":
        if len(ops) < 3:
            raise AsmSyntaxError(line_no, "qop expects timing, gate, qubits")
        timing = _parse_int(ops[0], line_no)
        gate, params = _parse_gate(ops[1], line_no)
        qubits = [_parse_qubit(tok, line_no) for tok in ops[2:]]
        builder.qop(gate, qubits, timing=timing, params=params)
    elif mnemonic == "qmeas":
        need(2)
        builder.qmeas(_parse_qubit(ops[1], line_no),
                      timing=_parse_int(ops[0], line_no))
    elif mnemonic == "mrce":
        if len(ops) not in (4, 5):
            raise AsmSyntaxError(
                line_no, "mrce expects qR, qT, op0, op1 [, timing]")
        timing = _parse_int(ops[4], line_no) if len(ops) == 5 else 0
        builder.mrce(_parse_qubit(ops[0], line_no),
                     _parse_qubit(ops[1], line_no),
                     ops[2].lower(), ops[3].lower(), timing=timing)
    else:
        raise AsmSyntaxError(line_no, f"unknown mnemonic {mnemonic!r}")
