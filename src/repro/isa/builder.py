"""Fluent construction of timed-QASM programs.

The paper's benchmarks mix quantum instructions with repeat-until-success
loops and majority votes, which are awkward to express in a circuit IR;
:class:`ProgramBuilder` builds them directly at the instruction level::

    builder = ProgramBuilder("rus")
    with builder.block("w1", priority=0):
        builder.label("retry")
        builder.qop("h", [0])
        builder.qmeas(2, timing=2)
        builder.fmr(1, 2)
        builder.bne(1, ZERO_REG, "retry")
        builder.halt()
    program = builder.build()
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterable, Iterator, Sequence

from repro.isa.instructions import (
    Add, Addi, And, Beq, Bge, Blt, Bne, Fmr, Halt, Instruction, Jmp, Ldi,
    Ldm, Mov, Mrce, Nop, Not, Or, Qmeas, Qop, Stm, Sub, Xor,
)
from repro.isa.program import BlockInfo, Program, ProgramError


class ProgramBuilder:
    """Incrementally assembles a :class:`~repro.isa.program.Program`."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._blocks: list[BlockInfo] = []
        self._open_block: tuple[str, int, int, tuple[str, ...]] | None = None
        self._current_step: int | None = None

    # -- structure ---------------------------------------------------------

    @property
    def pc(self) -> int:
        """Address the next emitted instruction will occupy."""
        return len(self._instructions)

    def label(self, name: str) -> str:
        """Define ``name`` at the current pc and return it."""
        if name in self._labels:
            raise ProgramError(f"label {name!r} defined twice")
        self._labels[name] = self.pc
        return name

    def fresh_label(self, stem: str) -> str:
        """Generate an unused label derived from ``stem``."""
        index = 0
        while f"{stem}_{index}" in self._labels:
            index += 1
        return f"{stem}_{index}"

    @contextlib.contextmanager
    def block(self, name: str, priority: int = 0,
              deps: Sequence[str] = ()) -> Iterator[None]:
        """Open a program block; instructions emitted inside belong to it."""
        if self._open_block is not None:
            raise ProgramError("program blocks cannot nest")
        self._open_block = (name, priority, self.pc, tuple(deps))
        try:
            yield
        finally:
            name, priority, start, dep_names = self._open_block
            self._open_block = None
            self._blocks.append(BlockInfo(name=name, start=start,
                                          end=self.pc, priority=priority,
                                          deps=dep_names))

    @contextlib.contextmanager
    def step(self, step_id: int) -> Iterator[None]:
        """Tag instructions emitted inside with a circuit-step id."""
        previous = self._current_step
        self._current_step = step_id
        try:
            yield
        finally:
            self._current_step = previous

    def emit(self, instr: Instruction) -> Instruction:
        """Append a raw instruction (annotating block/step metadata)."""
        if self._open_block is not None:
            instr.block = self._open_block[0]
        if self._current_step is not None and instr.step_id is None:
            instr.step_id = self._current_step
        self._instructions.append(instr)
        return instr

    # -- classical ----------------------------------------------------------

    def nop(self) -> Instruction:
        return self.emit(Nop())

    def halt(self) -> Instruction:
        return self.emit(Halt())

    def jmp(self, target: str | int) -> Instruction:
        return self.emit(Jmp(target))

    def beq(self, rs: int, rt: int, target: str | int) -> Instruction:
        return self.emit(Beq(rs, rt, target))

    def bne(self, rs: int, rt: int, target: str | int) -> Instruction:
        return self.emit(Bne(rs, rt, target))

    def blt(self, rs: int, rt: int, target: str | int) -> Instruction:
        return self.emit(Blt(rs, rt, target))

    def bge(self, rs: int, rt: int, target: str | int) -> Instruction:
        return self.emit(Bge(rs, rt, target))

    def ldi(self, rd: int, imm: int) -> Instruction:
        return self.emit(Ldi(rd, imm))

    def mov(self, rd: int, rs: int) -> Instruction:
        return self.emit(Mov(rd, rs))

    def ldm(self, rd: int, addr: int) -> Instruction:
        return self.emit(Ldm(rd, addr))

    def stm(self, rs: int, addr: int) -> Instruction:
        return self.emit(Stm(rs, addr))

    def fmr(self, rd: int, qubit: int) -> Instruction:
        return self.emit(Fmr(rd, qubit))

    def add(self, rd: int, rs: int, rt: int) -> Instruction:
        return self.emit(Add(rd, rs, rt))

    def addi(self, rd: int, rs: int, imm: int) -> Instruction:
        return self.emit(Addi(rd, rs, imm))

    def sub(self, rd: int, rs: int, rt: int) -> Instruction:
        return self.emit(Sub(rd, rs, rt))

    def and_(self, rd: int, rs: int, rt: int) -> Instruction:
        return self.emit(And(rd, rs, rt))

    def or_(self, rd: int, rs: int, rt: int) -> Instruction:
        return self.emit(Or(rd, rs, rt))

    def xor(self, rd: int, rs: int, rt: int) -> Instruction:
        return self.emit(Xor(rd, rs, rt))

    def not_(self, rd: int, rs: int) -> Instruction:
        return self.emit(Not(rd, rs))

    # -- quantum -------------------------------------------------------------

    def qop(self, gate: str, qubits: Iterable[int], timing: int = 0,
            params: Iterable[float] = ()) -> Instruction:
        return self.emit(Qop(timing, gate, tuple(qubits), tuple(params)))

    def qmeas(self, qubit: int, timing: int = 0) -> Instruction:
        return self.emit(Qmeas(timing, qubit))

    def mrce(self, result_qubit: int, target_qubit: int,
             op_if_zero: str = "i", op_if_one: str = "x",
             timing: int = 0) -> Instruction:
        return self.emit(Mrce(result_qubit, target_qubit,
                              op_if_zero, op_if_one, timing))

    # -- finalisation ----------------------------------------------------------

    def build(self, validate: bool = True) -> Program:
        """Resolve labels and return the finished program."""
        if self._open_block is not None:
            raise ProgramError(
                f"block {self._open_block[0]!r} was never closed")
        blocks = self._blocks
        if not blocks and self._instructions:
            blocks = [BlockInfo(name="main", start=0,
                                end=len(self._instructions))]
        program = Program(instructions=self._instructions,
                          labels=dict(self._labels),
                          blocks=sorted(blocks, key=lambda b: b.start),
                          name=self.name)
        program.resolve_labels()
        if validate:
            program.validate()
        return program
