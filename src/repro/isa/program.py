"""Programs, program blocks and the block information table.

A *program block* (Section 3.1) is a contiguous instruction range
describing one sub-circuit, possibly containing loops and feedback
control.  The *block information table* (Section 5.2.1) stores, for every
block, its pc range and its dependency information in one of two
hardware representations:

* ``direct`` — a bit-vector naming the blocks that must finish first, and
* ``priority`` — a small integer; blocks sharing a priority may run in
  parallel, and priority ``p`` blocks only start once every block with a
  lower priority is done.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.instructions import Halt, Instruction, Jmp

#: Hardware table size in the paper's FPGA prototype (Section 6.1).
BLOCK_TABLE_ENTRIES = 64

#: Bits per block-information-table entry in the prototype.
BLOCK_ENTRY_BITS = 32


class DependencyMode(enum.Enum):
    """Which dependency representation the scheduler consumes."""

    DIRECT = "direct"
    PRIORITY = "priority"


@dataclass
class BlockInfo:
    """One entry of the block information table.

    ``start``/``end`` delimit the block's instruction range in main
    memory, end-exclusive.  ``deps`` lists names of blocks that must be
    *done* before this block may start (direct representation);
    ``priority`` is the alternative compact representation.
    """

    name: str
    start: int
    end: int
    priority: int = 0
    deps: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise ValueError(
                f"invalid block range [{self.start}, {self.end}) "
                f"for block {self.name!r}")
        if self.priority < 0:
            raise ValueError(f"negative priority for block {self.name!r}")
        self.deps = tuple(self.deps)

    @property
    def size(self) -> int:
        """Number of instructions in the block."""
        return self.end - self.start


class ProgramError(ValueError):
    """Raised for malformed programs (bad labels, overlapping blocks...)."""


@dataclass
class Program:
    """A fully assembled program: instructions, labels and blocks.

    Branch targets inside ``instructions`` are absolute pcs after
    :meth:`resolve_labels` has run (the builder and parser call it for
    you).
    """

    instructions: list[Instruction] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    blocks: list[BlockInfo] = field(default_factory=list)
    name: str = "program"

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def block_named(self, name: str) -> BlockInfo:
        """Look up a block by name."""
        for block in self.blocks:
            if block.name == name:
                return block
        raise ProgramError(f"no block named {name!r}")

    def resolve_labels(self) -> None:
        """Replace symbolic branch targets with absolute pcs, in place."""
        for pc, instr in enumerate(self.instructions):
            target = getattr(instr, "target", None)
            if isinstance(target, str):
                if target not in self.labels:
                    raise ProgramError(
                        f"undefined label {target!r} at pc {pc}")
                instr.target = self.labels[target]

    def validate(self) -> None:
        """Check structural invariants; raises :class:`ProgramError`."""
        n = len(self.instructions)
        for pc, instr in enumerate(self.instructions):
            target = getattr(instr, "target", None)
            if isinstance(target, str):
                raise ProgramError(
                    f"unresolved label {target!r} at pc {pc}")
            if isinstance(target, int) and not 0 <= target < n:
                raise ProgramError(
                    f"branch target {target} out of range at pc {pc}")
        seen: set[str] = set()
        for block in self.blocks:
            if block.name in seen:
                raise ProgramError(f"duplicate block name {block.name!r}")
            seen.add(block.name)
            if block.end > n:
                raise ProgramError(
                    f"block {block.name!r} extends past program end")
            for dep in block.deps:
                if dep not in {b.name for b in self.blocks}:
                    raise ProgramError(
                        f"block {block.name!r} depends on unknown "
                        f"block {dep!r}")
        for left, right in zip(self.blocks, self.blocks[1:]):
            if left.end > right.start:
                raise ProgramError(
                    f"blocks {left.name!r} and {right.name!r} overlap")

    def ensure_block_terminators(self) -> None:
        """Verify every block ends in ``halt`` or an unconditional jump.

        The multiprocessor scheduler relies on ``halt`` to learn that a
        block finished; a block that falls through into the next block
        would corrupt scheduling.
        """
        for block in self.blocks:
            last = self.instructions[block.end - 1]
            if not isinstance(last, (Halt, Jmp)):
                raise ProgramError(
                    f"block {block.name!r} does not end in halt/jmp "
                    f"(found {last})")

    @property
    def quantum_instruction_count(self) -> int:
        """Number of quantum-class instructions (paper reports these)."""
        return sum(1 for instr in self.instructions if instr.is_quantum)

    @property
    def classical_instruction_count(self) -> int:
        """Number of classical instructions."""
        return sum(1 for instr in self.instructions
                   if not instr.is_quantum)

    def listing(self) -> str:
        """Human-readable disassembly with block annotations."""
        starts = {block.start: block for block in self.blocks}
        ends = {block.end for block in self.blocks}
        label_at: dict[int, list[str]] = {}
        for label, pc in self.labels.items():
            label_at.setdefault(pc, []).append(label)
        lines: list[str] = []
        for pc, instr in enumerate(self.instructions):
            if pc in ends:
                lines.append(".endblock")
            if pc in starts:
                block = starts[pc]
                deps = (" deps=" + ",".join(block.deps)
                        if block.deps else "")
                lines.append(
                    f".block {block.name} prio={block.priority}{deps}")
            for label in label_at.get(pc, ()):
                lines.append(f"{label}:")
            lines.append(f"    {pc:4d}  {instr}")
        if len(self.instructions) in ends:
            lines.append(".endblock")
        return "\n".join(lines)

    def to_asm(self) -> str:
        """Re-assemblable source: the listing without the pc column.

        ``parse_asm(program.to_asm())`` reconstructs an equivalent
        program: instructions appear in pc order, so the absolute
        branch targets that :meth:`resolve_labels` substituted remain
        valid, and block directives carry the priority/deps options
        the parser understands.  This is what lets a compiled or
        programmatically built program travel as text — e.g. as the
        ``program`` field of a shot-sweep service job
        (:mod:`repro.service`).
        """
        starts = {block.start: block for block in self.blocks}
        ends = {block.end for block in self.blocks}
        label_at: dict[int, list[str]] = {}
        for label, pc in self.labels.items():
            label_at.setdefault(pc, []).append(label)
        lines: list[str] = []
        for pc, instr in enumerate(self.instructions):
            if pc in ends:
                lines.append(".endblock")
            if pc in starts:
                block = starts[pc]
                deps = (" deps=" + ",".join(block.deps)
                        if block.deps else "")
                lines.append(
                    f".block {block.name} prio={block.priority}{deps}")
            for label in sorted(label_at.get(pc, ())):
                lines.append(f"{label}:")
            lines.append(f"    {instr}")
        for label in sorted(label_at.get(len(self.instructions), ())):
            lines.append(f"{label}:")
        if len(self.instructions) in ends:
            lines.append(".endblock")
        return "\n".join(lines) + "\n"


class BlockInfoTable:
    """Hardware-style view of a program's blocks for the scheduler.

    Mirrors the FPGA prototype's 64-entry table.  For the ``direct``
    representation each entry exposes a dependency bit-vector; for
    ``priority`` it exposes the priority number (Section 5.2.2).
    """

    def __init__(self, program: Program,
                 mode: DependencyMode = DependencyMode.PRIORITY,
                 capacity: int = BLOCK_TABLE_ENTRIES) -> None:
        if len(program.blocks) > capacity:
            raise ProgramError(
                f"program has {len(program.blocks)} blocks but the block "
                f"information table holds {capacity}")
        if not program.blocks:
            raise ProgramError("program defines no blocks")
        self.mode = mode
        self.capacity = capacity
        self.entries = list(program.blocks)
        self._index = {block.name: i
                       for i, block in enumerate(self.entries)}
        if mode is DependencyMode.DIRECT:
            self._dep_vectors = [self._vector(block)
                                 for block in self.entries]
        else:
            self._dep_vectors = [0] * len(self.entries)

    def _vector(self, block: BlockInfo) -> int:
        vector = 0
        for dep in block.deps:
            vector |= 1 << self._index[dep]
        return vector

    def __len__(self) -> int:
        return len(self.entries)

    def index_of(self, name: str) -> int:
        """Table index of the block called ``name``."""
        return self._index[name]

    def dependency_vector(self, index: int) -> int:
        """Direct-mode dependency bit-vector for entry ``index``."""
        return self._dep_vectors[index]

    def priority_of(self, index: int) -> int:
        """Priority-mode dependency value for entry ``index``."""
        return self.entries[index].priority

    def priorities(self) -> list[int]:
        """Sorted list of distinct priorities present in the table."""
        return sorted({block.priority for block in self.entries})
