"""Timed-QASM instruction set architecture.

Public surface: instruction classes, :class:`Program` /
:class:`BlockInfoTable`, the :class:`ProgramBuilder` fluent API, the text
assembler :func:`parse_asm` and the binary encoder.
"""

from repro.isa.builder import ProgramBuilder
from repro.isa.encoder import (decode, decode_program, encode,
                               encode_program, EncodingError)
from repro.isa.instructions import (
    Add, Addi, And, Beq, Bge, Blt, Bne, Branch, Fmr, Halt, Instruction,
    Jmp, Ldi, Ldm, Mov, Mrce, Nop, Not, NUM_REGISTERS, Or, Qmeas, Qop,
    Stm, Sub, Xor, ZERO_REG,
)
from repro.isa.opcodes import InstrClass, Opcode, instr_class
from repro.isa.parser import AsmSyntaxError, parse_asm
from repro.isa.vliw import Bundle, risc_word_count, vliw_word_count
from repro.isa.program import (BLOCK_TABLE_ENTRIES, BlockInfo,
                               BlockInfoTable, DependencyMode, Program,
                               ProgramError)

__all__ = [
    "Add", "Addi", "And", "AsmSyntaxError", "Beq", "Bge", "Blt", "Bundle",
    "BLOCK_TABLE_ENTRIES", "BlockInfo", "BlockInfoTable", "Bne", "Branch",
    "DependencyMode", "EncodingError", "Fmr", "Halt", "Instruction",
    "InstrClass", "Jmp", "Ldi", "Ldm", "Mov", "Mrce", "Nop", "Not",
    "NUM_REGISTERS", "Opcode", "Or", "Program", "ProgramBuilder",
    "ProgramError", "Qmeas", "Qop", "Stm", "Sub", "Xor", "ZERO_REG",
    "decode", "decode_program", "encode", "encode_program", "instr_class",
    "parse_asm", "risc_word_count", "vliw_word_count",
]
