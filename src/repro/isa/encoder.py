"""Binary encoding of the timed-QASM ISA.

The paper argues for a RISC-style fixed-width instruction word (32 bits)
as a benefit of the superscalar approach over VLIW (Section 9).  This
module provides the reference encoder/decoder used by tests and by the
instruction-memory model: every instruction occupies one 32-bit header
word; quantum operations with more than one qubit or with rotation
parameters append operand words.

Header layout (bit 31 is the MSB)::

    [31:26] opcode
    remaining fields per instruction family, documented inline below.

Rotation parameters are stored as IEEE-754 binary32, so decoding recovers
them at float32 precision.
"""

from __future__ import annotations

import struct

from repro.isa import instructions as ins
from repro.isa.opcodes import Opcode

#: Canonical gate-name table for the 8-bit gate-id field.
GATE_IDS: dict[str, int] = {
    name: index for index, name in enumerate([
        "i", "x", "y", "z", "h", "s", "sdg", "t", "tdg",
        "x90", "y90", "xm90", "ym90",
        "rx", "ry", "rz",
        "cnot", "cz", "swap", "iswap",
        "reset", "measure",
    ])
}
GATE_NAMES: dict[int, str] = {v: k for k, v in GATE_IDS.items()}

#: 4-bit conditional-op table for MRCE operands.
MRCE_OP_IDS: dict[str, int] = {
    name: index for index, name in enumerate(
        ["i", "x", "y", "z", "h", "s", "sdg", "t", "tdg",
         "x90", "y90", "reset"])
}
MRCE_OP_NAMES: dict[int, str] = {v: k for k, v in MRCE_OP_IDS.items()}

_MASK26 = (1 << 26) - 1
_MASK16 = (1 << 16) - 1


class EncodingError(ValueError):
    """Raised when an instruction does not fit its binary fields."""


def _field(value: int, bits: int, what: str) -> int:
    if not 0 <= value < (1 << bits):
        raise EncodingError(f"{what} {value} does not fit in {bits} bits")
    return value


def _signed16(value: int, what: str) -> int:
    if not -(1 << 15) <= value < (1 << 15):
        raise EncodingError(f"{what} {value} does not fit in 16 bits")
    return value & _MASK16


def _unsigned16_to_signed(value: int) -> int:
    return value - (1 << 16) if value & (1 << 15) else value


def _float_to_word(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


def _word_to_float(word: int) -> float:
    return struct.unpack("<f", struct.pack("<I", word))[0]


def encode(instr: ins.Instruction) -> list[int]:
    """Encode one instruction into a list of 32-bit words."""
    op = instr.opcode
    head = int(op) << 26
    if isinstance(instr, (ins.Nop, ins.Halt)):
        return [head]
    if isinstance(instr, ins.Jmp):
        if not isinstance(instr.target, int):
            raise EncodingError("cannot encode unresolved jump target")
        return [head | _field(instr.target, 26, "jump target")]
    if isinstance(instr, ins.Branch):
        if not isinstance(instr.target, int):
            raise EncodingError("cannot encode unresolved branch target")
        return [head | (_field(instr.rs, 5, "rs") << 21)
                | (_field(instr.rt, 5, "rt") << 16)
                | _field(instr.target, 16, "branch target")]
    if isinstance(instr, ins.Ldi):
        return [head | (_field(instr.rd, 5, "rd") << 21)
                | _signed16(instr.imm, "immediate")]
    if isinstance(instr, ins.Mov):
        return [head | (_field(instr.rd, 5, "rd") << 21)
                | (_field(instr.rs, 5, "rs") << 16)]
    if isinstance(instr, ins.Ldm):
        return [head | (_field(instr.rd, 5, "rd") << 21)
                | _field(instr.addr, 16, "address")]
    if isinstance(instr, ins.Stm):
        return [head | (_field(instr.rs, 5, "rs") << 21)
                | _field(instr.addr, 16, "address")]
    if isinstance(instr, ins.Fmr):
        return [head | (_field(instr.rd, 5, "rd") << 21)
                | _field(instr.qubit, 16, "qubit")]
    if isinstance(instr, ins.Addi):
        return [head | (_field(instr.rd, 5, "rd") << 21)
                | (_field(instr.rs, 5, "rs") << 16)
                | _signed16(instr.imm, "immediate")]
    if isinstance(instr, ins.Not):
        return [head | (_field(instr.rd, 5, "rd") << 21)
                | (_field(instr.rs, 5, "rs") << 16)]
    if isinstance(instr, ins.Alu):
        return [head | (_field(instr.rd, 5, "rd") << 21)
                | (_field(instr.rs, 5, "rs") << 16)
                | (_field(instr.rt, 5, "rt") << 11)]
    if isinstance(instr, ins.Qmeas):
        return [head | (_field(instr.timing, 12, "timing") << 14)
                | _field(instr.qubit, 14, "qubit")]
    if isinstance(instr, ins.Mrce):
        if instr.op_if_zero not in MRCE_OP_IDS:
            raise EncodingError(f"MRCE op {instr.op_if_zero!r} has no id")
        if instr.op_if_one not in MRCE_OP_IDS:
            raise EncodingError(f"MRCE op {instr.op_if_one!r} has no id")
        # MRCE header: opcode(6) rq(9) tq(9) op0(4) op1(4),
        # followed by one full timing word.
        return [head
                | (_field(instr.result_qubit, 9, "result qubit") << 17)
                | (_field(instr.target_qubit, 9, "target qubit") << 8)
                | (MRCE_OP_IDS[instr.op_if_zero] << 4)
                | MRCE_OP_IDS[instr.op_if_one],
                _field(instr.timing, 32, "timing")]
    if isinstance(instr, ins.Qop):
        if instr.gate not in GATE_IDS:
            raise EncodingError(f"gate {instr.gate!r} has no id")
        # QOP header: opcode(6) timing(12) gate(8) nqubits(3) nparams(3)
        words = [head | (_field(instr.timing, 12, "timing") << 14)
                 | (GATE_IDS[instr.gate] << 6)
                 | (_field(len(instr.qubits), 3, "qubit count") << 3)
                 | _field(len(instr.params), 3, "param count")]
        pending = list(instr.qubits)
        while pending:
            first = _field(pending.pop(0), 16, "qubit")
            second = _field(pending.pop(0), 16, "qubit") if pending else 0
            words.append((first << 16) | second)
        words.extend(_float_to_word(p) for p in instr.params)
        return words
    raise EncodingError(f"cannot encode {instr!r}")


def encode_program(instructions: list[ins.Instruction]) -> list[int]:
    """Encode a sequence of instructions into a flat word list."""
    words: list[int] = []
    for instr in instructions:
        words.extend(encode(instr))
    return words


def decode(words: list[int], offset: int = 0) -> tuple[ins.Instruction, int]:
    """Decode one instruction starting at ``words[offset]``.

    Returns the instruction and the number of words consumed.
    """
    head = words[offset]
    opcode = Opcode((head >> 26) & 0x3F)
    if opcode == Opcode.NOP:
        return ins.Nop(), 1
    if opcode == Opcode.HALT:
        return ins.Halt(), 1
    if opcode == Opcode.JMP:
        return ins.Jmp(head & _MASK26), 1
    if opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
        cls = {Opcode.BEQ: ins.Beq, Opcode.BNE: ins.Bne,
               Opcode.BLT: ins.Blt, Opcode.BGE: ins.Bge}[opcode]
        return cls((head >> 21) & 0x1F, (head >> 16) & 0x1F,
                   head & _MASK16), 1
    if opcode == Opcode.LDI:
        return ins.Ldi((head >> 21) & 0x1F,
                       _unsigned16_to_signed(head & _MASK16)), 1
    if opcode == Opcode.MOV:
        return ins.Mov((head >> 21) & 0x1F, (head >> 16) & 0x1F), 1
    if opcode == Opcode.LDM:
        return ins.Ldm((head >> 21) & 0x1F, head & _MASK16), 1
    if opcode == Opcode.STM:
        return ins.Stm((head >> 21) & 0x1F, head & _MASK16), 1
    if opcode == Opcode.FMR:
        return ins.Fmr((head >> 21) & 0x1F, head & _MASK16), 1
    if opcode == Opcode.ADDI:
        return ins.Addi((head >> 21) & 0x1F, (head >> 16) & 0x1F,
                        _unsigned16_to_signed(head & _MASK16)), 1
    if opcode == Opcode.NOT:
        return ins.Not((head >> 21) & 0x1F, (head >> 16) & 0x1F), 1
    if opcode in (Opcode.ADD, Opcode.SUB, Opcode.AND,
                  Opcode.OR, Opcode.XOR):
        cls = {Opcode.ADD: ins.Add, Opcode.SUB: ins.Sub,
               Opcode.AND: ins.And, Opcode.OR: ins.Or,
               Opcode.XOR: ins.Xor}[opcode]
        return cls((head >> 21) & 0x1F, (head >> 16) & 0x1F,
                   (head >> 11) & 0x1F), 1
    if opcode == Opcode.QMEAS:
        return ins.Qmeas((head >> 14) & 0xFFF, head & 0x3FFF), 1
    if opcode == Opcode.MRCE:
        return ins.Mrce(result_qubit=(head >> 17) & 0x1FF,
                        target_qubit=(head >> 8) & 0x1FF,
                        op_if_zero=MRCE_OP_NAMES[(head >> 4) & 0xF],
                        op_if_one=MRCE_OP_NAMES[head & 0xF],
                        timing=words[offset + 1]), 2
    if opcode == Opcode.QOP:
        timing = (head >> 14) & 0xFFF
        gate = GATE_NAMES[(head >> 6) & 0xFF]
        n_qubits = (head >> 3) & 0x7
        n_params = head & 0x7
        consumed = 1
        qubits: list[int] = []
        remaining = n_qubits
        while remaining > 0:
            word = words[offset + consumed]
            qubits.append((word >> 16) & _MASK16)
            remaining -= 1
            if remaining > 0:
                qubits.append(word & _MASK16)
                remaining -= 1
            consumed += 1
        params = tuple(_word_to_float(words[offset + consumed + i])
                       for i in range(n_params))
        consumed += n_params
        return ins.Qop(timing, gate, tuple(qubits), params), consumed
    raise EncodingError(f"cannot decode opcode {opcode}")


def decode_program(words: list[int]) -> list[ins.Instruction]:
    """Decode a flat word list back into instructions."""
    result: list[ins.Instruction] = []
    offset = 0
    while offset < len(words):
        instr, consumed = decode(words, offset)
        result.append(instr)
        offset += consumed
    return result
