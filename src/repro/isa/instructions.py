"""Instruction objects for the timed-QASM ISA.

Two instruction families exist, mirroring Section 2.2 of the paper:

* *classical* instructions (control, data transfer, logical, arithmetic)
  executed entirely inside the control processor, and
* *quantum* instructions (``QOP``/``QMEAS``/``MRCE``) that the processor
  executes in order to **issue** quantum operations to the QPU.

Quantum instructions carry a *timing label*: the interval, in clock
cycles, between the issue of the previous quantum operation and this one.
A label of ``0`` means "simultaneously with the previous operation".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import BRANCH_OPCODES, InstrClass, Opcode, instr_class

#: Register index hardwired to zero (writes are ignored), like MIPS ``$0``.
ZERO_REG = 0

#: Number of general-purpose registers per processor.
NUM_REGISTERS = 32


@dataclass
class Instruction:
    """Base class for every instruction.

    ``step_id`` is compiler metadata: the circuit-step index this
    instruction belongs to, used by the CES accounting of Equation (1).
    ``block`` is the program-block name the instruction was emitted into.
    Both are ``None`` for hand-written instructions that never pass
    through the compiler.
    """

    opcode: Opcode = field(init=False, default=Opcode.NOP)
    step_id: int | None = field(init=False, default=None, compare=False)
    block: str | None = field(init=False, default=None, compare=False)

    @property
    def klass(self) -> InstrClass:
        """Pre-decoder class (classical / quantum / measure / mrce)."""
        return instr_class(self.opcode)

    @property
    def is_quantum(self) -> bool:
        """True for instructions executed by a quantum pipeline."""
        return self.klass is not InstrClass.CLASSICAL

    @property
    def is_branch(self) -> bool:
        """True for instructions that may redirect control flow."""
        return self.opcode in BRANCH_OPCODES

    def _operands(self) -> str:
        return ""

    def __str__(self) -> str:
        text = self.opcode.name.lower()
        operands = self._operands()
        return f"{text} {operands}".strip()


def _check_register(name: str, index: int) -> int:
    if not 0 <= index < NUM_REGISTERS:
        raise ValueError(f"{name} register out of range: {index}")
    return index


# ---------------------------------------------------------------------------
# classical instructions
# ---------------------------------------------------------------------------

@dataclass
class Nop(Instruction):
    """No operation; occupies one dispatch slot."""

    def __post_init__(self) -> None:
        self.opcode = Opcode.NOP


@dataclass
class Halt(Instruction):
    """Terminate the current program block."""

    def __post_init__(self) -> None:
        self.opcode = Opcode.HALT


@dataclass
class Jmp(Instruction):
    """Unconditional jump to ``target`` (label name or absolute pc)."""

    target: str | int

    def __post_init__(self) -> None:
        self.opcode = Opcode.JMP

    def _operands(self) -> str:
        return str(self.target)


@dataclass
class Branch(Instruction):
    """Conditional branch comparing registers ``rs`` and ``rt``."""

    rs: int
    rt: int
    target: str | int

    _COMPARATORS = {
        Opcode.BEQ: lambda a, b: a == b,
        Opcode.BNE: lambda a, b: a != b,
        Opcode.BLT: lambda a, b: a < b,
        Opcode.BGE: lambda a, b: a >= b,
    }

    def __post_init__(self) -> None:
        _check_register("rs", self.rs)
        _check_register("rt", self.rt)

    def taken(self, a: int, b: int) -> bool:
        """Evaluate the branch condition on operand values ``a``, ``b``."""
        return self._COMPARATORS[self.opcode](a, b)

    def _operands(self) -> str:
        return f"r{self.rs}, r{self.rt}, {self.target}"


@dataclass
class Beq(Branch):
    def __post_init__(self) -> None:
        super().__post_init__()
        self.opcode = Opcode.BEQ


@dataclass
class Bne(Branch):
    def __post_init__(self) -> None:
        super().__post_init__()
        self.opcode = Opcode.BNE


@dataclass
class Blt(Branch):
    def __post_init__(self) -> None:
        super().__post_init__()
        self.opcode = Opcode.BLT


@dataclass
class Bge(Branch):
    def __post_init__(self) -> None:
        super().__post_init__()
        self.opcode = Opcode.BGE


@dataclass
class Ldi(Instruction):
    """Load immediate: ``rd <- imm``."""

    rd: int
    imm: int

    def __post_init__(self) -> None:
        self.opcode = Opcode.LDI
        _check_register("rd", self.rd)

    def _operands(self) -> str:
        return f"r{self.rd}, {self.imm}"


@dataclass
class Mov(Instruction):
    """Register move: ``rd <- rs``."""

    rd: int
    rs: int

    def __post_init__(self) -> None:
        self.opcode = Opcode.MOV
        _check_register("rd", self.rd)
        _check_register("rs", self.rs)

    def _operands(self) -> str:
        return f"r{self.rd}, r{self.rs}"


@dataclass
class Ldm(Instruction):
    """Load from the shared register file: ``rd <- shared[addr]``.

    Shared registers are the paper's mechanism for managing race
    conditions and synchronisation between processors (Section 5.2.4).
    """

    rd: int
    addr: int

    def __post_init__(self) -> None:
        self.opcode = Opcode.LDM
        _check_register("rd", self.rd)

    def _operands(self) -> str:
        return f"r{self.rd}, [{self.addr}]"


@dataclass
class Stm(Instruction):
    """Store to the shared register file: ``shared[addr] <- rs``."""

    rs: int
    addr: int

    def __post_init__(self) -> None:
        self.opcode = Opcode.STM
        _check_register("rs", self.rs)

    def _operands(self) -> str:
        return f"r{self.rs}, [{self.addr}]"


@dataclass
class Fmr(Instruction):
    """Fetch measurement result: ``rd <- result(qubit)``.

    Implements the synchronisation protocol of Section 2.4: if the
    measurement result for ``qubit`` is not yet valid the pipeline stalls
    (stage I+II wait, excluded from CES) until the DAQ writes it.
    """

    rd: int
    qubit: int

    def __post_init__(self) -> None:
        self.opcode = Opcode.FMR
        _check_register("rd", self.rd)
        if self.qubit < 0:
            raise ValueError(f"negative qubit index: {self.qubit}")

    def _operands(self) -> str:
        return f"r{self.rd}, q{self.qubit}"


@dataclass
class Alu(Instruction):
    """Three-register ALU operation ``rd <- rs (op) rt``."""

    rd: int
    rs: int
    rt: int

    _FUNCS = {
        Opcode.ADD: lambda a, b: a + b,
        Opcode.SUB: lambda a, b: a - b,
        Opcode.AND: lambda a, b: a & b,
        Opcode.OR: lambda a, b: a | b,
        Opcode.XOR: lambda a, b: a ^ b,
    }

    def __post_init__(self) -> None:
        _check_register("rd", self.rd)
        _check_register("rs", self.rs)
        _check_register("rt", self.rt)

    def evaluate(self, a: int, b: int) -> int:
        """Compute the ALU result for operand values ``a``, ``b``."""
        return self._FUNCS[self.opcode](a, b)

    def _operands(self) -> str:
        return f"r{self.rd}, r{self.rs}, r{self.rt}"


@dataclass
class Add(Alu):
    def __post_init__(self) -> None:
        super().__post_init__()
        self.opcode = Opcode.ADD


@dataclass
class Sub(Alu):
    def __post_init__(self) -> None:
        super().__post_init__()
        self.opcode = Opcode.SUB


@dataclass
class And(Alu):
    def __post_init__(self) -> None:
        super().__post_init__()
        self.opcode = Opcode.AND


@dataclass
class Or(Alu):
    def __post_init__(self) -> None:
        super().__post_init__()
        self.opcode = Opcode.OR


@dataclass
class Xor(Alu):
    def __post_init__(self) -> None:
        super().__post_init__()
        self.opcode = Opcode.XOR


@dataclass
class Addi(Instruction):
    """Add immediate: ``rd <- rs + imm``."""

    rd: int
    rs: int
    imm: int

    def __post_init__(self) -> None:
        self.opcode = Opcode.ADDI
        _check_register("rd", self.rd)
        _check_register("rs", self.rs)

    def _operands(self) -> str:
        return f"r{self.rd}, r{self.rs}, {self.imm}"


@dataclass
class Not(Instruction):
    """Bitwise complement of the low bit: ``rd <- rs ^ 1``.

    Measurement results are single bits, so a one-bit NOT is what the
    feedback-control idioms need.
    """

    rd: int
    rs: int

    def __post_init__(self) -> None:
        self.opcode = Opcode.NOT
        _check_register("rd", self.rd)
        _check_register("rs", self.rs)

    def _operands(self) -> str:
        return f"r{self.rd}, r{self.rs}"


# ---------------------------------------------------------------------------
# quantum instructions
# ---------------------------------------------------------------------------

@dataclass
class Qop(Instruction):
    """Issue a quantum operation ``gate`` on ``qubits``.

    ``timing`` is the timing label in clock cycles relative to the issue
    of the previous quantum operation on this processor's timeline.
    ``params`` carries rotation angles for parametric gates.
    """

    timing: int
    gate: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        self.opcode = Opcode.QOP
        self.qubits = tuple(self.qubits)
        self.params = tuple(self.params)
        if self.timing < 0:
            raise ValueError(f"negative timing label: {self.timing}")
        if not self.qubits:
            raise ValueError("quantum operation needs at least one qubit")
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in operation: {self.qubits}")

    def _operands(self) -> str:
        qubits = ", ".join(f"q{q}" for q in self.qubits)
        # Parenthesised parameters, printed with repr() so every float
        # survives a text round-trip bit-exactly (the parser reads them
        # back with float()).
        params = ("(" + ",".join(repr(float(p)) for p in self.params) + ")"
                  if self.params else "")
        return f"{self.timing}, {self.gate}{params}, {qubits}"


@dataclass
class Qmeas(Instruction):
    """Issue a measurement operation on ``qubit``.

    The result is produced by the DAQ after the readout latency and lands
    in the measurement result register; a later :class:`Fmr` retrieves it.
    """

    timing: int
    qubit: int

    def __post_init__(self) -> None:
        self.opcode = Opcode.QMEAS
        if self.timing < 0:
            raise ValueError(f"negative timing label: {self.timing}")
        if self.qubit < 0:
            raise ValueError(f"negative qubit index: {self.qubit}")

    @property
    def qubits(self) -> tuple[int, ...]:
        return (self.qubit,)

    def _operands(self) -> str:
        return f"{self.timing}, q{self.qubit}"


@dataclass
class Mrce(Instruction):
    """Measurement-Result Conditional Execution (Section 5.4).

    Apply ``op_if_one`` (or ``op_if_zero``) to ``target_qubit`` depending
    on the measurement result of ``result_qubit``.  A processor with fast
    context switch saves this context in a few cycles and keeps executing
    unrelated instructions until the result is valid; a baseline
    processor simply stalls.  Either op may be ``"i"`` (identity) meaning
    "do nothing for that outcome" — the active-reset idiom is
    ``Mrce(q, q, op_if_zero="i", op_if_one="x")``.
    """

    result_qubit: int
    target_qubit: int
    op_if_zero: str = "i"
    op_if_one: str = "x"
    timing: int = 0

    def __post_init__(self) -> None:
        self.opcode = Opcode.MRCE
        if self.result_qubit < 0 or self.target_qubit < 0:
            raise ValueError("negative qubit index in MRCE")
        if self.timing < 0:
            raise ValueError(f"negative timing label: {self.timing}")

    @property
    def qubits(self) -> tuple[int, ...]:
        return (self.target_qubit,)

    def selected_op(self, result: int) -> str:
        """Gate chosen by the measurement ``result`` (0 or 1)."""
        return self.op_if_one if result else self.op_if_zero

    def _operands(self) -> str:
        # The timing label is an optional fifth operand; the parser
        # defaults it to 0, so only a nonzero label needs spelling out.
        timing = f", {self.timing}" if self.timing else ""
        return (f"q{self.result_qubit}, q{self.target_qubit}, "
                f"{self.op_if_zero}, {self.op_if_one}{timing}")
