"""Opcode definitions for the timed-QASM instruction set.

The ISA follows the paper's executable-QISA requirements (Section 2.1):
quantum instructions carry explicit *timing labels*, and auxiliary classical
instructions provide control flow, data transfer, logic and arithmetic.
The encoding is RISC-style fixed-width (32-bit words, see
:mod:`repro.isa.encoder`), which is one of the paper's stated reasons for
choosing superscalar over VLIW.
"""

from __future__ import annotations

import enum


class InstrClass(enum.Enum):
    """Coarse instruction category used by the pre-decoder.

    The quantum superscalar's pre-decoder only needs to distinguish
    classical from quantum instructions (Section 5.3.1); ``MEASURE`` and
    ``MRCE`` are quantum-class instructions with special side effects.
    """

    CLASSICAL = "classical"
    QUANTUM = "quantum"
    MEASURE = "measure"
    MRCE = "mrce"


class Opcode(enum.IntEnum):
    """Numeric opcodes shared by the assembler and the binary encoder."""

    # -- control flow ----------------------------------------------------
    NOP = 0
    HALT = 1
    JMP = 2
    BEQ = 3
    BNE = 4
    BLT = 5
    BGE = 6
    # -- data transfer ----------------------------------------------------
    LDI = 8
    MOV = 9
    LDM = 10
    STM = 11
    FMR = 12
    # -- arithmetic -------------------------------------------------------
    ADD = 16
    ADDI = 17
    SUB = 18
    # -- logical ----------------------------------------------------------
    AND = 24
    OR = 25
    XOR = 26
    NOT = 27
    # -- quantum ----------------------------------------------------------
    QOP = 32
    QMEAS = 33
    MRCE = 34


#: Opcodes that may redirect control flow (used for control-stall accounting).
BRANCH_OPCODES = frozenset({Opcode.JMP, Opcode.BEQ, Opcode.BNE,
                            Opcode.BLT, Opcode.BGE})

#: Opcodes executed by the classical pipeline.
CLASSICAL_OPCODES = frozenset(op for op in Opcode if op < Opcode.QOP)

#: Opcodes executed by the quantum pipeline(s).
QUANTUM_OPCODES = frozenset({Opcode.QOP, Opcode.QMEAS, Opcode.MRCE})


def instr_class(opcode: Opcode) -> InstrClass:
    """Map an opcode to the pre-decoder's instruction class."""
    if opcode == Opcode.QMEAS:
        return InstrClass.MEASURE
    if opcode == Opcode.MRCE:
        return InstrClass.MRCE
    if opcode == Opcode.QOP:
        return InstrClass.QUANTUM
    return InstrClass.CLASSICAL
