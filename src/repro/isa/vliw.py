"""VLIW bundles — the QuMA_v2-style alternative to quantum superscalar.

Section 9 of the paper argues for superscalar over VLIW on three
grounds: (1) a fixed-length RISC instruction word survives wider
implementations, (2) QNOP padding inflates VLIW program size, and
(3) the superscalar's separate classical dispatch absorbs branch
latency.  To *quantify* that argument, this module implements the VLIW
side: a :class:`Bundle` pseudo-instruction holding up to ``width``
quantum operation slots (padded with QNOPs), plus the word-count
accounting that exposes the program-size cost.

A bundle occupies ``1 + width`` 32-bit words in memory: a header with
the timing label plus one fixed word per slot, empty slots included —
that is precisely where the size overhead comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction, Qmeas, Qop
from repro.isa.opcodes import Opcode


@dataclass
class Bundle(Instruction):
    """A very-long-instruction-word of parallel quantum operations.

    All slot operations start at the same timing point; the bundle's
    ``timing`` label positions that point relative to the previous
    quantum issue, exactly like a single quantum instruction's label.
    """

    timing: int
    width: int
    slots: tuple[Qop | Qmeas, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.opcode = Opcode.QOP  # pre-decodes as a quantum instruction
        self.slots = tuple(self.slots)
        if self.timing < 0:
            raise ValueError(f"negative timing label: {self.timing}")
        if self.width < 1:
            raise ValueError("bundle width must be at least 1")
        if len(self.slots) > self.width:
            raise ValueError(
                f"{len(self.slots)} operations exceed bundle width "
                f"{self.width}")
        if not self.slots:
            raise ValueError("empty bundle (all-QNOP words are elided)")

    @property
    def qubits(self) -> tuple[int, ...]:
        result: list[int] = []
        for op in self.slots:
            result.extend(op.qubits)
        return tuple(result)

    @property
    def qnop_count(self) -> int:
        """Padding slots carrying no operation."""
        return self.width - len(self.slots)

    @property
    def word_count(self) -> int:
        """Memory footprint in 32-bit words (header + fixed slots)."""
        return 1 + self.width

    def _operands(self) -> str:
        ops = " | ".join(str(op) for op in self.slots)
        padding = " | qnop" * self.qnop_count
        return f"{self.timing}, [{ops}{padding}]"

    def __str__(self) -> str:
        return f"bundle {self._operands()}"


def risc_word_count(instructions: list[Instruction]) -> int:
    """Program size, in words, of the fixed-length RISC encoding."""
    from repro.isa.encoder import encode_program

    return len(encode_program(instructions))


def vliw_word_count(instructions: list[Instruction]) -> int:
    """Program size, in words, of a bundled (VLIW) program."""
    total = 0
    for instr in instructions:
        if isinstance(instr, Bundle):
            total += instr.word_count
        else:
            from repro.isa.encoder import encode

            total += len(encode(instr))
    return total
