"""QuAPE reproduction: quantum control microarchitecture exploiting
circuit-level and quantum-operation-level parallelism.

Reproduction of Zhang, Xie, et al., "Exploiting Different Levels of
Parallelism in the Quantum Control Microarchitecture for Superconducting
Qubits", MICRO 2021 (arXiv:2108.08671).

Quickstart::

    from repro import QuantumCircuit, compile_circuit, run_program
    from repro import superscalar_config

    circuit = QuantumCircuit(2).h(0).cnot(0, 1).measure(0).measure(1)
    compiled = compile_circuit(circuit)
    result = run_program(compiled.program, superscalar_config())
    print(result.tr_report().average)
"""

from repro.circuit import QuantumCircuit, schedule_asap
from repro.compiler import CompiledProgram, compile_circuit
from repro.isa import Program, ProgramBuilder, parse_asm
from repro.qcp import (ExecutionResult, QCPConfig, QuAPESystem,
                       ShotEngine, run_program, run_shots,
                       scalar_config, superscalar_config)
from repro.qpu import (PRNGQPU, PRNGReadout, SimulatedQPU,
                       StabilizerState, StateVector, StateVectorQPU,
                       make_backend, paper_noise_model)

__version__ = "1.1.0"

__all__ = [
    "CompiledProgram", "ExecutionResult", "PRNGQPU", "PRNGReadout",
    "Program", "ProgramBuilder", "QCPConfig", "QuAPESystem",
    "QuantumCircuit", "ShotEngine", "SimulatedQPU", "StabilizerState",
    "StateVector", "StateVectorQPU", "__version__", "compile_circuit",
    "make_backend", "paper_noise_model", "parse_asm", "run_program",
    "run_shots", "scalar_config", "schedule_asap", "superscalar_config",
]
