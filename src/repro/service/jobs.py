"""Job manager: dedup, queueing, sharding, retry and observability.

One :class:`JobManager` owns the worker pool and runs jobs strictly in
submission order (a sweep's shards already saturate the pool, so job
concurrency would only interleave cache-unfriendly work).  Its
contracts:

* **Dedup** — an incoming job whose :meth:`~repro.service.protocol.
  JobSpec.job_key` matches a queued or running job attaches to that
  job instead of executing again; every subscriber receives the same
  (bit-identical) result.  Completed jobs leave the dedup window: a
  later identical submission re-executes, necessarily to the same
  result.
* **Backpressure** — at most ``queue_size`` jobs may be queued or
  running; submissions beyond that raise :class:`QueueFull` and are
  reported to the client as a ``rejected`` event, never buffered
  unboundedly.
* **Crash retry** — a worker crash (``BrokenProcessPool``) kills the
  pool; the manager rebuilds it and resubmits exactly the shards that
  had not completed.  Shards are pure functions of their seed range,
  so a retried shard is bit-identical to the one that was lost.  A
  job is failed after ``max_retries`` rebuilds.  Deterministic worker
  *exceptions* (a non-Clifford gate on the stabilizer backend, say)
  are not retried — they would fail identically again.
* **Timeout / cancel** — best-effort: queued shards are revoked;
  shards already executing in a worker cannot be interrupted and are
  abandoned (their result is discarded on arrival).
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.qcp.shots import ShardOutcomes, ShotResult, merge_shard_outcomes
from repro.service import workers
from repro.service.protocol import JobSpec, result_payload


class QueueFull(Exception):
    """Backpressure: the bounded job queue is at capacity."""


class Job:
    """One submitted sweep and its execution state."""

    def __init__(self, job_id: str, spec: JobSpec) -> None:
        self.id = job_id
        self.spec = spec
        self.key = spec.job_key()
        self.status = "queued"  # queued/running/done/failed/cancelled
        self.shards: dict[tuple[int, int], dict | None] = {}
        self.shots_done = 0
        self.retries = 0
        self.result: ShotResult | None = None
        self.terminal_event: dict | None = None
        self.last_partial: dict | None = None
        self.subscribers: list[asyncio.Queue] = []
        self.done = asyncio.Event()
        self.cancel_requested = asyncio.Event()

    def summary(self) -> dict:
        return {"id": self.id, "key": self.key, "status": self.status,
                "shots": self.spec.shots, "shots_done": self.shots_done,
                "retries": self.retries,
                "backend": self.spec.resolved_backend,
                "routing": self.spec.routing}


class JobManager:
    """Owns the process pool and executes jobs FIFO."""

    def __init__(self, n_workers: int = 2, queue_size: int = 16,
                 max_retries: int = 2,
                 engine_lru_capacity: int | None = None,
                 artifact_cache_dir: str | None = None) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if queue_size < 1:
            raise ValueError("queue size must be positive")
        if engine_lru_capacity is not None and engine_lru_capacity < 1:
            raise ValueError("engine LRU capacity must be positive")
        self.n_workers = n_workers
        self.queue_size = queue_size
        self.max_retries = max_retries
        self.engine_lru_capacity = engine_lru_capacity
        self.artifact_cache_dir = artifact_cache_dir
        self._pool: ProcessPoolExecutor | None = None
        self._queue: asyncio.Queue[Job] = asyncio.Queue()
        self._active: dict[str, Job] = {}  # job key -> queued/running job
        self._by_id: dict[str, Job] = {}
        self._ids = itertools.count(1)
        self._runner: asyncio.Task | None = None
        self._current: Job | None = None
        self._counters: Counter = Counter()
        self._busy_s = 0.0
        self._shots_done = 0
        self._workers_seen: dict[int, dict] = {}

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self._pool = self._new_pool()
        self._runner = asyncio.ensure_future(self._run_jobs())

    async def stop(self) -> None:
        if self._runner is not None:
            self._runner.cancel()
            try:
                await self._runner
            except asyncio.CancelledError:
                pass
            self._runner = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _new_pool(self) -> ProcessPoolExecutor:
        # The initializer reruns in every worker of every pool — so a
        # post-crash rebuild's fresh workers rejoin the shared artifact
        # directory and recover their predecessors' compiled tries.
        return ProcessPoolExecutor(
            max_workers=self.n_workers,
            initializer=workers.configure_worker,
            initargs=(self.engine_lru_capacity,
                      self.artifact_cache_dir))

    def _rebuild_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = self._new_pool()

    # -- submission API ---------------------------------------------------

    def submit(self, spec: JobSpec) -> tuple[Job, bool]:
        """Register a job; returns ``(job, deduped)``.

        Raises :class:`QueueFull` when the backlog (queued + running
        jobs) is at capacity.  Dedup is checked before backpressure: a
        duplicate of an in-flight job consumes no queue slot.
        """
        key = spec.job_key()
        existing = self._active.get(key)
        if existing is not None:
            self._counters["deduped"] += 1
            return existing, True
        if len(self._active) >= self.queue_size:
            self._counters["rejected"] += 1
            raise QueueFull(
                f"job queue at capacity ({self.queue_size} jobs "
                f"queued or running)")
        job = Job(f"job-{next(self._ids)}", spec)
        self._active[key] = job
        self._by_id[job.id] = job
        self._counters["submitted"] += 1
        self._queue.put_nowait(job)
        return job, False

    def subscribe(self, job: Job) -> asyncio.Queue:
        """Event queue for one subscriber of ``job``.

        A late subscriber immediately receives the latest partial (if
        any) and, for a finished job, the terminal event — so
        subscribing can never miss the outcome.
        """
        queue: asyncio.Queue = asyncio.Queue()
        job.subscribers.append(queue)
        if job.last_partial is not None and not job.done.is_set():
            queue.put_nowait(job.last_partial)
        if job.terminal_event is not None:
            queue.put_nowait(job.terminal_event)
        return queue

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True if the job was still in flight."""
        job = self._by_id.get(job_id)
        if job is None or job.done.is_set():
            return False
        job.cancel_requested.set()
        if job.status == "queued":
            # Finalize immediately; the runner skips finished jobs.
            self._active.pop(job.key, None)
            self._finish_error(job, "cancelled",
                               "job cancelled while queued")
        return True

    # -- stats ------------------------------------------------------------

    def stats(self) -> dict:
        queued = len(self._active) - (1 if self._current is not None
                                      else 0)
        busy = self._busy_s  # running job's time is added when it ends
        return {
            "workers": self.n_workers,
            "queue_capacity": self.queue_size,
            "engine_lru_capacity": (self.engine_lru_capacity
                                    if self.engine_lru_capacity
                                    is not None
                                    else workers._ENGINE_LRU_CAPACITY),
            "artifact_cache_dir": self.artifact_cache_dir,
            "queue_depth": queued,
            "active_job": (self._current.summary()
                           if self._current is not None else None),
            "jobs": dict(self._counters),
            "shots_done": self._shots_done,
            "busy_s": round(busy, 6),
            "shots_per_s": (round(self._shots_done / busy, 2)
                            if busy > 0 else None),
            "worker_cache": {str(pid): stats for pid, stats
                             in sorted(self._workers_seen.items())},
        }

    # -- event plumbing ---------------------------------------------------

    def _publish(self, job: Job, event: dict) -> None:
        for queue in job.subscribers:
            queue.put_nowait(event)

    def _finish(self, job: Job, status: str, event: dict) -> None:
        job.status = status
        job.terminal_event = event
        self._counters[{"done": "completed", "failed": "failed",
                        "cancelled": "cancelled"}[status]] += 1
        self._publish(job, event)
        job.done.set()

    def _finish_error(self, job: Job, code: str, message: str) -> None:
        status = "cancelled" if code == "cancelled" else "failed"
        self._finish(job, status, {
            "event": "error", "job_id": job.id, "key": job.key,
            "error": code, "message": message})

    def _publish_partial(self, job: Job) -> None:
        finished = [r for r in job.shards.values() if r is not None]
        partial = merge_shard_outcomes(
            [ShardOutcomes(start=r["start"], stop=r["stop"],
                           counts=r["counts"], total_ns=r["total_ns"])
             for r in finished])
        job.shots_done = partial.shots
        event = {"event": "partial", "job_id": job.id, "key": job.key,
                 "shots_done": partial.shots, "shots": job.spec.shots,
                 "shards_done": len(finished),
                 "shards": len(job.shards),
                 "result": result_payload(partial)}
        job.last_partial = event
        self._publish(job, event)

    def _note_worker(self, shard_result: dict) -> None:
        pid = shard_result["pid"]
        entry = self._workers_seen.setdefault(
            pid, {"shards": 0, "shots": 0})
        entry["shards"] += 1
        entry["shots"] += shard_result["stop"] - shard_result["start"]
        if shard_result["trace_cache"] is not None:
            entry["trace_cache"] = shard_result["trace_cache"]
            entry["engine_key"] = shard_result["engine_key"][:12]
        if shard_result.get("backend") is not None:
            entry["backend"] = shard_result["backend"]
        if shard_result.get("routing") is not None:
            entry["routing"] = shard_result["routing"]
        # Older workers (pre-artifact payloads) omit these keys.
        if shard_result.get("artifact_cache") is not None:
            entry["artifact_cache"] = shard_result["artifact_cache"]
        if shard_result.get("engine_evictions") is not None:
            entry["engine_evictions"] = shard_result["engine_evictions"]
        if shard_result.get("engine_cache") is not None:
            entry["engine_cache"] = shard_result["engine_cache"]

    # -- execution --------------------------------------------------------

    async def _run_jobs(self) -> None:
        while True:
            job = await self._queue.get()
            if job.done.is_set():  # cancelled while queued
                continue
            self._current = job
            started = time.monotonic()
            try:
                await self._execute(job)
            except Exception as exc:  # defensive: never kill the runner
                self._finish_error(job, "internal",
                                   f"{type(exc).__name__}: {exc}")
            finally:
                self._busy_s += time.monotonic() - started
                self._current = None
                self._active.pop(job.key, None)

    async def _execute(self, job: Job) -> None:
        loop = asyncio.get_event_loop()
        spec = job.spec
        payload = spec.payload()
        job.status = "running"
        shard_shots = spec.shard_shots or workers.default_shard_shots(
            spec.shots, self.n_workers)
        spans = workers.plan_shards(spec.shots, shard_shots)
        job.shards = {span: None for span in spans}
        deadline = (None if spec.timeout_s is None
                    else loop.time() + spec.timeout_s)
        pending: dict[asyncio.Future, tuple[int, int]] = {}

        def submit_span(span: tuple[int, int]) -> None:
            try:
                future = asyncio.wrap_future(
                    self._pool.submit(workers.run_shard, payload, *span))
            except BrokenProcessPool as exc:
                # A worker can die while spans are still being
                # submitted (the pool breaks between two submits).
                # Surface it as a failed future so the wave loop's
                # rebuild-and-retry path handles it uniformly.
                future = loop.create_future()
                future.set_exception(exc)
            pending[future] = span

        for span in spans:
            submit_span(span)
        cancel_wait = asyncio.ensure_future(job.cancel_requested.wait())
        try:
            while pending:
                timeout = (None if deadline is None
                           else max(0.0, deadline - loop.time()))
                done, _ = await asyncio.wait(
                    set(pending) | {cancel_wait}, timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED)
                if job.cancel_requested.is_set():
                    self._finish_error(job, "cancelled", "job cancelled")
                    return
                if not done:
                    self._finish_error(
                        job, "timeout",
                        f"job exceeded timeout_s={spec.timeout_s}")
                    return
                broken = False
                progressed = False
                for future in done:
                    if future is cancel_wait:
                        continue
                    span = pending.pop(future)
                    try:
                        shard_result = future.result()
                    except BrokenProcessPool:
                        broken = True
                    except Exception as exc:
                        self._finish_error(
                            job, "worker_error",
                            f"shard {span}: {type(exc).__name__}: {exc}")
                        return
                    else:
                        job.shards[span] = shard_result
                        self._note_worker(shard_result)
                        progressed = True
                if broken:
                    job.retries += 1
                    self._counters["retries"] += 1
                    if job.retries > self.max_retries:
                        self._finish_error(
                            job, "worker_crash",
                            f"worker crashed and retry budget "
                            f"({self.max_retries}) is exhausted")
                        return
                    # Every future of the broken pool is dead; rebuild
                    # and resubmit exactly the unfinished shards.
                    for future in list(pending):
                        del pending[future]
                        future.cancel()
                    self._rebuild_pool()
                    for span, shard_result in job.shards.items():
                        if shard_result is None:
                            submit_span(span)
                if progressed:
                    self._publish_partial(job)
            self._complete(job)
        finally:
            cancel_wait.cancel()
            for future in pending:
                future.cancel()

    def _complete(self, job: Job) -> None:
        missing = [span for span, r in job.shards.items() if r is None]
        if missing:  # unreachable by construction; checked anyway
            self._finish_error(job, "internal",
                               f"shards missing at merge: {missing}")
            return
        ordered = sorted(job.shards.values(), key=lambda r: r["start"])
        covered = 0
        for shard_result in ordered:
            if shard_result["start"] != covered:
                self._finish_error(
                    job, "internal",
                    f"shard coverage gap at shot {covered}")
                return
            covered = shard_result["stop"]
        if covered != job.spec.shots:
            self._finish_error(job, "internal",
                               f"shards cover {covered} of "
                               f"{job.spec.shots} shots")
            return
        result = merge_shard_outcomes(
            [ShardOutcomes(start=r["start"], stop=r["stop"],
                           counts=r["counts"], total_ns=r["total_ns"])
             for r in ordered])
        job.result = result
        job.shots_done = result.shots
        self._shots_done += result.shots
        self._finish(job, "done", {
            "event": "result", "job_id": job.id, "key": job.key,
            "retries": job.retries, "shots_done": result.shots,
            "shards": len(job.shards),
            "result": result_payload(result)})
