"""Shot-sweep job service: asyncio front-end + process-pool sharding.

The long-running face of the reproduction: an asyncio server
(:mod:`~repro.service.server`) accepts shot-sweep jobs over a
newline-JSON socket protocol (:mod:`~repro.service.protocol`),
a :class:`~repro.service.jobs.JobManager` shards each sweep into
contiguous seed ranges across a process pool of compile-once engines
(:mod:`~repro.service.workers`), and the commutative histogram merge
(:func:`repro.qcp.shots.merge_shard_outcomes`) reassembles a result
**bit-identical** to serial execution — the property PR 4's salted
per-shot seed derivation bought and the test suite asserts.

Start it with ``python -m repro serve``; talk to it with
:class:`~repro.service.client.ServiceClient`.  Design notes in
``docs/service.md``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobManager, QueueFull
from repro.service.protocol import (JobSpec, ProtocolError,
                                    build_noise_model,
                                    program_from_text,
                                    result_from_payload, result_payload)
from repro.service.server import ServiceHandle, serve
from repro.service.workers import (default_shard_shots, plan_shards,
                                   run_shard)

__all__ = [
    "JobManager", "JobSpec", "ProtocolError", "QueueFull",
    "ServiceClient", "ServiceError", "ServiceHandle",
    "build_noise_model", "default_shard_shots", "plan_shards",
    "program_from_text", "result_from_payload", "result_payload",
    "run_shard", "serve",
]
