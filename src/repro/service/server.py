"""Asyncio front-end of the shot-sweep service.

One TCP connection speaks newline-delimited JSON (see
:mod:`repro.service.protocol`).  Requests on a connection are handled
in order; a streaming submit occupies the connection until its
terminal event, which matches the blocking client in
:mod:`repro.service.client`.

Operations
==========

``{"op": "submit", "job": {...}, "stream": bool}``
    Validate and enqueue a sweep.  Replies ``accepted`` (with
    ``job_id``, the dedup ``key`` and ``deduped`` flag), then — with
    ``stream`` — forwards every ``partial`` histogram update, and
    finally the terminal ``result`` or ``error`` event.  A full queue
    replies ``rejected`` instead (backpressure; nothing is buffered).
``{"op": "stats"}``
    Queue depth, job counters, shots/s and per-worker trace-cache
    counters — the ``/stats`` endpoint.
``{"op": "cancel", "job_id": "..."}``
    Best-effort cancellation of a queued or running job.
``{"op": "ping"}``
    Liveness probe; replies ``pong`` with the protocol version.
"""

from __future__ import annotations

import asyncio
import threading

from repro.service.jobs import JobManager, QueueFull
from repro.service.protocol import (MAX_LINE_BYTES, PROTOCOL_VERSION,
                                    JobSpec, ProtocolError,
                                    decode_line, encode_message)


async def _send(writer: asyncio.StreamWriter, event: dict) -> None:
    writer.write(encode_message(event))
    await writer.drain()


async def _handle_submit(manager: JobManager, message: dict,
                         writer: asyncio.StreamWriter) -> None:
    try:
        spec = JobSpec.from_dict(message.get("job"))
    except ProtocolError as exc:
        await _send(writer, {"event": "error", "error": exc.code,
                             "message": str(exc)})
        return
    try:
        job, deduped = manager.submit(spec)
    except QueueFull as exc:
        await _send(writer, {"event": "rejected", "error": "queue_full",
                             "message": str(exc)})
        return
    # Subscribe in the same loop step as submit: no await separates
    # them, so no event can slip past before the queue exists.
    subscription = manager.subscribe(job)
    await _send(writer, {"event": "accepted", "job_id": job.id,
                         "key": job.key, "deduped": deduped,
                         "shots": spec.shots})
    stream = bool(message.get("stream"))
    while True:
        event = await subscription.get()
        if not stream and event.get("event") == "partial":
            continue
        await _send(writer, event)
        if event.get("event") in ("result", "error"):
            return


async def handle_connection(manager: JobManager,
                            reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    try:
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                await _send(writer, {
                    "event": "error", "error": "line_too_long",
                    "message": f"request exceeds {MAX_LINE_BYTES} bytes"})
                return
            if not line:
                return
            if not line.strip():
                continue
            try:
                message = decode_line(line)
            except ProtocolError as exc:
                await _send(writer, {"event": "error", "error": exc.code,
                                     "message": str(exc)})
                continue
            op = message.get("op")
            if op == "submit":
                await _handle_submit(manager, message, writer)
            elif op == "stats":
                await _send(writer, {"event": "stats",
                                     "version": PROTOCOL_VERSION,
                                     **manager.stats()})
            elif op == "cancel":
                cancelled = manager.cancel(str(message.get("job_id")))
                await _send(writer, {"event": "cancelled"
                                     if cancelled else "not_found",
                                     "job_id": message.get("job_id")})
            elif op == "ping":
                await _send(writer, {"event": "pong",
                                     "version": PROTOCOL_VERSION})
            else:
                await _send(writer, {
                    "event": "error", "error": "bad_op",
                    "message": f"unknown op {op!r}"})
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def serve(host: str = "127.0.0.1", port: int = 7781,
                n_workers: int = 2, queue_size: int = 16,
                max_retries: int = 2,
                engine_lru_capacity: int | None = None,
                artifact_cache_dir: str | None = None,
                ready: "asyncio.Event | None" = None,
                stop: "asyncio.Event | None" = None,
                bound_port: list | None = None) -> None:
    """Run the service until ``stop`` is set (or forever).

    ``ready``/``bound_port`` exist for embedders: ``ready`` is set once
    the socket listens, with the actual port (``port=0`` binds an
    ephemeral one) appended to ``bound_port``.

    ``engine_lru_capacity`` bounds each worker process's cache of
    compiled shot engines (default 8); ``artifact_cache_dir`` points
    every worker — including post-crash rebuilds — at one shared
    compiled-trace artifact directory so they start warm.
    """
    manager = JobManager(n_workers=n_workers, queue_size=queue_size,
                         max_retries=max_retries,
                         engine_lru_capacity=engine_lru_capacity,
                         artifact_cache_dir=artifact_cache_dir)
    await manager.start()
    connections: set[asyncio.Task] = set()

    async def tracked(reader, writer) -> None:
        task = asyncio.current_task()
        connections.add(task)
        try:
            await handle_connection(manager, reader, writer)
        except asyncio.CancelledError:
            pass
        finally:
            connections.discard(task)

    server = await asyncio.start_server(tracked, host, port,
                                        limit=MAX_LINE_BYTES)
    try:
        actual_port = server.sockets[0].getsockname()[1]
        if bound_port is not None:
            bound_port.append(actual_port)
        if ready is not None:
            ready.set()
        if stop is None:
            await asyncio.Event().wait()  # serve forever
        else:
            await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        for task in list(connections):
            task.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        await manager.stop()


class ServiceHandle:
    """A service running on a daemon thread — for tests and benchmarks.

    ::

        handle = ServiceHandle.start(n_workers=4)
        client = ServiceClient("127.0.0.1", handle.port)
        ...
        handle.close()
    """

    def __init__(self, thread: threading.Thread, loop: asyncio.AbstractEventLoop,
                 stop: asyncio.Event, port: int) -> None:
        self._thread = thread
        self._loop = loop
        self._stop = stop
        self.host = "127.0.0.1"
        self.port = port

    @classmethod
    def start(cls, n_workers: int = 2, queue_size: int = 16,
              max_retries: int = 2,
              engine_lru_capacity: int | None = None,
              artifact_cache_dir: str | None = None,
              timeout: float = 30.0) -> "ServiceHandle":
        started = threading.Event()
        box: dict = {}

        def main() -> None:
            async def runner() -> None:
                box["loop"] = asyncio.get_event_loop()
                box["stop"] = asyncio.Event()
                ready = asyncio.Event()
                ports: list[int] = []
                task = asyncio.ensure_future(serve(
                    port=0, n_workers=n_workers, queue_size=queue_size,
                    max_retries=max_retries,
                    engine_lru_capacity=engine_lru_capacity,
                    artifact_cache_dir=artifact_cache_dir,
                    ready=ready, stop=box["stop"],
                    bound_port=ports))
                await ready.wait()
                box["port"] = ports[0]
                started.set()
                await task

            asyncio.run(runner())

        thread = threading.Thread(target=main, daemon=True,
                                  name="repro-service")
        thread.start()
        if not started.wait(timeout):
            raise RuntimeError("service failed to start in time")
        return cls(thread, box["loop"], box["stop"], box["port"])

    def close(self, timeout: float = 30.0) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
