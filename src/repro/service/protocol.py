"""Wire protocol and job model of the shot-sweep service.

The service speaks **newline-delimited JSON** over a stream socket:
every request and every event is one JSON object terminated by ``\\n``.
Requests carry an ``op`` field; server messages carry an ``event``
field.  See ``docs/service.md`` for the full message catalogue.

Job identity
============

Two keys are derived from a job, both SHA-256 over a canonical JSON
rendering (sorted keys, no whitespace):

* :meth:`JobSpec.engine_key` — the fields that determine the compiled
  execution artifacts: program text, resolved backend, config
  overrides, noise spec and processor count.  Workers cache one
  compile-once :class:`~repro.qcp.shots.ShotEngine` per engine key.
* :meth:`JobSpec.job_key` — the engine key fields plus ``shots`` and
  ``seed``: everything that determines the *result*.  Jobs are pure
  functions of their job key (PR 4's salted per-shot seed derivation),
  which is what makes dedup safe: concurrent submissions with equal
  keys can share one execution and each receive the bit-identical
  result.

Execution-steering fields (``timeout_s``, ``shard_shots``, the
test-only ``fault`` hook) are deliberately **excluded** from both keys:
they change how a sweep is run, never what it computes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.qcp.config import QCPConfig
from repro.qcp.routing import route_backend
from repro.qcp.shots import ShotResult, program_has_measurement
from repro.qcp.system import infer_qubit_count
from repro.qpu.noise import (DecoherenceNoise, DepolarizingNoise,
                             NoiseModel, PauliChannel, ReadoutError,
                             ZZCrosstalk)
from repro.qpu.profile import DeviceProfile

#: Protocol revision announced by the server and checked by clients.
PROTOCOL_VERSION = 1

#: Largest accepted request line (bytes); also the asyncio stream limit.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: ``"auto"`` routes per program (see :mod:`repro.qcp.routing`); the
#: decision is resolved at validation time and carried in the job's
#: identity, so two jobs that route differently never share an engine.
BACKENDS = ("statevector", "stabilizer", "auto")

#: Noise-spec channel name -> channel class.  Parameters are passed as
#: keyword arguments, e.g. ``{"pauli": {"px": 1e-3},
#: "readout": {"p0_given_1": 0.005}}``.
NOISE_CHANNELS = {
    "depolarizing": DepolarizingNoise,
    "two_qubit_depolarizing": DepolarizingNoise,
    "pauli": PauliChannel,
    "zz": ZZCrosstalk,
    "readout": ReadoutError,
    "decoherence": DecoherenceNoise,
}

_CONFIG_FIELDS = frozenset(QCPConfig.__dataclass_fields__)

_SPEC_FIELDS = frozenset({
    "program", "shots", "seed", "backend", "config", "noise",
    "n_processors", "timeout_s", "shard_shots", "fault", "profile",
})


class ProtocolError(ValueError):
    """A malformed or invalid request; ``code`` is machine-readable."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def program_from_text(text: str, name: str = "job"):
    """Parse job program text: OpenQASM 2.0 or timed-QASM assembly.

    The same sniff the CLI applies to files: a leading ``OPENQASM``
    keyword selects the circuit front end (compiled down to timed
    QASM); anything else is assembled directly.
    """
    if text.lstrip().upper().startswith("OPENQASM"):
        from repro.circuit.openqasm import from_openqasm
        from repro.compiler import compile_circuit

        circuit = from_openqasm(text, name=name)
        return compile_circuit(circuit, name=name).program
    from repro.isa import parse_asm

    return parse_asm(text, name=name)


def build_noise_model(spec: dict | None) -> NoiseModel | None:
    """Instantiate a :class:`NoiseModel` from its JSON spec (or None)."""
    if not spec:
        return None
    channels: dict[str, Any] = {}
    for name, params in spec.items():
        cls = NOISE_CHANNELS.get(name)
        if cls is None:
            raise ProtocolError(
                "bad_noise", f"unknown noise channel {name!r} "
                f"(known: {sorted(NOISE_CHANNELS)})")
        if not isinstance(params, dict):
            raise ProtocolError(
                "bad_noise", f"noise channel {name!r} parameters must "
                f"be an object, got {type(params).__name__}")
        try:
            channels[name] = cls(**params)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                "bad_noise", f"noise channel {name!r}: {exc}") from exc
    return NoiseModel(**channels)


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """A validated shot-sweep job.

    ``program`` is source text (timed-QASM or OpenQASM 2.0); shot ``i``
    of the sweep runs with seed ``seed + i``, so a job is sharded into
    contiguous shot-index ranges without any coordination between
    workers.  ``config`` holds :class:`QCPConfig` field overrides,
    ``noise`` a channel spec for :func:`build_noise_model`.
    """

    program: str
    shots: int
    seed: int = 0
    backend: str | None = None
    config: dict = field(default_factory=dict)
    noise: dict | None = None
    n_processors: int = 1
    timeout_s: float | None = None
    shard_shots: int | None = None
    #: Inline calibrated device profile (the JSON object a
    #: :class:`~repro.qpu.profile.DeviceProfile` parses).  Inline
    #: because workers share no filesystem contract with clients —
    #: the config override ``device_profile`` (a local path) is
    #: rejected.  Part of both identity keys via its *canonical
    #: content* rendering.
    profile: dict | None = None
    #: The resolved ``"auto"`` routing decision
    #: (:meth:`~repro.qcp.routing.RoutingDecision.as_dict`), computed
    #: at validation time; ``None`` for explicit backends.  Derived
    #: from the other fields, so it is excluded from the identity
    #: keys — the *routed* backend they contain already pins it.
    routing: dict | None = None
    #: Test-only fault injection consumed by the workers (see
    #: ``repro.service.workers``); never part of the job identity.
    fault: dict | None = None

    @classmethod
    def from_dict(cls, raw: Any) -> "JobSpec":
        """Validate an incoming job object; raises :class:`ProtocolError`.

        Validation is eager and complete: the program parses, contains
        at least one measurement, the config overrides construct a
        :class:`QCPConfig`, and the noise spec constructs a
        :class:`NoiseModel` — so a worker can never fail on a job the
        front end accepted, only crash.
        """
        if not isinstance(raw, dict):
            raise ProtocolError("bad_job", "job must be an object")
        unknown = set(raw) - _SPEC_FIELDS
        if unknown:
            raise ProtocolError(
                "bad_job", f"unknown job fields: {sorted(unknown)}")
        program = raw.get("program")
        if not isinstance(program, str) or not program.strip():
            raise ProtocolError(
                "bad_program", "job needs non-empty 'program' text")
        shots = raw.get("shots")
        if not isinstance(shots, int) or isinstance(shots, bool) \
                or shots < 1:
            raise ProtocolError(
                "bad_shots", f"'shots' must be a positive integer, "
                f"got {shots!r}")
        seed = raw.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ProtocolError(
                "bad_seed", f"'seed' must be an integer, got {seed!r}")
        backend = raw.get("backend")
        if backend is not None and backend not in BACKENDS:
            raise ProtocolError(
                "bad_backend", f"unknown backend {backend!r} "
                f"(known: {BACKENDS})")
        config = raw.get("config") or {}
        if not isinstance(config, dict):
            raise ProtocolError("bad_config", "'config' must be an object")
        unknown = set(config) - _CONFIG_FIELDS
        if unknown:
            raise ProtocolError(
                "bad_config",
                f"unknown QCPConfig fields: {sorted(unknown)}")
        if "device_profile" in config:
            raise ProtocolError(
                "bad_config",
                "'device_profile' is a worker-local filesystem path "
                "and cannot be a config override; send the calibration "
                "inline via the job's 'profile' field instead")
        try:
            QCPConfig().with_(**config)
        except (TypeError, ValueError) as exc:
            raise ProtocolError("bad_config", str(exc)) from exc
        profile = raw.get("profile")
        profile_obj = None
        if profile is not None:
            if not isinstance(profile, dict):
                raise ProtocolError(
                    "bad_profile", "'profile' must be an object")
            try:
                profile_obj = DeviceProfile.from_dict(profile)
            except (TypeError, ValueError) as exc:
                raise ProtocolError(
                    "bad_profile", f"invalid device profile: {exc}"
                ) from exc
        noise = raw.get("noise")
        if noise is not None and not isinstance(noise, dict):
            raise ProtocolError("bad_noise", "'noise' must be an object")
        noise_model = build_noise_model(noise)
        n_processors = raw.get("n_processors", 1)
        if not isinstance(n_processors, int) or n_processors < 1:
            raise ProtocolError(
                "bad_job", f"'n_processors' must be a positive "
                f"integer, got {n_processors!r}")
        timeout_s = raw.get("timeout_s")
        if timeout_s is not None and (
                not isinstance(timeout_s, (int, float))
                or timeout_s <= 0):
            raise ProtocolError(
                "bad_job", f"'timeout_s' must be positive, "
                f"got {timeout_s!r}")
        shard_shots = raw.get("shard_shots")
        if shard_shots is not None and (
                not isinstance(shard_shots, int) or shard_shots < 1):
            raise ProtocolError(
                "bad_job", f"'shard_shots' must be a positive integer, "
                f"got {shard_shots!r}")
        fault = raw.get("fault")
        if fault is not None and not isinstance(fault, dict):
            raise ProtocolError("bad_job", "'fault' must be an object")
        try:
            parsed = program_from_text(program)
        except Exception as exc:
            raise ProtocolError(
                "bad_program", f"program does not parse: {exc}") from exc
        if not program_has_measurement(parsed):
            raise ProtocolError(
                "no_measurements",
                "program never measures a qubit: every shot would "
                "produce the empty outcome, so there is no histogram "
                "to sweep — add a qmeas (or OpenQASM measure)")
        routing = None
        requested = (backend if backend is not None
                     else config.get("qpu_backend",
                                     QCPConfig.qpu_backend))
        if requested == "auto":
            # Resolve once, on the front end: workers reproduce the
            # same decision deterministically, but the identity keys
            # must carry the *routed* backend so Clifford and
            # non-Clifford jobs never collide on one engine.
            preview = (profile_obj.noise_model(base=noise_model)
                       if profile_obj is not None else noise_model)
            routing = route_backend(
                parsed, infer_qubit_count(parsed), noise=preview,
                profile=profile_obj).as_dict()
        return cls(program=program, shots=shots, seed=seed,
                   backend=backend, config=dict(config), noise=noise,
                   n_processors=n_processors, timeout_s=timeout_s,
                   shard_shots=shard_shots, profile=profile,
                   routing=routing, fault=fault)

    @property
    def resolved_backend(self) -> str:
        """The backend the engine will actually use (never ``"auto"``)."""
        requested = self.backend
        if requested is None:
            requested = self.config.get("qpu_backend",
                                        QCPConfig.qpu_backend)
        if requested == "auto" and self.routing is not None:
            return self.routing["backend"]
        return requested

    def _engine_identity(self) -> dict:
        return {
            "program_sha": _sha(self.program),
            "backend": self.resolved_backend,
            "config": self.config,
            "noise": self.noise,
            "n_processors": self.n_processors,
            "profile": (None if self.profile is None else
                        DeviceProfile.from_dict(self.profile)
                        .canonical()),
        }

    def engine_key(self) -> str:
        """Identity of the compiled artifacts a worker can reuse."""
        return _sha(_canonical(self._engine_identity()))

    def job_key(self) -> str:
        """Identity of the result — the dedup key."""
        identity = self._engine_identity()
        identity.update(shots=self.shots, seed=self.seed)
        return _sha(_canonical(identity))

    def payload(self) -> dict:
        """Plain-dict form shipped to worker processes (picklable)."""
        return {
            "program": self.program,
            "shots": self.shots,
            "seed": self.seed,
            # Raw, not routed: a worker engine given "auto" re-derives
            # the same decision (pure function of the payload) *and*
            # applies its adaptive fusion width, which a pre-resolved
            # name would lose.
            "backend": self.backend,
            "config": self.config,
            "noise": self.noise,
            "n_processors": self.n_processors,
            "engine_key": self.engine_key(),
            "profile": self.profile,
            "routing": self.routing,
            "fault": self.fault,
        }


# -- wire framing ---------------------------------------------------------

def encode_message(message: dict) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one received line; raises :class:`ProtocolError`."""
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("bad_json", f"undecodable line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("bad_json", "message must be a JSON object")
    return message


# -- result serialization -------------------------------------------------

def result_payload(result: ShotResult) -> dict:
    """JSON form of a :class:`ShotResult` (client reconstructs it)."""
    return {
        "shots": result.shots,
        "measured_qubits": list(result.measured_qubits),
        "counts": dict(result.counts),
        "total_ns": result.total_ns,
    }


def result_from_payload(payload: dict) -> ShotResult:
    """Inverse of :func:`result_payload`."""
    from collections import Counter

    return ShotResult(shots=payload["shots"],
                      measured_qubits=tuple(payload["measured_qubits"]),
                      counts=Counter(payload["counts"]),
                      total_ns=payload["total_ns"])
