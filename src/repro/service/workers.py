"""Worker-process side of the shot-sweep service.

A worker is one process of a ``ProcessPoolExecutor``.  It receives
``(job payload, start, stop)`` triples — one contiguous shard of a
sweep's shot-index range — and returns the shard's outcome-keyed
partial histogram (:meth:`~repro.qcp.shots.ShotEngine.run_range`).

Workers are **stateful on purpose**: each process keeps a small LRU of
compile-once :class:`~repro.qcp.shots.ShotEngine` instances keyed by
the job's engine key, so every shard of a sweep (and every repeat of a
popular program) reuses the decoded instruction memory, block table,
channel map, QPU and warm trace-cache trie.  None of that state is
correctness-relevant: shot ``i`` runs with seed ``seed + i`` and is a
pure function of that seed, so any shard executed by any worker — or
re-executed after a crash — produces bit-identical counts.

Fault injection
===============

``run_shard`` honours a test-only ``fault`` payload field::

    {"kill_shard_start": <start>, "once_token": "<path>"}

The first worker to pick up the shard starting at ``kill_shard_start``
creates the token file and hard-exits, simulating a worker crash
mid-sweep; because the token then exists, the retried shard runs
normally.  This is how the test suite proves crash-retry keeps results
bit-identical.
"""

from __future__ import annotations

import os
import pathlib
from collections import OrderedDict

from repro.qcp.config import QCPConfig
from repro.qcp.shots import ShotEngine
from repro.qpu.profile import DeviceProfile
from repro.service.protocol import build_noise_model, program_from_text

#: Engines cached per worker process, newest-used last.
_ENGINE_LRU_CAPACITY = 8

#: Shared compiled-trace artifact directory injected at pool creation
#: (see :func:`configure_worker`); ``None`` = no artifact caching.
_ARTIFACT_CACHE_DIR: str | None = None

_engines: "OrderedDict[str, ShotEngine]" = OrderedDict()

#: Engines dropped from the LRU over this process's lifetime.
_engine_evictions = 0


def configure_worker(engine_lru_capacity: int | None = None,
                     artifact_cache_dir: str | None = None) -> None:
    """Pool initializer: per-process knobs for every worker.

    Runs once in each worker process as the ``ProcessPoolExecutor``
    initializer — including the workers of a rebuilt pool after a
    ``BrokenProcessPool``, which is exactly when the artifact
    directory pays off: the fresh process finds the tries its
    predecessors compiled and starts warm.
    """
    global _ENGINE_LRU_CAPACITY, _ARTIFACT_CACHE_DIR
    if engine_lru_capacity is not None:
        if engine_lru_capacity < 1:
            raise ValueError("engine LRU capacity must be positive")
        _ENGINE_LRU_CAPACITY = engine_lru_capacity
    _ARTIFACT_CACHE_DIR = artifact_cache_dir


def plan_shards(shots: int, shard_shots: int) -> list[tuple[int, int]]:
    """Split ``range(0, shots)`` into contiguous ``[start, stop)`` spans.

    Spans are ``shard_shots`` long except possibly the last; together
    they cover the shot-index range exactly once, which the job
    manager re-checks before merging.
    """
    if shots < 1:
        raise ValueError("need at least one shot")
    if shard_shots < 1:
        raise ValueError("shard size must be positive")
    return [(start, min(start + shard_shots, shots))
            for start in range(0, shots, shard_shots)]


def default_shard_shots(shots: int, n_workers: int) -> int:
    """Default shard size: ~4 shards per worker.

    Fine enough that partial-histogram updates stream and a crashed
    worker loses little work, coarse enough that per-shard dispatch
    overhead stays negligible against the shots themselves.
    """
    return max(1, -(-shots // (4 * max(1, n_workers))))


def _build_engine(payload: dict) -> ShotEngine:
    config = QCPConfig().with_(**payload["config"])
    if _ARTIFACT_CACHE_DIR is not None and \
            config.artifact_cache_dir is None:
        # Serve-level injection: never part of the job's engine key
        # (the directory cannot change results), so all workers of a
        # pool share one artifact directory transparently.
        config = config.with_(artifact_cache_dir=_ARTIFACT_CACHE_DIR)
    profile = payload.get("profile")
    return ShotEngine(
        program_from_text(payload["program"]),
        config=config,
        n_processors=payload["n_processors"],
        backend=payload["backend"] or config.qpu_backend,
        noise=build_noise_model(payload["noise"]),
        profile=(DeviceProfile.from_dict(profile)
                 if profile is not None else None))


def _engine_for(payload: dict) -> ShotEngine:
    global _engine_evictions
    key = payload["engine_key"]
    engine = _engines.get(key)
    if engine is None:
        engine = _build_engine(payload)
        _engines[key] = engine
        while len(_engines) > _ENGINE_LRU_CAPACITY:
            _engines.popitem(last=False)
            _engine_evictions += 1
    else:
        _engines.move_to_end(key)
    return engine


def _maybe_inject_fault(payload: dict, start: int) -> None:
    fault = payload.get("fault")
    if not fault or fault.get("kill_shard_start") != start:
        return
    token = pathlib.Path(fault["once_token"])
    if not token.exists():
        token.touch()
        # Simulate a hard worker crash: no exception, no cleanup.
        os._exit(1)


def run_shard(payload: dict, start: int, stop: int) -> dict:
    """Execute shots ``start..stop-1`` of a job; return the shard result.

    Shot ``i`` runs with seed ``payload['seed'] + i``.  The returned
    dict is picklable: outcome-keyed counts (see
    :class:`~repro.qcp.shots.ShardOutcomes`), the summed duration, and
    observability extras — the worker pid and a snapshot of the
    engine's trace-cache counters for the ``/stats`` endpoint.
    """
    _maybe_inject_fault(payload, start)
    engine = _engine_for(payload)
    base = payload["seed"]
    shard = engine.run_range(base + start, base + stop)
    cache = engine.trace_cache
    stats = None
    if cache is not None:
        stats = {"hits": cache.hits, "misses": cache.misses,
                 "resumes": cache.resumes, "nodes": cache.nodes,
                 "evictions": cache.evictions,
                 "batched_shots": cache.batched_shots,
                 "wavefront_splits": cache.wavefront_splits,
                 "serial_fallbacks": cache.serial_fallbacks}
    artifacts = engine.artifacts
    return {"start": start, "stop": stop,
            "counts": shard.counts, "total_ns": shard.total_ns,
            "pid": os.getpid(), "engine_key": payload["engine_key"],
            "backend": engine.backend,
            "routing": (engine.routing.as_dict()
                        if engine.routing is not None else None),
            "trace_cache": stats,
            "artifact_cache": (artifacts.stats()
                               if artifacts is not None else None),
            "engine_evictions": _engine_evictions,
            "engine_cache": {"size": len(_engines),
                             "capacity": _ENGINE_LRU_CAPACITY}}
