"""Blocking client for the shot-sweep service.

A thin, dependency-free socket client speaking the newline-JSON
protocol — what a lab script, the test suite and the benchmarks use.
Each :class:`ServiceClient` method opens a fresh connection, so one
client object may be shared freely (no connection state to corrupt).

::

    client = ServiceClient("127.0.0.1", 7781)
    result, info = client.run_sweep(program_text, shots=1000,
                                    backend="stabilizer")
    print(result.counts, info["retries"])
"""

from __future__ import annotations

import json
import socket
from typing import Callable, Iterator

from repro.qcp.shots import ShotResult
from repro.service.protocol import result_from_payload


class ServiceError(RuntimeError):
    """Terminal error event from the service; ``code`` is the error id."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class ServiceClient:
    """Blocking newline-JSON client (one connection per request)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7781,
                 timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(self, message: dict) -> Iterator[dict]:
        """Send one request; yield response events until the caller stops."""
        with socket.create_connection((self.host, self.port),
                                      timeout=self.timeout) as conn:
            conn.sendall(json.dumps(message).encode() + b"\n")
            with conn.makefile("rb") as stream:
                for line in stream:
                    yield json.loads(line)

    def _one(self, message: dict) -> dict:
        for event in self._request(message):
            return event
        raise ServiceError("closed", "connection closed without a reply")

    # -- operations -------------------------------------------------------

    def ping(self) -> dict:
        return self._one({"op": "ping"})

    def stats(self) -> dict:
        """The ``/stats`` snapshot (queue depth, jobs, worker caches)."""
        return self._one({"op": "stats"})

    def cancel(self, job_id: str) -> bool:
        return self._one({"op": "cancel",
                          "job_id": job_id})["event"] == "cancelled"

    def submit_iter(self, job: dict, stream: bool = True) -> Iterator[dict]:
        """Submit a job, yielding ``accepted``/``partial``/terminal events.

        Raises nothing itself — callers see the raw event stream,
        including ``rejected`` and ``error`` events, and may stop
        iterating at any point (the connection closes with the
        iterator).
        """
        for event in self._request({"op": "submit", "job": job,
                                    "stream": stream}):
            yield event
            if event.get("event") in ("result", "error", "rejected"):
                return

    def submit(self, job: dict,
               on_partial: "Callable[[dict], None] | None" = None) -> dict:
        """Submit and wait; returns the ``result`` event.

        ``on_partial`` receives every streamed partial event.  Raises
        :class:`ServiceError` on rejection or failure.
        """
        for event in self.submit_iter(job, stream=on_partial is not None):
            kind = event.get("event")
            if kind == "partial" and on_partial is not None:
                on_partial(event)
            elif kind == "result":
                return event
            elif kind == "rejected":
                raise ServiceError(event.get("error", "rejected"),
                                   event.get("message", ""))
            elif kind == "error":
                raise ServiceError(event.get("error", "error"),
                                   event.get("message", ""))
        raise ServiceError("closed", "connection closed mid-job")

    def run_sweep(self, program: str, shots: int, *, seed: int = 0,
                  backend: str | None = None, config: dict | None = None,
                  noise: dict | None = None, n_processors: int = 1,
                  timeout_s: float | None = None,
                  shard_shots: int | None = None,
                  on_partial: "Callable[[dict], None] | None" = None,
                  ) -> tuple[ShotResult, dict]:
        """Convenience wrapper: build the job, wait, parse the result.

        Returns ``(ShotResult, result_event)`` — the ShotResult is
        bit-identical to a serial
        :func:`repro.qcp.shots.run_shots` of the same sweep.
        """
        job: dict = {"program": program, "shots": shots, "seed": seed}
        if backend is not None:
            job["backend"] = backend
        if config:
            job["config"] = config
        if noise:
            job["noise"] = noise
        if n_processors != 1:
            job["n_processors"] = n_processors
        if timeout_s is not None:
            job["timeout_s"] = timeout_s
        if shard_shots is not None:
            job["shard_shots"] = shard_shots
        event = self.submit(job, on_partial=on_partial)
        return result_from_payload(event["result"]), event
