"""Discrete-event simulation substrate used by the whole control stack."""

from repro.sim.kernel import Clock, Event, SimKernel, SimulationError

__all__ = ["Clock", "Event", "SimKernel", "SimulationError"]
