"""Discrete-event simulation kernel.

Every component of the reproduced control stack (processors, scheduler,
AWG, DAQ, QPU) advances simulated time by scheduling callbacks on a shared
:class:`SimKernel`.  Time is kept in *nanoseconds* as an integer so that the
100 MHz control-processor clock (10 ns period) and analog latencies compose
without floating-point drift.

Queue organisation
==================

The dominant scheduling pattern is *monotone*: a processor's cycle
event fires and schedules the next cycle one period later, the timing
controller appends operations to the end of its timeline, the readout
path adds a fixed latency.  Those events arrive in nondecreasing
``(time, priority, seq)`` order, so the kernel keeps a plain FIFO for
the monotone run — O(1) append and pop — and falls back to a binary
heap only for the minority of events scheduled out of order.  The next
event is whichever front is smaller; total order (and therefore
reproducibility) is identical to a single heap.

Cancelled events are skipped lazily when they reach a queue front.  To
keep long mixed-branch runs from growing the queues unboundedly, the
kernel compacts both queues once cancelled entries outnumber live ones
(see :meth:`Event.cancel`).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

#: Queues smaller than this are never compacted: the lazy front-skip
#: already bounds their overhead and compaction would just thrash.
_COMPACT_MIN_PENDING = 16


class SimulationError(RuntimeError):
    """Raised when the kernel is used inconsistently (e.g. scheduling in
    the past) or a run exceeds its event budget."""


@dataclass(order=True)
class Event:
    """A pending callback in the event queue.

    Events are ordered by ``(time, priority, seq)``: earlier time first,
    then lower priority value, then insertion order.  ``seq`` guarantees a
    deterministic total order, which keeps every simulation reproducible
    for a fixed seed.
    """

    time: int
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    kernel: "SimKernel | None" = field(compare=False, default=None,
                                       repr=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when it is popped."""
        if not self.cancelled:
            self.cancelled = True
            if self.kernel is not None:
                self.kernel._note_cancel()


class SimKernel:
    """Hybrid FIFO/priority-queue discrete-event scheduler.

    >>> kernel = SimKernel()
    >>> fired = []
    >>> _ = kernel.schedule(5, fired.append, 'a')
    >>> _ = kernel.schedule(3, fired.append, 'b')
    >>> kernel.run()
    >>> (fired, kernel.now)
    (['b', 'a'], 5)
    """

    def __init__(self) -> None:
        #: Monotone run: events appended in nondecreasing order (O(1)).
        self._fifo: deque[Event] = deque()
        #: Out-of-order arrivals (classic binary heap).
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0
        self._events_processed = 0
        self._cancelled_pending = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events dispatched so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Queue entries not yet dispatched (cancelled ones included)."""
        return len(self._fifo) + len(self._heap)

    def schedule(self, delay: int, callback: Callable[..., None],
                 *args: Any, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        return self.schedule_at(self._now + int(delay), callback, *args,
                                priority=priority)

    def schedule_at(self, time: int, callback: Callable[..., None],
                    *args: Any, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time`` ns."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}")
        event = Event(int(time), priority, next(self._seq), callback, args,
                      kernel=self)
        fifo = self._fifo
        if not fifo or fifo[-1] < event:
            fifo.append(event)  # monotone fast path
        else:
            heapq.heappush(self._heap, event)
        return event

    # -- queue internals ---------------------------------------------------

    def _note_cancel(self) -> None:
        """Event.cancel() hook: compact once cancelled entries dominate."""
        self._cancelled_pending += 1
        pending = len(self._fifo) + len(self._heap)
        if (pending >= _COMPACT_MIN_PENDING
                and 2 * self._cancelled_pending > pending):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from both queues."""
        self._fifo = deque(e for e in self._fifo if not e.cancelled)
        live = [e for e in self._heap if not e.cancelled]
        heapq.heapify(live)
        self._heap = live
        self._cancelled_pending = 0

    def _front(self) -> Event | None:
        """The next live event, without popping it."""
        fifo, heap = self._fifo, self._heap
        while fifo and fifo[0].cancelled:
            fifo.popleft()
            self._cancelled_pending -= 1
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._cancelled_pending -= 1
        if fifo and (not heap or fifo[0] < heap[0]):
            return fifo[0]
        if heap:
            return heap[0]
        return None

    def _pop(self, event: Event) -> None:
        """Remove ``event`` (known to be a queue front)."""
        if self._fifo and self._fifo[0] is event:
            self._fifo.popleft()
        else:
            heapq.heappop(self._heap)

    def peek_time(self) -> int | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        event = self._front()
        return None if event is None else event.time

    def step(self) -> bool:
        """Dispatch the next event.  Returns ``False`` when idle."""
        event = self._front()
        if event is None:
            return False
        self._pop(event)
        self._now = event.time
        self._events_processed += 1
        event.callback(*event.args)
        return True

    def run(self, until: int | None = None,
            max_events: int | None = None) -> None:
        """Run events until the queue drains.

        ``until`` stops the clock once the next event lies strictly beyond
        that time; ``max_events`` bounds the total number of dispatches and
        raises :class:`SimulationError` when exhausted (a guard against
        accidental infinite feedback loops in processor models).
        """
        dispatched = 0
        while True:
            event = self._front()
            if event is None:
                return
            if until is not None and event.time > until:
                self._now = until
                return
            if max_events is not None and dispatched >= max_events:
                raise SimulationError(
                    f"event budget of {max_events} exhausted at t={self._now}")
            self._pop(event)
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            dispatched += 1


class Clock:
    """Converts between clock cycles and nanoseconds for one clock domain.

    The paper's control processor, AWGs and DAQs all run at 100 MHz
    (``period_ns=10``).
    """

    def __init__(self, period_ns: int = 10) -> None:
        if period_ns <= 0:
            raise ValueError("clock period must be positive")
        self.period_ns = int(period_ns)

    def to_ns(self, cycles: int) -> int:
        """Duration of ``cycles`` clock cycles in nanoseconds."""
        return int(cycles) * self.period_ns

    def to_cycles(self, ns: int) -> int:
        """Number of full cycles covering ``ns`` (ceiling division)."""
        return -(-int(ns) // self.period_ns)

    def cycles_at(self, time_ns: int) -> int:
        """Cycle index containing the instant ``time_ns``."""
        return int(time_ns) // self.period_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(period_ns={self.period_ns})"
