"""Discrete-event simulation kernel.

Every component of the reproduced control stack (processors, scheduler,
AWG, DAQ, QPU) advances simulated time by scheduling callbacks on a shared
:class:`SimKernel`.  Time is kept in *nanoseconds* as an integer so that the
100 MHz control-processor clock (10 ns period) and analog latencies compose
without floating-point drift.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the kernel is used inconsistently (e.g. scheduling in
    the past) or a run exceeds its event budget."""


@dataclass(order=True)
class Event:
    """A pending callback in the event queue.

    Events are ordered by ``(time, priority, seq)``: earlier time first,
    then lower priority value, then insertion order.  ``seq`` guarantees a
    deterministic total order, which keeps every simulation reproducible
    for a fixed seed.
    """

    time: int
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when it is popped."""
        self.cancelled = True


class SimKernel:
    """Priority-queue discrete-event scheduler.

    >>> kernel = SimKernel()
    >>> fired = []
    >>> _ = kernel.schedule(5, fired.append, 'a')
    >>> _ = kernel.schedule(3, fired.append, 'b')
    >>> kernel.run()
    >>> (fired, kernel.now)
    (['b', 'a'], 5)
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0
        self._events_processed = 0

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events dispatched so far."""
        return self._events_processed

    def schedule(self, delay: int, callback: Callable[..., None],
                 *args: Any, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        return self.schedule_at(self._now + int(delay), callback, *args,
                                priority=priority)

    def schedule_at(self, time: int, callback: Callable[..., None],
                    *args: Any, priority: int = 0) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time`` ns."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}")
        event = Event(int(time), priority, next(self._seq), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def peek_time(self) -> int | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Dispatch the next event.  Returns ``False`` when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: int | None = None,
            max_events: int | None = None) -> None:
        """Run events until the queue drains.

        ``until`` stops the clock once the next event lies strictly beyond
        that time; ``max_events`` bounds the total number of dispatches and
        raises :class:`SimulationError` when exhausted (a guard against
        accidental infinite feedback loops in processor models).
        """
        dispatched = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self._now = until
                return
            if max_events is not None and dispatched >= max_events:
                raise SimulationError(
                    f"event budget of {max_events} exhausted at t={self._now}")
            self.step()
            dispatched += 1


class Clock:
    """Converts between clock cycles and nanoseconds for one clock domain.

    The paper's control processor, AWGs and DAQs all run at 100 MHz
    (``period_ns=10``).
    """

    def __init__(self, period_ns: int = 10) -> None:
        if period_ns <= 0:
            raise ValueError("clock period must be positive")
        self.period_ns = int(period_ns)

    def to_ns(self, cycles: int) -> int:
        """Duration of ``cycles`` clock cycles in nanoseconds."""
        return int(cycles) * self.period_ns

    def to_cycles(self, ns: int) -> int:
        """Number of full cycles covering ``ns`` (ceiling division)."""
        return -(-int(ns) // self.period_ns)

    def cycles_at(self, time_ns: int) -> int:
        """Cycle index containing the instant ``time_ns``."""
        return int(time_ns) // self.period_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(period_ns={self.period_ns})"
