"""Parallel repeat-until-success sub-circuits (Section 3.1.3).

The paper's motivating example for CLP: two (or more) RUS sub-circuits
that should run in parallel.  Two program shapes are provided:

* **Program 1 style** (`build_rus_single_flow`) — one control flow
  describing all sub-circuits.  Every iteration re-examines each
  sub-circuit's success flag, so the branching structure grows with the
  number of sub-circuits and, critically, one processor serializes all
  of them: a retry of W1 delays W2 even after W2 has succeeded
  (Figure 3b).
* **Program 2 style** (`build_rus_blocks`) — one program block per
  sub-circuit.  On a multiprocessor each block retries independently
  (Figure 3a), which is exactly what the block scheduler enables.

Each sub-circuit W_i uses three qubits: two data qubits it entangles
and one ancilla whose measurement signals success (0) or failure (1).
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program

QUBITS_PER_SUBCIRCUIT = 3

#: Timing labels (cycles): single-qubit, two-qubit, measurement.
_T1, _T2, _TM = 2, 4, 30


def subcircuit_qubits(index: int) -> tuple[int, int, int]:
    """(data0, data1, ancilla) of sub-circuit ``index``."""
    base = index * QUBITS_PER_SUBCIRCUIT
    return base, base + 1, base + 2


def ancilla_qubits(n_subcircuits: int) -> list[int]:
    """The failure-signal qubits of every sub-circuit."""
    return [subcircuit_qubits(i)[2] for i in range(n_subcircuits)]


def _emit_attempt(builder: ProgramBuilder, index: int) -> None:
    """One W_i attempt: entangling ops plus the ancilla measurement."""
    data0, data1, ancilla = subcircuit_qubits(index)
    builder.qop("h", [data0], timing=0)
    builder.qop("cnot", [data0, data1], timing=_T1)
    builder.qop("cnot", [data1, ancilla], timing=_T2)
    builder.qmeas(ancilla, timing=_T2)


def _emit_recovery(builder: ProgramBuilder, index: int) -> None:
    """Correction + reset after a failed verification."""
    data0, data1, ancilla = subcircuit_qubits(index)
    builder.qop("reset", [ancilla], timing=0)
    builder.qop("reset", [data0], timing=0)
    builder.qop("reset", [data1], timing=0)


def build_rus_blocks(n_subcircuits: int = 2) -> Program:
    """Program 2: one block per RUS sub-circuit, all priority 0."""
    if n_subcircuits < 1:
        raise ValueError("need at least one sub-circuit")
    builder = ProgramBuilder(f"rus_blocks_{n_subcircuits}")
    for index in range(n_subcircuits):
        _, _, ancilla = subcircuit_qubits(index)
        with builder.block(f"W{index + 1}", priority=0):
            retry = builder.label(f"w{index}_retry")
            _emit_attempt(builder, index)
            builder.fmr(1, ancilla)
            success = builder.fresh_label(f"w{index}_ok")
            builder.beq(1, 0, success)
            _emit_recovery(builder, index)
            builder.jmp(retry)
            builder.label(success)
            builder.halt()
    return builder.build()


def build_rus_single_flow(n_subcircuits: int = 2) -> Program:
    """Program 1: all RUS sub-circuits inside one control flow.

    Register r(10+i) holds sub-circuit i's success flag.  Each loop
    iteration re-attempts every sub-circuit that has not yet succeeded;
    the loop exits when all flags are set.  All the quantum operations,
    measurements and feedback waits of the different sub-circuits share
    one instruction stream, so they serialize.
    """
    if n_subcircuits < 1:
        raise ValueError("need at least one sub-circuit")
    if n_subcircuits > 16:
        raise ValueError("flag registers support at most 16 sub-circuits")
    builder = ProgramBuilder(f"rus_single_flow_{n_subcircuits}")
    flag = [10 + i for i in range(n_subcircuits)]
    with builder.block("all", priority=0):
        for index in range(n_subcircuits):
            builder.ldi(flag[index], 0)
        loop = builder.label("loop")
        # Attempt every unfinished sub-circuit (serialized).
        for index in range(n_subcircuits):
            skip = builder.fresh_label(f"skip_attempt_{index}")
            builder.bne(flag[index], 0, skip)
            _emit_attempt(builder, index)
            builder.label(skip)
        # Collect results and update flags.
        for index in range(n_subcircuits):
            _, _, ancilla = subcircuit_qubits(index)
            skip = builder.fresh_label(f"skip_check_{index}")
            builder.bne(flag[index], 0, skip)
            builder.fmr(1, ancilla)
            failed = builder.fresh_label(f"failed_{index}")
            builder.bne(1, 0, failed)
            builder.ldi(flag[index], 1)
            done_label = builder.fresh_label(f"checked_{index}")
            builder.jmp(done_label)
            builder.label(failed)
            _emit_recovery(builder, index)
            builder.label(done_label)
            builder.label(skip)
        # Loop until every flag is set.
        builder.ldi(2, 1)
        for index in range(n_subcircuits):
            builder.and_(2, 2, flag[index])
        builder.beq(2, 0, loop)
        builder.halt()
    return builder.build()
