"""Dynamic-circuit applications (Section 2.4).

The paper lists the dynamic circuits its feedback control enables:
active qubit reset, quantum teleportation and iterative phase
estimation.  This module provides runnable programs for all three,
built directly at the ISA level because they mix quantum operations
with measurement-dependent control flow.
"""

from __future__ import annotations

import math

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program

#: Timing labels (cycles): single-qubit, two-qubit, measurement.
_T1, _T2, _TM = 2, 4, 30


def active_reset_program(qubit: int = 0,
                         prepare_excited: bool = True) -> Program:
    """Active qubit reset: measure, flip on |1> (Section 5.4)."""
    builder = ProgramBuilder("active_reset")
    with builder.block("reset", priority=0):
        if prepare_excited:
            builder.qop("x", [qubit], timing=0)
        builder.qmeas(qubit, timing=_T1)
        builder.mrce(qubit, qubit, "i", "x")
        builder.halt()
    return builder.build()


def teleportation_program(theta: float = 1.2345) -> Program:
    """Teleport ``ry(theta)|0>`` from q0 to q2.

    Standard protocol: entangle q1/q2 into a Bell pair, Bell-measure
    q0/q1, then apply the classically controlled X (from q1's result)
    and Z (from q0's result) corrections on q2.  Both corrections are
    simple feedback control, so they lower to MRCE and benefit from the
    fast context switch.
    """
    builder = ProgramBuilder("teleportation")
    with builder.block("teleport", priority=0):
        # Message state on q0.
        builder.qop("ry", [0], timing=0, params=(theta,))
        # Bell pair on q1, q2 (in parallel with the preparation).
        builder.qop("h", [1], timing=0)
        builder.qop("cnot", [1, 2], timing=_T1)
        # Bell measurement of q0 and q1.
        builder.qop("cnot", [0, 1], timing=_T2)
        builder.qop("h", [0], timing=_T2)
        builder.qmeas(1, timing=_T1)
        builder.qmeas(0, timing=0)
        # Corrections on q2, conditioned on the two results.
        builder.mrce(1, 2, "i", "x")
        builder.mrce(0, 2, "i", "z")
        builder.halt()
    return builder.build()


def iterative_phase_estimation_program(phase: float,
                                       bits: int = 4) -> Program:
    """Kitaev-style iterative phase estimation of an RZ eigenphase.

    Estimates ``phase`` (in turns, i.e. ``U|1> = e^{2 pi i phase}|1>``
    with ``U = rz``) to ``bits`` binary digits, one measurement per
    iteration from the least significant bit upward.  The classically
    accumulated partial estimate feeds back as an ancilla rotation —
    a genuinely dynamic circuit exercising measurement, classical
    arithmetic and parametric gates together.

    Qubits: q0 = ancilla, q1 = eigenstate carrier (prepared in |1>).
    The estimated ``bits``-bit integer is stored in shared register 0.
    """
    if not 1 <= bits <= 12:
        raise ValueError("bits must be between 1 and 12")
    builder = ProgramBuilder("ipe")
    accumulator = 8  # r8 accumulates the estimate (lsb first)
    with builder.block("ipe", priority=0):
        builder.ldi(accumulator, 0)
        builder.qop("x", [1], timing=0)  # eigenstate |1> of rz
        for iteration in range(bits):
            # Bit k = bits-1-iteration, most significant angle first.
            k = bits - 1 - iteration
            builder.qop("h", [0], timing=_T1)
            # Controlled-U^(2^k) on (q0 control, q1 target): for an RZ
            # eigenphase this is a conditional phase on the ancilla;
            # realised as cz-sandwiched rz pulses.
            angle = 2.0 * math.pi * phase * (2 ** k)
            builder.qop("rz", [0], timing=_T1, params=(angle,))
            # Feedback rotation: -pi * (accumulated bits) / 2^(iter)
            # applied as individually conditioned rz pulses, one per
            # previously measured bit.
            for earlier in range(iteration):
                feedback = -math.pi * (2 ** earlier) / (2 ** iteration)
                skip = builder.fresh_label(f"skip_{iteration}_{earlier}")
                builder.ldi(2, 2 ** earlier)
                builder.and_(3, accumulator, 2)
                builder.beq(3, 0, skip)
                builder.qop("rz", [0], timing=_T1, params=(feedback,))
                builder.label(skip)
            builder.qop("h", [0], timing=_T1)
            builder.qmeas(0, timing=_T1)
            builder.fmr(1, 0)
            # accumulator |= bit << iteration
            skip_set = builder.fresh_label(f"skip_set_{iteration}")
            builder.beq(1, 0, skip_set)
            builder.ldi(2, 2 ** iteration)
            builder.or_(accumulator, accumulator, 2)
            builder.label(skip_set)
            # Reset the ancilla for the next round (active reset).
            builder.mrce(0, 0, "i", "x")
        builder.stm(accumulator, 0)
        builder.halt()
    return builder.build()


def estimated_phase(shared_value: int, bits: int) -> float:
    """Convert the IPE result register into a phase in turns."""
    return shared_value / (2 ** bits)
