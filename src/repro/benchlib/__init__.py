"""Benchmark workloads: the Shor syndrome measurement, the 7-benchmark
suite, parallel RUS programs, multiprogramming mixes and the paper's
dynamic-circuit applications."""

from repro.benchlib.apps import (active_reset_program, estimated_phase,
                                 iterative_phase_estimation_program,
                                 teleportation_program)
from repro.benchlib.dynamic import (DISTILLATION_QUBITS,
                                    SUPERSCALAR_MIX_QUBITS,
                                    build_distillation_program,
                                    build_superscalar_mix_program,
                                    build_teleport_chain_program,
                                    teleport_chain_qubits)
from repro.benchlib.circuits import (bv_n16, grover_n9, hs16, ising_n16,
                                     qft_n16, rd84_143, sym9_148)
from repro.benchlib.multiprog import (compile_multiprogram,
                                      merge_circuits, standard_task_mix)
from repro.benchlib.repetition import (build_repetition_memory_program,
                                       decode_majority)
from repro.benchlib.rus import (ancilla_qubits, build_rus_blocks,
                                build_rus_single_flow, subcircuit_qubits)
from repro.benchlib.steane import (N_QUBITS, N_STABILIZERS,
                                   build_shor_syndrome_program,
                                   stabilizer_layouts,
                                   verification_qubits)
from repro.benchlib.suite import (BENCHMARKS, BenchmarkSpec, SUITE,
                                  get_benchmark)
from repro.benchlib.surface import (SurfaceLayout, SurfaceMemoryReport,
                                    build_surface_memory_program,
                                    decode_logical_z, surface_layout,
                                    surface_logical_error_rate,
                                    surface_noise_model)

__all__ = [
    "BENCHMARKS", "BenchmarkSpec", "DISTILLATION_QUBITS", "N_QUBITS",
    "N_STABILIZERS", "SUITE", "SUPERSCALAR_MIX_QUBITS", "SurfaceLayout",
    "SurfaceMemoryReport", "active_reset_program", "ancilla_qubits",
    "build_distillation_program", "build_rus_blocks",
    "build_repetition_memory_program", "build_rus_single_flow",
    "build_shor_syndrome_program", "build_superscalar_mix_program",
    "build_surface_memory_program", "build_teleport_chain_program",
    "bv_n16", "decode_majority", "decode_logical_z",
    "compile_multiprogram", "estimated_phase", "get_benchmark",
    "grover_n9", "hs16", "ising_n16",
    "iterative_phase_estimation_program", "merge_circuits", "qft_n16",
    "rd84_143", "stabilizer_layouts", "standard_task_mix",
    "subcircuit_qubits", "surface_layout", "surface_logical_error_rate",
    "surface_noise_model", "sym9_148", "teleport_chain_qubits",
    "teleportation_program", "verification_qubits",
]
