"""Registry of the seven evaluation benchmarks (Figures 12-13).

Benchmarks are listed in the paper's presentation order: ``hs16`` first
(highest exploitable QOLP), ``rd84_143`` in the middle of the pack with
the least improvement, and the two benchmarks whose *average* baseline
TR is below 1 (but whose maximum TR reaches ~4.5 and ~9) last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.benchlib import circuits
from repro.circuit.circuit import QuantumCircuit


@dataclass(frozen=True)
class BenchmarkSpec:
    """One suite entry: a named circuit generator plus provenance."""

    name: str
    source: str  # Qiskit / ScaffCC / RevLib, per the paper
    build: Callable[[], QuantumCircuit]

    def circuit(self) -> QuantumCircuit:
        return self.build()


SUITE: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec("hs16", "ScaffCC", circuits.hs16),
    BenchmarkSpec("ising_n16", "ScaffCC", circuits.ising_n16),
    BenchmarkSpec("qft_n16", "Qiskit", circuits.qft_n16),
    BenchmarkSpec("grover_n9", "ScaffCC", circuits.grover_n9),
    BenchmarkSpec("rd84_143", "RevLib", circuits.rd84_143),
    BenchmarkSpec("sym9_148", "RevLib", circuits.sym9_148),
    BenchmarkSpec("bv_n16", "Qiskit", circuits.bv_n16),
)

BENCHMARKS: dict[str, BenchmarkSpec] = {spec.name: spec for spec in SUITE}


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a suite benchmark by name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: "
            f"{', '.join(sorted(BENCHMARKS))}") from None
