"""Rotated surface-code memory workloads, authored with the SDK.

The rotated surface code of distance ``d`` stores one logical qubit in
``d*d`` data qubits checked by ``d*d - 1`` stabilizers, each with its
own ancilla: 17 qubits at d=3, 49 at d=5 — the d=5 instance is only
reachable on the Aaronson–Gottesman stabilizer backend.  Every
syndrome-extraction round measures all ancillas and actively resets
them with MRCE feedback, so the trace cache sees one decision per
stabilizer per round: real path entropy, unlike the repetition chains.

The memory experiment is a Z-basis one: prepare all-|0> (a +1
eigenstate of every Z stabilizer), run ``rounds`` full extraction
cycles under noise, measure the data qubits and decode offline with a
lookup decoder (:func:`decode_logical_z`) built from the single-qubit
X-error syndrome table.  :func:`surface_logical_error_rate` wraps the
whole experiment and reports the logical error rate — the quantity the
golden tests pin per seed and the benchmarks record.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.program import Program
from repro.qcp.config import QCPConfig
from repro.qcp.shots import ShotEngine
from repro.qpu.noise import NoiseModel, PauliChannel, ReadoutError
from repro.sdk import SdkBuilder


@dataclass(frozen=True)
class Stabilizer:
    """One stabilizer check: its kind, ancilla qubit and data support."""

    kind: str  # "x" or "z"
    ancilla: int
    support: tuple[int, ...]


@dataclass(frozen=True)
class SurfaceLayout:
    """Qubit layout of a rotated distance-``d`` surface code."""

    distance: int
    x_stabilizers: tuple[Stabilizer, ...]
    z_stabilizers: tuple[Stabilizer, ...]
    logical_z: tuple[int, ...]

    @property
    def n_data(self) -> int:
        return self.distance * self.distance

    @property
    def n_qubits(self) -> int:
        return self.n_data + len(self.x_stabilizers) \
            + len(self.z_stabilizers)


def surface_layout(distance: int) -> SurfaceLayout:
    """Construct the rotated-code layout for odd ``distance`` >= 3.

    Data qubit ``(i, j)`` is index ``i*distance + j``.  Plaquettes sit
    on the dual lattice at ``(r, c)``, ``0 <= r, c <= d``, coloured X
    when ``r + c`` is odd; weight-2 boundary plaquettes survive only on
    the matching boundary (X on top/bottom, Z on left/right), which
    yields exactly ``d*d - 1`` checks, half of each kind.  The logical
    Z is a horizontal row of Zs (it crosses between the two Z-type
    boundaries and overlaps every X check evenly).
    """
    d = distance
    if d < 3 or d % 2 == 0:
        raise ValueError("distance must be an odd integer >= 3")

    def data_index(i: int, j: int) -> int:
        return i * d + j

    checks: list[tuple[str, tuple[int, ...]]] = []
    for r in range(d + 1):
        for c in range(d + 1):
            support = tuple(
                data_index(i, j)
                for i, j in ((r - 1, c - 1), (r - 1, c),
                             (r, c - 1), (r, c))
                if 0 <= i < d and 0 <= j < d)
            kind = "x" if (r + c) % 2 else "z"
            if len(support) == 4:
                checks.append((kind, support))
            elif len(support) == 2:
                on_top_bottom = r in (0, d)
                if (kind == "x") == on_top_bottom:
                    checks.append((kind, support))
    x_stabs: list[Stabilizer] = []
    z_stabs: list[Stabilizer] = []
    for offset, (kind, support) in enumerate(checks):
        stab = Stabilizer(kind, d * d + offset, support)
        (x_stabs if kind == "x" else z_stabs).append(stab)
    assert len(checks) == d * d - 1
    assert len(x_stabs) == len(z_stabs)
    return SurfaceLayout(distance=d,
                         x_stabilizers=tuple(x_stabs),
                         z_stabilizers=tuple(z_stabs),
                         logical_z=tuple(range(d)))


def build_surface_memory_program(distance: int = 3,
                                 rounds: int = 2) -> Program:
    """``rounds`` syndrome-extraction cycles on the distance-``d`` code.

    Each cycle extracts every Z check (CNOTs data -> ancilla) and every
    X check (H, CNOTs ancilla -> data, H), measures all ancillas and
    actively resets them via the SDK's ``measure_and_reset`` (one MRCE
    per ancilla).  The data qubits are read out at the end for offline
    decoding.
    """
    if rounds < 1:
        raise ValueError("need at least one round")
    layout = surface_layout(distance)
    sdk = SdkBuilder(f"surface_d{distance}_{rounds}r")
    data = sdk.qubits(layout.n_data)
    ancillas = sdk.qubits(layout.n_qubits - layout.n_data)

    def ancilla_of(stab: Stabilizer):
        return ancillas[stab.ancilla - layout.n_data]

    for _ in range(rounds):
        for stab in layout.z_stabilizers:
            for q in stab.support:
                data[q].cnot(ancilla_of(stab))
        for stab in layout.x_stabilizers:
            anc = ancilla_of(stab)
            anc.h()
            for q in stab.support:
                anc.cnot(data[q])
            anc.h()
        for stab in layout.z_stabilizers + layout.x_stabilizers:
            ancilla_of(stab).measure_and_reset()
    for q in data:
        q.measure()
    return sdk.build()


def _single_x_error_table(layout: SurfaceLayout) -> dict:
    """Z-syndrome signature of each single-qubit X error."""
    table: dict[frozenset, int] = {}
    for qubit in range(layout.n_data):
        signature = frozenset(
            index for index, stab in enumerate(layout.z_stabilizers)
            if qubit in stab.support)
        if signature:
            # Colliding signatures are equivalent up to a stabilizer
            # (e.g. the two qubits of a weight-2 X check), so any
            # representative decodes to the same logical outcome.
            table.setdefault(signature, qubit)
    return table


def decode_logical_z(layout: SurfaceLayout,
                     bits: dict[int, int]) -> int:
    """Decode one shot's data readout to the logical Z value (0/1).

    Computes the Z-check syndrome from the final data bits, looks the
    signature up in the single-X-error table and returns the corrected
    parity along the logical-Z row.  Unknown signatures (multi-qubit
    errors, readout flips) decode without correction — exactly the
    shots that dominate the logical error rate.
    """
    syndrome = frozenset(
        index for index, stab in enumerate(layout.z_stabilizers)
        if sum(bits[q] for q in stab.support) % 2)
    parity = sum(bits[q] for q in layout.logical_z) % 2
    correction = _single_x_error_table(layout).get(syndrome)
    if correction is not None and correction in layout.logical_z:
        parity ^= 1
    return parity


def surface_noise_model() -> NoiseModel:
    """The standard noise point for the surface-code goldens."""
    return NoiseModel(pauli=PauliChannel(px=6e-3),
                      readout=ReadoutError(p0_given_1=0.01,
                                           p1_given_0=0.005))


@dataclass(frozen=True)
class SurfaceMemoryReport:
    """Outcome of a seeded surface-code memory experiment."""

    distance: int
    rounds: int
    shots: int
    logical_errors: int

    @property
    def logical_error_rate(self) -> float:
        return self.logical_errors / self.shots


def surface_logical_error_rate(distance: int = 3, rounds: int = 2,
                               shots: int = 100,
                               backend: str = "stabilizer",
                               noise: NoiseModel | None = None,
                               config: QCPConfig | None = None
                               ) -> SurfaceMemoryReport:
    """Run the memory experiment and decode every shot.

    Shots are seeded ``0..shots-1`` (the engine's per-seed purity makes
    the report reproducible to the last shot across backends and replay
    strategies).  ``noise=None`` uses :func:`surface_noise_model`.
    """
    layout = surface_layout(distance)
    program = build_surface_memory_program(distance, rounds)
    engine = ShotEngine(program, config=config, backend=backend,
                        n_qubits=layout.n_qubits,
                        noise=surface_noise_model()
                        if noise is None else noise)
    errors = 0
    for seed in range(shots):
        bits, _ = engine.run_shot(seed)
        errors += decode_logical_z(layout, bits)
    return SurfaceMemoryReport(distance=distance, rounds=rounds,
                               shots=shots, logical_errors=errors)
