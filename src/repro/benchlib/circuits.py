"""Benchmark circuit generators (Figures 12 and 13).

The paper evaluates on seven benchmarks drawn from Qiskit, ScaffCC and
RevLib; the figures name ``hs16`` and ``rd84_143`` explicitly.  Exact
gate listings of the originals are unavailable offline, so each
generator reproduces the benchmark's *structure* — qubit count, gate mix
and, crucially, the per-step quantum-instruction profile (QICES) that
the CES/TR metrics depend on:

* ``hs16`` — hidden-shift on 16 qubits: full-width single-qubit layers,
  the maximal-QOLP workload (the paper's 8.00x theoretical-bound case);
* ``ising_n16`` — Trotterized transverse-field Ising chain (ScaffCC):
  wide rotation layers and even/odd coupling layers;
* ``qft_n16`` — quantum Fourier transform (Qiskit): pipelined
  controlled-phase chains with mid-range parallelism;
* ``sym9_148`` — RevLib symmetric function: Toffoli network, modest
  parallelism;
* ``rd84_143`` — RevLib rd84: mostly serial Toffoli chains, the
  least-parallel benchmark (the paper's 1.60x case);
* ``grover_n9`` — Grover search (ScaffCC): 9-wide Hadamard layers
  separated by serial oracle/diffusion chains;
* ``bv_n16`` — Bernstein-Vazirani (Qiskit): one (n+1)-wide layer plus a
  serial CNOT fan-in (the paper's "average TR < 1 but max TR = 9"
  shape).
"""

from __future__ import annotations

import math
import random

from repro.circuit.circuit import QuantumCircuit


def _toffoli(circuit: QuantumCircuit, a: int, b: int,
             target: int) -> None:
    """Standard 6-CNOT, 7-T decomposition of the Toffoli gate."""
    circuit.h(target)
    circuit.cnot(b, target)
    circuit.tdg(target)
    circuit.cnot(a, target)
    circuit.t(target)
    circuit.cnot(b, target)
    circuit.tdg(target)
    circuit.cnot(a, target)
    circuit.t(b)
    circuit.t(target)
    circuit.h(target)
    circuit.cnot(a, b)
    circuit.t(a)
    circuit.tdg(b)
    circuit.cnot(a, b)


def hs16(seed: int = 7) -> QuantumCircuit:
    """Hidden-shift benchmark on 16 qubits."""
    n = 16
    rng = random.Random(seed)
    shift = [rng.randrange(2) for _ in range(n)]
    circuit = QuantumCircuit(n, "hs16")
    for q in range(n):
        circuit.h(q)
    for q in range(n):
        if shift[q]:
            circuit.x(q)
        else:
            circuit.i(q)
    circuit.barrier()
    # Bent-function oracle: CZ between disjoint pairs, full width.
    for q in range(0, n, 2):
        circuit.cz(q, q + 1)
    circuit.barrier()
    for q in range(n):
        if shift[q]:
            circuit.x(q)
        else:
            circuit.i(q)
    for q in range(n):
        circuit.h(q)
    for q in range(0, n, 2):
        circuit.cz(q, q + 1)
    circuit.barrier()
    for q in range(n):
        circuit.h(q)
    for q in range(n):
        circuit.measure(q)
    return circuit


def ising_n16(steps: int = 2, seed: int = 11) -> QuantumCircuit:
    """Trotterized transverse-field Ising chain, 16 qubits."""
    n = 16
    rng = random.Random(seed)
    circuit = QuantumCircuit(n, "ising_n16")
    for q in range(n):
        circuit.h(q)
    for _ in range(steps):
        circuit.barrier()
        for q in range(n):
            circuit.rz(rng.uniform(0.1, math.pi), q)
        circuit.barrier()
        for q in range(0, n - 1, 2):   # even bonds
            circuit.cnot(q, q + 1)
        for q in range(0, n - 1, 2):
            circuit.rz(rng.uniform(0.1, math.pi), q + 1)
        for q in range(0, n - 1, 2):
            circuit.cnot(q, q + 1)
        circuit.barrier()
        for q in range(1, n - 1, 2):   # odd bonds
            circuit.cnot(q, q + 1)
        for q in range(1, n - 1, 2):
            circuit.rz(rng.uniform(0.1, math.pi), q + 1)
        for q in range(1, n - 1, 2):
            circuit.cnot(q, q + 1)
        circuit.barrier()
        for q in range(n):
            circuit.rx(rng.uniform(0.1, math.pi), q)
    for q in range(n):
        circuit.measure(q)
    return circuit


def qft_n16() -> QuantumCircuit:
    """Quantum Fourier transform on 16 qubits (CZ/RZ decomposition)."""
    n = 16
    circuit = QuantumCircuit(n, "qft_n16")
    for target in range(n):
        circuit.h(target)
        for control in range(target + 1, n):
            angle = math.pi / (1 << (control - target))
            # Controlled phase via RZ + CZ sandwich (hardware-friendly).
            circuit.rz(angle / 2, control)
            circuit.cz(control, target)
            circuit.rz(-angle / 2, control)
    for q in range(n // 2):
        circuit.swap(q, n - 1 - q)
    for q in range(n):
        circuit.measure(q)
    return circuit


def sym9_148(seed: int = 3) -> QuantumCircuit:
    """RevLib sym9-style symmetric-function Toffoli network, 10 qubits."""
    n = 10  # 9 inputs + 1 output
    rng = random.Random(seed)
    circuit = QuantumCircuit(n, "sym9_148")
    for q in range(n - 1):
        circuit.x(q) if rng.random() < 0.5 else circuit.i(q)
    circuit.barrier()
    for layer in range(6):
        a = rng.randrange(n - 1)
        b = (a + 1 + rng.randrange(n - 2)) % (n - 1)
        _toffoli(circuit, a, b, n - 1)
        circuit.cnot(rng.randrange(n - 1), n - 1)
    circuit.measure(n - 1)
    return circuit


def rd84_143(seed: int = 5) -> QuantumCircuit:
    """RevLib rd84-style serial Toffoli chain, 12 qubits."""
    n = 12  # 8 inputs + 4 outputs
    rng = random.Random(seed)
    circuit = QuantumCircuit(n, "rd84_143")
    inputs = list(range(8))
    outputs = list(range(8, 12))
    for q in inputs:
        circuit.x(q) if rng.random() < 0.5 else circuit.i(q)
    circuit.barrier()
    for out in outputs:
        for _ in range(3):
            a, b = rng.sample(inputs, 2)
            _toffoli(circuit, a, b, out)
        circuit.cnot(rng.choice(inputs), out)
    for out in outputs:
        circuit.measure(out)
    return circuit


def grover_n9(iterations: int = 2, seed: int = 13) -> QuantumCircuit:
    """Grover search on 9 qubits with a serial oracle."""
    n = 9
    rng = random.Random(seed)
    marked = [rng.randrange(2) for _ in range(n)]
    circuit = QuantumCircuit(n, "grover_n9")
    for q in range(n):
        circuit.h(q)
    for _ in range(iterations):
        circuit.barrier()
        # Oracle: phase flip on the marked state (serial CZ ladder).
        for q in range(n):
            if not marked[q]:
                circuit.x(q)
        for q in range(n - 1):
            circuit.cz(q, q + 1)
        for q in range(n):
            if not marked[q]:
                circuit.x(q)
        circuit.barrier()
        # Diffusion operator.
        for q in range(n):
            circuit.h(q)
        for q in range(n):
            circuit.x(q)
        for q in range(n - 1):
            circuit.cz(q, q + 1)
        for q in range(n):
            circuit.x(q)
        for q in range(n):
            circuit.h(q)
    for q in range(n):
        circuit.measure(q)
    return circuit


def bv_n16(seed: int = 2) -> QuantumCircuit:
    """Bernstein-Vazirani on 16 qubits (15-bit secret plus ancilla)."""
    n = 15
    del seed  # kept for signature compatibility across the suite
    # All-ones secret: the worst case for the serial CNOT fan-in, which
    # is the regime the paper's benchmark sits in (average TR < 1).
    secret = [1] * n
    circuit = QuantumCircuit(n + 1, "bv_n16")
    ancilla = n
    circuit.x(ancilla)
    circuit.barrier()
    for q in range(n):
        circuit.h(q)
    circuit.h(ancilla)
    circuit.barrier()
    for q in range(n):  # serial fan-in: every CNOT shares the ancilla
        if secret[q]:
            circuit.cnot(q, ancilla)
    circuit.barrier()
    for q in range(n):
        circuit.h(q)
    # Readout shares one acquisition line on the modelled device, so the
    # qubits are measured sequentially — this yields the paper's
    # "average TR < 1 but large maximum TR" shape for this benchmark.
    for q in range(n):
        circuit.measure(q)
        circuit.barrier()
    return circuit
