"""Repetition-code memory workloads with active error correction.

The paper motivates fast feedback with quantum error correction: "the
feedback control for quantum error correction needs to be completed
within 1% of this coherence time" (Section 2.3).  Two workloads live
here:

* :func:`build_repetition_memory_program` — the smallest end-to-end
  QEC experiment the control stack can run: a 3-qubit bit-flip code
  with stabilizer measurements, classical syndrome decoding (majority
  logic in the QCP's ALU) and real-time feedback X corrections.
  Qubit layout: data d0,d1,d2 = q0,q1,q2; syndrome ancillas a0 = q3
  (measures Z0Z1), a1 = q4 (measures Z1Z2).
* :func:`build_repetition_chain_program` — the same code generalised
  to ``n_data`` data qubits (2*n_data - 1 qubits total), with
  per-round syndrome extraction, MRCE ancilla reset and offline
  decoding.  Being pure Clifford, it scales to 50+ qubits on the
  stabilizer backend — the scenario class the dense simulator's
  24-qubit cap rules out.

:func:`run_repetition_memory` executes either through the full control
stack on a chosen simulation backend.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program
from repro.qcp.config import QCPConfig
from repro.qcp.shots import ShotEngine, ShotResult

DATA = (0, 1, 2)
ANCILLAS = (3, 4)
N_QUBITS = 5

#: Timing labels (cycles): single-qubit, two-qubit, measurement.
_T1, _T2, _TM = 2, 4, 30


def build_repetition_memory_program(rounds: int = 3,
                                    encode_one: bool = False,
                                    inject_x: int | None = None
                                    ) -> Program:
    """A ``rounds``-round repetition-code memory experiment.

    Encodes |0>_L (or |1>_L), then each round measures both stabilizers,
    decodes the two-bit syndrome in classical registers and applies the
    indicated X correction before the next round; finally all data
    qubits are measured (majority vote happens offline).

    ``inject_x`` deterministically applies an X error on that data
    qubit right after encoding — the controlled experiment validating
    that the real-time decode-and-correct pipeline fixes every
    single-qubit bit-flip.

    Syndrome decoding (s0 = Z0Z1, s1 = Z1Z2):

    ======  ======  ==========
    s0      s1      correction
    ======  ======  ==========
    0       0       none
    1       0       X on d0
    1       1       X on d1
    0       1       X on d2
    ======  ======  ==========
    """
    if rounds < 1:
        raise ValueError("need at least one round")
    builder = ProgramBuilder(f"repetition_memory_{rounds}r")
    with builder.block("memory", priority=0):
        if encode_one:
            builder.qop("x", [DATA[0]], timing=0)
        # Encode across the three data qubits.
        builder.qop("cnot", [DATA[0], DATA[1]], timing=_T1)
        builder.qop("cnot", [DATA[0], DATA[2]], timing=_T2)
        if inject_x is not None:
            if inject_x not in DATA:
                raise ValueError(
                    f"inject_x must be a data qubit, got {inject_x}")
            builder.qop("x", [inject_x], timing=_T2)
        for round_index in range(rounds):
            _emit_round(builder, round_index)
        for qubit in DATA:
            builder.qmeas(qubit, timing=_TM if qubit == DATA[0] else 0)
        builder.halt()
    return builder.build()


def _emit_round(builder: ProgramBuilder, round_index: int) -> None:
    a0, a1 = ANCILLAS
    # Stabilizer extraction: Z0Z1 -> a0, Z1Z2 -> a1 (phase-free CNOTs).
    builder.qop("cnot", [DATA[0], a0], timing=_T2)
    builder.qop("cnot", [DATA[2], a1], timing=0)
    builder.qop("cnot", [DATA[1], a0], timing=_T2)
    builder.qop("cnot", [DATA[1], a1], timing=0)
    builder.qmeas(a0, timing=_T2)
    builder.qmeas(a1, timing=0)
    # Classical decode: r1 = s0, r2 = s1 (waits for the results).
    builder.fmr(1, a0)
    builder.fmr(2, a1)
    # Correction selection by branching on the syndrome pair.
    done = builder.fresh_label(f"round{round_index}_done")
    fix_d2 = builder.fresh_label(f"round{round_index}_d2")
    s0_set = builder.fresh_label(f"round{round_index}_s0")
    builder.bne(1, 0, s0_set)
    builder.bne(2, 0, fix_d2)
    builder.jmp(done)
    builder.label(s0_set)
    fix_d1 = builder.fresh_label(f"round{round_index}_d1")
    builder.bne(2, 0, fix_d1)
    builder.qop("x", [DATA[0]], timing=0)
    builder.jmp(done)
    builder.label(fix_d1)
    builder.qop("x", [DATA[1]], timing=0)
    builder.jmp(done)
    builder.label(fix_d2)
    builder.qop("x", [DATA[2]], timing=0)
    builder.label(done)
    # Reset the ancillas for the next round (simple feedback control).
    builder.mrce(a0, a0, "i", "x")
    builder.mrce(a1, a1, "i", "x")


def decode_majority(bits: dict[int, int]) -> int:
    """Offline majority vote over the three data-qubit readouts."""
    total = sum(bits[q] for q in DATA)
    return 1 if total >= 2 else 0


# -- generalised distance-n chain -----------------------------------------


def chain_layout(n_data: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """(data, ancilla) qubit indices of the ``n_data``-qubit chain.

    Data qubits are ``0..n_data-1``; ancilla ``n_data + i`` measures
    the stabilizer Z_i Z_{i+1}.
    """
    if n_data < 2:
        raise ValueError("a repetition chain needs at least two data qubits")
    data = tuple(range(n_data))
    ancillas = tuple(range(n_data, 2 * n_data - 1))
    return data, ancillas


def build_repetition_chain_program(n_data: int, rounds: int = 1,
                                   encode_one: bool = False,
                                   inject_x: int | None = None) -> Program:
    """A ``rounds``-round, ``n_data``-qubit repetition-code memory.

    Each round extracts every Z_i Z_{i+1} stabilizer into its own
    ancilla, reads the ancillas out and actively resets them with MRCE
    feedback; the data qubits are measured at the end and decoded
    offline (:func:`decode_chain_majority`).  Unlike the 3-qubit
    program there is no in-loop branch decoder — the general syndrome
    lookup grows exponentially in branch code — which keeps the
    program pure Clifford and linear in ``n_data``: exactly the shape
    that exercises the stabilizer backend at 50+ qubits.

    ``inject_x`` flips one data qubit right after encoding, so the
    syndrome pattern (ancillas adjacent to the flip fire every round)
    is deterministic and testable.
    """
    if rounds < 1:
        raise ValueError("need at least one round")
    data, ancillas = chain_layout(n_data)
    builder = ProgramBuilder(f"repetition_chain_{n_data}d_{rounds}r")
    with builder.block("memory", priority=0):
        if encode_one:
            builder.qop("x", [data[0]], timing=0)
        for position, qubit in enumerate(data[1:]):
            builder.qop("cnot", [data[0], qubit],
                        timing=_T1 if position == 0 else _T2)
        if inject_x is not None:
            if inject_x not in data:
                raise ValueError(
                    f"inject_x must be a data qubit, got {inject_x}")
            builder.qop("x", [inject_x], timing=_T2)
        for _ in range(rounds):
            for index, ancilla in enumerate(ancillas):
                builder.qop("cnot", [data[index], ancilla],
                            timing=_T2 if index == 0 else 0)
                builder.qop("cnot", [data[index + 1], ancilla], timing=_T2)
            for index, ancilla in enumerate(ancillas):
                builder.qmeas(ancilla, timing=_TM if index == 0 else 0)
            for ancilla in ancillas:
                builder.mrce(ancilla, ancilla, "i", "x")
        for index, qubit in enumerate(data):
            builder.qmeas(qubit, timing=_TM if index == 0 else 0)
        builder.halt()
    return builder.build()


def decode_chain_majority(bits: dict[int, int], n_data: int) -> int:
    """Offline majority vote over the chain's data-qubit readouts."""
    data, _ = chain_layout(n_data)
    total = sum(bits[q] for q in data)
    return 1 if 2 * total >= len(data) else 0


def run_repetition_memory(rounds: int = 3, shots: int = 20,
                          n_data: int = 3,
                          backend: str = "statevector",
                          config: QCPConfig | None = None,
                          encode_one: bool = False,
                          inject_x: int | None = None) -> ShotResult:
    """Run a repetition-code memory through the full control stack.

    ``n_data == 3`` uses the real-time decode-and-correct program;
    larger chains use :func:`build_repetition_chain_program` with
    offline decoding.  ``backend`` selects the simulation backend —
    ``"stabilizer"`` is required beyond 24 total qubits
    (``n_data >= 13``).
    """
    if n_data == 3:
        program = build_repetition_memory_program(
            rounds=rounds, encode_one=encode_one, inject_x=inject_x)
    else:
        program = build_repetition_chain_program(
            n_data, rounds=rounds, encode_one=encode_one,
            inject_x=inject_x)
    engine = ShotEngine(program, config=config, backend=backend,
                        n_qubits=2 * n_data - 1)
    return engine.run(shots)
