"""Feed-forward workloads authored with the dynamic-circuit SDK.

Three workload families the paper's dynamic-control features exist
for, all Clifford-only so both backends execute them bit-identically:

* :func:`build_teleport_chain_program` — a state hops across ``hops``
  Bell pairs, each hop applying the classic feed-forward X/Z
  corrections (lowered to MRCE by the SDK peephole).  Noiselessly the
  delivered state is deterministic, which makes the chain a golden
  end-to-end test of the correction path.
* :func:`build_distillation_program` — a magic-state-distillation
  shaped repeat-until-success unit: refresh two candidate qubits, run a
  Z-parity and an X-parity check, accept only when both pass, retry up
  to ``max_attempts`` times, and flag exhaustion on a herald qubit.
  The acceptance loop is where the trace trie forks hardest.
* :func:`build_superscalar_mix_program` — three independent dynamic
  workloads in prioritized program blocks (the multi-program scenario
  of Section 5.2): a teleport, an RUS unit and a parity-feedback unit
  sharing one program for the block scheduler to interleave.
"""

from __future__ import annotations

from repro.isa.program import Program
from repro.sdk import SdkBuilder


def teleport_chain_qubits(hops: int) -> int:
    """Total qubits of the ``hops``-hop teleportation chain."""
    return 1 + 2 * hops


def build_teleport_chain_program(hops: int = 2,
                                 state_one: bool = True) -> Program:
    """Teleport a qubit through ``hops`` Bell pairs with feed-forward.

    Each hop consumes a fresh Bell pair: Bell measurement on the
    current carrier, then the measurement-dependent X/Z corrections on
    the receiving half.  The final carrier is measured; with
    ``state_one`` the noiseless readout is always 1.
    """
    if hops < 1:
        raise ValueError("need at least one hop")
    sdk = SdkBuilder(f"teleport_chain_{hops}h")
    carrier = sdk.qubit()
    if state_one:
        carrier.x()
    for _ in range(hops):
        near, far = sdk.qubits(2)
        near.h()
        near.cnot(far)
        carrier.cnot(near)
        carrier.h()
        m_near = near.measure()
        m_carrier = carrier.measure()
        with sdk.if_(m_near == 1):
            far.x()
        with sdk.if_(m_carrier == 1):
            far.z()
        carrier = far
    carrier.measure()
    return sdk.build()


DISTILLATION_QUBITS = 5


def build_distillation_program(max_attempts: int = 3) -> Program:
    """RUS distillation unit: accept when both parity checks pass.

    Layout: q0/q1 candidate pair, q2/q3 check ancillas, q4 herald.
    Every attempt re-prepares the candidates, extracts the Z-parity
    (random on fresh |+> states — the retry entropy) and the X-parity
    (deterministic on |+>|+>, so one check *always* passes: the
    conjunction still forks the trace at the Z check), and the loop
    accepts on ``(z == 0) & (x == 0)``.  If every attempt fails, the
    herald qubit is flipped so the exhausted shots are visible in the
    histogram.
    """
    if max_attempts < 1:
        raise ValueError("need at least one attempt")
    sdk = SdkBuilder(f"distill_{max_attempts}a")
    cand_a, cand_b = sdk.qubits(2)
    z_check, x_check = sdk.qubits(2)
    herald = sdk.qubit()
    with sdk.loop_until(max_attempts=max_attempts) as loop:
        # Refresh the candidate pair (reset-free: H twice re-randomises
        # whatever the parity checks projected last attempt).
        cand_a.h()
        cand_b.h()
        # Z-parity of the pair into the first check ancilla.
        cand_a.cnot(z_check)
        cand_b.cnot(z_check)
        z_result = z_check.measure_and_reset()
        # X-parity via the conjugated extraction.
        x_check.h()
        x_check.cnot(cand_a)
        x_check.cnot(cand_b)
        x_check.h()
        x_result = x_check.measure_and_reset()
        loop.until((z_result == 0) & (x_result == 0))
    with sdk.if_((z_result == 1) | (x_result == 1)):
        # All attempts failed: herald the rejection.
        herald.x()
        herald.identity()
    herald.measure()
    cand_a.measure()
    cand_b.measure()
    return sdk.build()


SUPERSCALAR_MIX_QUBITS = 8


def build_superscalar_mix_program() -> Program:
    """Three dynamic workloads in prioritized blocks on disjoint qubits.

    * ``w_teleport`` (priority 0): one-hop teleport of |1> on q0-q2;
    * ``w_rus`` (priority 0): bounded RUS coin-flip loop on q3-q4;
    * ``w_parity`` (priority 1): parity check with branch feedback on
      q5-q7, scheduled after the priority-0 blocks complete.

    Same-priority blocks are what the multiprocessor scheduler may run
    in parallel; the mix is the benchmark for block-level superscalar
    issue under real feed-forward, not straight-line gates.
    """
    sdk = SdkBuilder("superscalar_mix")
    src, near, far = sdk.qubits(3)
    rus_q, rus_flag = sdk.qubits(2)
    par_a, par_b, par_anc = sdk.qubits(3)

    with sdk.block("w_teleport", priority=0):
        src.x()
        near.h()
        near.cnot(far)
        src.cnot(near)
        src.h()
        m_near = near.measure()
        m_src = src.measure()
        with sdk.if_(m_near == 1):
            far.x()
        with sdk.if_(m_src == 1):
            far.z()
        far.measure()

    with sdk.block("w_rus", priority=0):
        with sdk.loop_until(max_attempts=3) as loop:
            rus_q.h()
            coin = rus_q.measure()
            loop.until(coin == 0)
        with sdk.if_(coin == 1):
            rus_flag.x()
            rus_flag.identity()
        rus_flag.measure()

    with sdk.block("w_parity", priority=1):
        par_a.h()
        par_b.h()
        par_a.cnot(par_anc)
        par_b.cnot(par_anc)
        parity = par_anc.measure_and_reset()
        with sdk.if_else(parity == 1) as branch:
            with branch.then():
                par_a.x()
            with branch.otherwise():
                par_a.z()
        par_a.measure()
        par_b.measure()

    return sdk.build()
