"""Multiprogramming workloads (Section 3.1.2).

Scenario 2 of the paper's CLP definition: several independent tasks
share one QPU simultaneously — the quantum-cloud utilisation case.  The
tasks are mapped onto disjoint qubit ranges, merged into one circuit,
and compiled with the ``components`` partition so each task becomes its
own program block at priority 0; the block scheduler then runs as many
tasks concurrently as there are processors.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.steps import schedule_asap
from repro.compiler.blocks import BlockPlan
from repro.compiler.compiler import (CompiledProgram,
                                     DEFAULT_CLOCK_PERIOD_NS)
from repro.compiler.lowering import lower_plans


def merge_circuits(circuits: list[QuantumCircuit],
                   name: str = "multiprogram") -> QuantumCircuit:
    """Place ``circuits`` on disjoint qubit ranges of one circuit."""
    if not circuits:
        raise ValueError("need at least one task")
    total = sum(circuit.n_qubits for circuit in circuits)
    merged = QuantumCircuit(total, name)
    offset = 0
    for circuit in circuits:
        mapping = {q: q + offset for q in range(circuit.n_qubits)}
        merged.compose(circuit, qubit_map=mapping)
        offset += circuit.n_qubits
    return merged


def compile_multiprogram(circuits: list[QuantumCircuit],
                         name: str = "multiprogram") -> CompiledProgram:
    """Compile independent tasks into *one block per task*.

    Unlike the ``components`` partition (which would split a task whose
    own qubits never interact), multiprogramming keeps each submitted
    task intact: all of its operations form one schedulable block, and
    every task gets priority 0 — they are mutually independent.
    """
    merged = merge_circuits(circuits, name)
    schedule = schedule_asap(merged)
    # Owner lookup: merged qubit -> task index.
    owner: dict[int, int] = {}
    offset = 0
    for index, circuit in enumerate(circuits):
        for qubit in range(circuit.n_qubits):
            owner[qubit + offset] = index
        offset += circuit.n_qubits

    plans = [BlockPlan(name=f"task{i}_{c.name}", priority=0)
             for i, c in enumerate(circuits)]
    step_of_start = {step.start_ns: step.index
                     for step in schedule.steps}
    per_plan_steps: dict[int, dict[int, list[int]]] = {
        i: {} for i in range(len(circuits))}
    for op_index in sorted(schedule.start_times):
        operation = merged.operations[op_index]
        task = owner[operation.qubits[0]]
        step_index = step_of_start[schedule.start_times[op_index]]
        per_plan_steps[task].setdefault(step_index, []).append(op_index)
    for index, plan in enumerate(plans):
        for step_index in sorted(per_plan_steps[index]):
            plan.steps.append((step_index,
                               per_plan_steps[index][step_index]))
    plans = [plan for plan in plans if plan.steps]
    builder = lower_plans(merged, schedule, plans,
                          DEFAULT_CLOCK_PERIOD_NS, name=name)
    program = builder.build()
    program.ensure_block_terminators()
    return CompiledProgram(program=program, schedule=schedule,
                           plans=plans,
                           clock_period_ns=DEFAULT_CLOCK_PERIOD_NS)


def _bell_task() -> QuantumCircuit:
    circuit = QuantumCircuit(2, "bell")
    circuit.h(0).cnot(0, 1).measure(0).measure(1)
    return circuit


def _ghz_task(n: int = 4) -> QuantumCircuit:
    circuit = QuantumCircuit(n, "ghz")
    circuit.h(0)
    for qubit in range(n - 1):
        circuit.cnot(qubit, qubit + 1)
    for qubit in range(n):
        circuit.measure(qubit)
    return circuit


def _rotation_task(n: int = 3, layers: int = 6) -> QuantumCircuit:
    circuit = QuantumCircuit(n, "rotations")
    for layer in range(layers):
        for qubit in range(n):
            circuit.rx(0.3 * (layer + 1), qubit)
        circuit.barrier()
    for qubit in range(n):
        circuit.measure(qubit)
    return circuit


def _parity_task(n: int = 4) -> QuantumCircuit:
    circuit = QuantumCircuit(n, "parity")
    for qubit in range(n - 1):
        circuit.h(qubit)
    for qubit in range(n - 1):
        circuit.cnot(qubit, n - 1)
    circuit.measure(n - 1)
    return circuit


def standard_task_mix() -> list[QuantumCircuit]:
    """Four independent cloud-style tasks (13 qubits total)."""
    return [_bell_task(), _ghz_task(4), _rotation_task(3),
            _parity_task(4)]
