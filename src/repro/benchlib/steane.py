"""Shor syndrome measurement for the Steane [[7,1,3]] code (Section 7).

The paper's CLP benchmark: 37 qubits (7 data + 6 stabilizers x (4-qubit
cat state + 1 verification qubit)), each of the six stabilizer
generators measured fault-tolerantly via bit-wise CNOT/CZ between the
encoded data block and a verified 4-qubit cat state.  Cat-state
preparation is *not* fault tolerant, so each one is verified and
repeated until the verification measurement returns 0
(repeat-until-success).  The whole measurement is repeated three times
for a majority vote.

Program structure (50 blocks, 15 priorities):

=========  ========================  ======  =========================
priority   blocks                    count   contents
=========  ========================  ======  =========================
0          encode                    1       logical-|0> preparation
1+4r       prep_r_s (s=0..5)         6x3     cat prep + RUS verify
2+4r       interact_x_r              1x3     X-stabilizer CNOTs
3+4r       interact_z_r              1x3     Z-stabilizer CZs
4+4r       meas_r_s (s=0..5)         6x3     ancilla readout + parity
13         vote_s (s=0..5)           6       majority vote per bit
14         report                    1       syndrome aggregation
=========  ========================  ======  =========================

Verification failures are drawn by the PRNG readout with the benchmark's
*failure rate*, exactly like the paper's FPGA test setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program

#: Steane code stabilizer supports (qubit indices into the data block).
#: Rows of the parity-check matrix H for the [[7,1,3]] code; the X- and
#: Z-type generators share the same supports.
STABILIZER_SUPPORTS: tuple[tuple[int, int, int, int], ...] = (
    (0, 1, 2, 3),
    (1, 2, 4, 5),
    (2, 3, 5, 6),
)

N_DATA = 7
ANCILLA_PER_STABILIZER = 5   # 4 cat qubits + 1 verification qubit
N_STABILIZERS = 6            # 3 X-type + 3 Z-type
N_QUBITS = N_DATA + N_STABILIZERS * ANCILLA_PER_STABILIZER  # 37

#: Shared-register addresses: syndrome bit of round r, stabilizer s.
def syndrome_addr(round_index: int, stabilizer: int) -> int:
    return round_index * N_STABILIZERS + stabilizer


#: Shared-register address of the majority-voted bit for a stabilizer.
def vote_addr(stabilizer: int) -> int:
    return 3 * N_STABILIZERS + stabilizer


#: Shared-register address of the aggregated syndrome word.
REPORT_ADDR = 4 * N_STABILIZERS

#: Timing labels (clock cycles at 10 ns): 1q gate, 2q gate, measurement.
_T1 = 2
_T2 = 4
_TM = 30


@dataclass(frozen=True)
class StabilizerLayout:
    """Qubit assignment for one stabilizer's ancilla block."""

    index: int
    cat: tuple[int, int, int, int]
    verify: int
    data: tuple[int, int, int, int]
    is_x_type: bool


def stabilizer_layouts() -> list[StabilizerLayout]:
    """The six stabilizers' qubit assignments."""
    layouts = []
    for index in range(N_STABILIZERS):
        base = N_DATA + index * ANCILLA_PER_STABILIZER
        support = STABILIZER_SUPPORTS[index % len(STABILIZER_SUPPORTS)]
        layouts.append(StabilizerLayout(
            index=index,
            cat=(base, base + 1, base + 2, base + 3),
            verify=base + 4,
            data=support,
            is_x_type=index < 3))
    return layouts


def _emit_encode(builder: ProgramBuilder) -> None:
    """Logical-|0> preparation for the Steane code (standard circuit)."""
    with builder.block("encode", priority=0):
        builder.qop("h", [0], timing=0)
        builder.qop("h", [1], timing=0)
        builder.qop("h", [3], timing=0)
        # CNOT cascade creating the encoded state.
        pairs = [(0, 2), (3, 5), (1, 6), (0, 4), (3, 6), (1, 5),
                 (0, 6), (1, 2), (3, 4)]
        for position, (control, target) in enumerate(pairs):
            builder.qop("cnot", [control, target],
                        timing=_T2 if position else _T1)
        builder.halt()


def _emit_prep_block(builder: ProgramBuilder, layout: StabilizerLayout,
                     round_index: int, priority: int) -> None:
    """Cat-state preparation + RUS verification for one stabilizer."""
    name = f"prep_r{round_index}_s{layout.index}"
    a0, a1, a2, a3 = layout.cat
    verify = layout.verify
    with builder.block(name, priority=priority):
        retry = builder.label(f"{name}_retry")
        # GHZ/cat state on the four ancillas.
        builder.qop("h", [a0], timing=0)
        builder.qop("cnot", [a0, a1], timing=_T1)
        builder.qop("cnot", [a1, a2], timing=_T2)
        builder.qop("cnot", [a2, a3], timing=_T2)
        # Parity verification of the cat ends into the verify qubit.
        builder.qop("cnot", [a0, verify], timing=_T2)
        builder.qop("cnot", [a3, verify], timing=_T2)
        builder.qmeas(verify, timing=_T2)
        builder.fmr(1, verify)
        success = builder.fresh_label(f"{name}_ok")
        builder.beq(1, 0, success)
        # Failure: correct and reset the whole ancilla block, retry.
        builder.qop("reset", [verify], timing=0)
        builder.qop("reset", [a0], timing=0)
        builder.qop("reset", [a1], timing=0)
        builder.qop("reset", [a2], timing=0)
        builder.qop("reset", [a3], timing=0)
        builder.jmp(retry)
        builder.label(success)
        builder.halt()


def _emit_interaction(builder: ProgramBuilder, round_index: int,
                      x_type: bool, priority: int,
                      layouts: list[StabilizerLayout]) -> None:
    """Bit-wise coupling between cat qubits and the data block."""
    kind = "x" if x_type else "z"
    name = f"interact_{kind}_r{round_index}"
    with builder.block(name, priority=priority):
        first = True
        for layout in layouts:
            if layout.is_x_type != x_type:
                continue
            for cat_qubit, data_qubit in zip(layout.cat, layout.data):
                gate = "cnot" if x_type else "cz"
                builder.qop(gate, [cat_qubit, data_qubit],
                            timing=0 if first else _T2)
                first = False
        builder.halt()


def _emit_measure_block(builder: ProgramBuilder,
                        layout: StabilizerLayout, round_index: int,
                        priority: int) -> None:
    """Read out a stabilizer's cat qubits and store the parity."""
    name = f"meas_r{round_index}_s{layout.index}"
    with builder.block(name, priority=priority):
        for position, qubit in enumerate(layout.cat):
            builder.qmeas(qubit, timing=0 if position else _TM)
        # Gather the four results and fold their parity.
        for position, qubit in enumerate(layout.cat):
            builder.fmr(2 + position, qubit)
        builder.xor(1, 2, 3)
        builder.xor(1, 1, 4)
        builder.xor(1, 1, 5)
        builder.stm(1, syndrome_addr(round_index, layout.index))
        # Active reset so the next round's cat preparation starts from
        # |0000> — without it the collapsed readout state leaks into
        # the next round, corrupting both its verification parity and
        # its extracted syndrome.
        for position, qubit in enumerate(layout.cat):
            builder.qop("reset", [qubit],
                        timing=_T1 if position == 0 else 0)
        builder.halt()


def _emit_vote_block(builder: ProgramBuilder, stabilizer: int,
                     priority: int) -> None:
    """Majority vote over the three rounds of one syndrome bit."""
    with builder.block(f"vote_s{stabilizer}", priority=priority):
        builder.ldm(1, syndrome_addr(0, stabilizer))
        builder.ldm(2, syndrome_addr(1, stabilizer))
        builder.ldm(3, syndrome_addr(2, stabilizer))
        builder.and_(4, 1, 2)
        builder.and_(5, 1, 3)
        builder.and_(6, 2, 3)
        builder.or_(4, 4, 5)
        builder.or_(4, 4, 6)
        builder.stm(4, vote_addr(stabilizer))
        builder.halt()


def _emit_report_block(builder: ProgramBuilder, priority: int) -> None:
    """Aggregate the six voted bits into one syndrome word."""
    with builder.block("report", priority=priority):
        builder.ldi(1, 0)
        for stabilizer in range(N_STABILIZERS):
            builder.ldm(2, vote_addr(stabilizer))
            # Shift-and-or via repeated addition: r1 = r1 + r1 + r2.
            builder.add(1, 1, 1)
            builder.or_(1, 1, 2)
        builder.stm(1, REPORT_ADDR)
        builder.halt()


def build_shor_syndrome_program(rounds: int = 3) -> Program:
    """Assemble the full benchmark program.

    With the default three rounds this produces 50 program blocks over
    15 priorities, mirroring the paper's benchmark configuration.
    """
    if rounds < 1:
        raise ValueError("need at least one round")
    builder = ProgramBuilder("shor_syndrome_steane")
    layouts = stabilizer_layouts()
    _emit_encode(builder)
    for round_index in range(rounds):
        base = 1 + 4 * round_index
        for layout in layouts:
            _emit_prep_block(builder, layout, round_index, base)
        _emit_interaction(builder, round_index, True, base + 1, layouts)
        _emit_interaction(builder, round_index, False, base + 2, layouts)
        for layout in layouts:
            _emit_measure_block(builder, layout, round_index, base + 3)
    vote_priority = 1 + 4 * rounds
    for stabilizer in range(N_STABILIZERS):
        _emit_vote_block(builder, stabilizer, vote_priority)
    _emit_report_block(builder, vote_priority + 1)
    program = builder.build()
    program.ensure_block_terminators()
    return program


def verification_qubits() -> list[int]:
    """Qubits whose measurement outcome is the RUS failure signal."""
    return [layout.verify for layout in stabilizer_layouts()]


def run_shor_syndrome(rounds: int = 3, backend: str = "stabilizer",
                      seed: int = 0, n_processors: int = 6,
                      config=None) -> tuple[int, "object"]:
    """Execute the benchmark on a *functional* quantum substrate.

    The paper runs this program against PRNG readouts (its FPGA
    methodology); at 37 qubits the dense simulator cannot represent it
    either.  The circuit is pure Clifford, so the stabilizer backend
    runs it for real: cat states are genuinely entangled, verification
    measurements really project, and on the ideal code state every
    voted syndrome bit is 0.  Returns ``(syndrome_word, system)``.
    """
    from repro.qcp.config import QCPConfig
    from repro.qcp.system import QuAPESystem
    from repro.qpu.device import SimulatedQPU

    program = build_shor_syndrome_program(rounds=rounds)
    qpu = SimulatedQPU(N_QUBITS, seed=seed, backend=backend)
    system = QuAPESystem(program=program, config=config or QCPConfig(),
                         n_processors=n_processors, qpu=qpu,
                         n_qubits=N_QUBITS)
    system.run()
    system.kernel.run()
    return system.shared.read(REPORT_ADDR), system
