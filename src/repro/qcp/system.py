"""QuAPE system: processors + scheduler + emitter + QPU composition.

This is the reproduction's equivalent of the paper's Figure 5/8/9: a
multiprocessor control microarchitecture (each processor optionally a
quantum superscalar) issuing operations to a QPU either directly (the
"QCP board only" benchmark setup) or through AWG/DAQ board models (the
full control stack of Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analog.awg import AWG
from repro.analog.channels import ChannelMap
from repro.analog.daq import DAQ
from repro.isa.program import (BlockInfoTable, DependencyMode, Program)
from repro.qcp.config import QCPConfig
from repro.qcp.emitter import Emitter
from repro.qcp.memory import InstructionMemory, PrivateInstructionCache
from repro.qcp.metrics import CESAccumulator, TRReport, time_ratio
from repro.qcp.processor import ProcessorCore, ScalarProcessor
from repro.qcp.registers import (MeasurementResultRegisters,
                                 SharedRegisters)
from repro.qcp.scheduler import BlockScheduler
from repro.qcp.superscalar import SuperscalarProcessor
from repro.qcp.trace import Trace
from repro.qpu.device import PRNGQPU, QPUBase
from repro.sim.kernel import SimKernel


@dataclass
class ExecutionResult:
    """Outcome of one full program run."""

    total_ns: int
    trace: Trace
    ces: CESAccumulator
    config: QCPConfig
    events_processed: int = 0

    @property
    def total_cycles(self) -> int:
        return -(-self.total_ns // self.config.clock_period_ns)

    def tr_report(self,
                  step_durations_ns: dict[int, int] | None = None
                  ) -> TRReport:
        """TR per circuit step (Equation 2)."""
        return time_ratio(self.ces, self.config.clock_period_ns,
                          self.config.gate_time_ns, step_durations_ns)


def infer_qubit_count(program: Program) -> int:
    """Highest qubit index any instruction touches, plus one."""
    highest = 0
    for instr in program.instructions:
        for qubit in getattr(instr, "qubits", ()):
            highest = max(highest, qubit)
        for attr in ("qubit", "result_qubit", "target_qubit"):
            value = getattr(instr, attr, None)
            if isinstance(value, int):
                highest = max(highest, value)
    return highest + 1


@dataclass
class QuAPESystem:
    """Composition root wiring one complete control stack.

    ``qpu`` defaults to a :class:`PRNGQPU` (the paper's FPGA-benchmark
    methodology); pass ``qpu_backend`` ("statevector"/"stabilizer") to
    get a functional :class:`~repro.qpu.device.SimulatedQPU` instead.
    ``memory``/``table``/``channel_map`` accept pre-built, program-
    derived artifacts so a shot engine can decode the program once and
    share the results across many systems (they are immutable during a
    run); when omitted they are built here.
    """

    program: Program
    config: QCPConfig = field(default_factory=QCPConfig)
    n_processors: int = 1
    qpu: QPUBase | None = None
    dependency_mode: DependencyMode = DependencyMode.PRIORITY
    use_analog_boards: bool = False
    n_qubits: int | None = None
    qpu_backend: str | None = None
    memory: InstructionMemory | None = None
    table: BlockInfoTable | None = None
    channel_map: ChannelMap | None = None
    #: Trace-cache chronological recording stream: when set, every
    #: processor appends its classical-effect and decision entries to
    #: it (see :mod:`repro.qcp.tracecache`).
    recorder: list | None = None

    def __post_init__(self) -> None:
        if self.n_processors < 1:
            raise ValueError("need at least one processor")
        self.kernel = SimKernel()
        self.trace = Trace()
        qubits = self.n_qubits or infer_qubit_count(self.program)
        if self.qpu is None:
            if self.qpu_backend is not None:
                from repro.qpu.device import SimulatedQPU

                profile = None
                if self.config.device_profile is not None:
                    from repro.qpu.profile import load_device_profile
                    profile = load_device_profile(
                        self.config.device_profile)
                backend = self.qpu_backend
                if backend == "auto":
                    from repro.qcp.routing import route_backend
                    backend = route_backend(self.program, qubits,
                                            profile=profile).backend
                self.qpu = SimulatedQPU(qubits, backend=backend,
                                        profile=profile)
            else:
                self.qpu = PRNGQPU(qubits)
        self.results = MeasurementResultRegisters(self.qpu.n_qubits)
        self.shared = SharedRegisters()
        if self.memory is None:
            self.memory = InstructionMemory(self.program)
        if self.table is None:
            self.table = BlockInfoTable(self.program,
                                        mode=self.dependency_mode)
        if self.channel_map is None:
            self.channel_map = ChannelMap.default(self.qpu.n_qubits)
        awg = daq = None
        if self.use_analog_boards:
            awg = AWG(kernel=self.kernel, qpu=self.qpu)
            daq = DAQ(kernel=self.kernel, qpu=self.qpu,
                      deliver=self.results.deliver)
        self.emitter = Emitter(
            kernel=self.kernel, qpu=self.qpu, results=self.results,
            trace=self.trace,
            channel_map=self.channel_map,
            awg=awg, daq=daq,
            result_latency_ns=self.config.result_latency_ns)
        self.processors = [self._make_processor(i)
                           for i in range(self.n_processors)]
        self.scheduler = BlockScheduler(
            kernel=self.kernel, table=self.table,
            processors=self.processors, config=self.config,
            trace=self.trace)

    def _make_processor(self, proc_id: int) -> ProcessorCore:
        cache = PrivateInstructionCache(self.memory)
        cls = SuperscalarProcessor if self.config.is_superscalar \
            else ScalarProcessor
        core = cls(proc_id=proc_id, kernel=self.kernel,
                   config=self.config, cache=cache, shared=self.shared,
                   results=self.results, emitter=self.emitter,
                   trace=self.trace, on_done=self._processor_done)
        core.recording = self.recorder
        return core

    def _processor_done(self, processor: ProcessorCore) -> None:
        self.scheduler.processor_finished(processor)

    def run(self, max_events: int | None = 5_000_000) -> ExecutionResult:
        """Execute the whole program; returns the merged result.

        ``total_ns`` is the program completion time: the instant the last
        program block finishes execution.  The kernel keeps draining
        afterwards (trailing operation issues and result deliveries) so
        the trace is complete, but that tail is not program execution
        time.
        """
        completion = {"ns": 0}

        def mark_done() -> None:
            completion["ns"] = self.kernel.now

        self.scheduler.on_all_done = mark_done
        self.scheduler.start()
        self.kernel.run(max_events=max_events)
        if not self.scheduler.all_done:
            raise RuntimeError(
                "simulation drained with unfinished blocks: "
                + ", ".join(e.block.name for e in self.scheduler.entries
                            if e.state.value != "done"))
        ces = CESAccumulator()
        for processor in self.processors:
            ces.merge(processor.ces)
        # The program is complete when every block has finished *and*
        # the timing controllers have issued their last operation; the
        # trailing result-delivery latency of unread measurements is not
        # execution time.
        last_issue = max((record.time_ns for record in self.trace.issues),
                         default=0)
        return ExecutionResult(total_ns=max(completion["ns"], last_issue),
                               trace=self.trace, ces=ces,
                               config=self.config,
                               events_processed=self.kernel.events_processed)


def run_program(program: Program, config: QCPConfig | None = None,
                n_processors: int = 1, qpu: QPUBase | None = None,
                dependency_mode: DependencyMode = DependencyMode.PRIORITY,
                use_analog_boards: bool = False,
                n_qubits: int | None = None) -> ExecutionResult:
    """One-shot convenience wrapper around :class:`QuAPESystem`."""
    system = QuAPESystem(program=program, config=config or QCPConfig(),
                         n_processors=n_processors, qpu=qpu,
                         dependency_mode=dependency_mode,
                         use_analog_boards=use_analog_boards,
                         n_qubits=n_qubits)
    return system.run()
