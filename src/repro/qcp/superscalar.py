"""The quantum superscalar core (Section 5.3).

Per cycle the core:

1. performs any pending fast-context-switch work,
2. dispatches from the pre-decode buffer under the
   *parallel-until-classical* policy — at most one classical instruction
   (single classical pipeline) plus one group of quantum instructions
   sharing a timing point (the group's leader plus following label-0
   instructions, up to the number of quantum pipelines), and
3. fetches up to ``fetch_width`` instructions into the buffer.

Timing-hazard prevention happens in the pre-decoder: a quantum
instruction with a non-zero label ends the current group and waits for
the next cycle.  Recombination: if a group reaches the end of the buffer
while the next instruction in the cache would join it (a label-0 quantum
instruction), dispatch is deferred one cycle so instructions fetched in
different cycles can still issue together.  While a group is deferred, a
classical instruction *behind* it may dispatch ahead (the lookahead that
absorbs branch latency).
"""

from __future__ import annotations

from collections import deque

from repro.isa.instructions import Instruction, Mrce, Qmeas, Qop
from repro.qcp.processor import ProcessorCore, ProcState


class SuperscalarProcessor(ProcessorCore):
    """N-way fetch, pre-decode and multi-pipeline quantum dispatch."""

    def _reset_stream_state(self) -> None:
        self._buffer: deque[Instruction] = deque()
        self._fetch_pc = self.pc
        self._deferred_once = False

    # -- fetch ------------------------------------------------------------

    def _fetch_into_buffer(self) -> None:
        room = self.config.buffer_capacity - len(self._buffer)
        count = min(self.config.fetch_width, room)
        block = self.block
        while count > 0 and block is not None \
                and block.start <= self._fetch_pc < block.end:
            self._buffer.append(self.cache.fetch(self._fetch_pc))
            self._fetch_pc += 1
            count -= 1

    def _flush_buffer(self, new_pc: int) -> None:
        """Redirect fetch after a taken branch."""
        self._buffer.clear()
        self._fetch_pc = new_pc
        self._deferred_once = False

    def _peek_next_in_cache(self) -> Instruction | None:
        block = self.block
        if block is None or not block.start <= self._fetch_pc < block.end:
            return None
        return self.cache.fetch(self._fetch_pc)

    # -- dispatch ------------------------------------------------------------

    def _quantum_group(self) -> list[Qop | Qmeas]:
        """Maximal dispatchable group from the buffer head."""
        group: list[Qop | Qmeas] = []
        for instr in self._buffer:
            if not isinstance(instr, (Qop, Qmeas)):
                break
            if group and instr.timing != 0:
                break  # different timing point: next cycle
            if len(group) == self.config.n_quantum_pipelines:
                break
            group.append(instr)
        return group

    def _group_may_grow(self, group: list) -> bool:
        """True when deferring one cycle could enlarge the group."""
        if len(group) >= self.config.n_quantum_pipelines:
            return False
        if len(group) < len(self._buffer):
            return False  # something non-joinable follows in the buffer
        upcoming = self._peek_next_in_cache()
        return (isinstance(upcoming, (Qop, Qmeas))
                and upcoming.timing == 0)

    def _cycle(self) -> None:
        if self.state is not ProcState.RUNNING:
            return
        context = self.contexts.pop_resolved()
        if context is not None:
            self._perform_switch_back(context)
            self._schedule_cycle(0)
            return

        # Per-cycle attribution state: exactly one cycle is charged per
        # _cycle invocation, quantum taking precedence over classical.
        self._dispatched_quantum = False
        self._dispatched_classical = False
        self._cycle_step: int | None = None

        halted = stalled = False
        stall_cycles = 0
        while self._buffer and not (halted or stalled):
            head = self._buffer[0]
            if isinstance(head, (Qop, Qmeas)):
                action = self._try_dispatch_group()
                if action == "stop":
                    break
                if action == "stalled":
                    stalled = True
            elif isinstance(head, Mrce):
                if self._dispatched_quantum:
                    break
                # MRCE charges its own feedback cycles internally, so it
                # only blocks further quantum dispatch this cycle.
                _handled, mrce_stalled = self._dispatch_mrce(head)
                self._dispatched_quantum = True
                if mrce_stalled:
                    stalled = True
            else:
                if self._dispatched_classical:
                    break
                self._buffer.popleft()
                disposition, extra = self._dispatch_classical(head)
                self._dispatched_classical = True
                if disposition == "stall_fmr":
                    stalled = True
                elif disposition == "halt":
                    halted = True
                elif disposition == "taken":
                    stall_cycles = extra
                    break

        if halted and not self._dispatched_quantum:
            # A cycle that only dispatched halt is block packaging and
            # does not contribute to CES (Equation 1).
            self._dispatched_classical = False
        self._account_cycle(stall_cycles)
        if stalled:
            return  # resumption re-enters via the registered waiter
        if halted:
            if self.contexts.busy:
                self.state = ProcState.DRAIN
            else:
                self._finish_block()
            return
        self._fetch_into_buffer()
        if not self._buffer and self._fetch_pc >= (self.block.end
                                                   if self.block else 0):
            # Nothing left to run: a well-formed block ends in halt, so
            # reaching here means the block fell through.
            raise RuntimeError(
                f"block {self.block.name if self.block else '?'} "
                "ran past its end without halt")
        self._schedule_cycle(1 + stall_cycles)

    def _try_dispatch_group(self) -> str:
        """Dispatch (or defer) the quantum group at the buffer head.

        Returns ``"dispatched"``, ``"stop"`` (end this cycle's dispatch)
        or ``"stalled"`` (processor entered a wait state).
        """
        if self._dispatched_quantum:
            return "stop"
        group = self._quantum_group()
        if self.config.fast_context_switch and any(
                self.contexts.conflicts_with(instr.qubits)
                for instr in group):
            if self._dispatched_classical:
                return "stop"  # finish this cycle, stall next one
            self._stall_on_context_super(group)
            return "stalled"
        if self._group_may_grow(group) and not self._deferred_once:
            # Recombination: wait one cycle so parallel instructions
            # fetched in different cycles can issue together.  A
            # classical instruction behind the deferred group may
            # dispatch ahead of it (lookahead).
            self._deferred_once = True
            if not self._dispatched_classical:
                lookahead = self._lookahead_classical(len(group))
                if lookahead is not None:
                    self._dispatch_classical(lookahead)
                    self._dispatched_classical = True
            return "stop"
        self._deferred_once = False
        for instr in group:
            self._buffer.popleft()
            self._execute_quantum(instr)
        self._cycle_step = self._step_of(group[0])
        self._dispatched_quantum = True
        return "dispatched"

    def _account_cycle(self, stall_cycles: int) -> None:
        """Charge this cycle to the CES ledger (Equation 1 terms)."""
        if self._dispatched_quantum and self._cycle_step is not None:
            self.ces.quantum(self._cycle_step, 1)
        elif self._dispatched_classical:
            self.ces.classical(self._current_step, 1)
        if stall_cycles:
            self.ces.control_stall(self._current_step, stall_cycles)

    # -- helpers -------------------------------------------------------------

    def _lookahead_classical(self, skip: int) -> Instruction | None:
        """First classical instruction behind a deferred quantum group.

        Only non-control-flow classical instructions may be hoisted over
        unissued quantum work; branches must wait so that the quantum
        instructions ahead of them are never squashed.
        """
        for index in range(skip, len(self._buffer)):
            instr = self._buffer[index]
            if isinstance(instr, (Qop, Qmeas, Mrce)):
                return None
            if instr.is_branch or instr.opcode.name in ("HALT", "FMR"):
                return None
            del self._buffer[index]
            return instr
        return None

    def _dispatch_classical(self, instr: Instruction) -> tuple[str, int]:
        """Execute one classical instruction (already off the buffer)."""
        self.trace.instructions_executed += 1
        disposition, extra = self._apply_classical(instr)
        if disposition == "taken":
            self._flush_buffer(self.pc)
        elif disposition == "stall_fmr":
            self.state = ProcState.WAIT_RESULT
            self._stall_began_ns = self.kernel.now
            self.results.wait(
                instr.qubit,
                lambda value, _t: self._resume_fmr_super(instr, value))
        return disposition, extra

    def _resume_fmr_super(self, instr, value: int) -> None:
        now = self.kernel.now
        self.ces.excluded_wait(self._step_of(instr),
                               now - self._stall_began_ns)
        self.registers.write(instr.rd, value)
        self.ces.classical(self._step_of(instr), 1)
        self.state = ProcState.RUNNING
        self._schedule_cycle(1)

    def _dispatch_mrce(self, instr: Mrce) -> tuple[bool, bool]:
        """Dispatch an MRCE from the buffer head.

        Returns ``(handled, stalled)``.
        """
        if self.config.fast_context_switch:
            qubits = (instr.result_qubit, instr.target_qubit)
            if self.contexts.conflicts_with(qubits):
                self._stall_on_context_super([instr])
                return False, True
            if self._execute_mrce_fast(instr):
                self._buffer.popleft()
                return True, False
            self._stall_on_context_super([instr])
            return False, True
        self._buffer.popleft()
        if self._execute_mrce_blocking(instr):
            return True, False
        # Stalled waiting for the result; the base-class _resume_mrce
        # restarts the cycle loop (its pc increment is harmless here —
        # superscalar fetch is driven by _fetch_pc, not pc).
        return False, True

    def _stall_on_context_super(self, instrs: list) -> None:
        touched: list[int] = []
        for instr in instrs:
            if isinstance(instr, Mrce):
                touched.extend((instr.result_qubit, instr.target_qubit))
            else:
                touched.extend(instr.qubits)
        self.state = ProcState.WAIT_CONTEXT
        self._waiting_qubits = tuple(touched)
        self._stall_began_ns = self.kernel.now
