"""The quantum superscalar core (Section 5.3).

Per cycle the core:

1. performs any pending fast-context-switch work,
2. dispatches from the pre-decode buffer under the
   *parallel-until-classical* policy — at most one classical instruction
   (single classical pipeline) plus one group of quantum instructions
   sharing a timing point (the group's leader plus following label-0
   instructions, up to the number of quantum pipelines), and
3. fetches up to ``fetch_width`` instructions into the buffer.

Timing-hazard prevention happens in the pre-decoder: a quantum
instruction with a non-zero label ends the current group and waits for
the next cycle.  Recombination: if a group reaches the end of the buffer
while the next instruction in the cache would join it (a label-0 quantum
instruction), dispatch is deferred one cycle so instructions fetched in
different cycles can still issue together.  While a group is deferred, a
classical instruction *behind* it may dispatch ahead (the lookahead that
absorbs branch latency).

The buffer holds pre-decoded ``(kind, instr, payload)`` entries (see
:mod:`repro.qcp.decode`), so the per-cycle dispatch decisions are
integer compares on kind codes and the classical pipeline executes
compiled micro-ops.
"""

from __future__ import annotations

from collections import deque

from repro.isa.instructions import Mrce
from repro.qcp.decode import (DecodedInstr, K_BUNDLE, K_CLASSICAL,
                              K_MRCE, K_QMEAS)
from repro.qcp.processor import ProcessorCore, ProcState
from repro.qcp.tracecache import REC_FMR


class SuperscalarProcessor(ProcessorCore):
    """N-way fetch, pre-decode and multi-pipeline quantum dispatch."""

    def _reset_stream_state(self) -> None:
        self._buffer: deque[DecodedInstr] = deque()
        self._fetch_pc = self.pc
        self._deferred_once = False

    # -- fetch ------------------------------------------------------------

    def _fetch_into_buffer(self) -> None:
        room = self.config.buffer_capacity - len(self._buffer)
        count = min(self.config.fetch_width, room)
        block = self.block
        while count > 0 and block is not None \
                and block.start <= self._fetch_pc < block.end:
            self._buffer.append(self.cache.fetch_decoded(self._fetch_pc))
            self._fetch_pc += 1
            count -= 1

    def _flush_buffer(self, new_pc: int) -> None:
        """Redirect fetch after a taken branch."""
        self._buffer.clear()
        self._fetch_pc = new_pc
        self._deferred_once = False

    def _peek_next_in_cache(self) -> DecodedInstr | None:
        block = self.block
        if block is None or not block.start <= self._fetch_pc < block.end:
            return None
        return self.cache.fetch_decoded(self._fetch_pc)

    # -- dispatch ------------------------------------------------------------

    def _quantum_group(self) -> list[DecodedInstr]:
        """Maximal dispatchable group from the buffer head."""
        group: list[DecodedInstr] = []
        for entry in self._buffer:
            if entry[0] > K_QMEAS:
                break  # not a plain quantum instruction
            if group and entry[2][1] != 0:
                break  # different timing point: next cycle
            if len(group) == self.config.n_quantum_pipelines:
                break
            group.append(entry)
        return group

    def _group_may_grow(self, group: list) -> bool:
        """True when deferring one cycle could enlarge the group."""
        if len(group) >= self.config.n_quantum_pipelines:
            return False
        if len(group) < len(self._buffer):
            return False  # something non-joinable follows in the buffer
        upcoming = self._peek_next_in_cache()
        return (upcoming is not None and upcoming[0] <= K_QMEAS
                and upcoming[2][1] == 0)

    def _cycle(self) -> None:
        if self.state is not ProcState.RUNNING:
            return
        context = self.contexts.pop_resolved()
        if context is not None:
            self._perform_switch_back(context)
            self._schedule_cycle(0)
            return

        # Per-cycle attribution state: exactly one cycle is charged per
        # _cycle invocation, quantum taking precedence over classical.
        self._dispatched_quantum = False
        self._dispatched_classical = False
        self._cycle_step: int | None = None

        halted = stalled = False
        stall_cycles = 0
        while self._buffer and not (halted or stalled):
            kind = self._buffer[0][0]
            if kind <= K_QMEAS:
                action = self._try_dispatch_group()
                if action == "stop":
                    break
                if action == "stalled":
                    stalled = True
            elif kind == K_MRCE:
                if self._dispatched_quantum:
                    break
                # MRCE charges its own feedback cycles internally, so it
                # only blocks further quantum dispatch this cycle.
                _handled, mrce_stalled = self._dispatch_mrce(
                    self._buffer[0][1])
                self._dispatched_quantum = True
                if mrce_stalled:
                    stalled = True
            elif kind == K_BUNDLE:
                raise TypeError(
                    "VLIW bundles are not executable on the superscalar "
                    "core; run bundled programs on the scalar baseline")
            else:
                if self._dispatched_classical:
                    break
                entry = self._buffer.popleft()
                disposition, extra = self._dispatch_classical(entry)
                self._dispatched_classical = True
                if disposition == "stall_fmr":
                    stalled = True
                elif disposition == "halt":
                    halted = True
                elif disposition == "taken":
                    stall_cycles = extra
                    break

        if halted and not self._dispatched_quantum:
            # A cycle that only dispatched halt is block packaging and
            # does not contribute to CES (Equation 1).
            self._dispatched_classical = False
        self._account_cycle(stall_cycles)
        if stalled:
            return  # resumption re-enters via the registered waiter
        if halted:
            if self.contexts.busy:
                self.state = ProcState.DRAIN
            else:
                self._finish_block()
            return
        self._fetch_into_buffer()
        if not self._buffer and self._fetch_pc >= (self.block.end
                                                   if self.block else 0):
            # Nothing left to run: a well-formed block ends in halt, so
            # reaching here means the block fell through.
            raise RuntimeError(
                f"block {self.block.name if self.block else '?'} "
                "ran past its end without halt")
        self._schedule_cycle(1 + stall_cycles)

    def _try_dispatch_group(self) -> str:
        """Dispatch (or defer) the quantum group at the buffer head.

        Returns ``"dispatched"``, ``"stop"`` (end this cycle's dispatch)
        or ``"stalled"`` (processor entered a wait state).
        """
        if self._dispatched_quantum:
            return "stop"
        group = self._quantum_group()
        if self.config.fast_context_switch and any(
                self.contexts.conflicts_with(entry[2][0].qubits)
                for entry in group):
            if self._dispatched_classical:
                return "stop"  # finish this cycle, stall next one
            self._stall_on_context_super(
                tuple(q for entry in group
                      for q in entry[2][0].qubits))
            return "stalled"
        if self._group_may_grow(group) and not self._deferred_once:
            # Recombination: wait one cycle so parallel instructions
            # fetched in different cycles can issue together.  A
            # classical instruction behind the deferred group may
            # dispatch ahead of it (lookahead).
            self._deferred_once = True
            if not self._dispatched_classical:
                lookahead = self._lookahead_classical(len(group))
                if lookahead is not None:
                    self._dispatch_classical(lookahead)
                    self._dispatched_classical = True
            return "stop"
        self._deferred_once = False
        first_step: int | None = None
        for index, entry in enumerate(group):
            self._buffer.popleft()
            kind, _instr, (op, timing, step_id) = entry
            if index == 0:
                first_step = step_id if step_id is not None \
                    else self._current_step
            self._execute_quantum_decoded(op, timing, step_id,
                                          kind == K_QMEAS)
        self._cycle_step = first_step
        self._dispatched_quantum = True
        return "dispatched"

    def _account_cycle(self, stall_cycles: int) -> None:
        """Charge this cycle to the CES ledger (Equation 1 terms)."""
        if self._dispatched_quantum and self._cycle_step is not None:
            self.ces.quantum(self._cycle_step, 1)
        elif self._dispatched_classical:
            self.ces.classical(self._current_step, 1)
        if stall_cycles:
            self.ces.control_stall(self._current_step, stall_cycles)

    # -- helpers -------------------------------------------------------------

    def _lookahead_classical(self, skip: int) -> DecodedInstr | None:
        """First classical instruction behind a deferred quantum group.

        Only non-control-flow classical instructions may be hoisted over
        unissued quantum work; branches must wait so that the quantum
        instructions ahead of them are never squashed.
        """
        for index in range(skip, len(self._buffer)):
            entry = self._buffer[index]
            if entry[0] != K_CLASSICAL:
                return None
            if not entry[2][1]:  # not hoistable (branch/halt/fmr)
                return None
            del self._buffer[index]
            return entry
        return None

    def _dispatch_classical(self, entry: DecodedInstr) -> tuple[str, int]:
        """Execute one classical micro-op (already off the buffer)."""
        _kind, instr, (run, _hoistable, eclass) = entry
        self.trace.instructions_executed += 1
        disposition, extra = run(self)
        if self.recording is not None and eclass:
            self._record_classical(instr, run, eclass, disposition)
        if disposition == "taken":
            self._flush_buffer(self.pc)
        elif disposition == "stall_fmr":
            self.state = ProcState.WAIT_RESULT
            self._stall_began_ns = self.kernel.now
            self.results.wait(
                instr.qubit,
                lambda value, _t: self._resume_fmr_super(instr, value))
        return disposition, extra

    def _resume_fmr_super(self, instr, value: int) -> None:
        now = self.kernel.now
        self.ces.excluded_wait(self._step_of(instr),
                               now - self._stall_began_ns)
        self.registers.write(instr.rd, value)
        if self.recording is not None:
            self.recording.append((REC_FMR, self.proc_id, instr.rd,
                                   instr.qubit))
        self.ces.classical(self._step_of(instr), 1)
        self.state = ProcState.RUNNING
        self._schedule_cycle(1)

    def _dispatch_mrce(self, instr: Mrce) -> tuple[bool, bool]:
        """Dispatch the MRCE at the buffer head.

        Returns ``(handled, stalled)``.
        """
        if self.config.fast_context_switch:
            qubits = (instr.result_qubit, instr.target_qubit)
            if self.contexts.conflicts_with(qubits):
                self._stall_on_context_super(qubits)
                return False, True
            if self._execute_mrce_fast(instr):
                self._buffer.popleft()
                return True, False
            self._stall_on_context_super(qubits)
            return False, True
        self._buffer.popleft()
        if self._execute_mrce_blocking(instr):
            return True, False
        # Stalled waiting for the result; the base-class _resume_mrce
        # restarts the cycle loop (its pc increment is harmless here —
        # superscalar fetch is driven by _fetch_pc, not pc).
        return False, True

    def _stall_on_context_super(self, qubits: tuple[int, ...]) -> None:
        self.state = ProcState.WAIT_CONTEXT
        self._waiting_qubits = tuple(qubits)
        self._stall_began_ns = self.kernel.now
