"""Dynamic program-block scheduler (Section 5.2.2).

The scheduler continuously polls the block information table, performs
dependency checks (priority-counter mode or direct bit-vector mode),
allocates eligible blocks to idle processors, and prefetches upcoming
blocks into the processors' inactive cache banks so a block switch costs
only a few cycles.

Faithful cost model:

* the scheduler serves **one request at a time** — "during allocation,
  the scheduler is busy and does not answer to other requests";
* a full allocation costs ``alloc_fixed_cycles`` response time plus
  the cache-fill time (``alloc_bus_width`` instructions per cycle);
  a prefetch costs the copy time; switching a prefetched bank costs
  ``cache_switch_cycles``;
* before the task starts the scheduler may prefetch only as many blocks
  as there are processors (the Figure 11 test protocol).

``ideal_scheduler=True`` zeroes every cost — the theoretical-speedup
curve of Figure 11b.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.isa.program import (BlockInfo, BlockInfoTable, DependencyMode)
from repro.qcp.config import QCPConfig
from repro.qcp.processor import ProcessorCore
from repro.qcp.trace import BlockEvent, BlockEventKind, Trace
from repro.sim.kernel import SimKernel


class BlockState(enum.Enum):
    WAIT = "wait"
    PREFETCH = "prefetch"        # being (or already) copied to a bank
    READY = "ready"              # prefetched, dependency not yet satisfied
    IN_EXECUTION = "in_execution"
    DONE = "done"


@dataclass
class _Entry:
    block: BlockInfo
    state: BlockState = BlockState.WAIT
    processor: int | None = None  # where prefetched / executing


class BlockScheduler:
    """Allocates program blocks to processors at run time."""

    def __init__(self, kernel: SimKernel, table: BlockInfoTable,
                 processors: list[ProcessorCore], config: QCPConfig,
                 trace: Trace) -> None:
        self.kernel = kernel
        self.table = table
        self.processors = processors
        self.config = config
        self.trace = trace
        self.entries = [_Entry(block=block) for block in table.entries]
        self.priority_counter = 0
        self.busy = False
        self._poll_scheduled = False
        self._finished = False
        self.on_all_done = None  # type: ignore[assignment]

    # -- public ------------------------------------------------------------

    def start(self) -> None:
        """Initial prefetches (bounded by processor count), then run."""
        initial = 0
        entries = self.entries if self.config.enable_prefetch else []
        for entry in entries:
            if initial >= len(self.processors):
                break
            if self._dependency_met(entry):
                processor = self.processors[initial]
                self._prefetch_now(entry, processor)
                initial += 1
        self._request_poll()

    @property
    def all_done(self) -> bool:
        return all(entry.state is BlockState.DONE
                   for entry in self.entries)

    def processor_finished(self, processor: ProcessorCore) -> None:
        """Callback wired to every processor's block completion."""
        for entry in self.entries:
            if (entry.state is BlockState.IN_EXECUTION
                    and entry.processor == processor.proc_id):
                entry.state = BlockState.DONE
                entry.processor = None
                self.trace.record_block_event(BlockEvent(
                    self.kernel.now, BlockEventKind.EXEC_DONE,
                    entry.block.name, processor.proc_id))
                break
        self._advance_priority_counter()
        if self.all_done and not self._finished:
            self._finished = True
            if self.on_all_done is not None:
                self.on_all_done()
            return
        self._request_poll()

    # -- dependency checking ---------------------------------------------------

    def _advance_priority_counter(self) -> None:
        if self.table.mode is not DependencyMode.PRIORITY:
            return
        while True:
            current = [entry for entry in self.entries
                       if entry.block.priority == self.priority_counter]
            if current and all(entry.state is BlockState.DONE
                               for entry in current):
                self.priority_counter += 1
                continue
            if not current and self.priority_counter < max(
                    (e.block.priority for e in self.entries), default=0):
                self.priority_counter += 1
                continue
            return

    def _dependency_met(self, entry: _Entry) -> bool:
        if self.table.mode is DependencyMode.PRIORITY:
            return entry.block.priority <= self.priority_counter
        done = {e.block.name for e in self.entries
                if e.state is BlockState.DONE}
        return all(dep in done for dep in entry.block.deps)

    def _dependency_running_or_met(self, entry: _Entry) -> bool:
        """Prefetch eligibility: deps done *or* currently executing."""
        if self.table.mode is DependencyMode.PRIORITY:
            if entry.block.priority <= self.priority_counter:
                return True
            if entry.block.priority != self.priority_counter + 1:
                return False
            current = [e for e in self.entries
                       if e.block.priority == self.priority_counter]
            return all(e.state in (BlockState.IN_EXECUTION,
                                   BlockState.DONE) for e in current)
        active = {e.block.name for e in self.entries
                  if e.state in (BlockState.IN_EXECUTION,
                                 BlockState.DONE)}
        return all(dep in active for dep in entry.block.deps)

    # -- the scheduling loop ----------------------------------------------------

    def _request_poll(self) -> None:
        if self._poll_scheduled or self.busy or self._finished:
            return
        self._poll_scheduled = True
        delay = 0 if self.config.ideal_scheduler else \
            self.config.scheduler_poll_cycles * self.config.clock_period_ns
        self.kernel.schedule(delay, self._poll)

    def _poll(self) -> None:
        self._poll_scheduled = False
        if self.busy or self._finished:
            return
        action = self._pick_action()
        if action is not None:
            action()
            return
        # Nothing actionable now; events (processor completions) will
        # re-trigger polling.

    def _pick_action(self):
        # 1. Switch: an idle processor whose prefetched block is eligible.
        for processor in self.processors:
            if not processor.idle:
                continue
            block = processor.cache.prefetched_block
            if block is None:
                continue
            entry = self._entry_of(block.name)
            if entry.state in (BlockState.PREFETCH, BlockState.READY) \
                    and self._dependency_met(entry):
                return lambda e=entry, p=processor: self._do_switch(e, p)
        # 2. Full allocation: eligible block, idle processor, no prefetch.
        idle = [p for p in self.processors
                if p.idle and p.cache.prefetched_block is None]
        if idle:
            for entry in self.entries:
                if entry.state is BlockState.WAIT \
                        and self._dependency_met(entry):
                    return lambda e=entry, p=idle[0]: self._do_alloc(e, p)
        # 3. Prefetch: upcoming block into a free inactive bank.
        if not self.config.enable_prefetch:
            return None
        for entry in self.entries:
            if entry.state is not BlockState.WAIT:
                continue
            if not self._dependency_running_or_met(entry):
                continue
            target = self._prefetch_target()
            if target is None:
                return None
            return lambda e=entry, p=target: self._do_prefetch(e, p)
        return None

    def _entry_of(self, name: str) -> _Entry:
        for entry in self.entries:
            if entry.block.name == name:
                return entry
        raise KeyError(name)

    def _prefetch_target(self) -> ProcessorCore | None:
        """A processor with a free inactive bank, busiest first.

        Prefetching behind a *busy* processor is the paper's pattern:
        the block will be switched to as soon as the current one ends.
        """
        busy = [p for p in self.processors
                if not p.idle and p.cache.inactive_bank_free]
        if busy:
            return busy[0]
        idle = [p for p in self.processors
                if p.idle and p.cache.inactive_bank_free
                and p.cache.prefetched_block is None]
        return idle[0] if idle else None

    # -- actions (each occupies the scheduler) ------------------------------------

    def _fill_cycles(self, size: int) -> int:
        """Cycles to copy ``size`` instructions into a private cache."""
        return -(-size // self.config.alloc_bus_width)

    def _occupy(self, cycles: int, done) -> None:
        self.busy = True
        delay = 0 if self.config.ideal_scheduler else \
            cycles * self.config.clock_period_ns
        self.kernel.schedule(delay, self._release, done)

    def _release(self, done) -> None:
        self.busy = False
        done()
        self._request_poll()

    def _do_switch(self, entry: _Entry, processor: ProcessorCore) -> None:
        self.trace.record_block_event(BlockEvent(
            self.kernel.now, BlockEventKind.SWITCH, entry.block.name,
            processor.proc_id))
        entry.state = BlockState.IN_EXECUTION
        entry.processor = processor.proc_id

        def finish() -> None:
            block = processor.cache.switch()
            self.trace.record_block_event(BlockEvent(
                self.kernel.now, BlockEventKind.EXEC_START, block.name,
                processor.proc_id))
            processor.start_block(block)

        self._occupy(self.config.cache_switch_cycles, finish)

    def _do_alloc(self, entry: _Entry, processor: ProcessorCore) -> None:
        self.trace.record_block_event(BlockEvent(
            self.kernel.now, BlockEventKind.ALLOC_START, entry.block.name,
            processor.proc_id))
        entry.state = BlockState.IN_EXECUTION
        entry.processor = processor.proc_id
        cycles = (self.config.alloc_fixed_cycles
                  + self._fill_cycles(entry.block.size))

        def finish() -> None:
            processor.cache.fill_active(entry.block)
            self.trace.record_block_event(BlockEvent(
                self.kernel.now, BlockEventKind.ALLOC_DONE,
                entry.block.name, processor.proc_id))
            self.trace.record_block_event(BlockEvent(
                self.kernel.now, BlockEventKind.EXEC_START,
                entry.block.name, processor.proc_id))
            processor.start_block(entry.block)

        self._occupy(cycles, finish)

    def _do_prefetch(self, entry: _Entry,
                     processor: ProcessorCore) -> None:
        self.trace.record_block_event(BlockEvent(
            self.kernel.now, BlockEventKind.PREFETCH_START,
            entry.block.name, processor.proc_id))
        entry.state = BlockState.PREFETCH
        entry.processor = processor.proc_id
        cycles = self._fill_cycles(entry.block.size)

        def finish() -> None:
            processor.cache.prefetch(entry.block)
            entry.state = BlockState.READY
            self.trace.record_block_event(BlockEvent(
                self.kernel.now, BlockEventKind.PREFETCH_DONE,
                entry.block.name, processor.proc_id))

        self._occupy(cycles, finish)

    def _prefetch_now(self, entry: _Entry,
                      processor: ProcessorCore) -> None:
        """Pre-start prefetch: free, done before the task begins."""
        processor.cache.prefetch(entry.block)
        entry.state = BlockState.READY
        entry.processor = processor.proc_id
        self.trace.record_block_event(BlockEvent(
            self.kernel.now, BlockEventKind.PREFETCH_DONE,
            entry.block.name, processor.proc_id))
