"""Configuration of the QuAPE control processor model.

Defaults follow the paper's FPGA prototype: 100 MHz core clock
(Section 6.1), 3-cycle fast context switch (Section 7), ~450 ns total
feedback-control latency (Section 7; 300 ns readout pulse + 100 ns
acquisition + conditional-logic cycles), 20 ns gate time and 10 ns clock
time for the TR metric (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class QCPConfig:
    """All tunable microarchitecture parameters."""

    # -- clock -----------------------------------------------------------
    clock_period_ns: int = 10

    # -- processor core ----------------------------------------------------
    #: Instructions fetched per cycle (1 = scalar baseline).
    fetch_width: int = 1
    #: Quantum pipelines, i.e. max quantum ops dispatched per cycle.
    n_quantum_pipelines: int = 1
    #: Pre-decoder buffer capacity in instructions (superscalar only).
    buffer_capacity: int = 16
    #: Pipeline-flush penalty of a taken branch, in cycles.
    branch_penalty_cycles: int = 2
    #: Stage-III conditional-logic cycles of a feedback decision.
    mrce_logic_cycles: int = 2
    #: Whether MRCE uses the fast context switch (Section 5.4).
    fast_context_switch: bool = False
    #: Cycles to save/restore an MRCE context (measured as 3, Section 7).
    context_switch_cycles: int = 3
    #: Maximum simultaneously pending MRCE contexts.
    context_slots: int = 4

    # -- block scheduler ---------------------------------------------------
    #: Fixed scheduling-response cycles per allocation request.
    alloc_fixed_cycles: int = 6
    #: Instructions copied from main memory to a private cache per cycle
    #: (the block-RAM read port width of the prototype).
    alloc_bus_width: int = 2
    #: Cycles to switch a private cache to its prefetched bank.
    cache_switch_cycles: int = 2
    #: Scheduler polling granularity in cycles.
    scheduler_poll_cycles: int = 2
    #: Zero-cost scheduling/allocation (the Figure 11b "ideal" curve).
    ideal_scheduler: bool = False
    #: Prefetch upcoming blocks into the second cache bank (Section
    #: 5.2.3); disable to measure the prefetch mechanism's benefit.
    enable_prefetch: bool = True

    # -- QPU substrate ------------------------------------------------------
    #: Simulation backend used whenever the system builds its own
    #: simulated QPU ("statevector" = dense, exact, <= 24 qubits;
    #: "stabilizer" = Clifford tableau, polynomial, 100+ qubits;
    #: "auto" = route per program: stabilizer for Clifford-only
    #: programs under Pauli-compatible noise, statevector otherwise —
    #: see :func:`repro.qcp.routing.route_backend`).
    qpu_backend: str = "statevector"
    #: Path to a calibrated device-profile JSON (``None`` = uniform
    #: gate-library timing and whatever noise model the caller
    #: supplies).  When set, the shot engine loads it fail-closed
    #: (unknown fields raise, naming the key), composes its per-qubit
    #: T1/T2, per-qubit readout fidelities and per-pair ZZ couplings
    #: over the base noise model, and uses its per-gate-per-qubit
    #: durations for every busy/violation/drive-window computation.
    #: The profile *content* (not the path) is part of the engine
    #: identity and the artifact-cache fingerprint.
    device_profile: str | None = None
    #: Fused-block width cap for dense trace-cache replay (``None`` =
    #: :data:`repro.qpu.statevector.FUSE_MAX_QUBITS`).  The ``"auto"``
    #: router widens it to the register size for small registers,
    #: where one fused GEMM beats several narrow ones.
    fuse_max_qubits: int | None = None

    # -- shot execution -----------------------------------------------------
    #: Cache executed shot traces in a decision-keyed trie and replay
    #: repeated decision paths straight into the QPU backend, skipping
    #: the cycle-accurate event simulation (see
    #: :mod:`repro.qcp.tracecache`).  Results are bit-identical either
    #: way — including on noisy substrates, whose channel draws are
    #: replayed positionally from a per-shot reseeded noise rng;
    #: disable to force every shot through the full control-stack
    #: model (e.g. when profiling the microarchitecture itself).  The
    #: shot engine ignores the flag automatically for substrates it
    #: cannot cache (custom ``qpu_factory`` devices, which are opaque
    #: to the recorder).
    trace_cache: bool = True
    #: Fuse consecutive recorded unitaries of a dense (statevector)
    #: trace-cache replay segment into precomposed operators (GEMM
    #: fusion, see :func:`repro.qpu.statevector.fuse_ops`).  Fusion
    #: happens only *within* a decision-free run (one trie node) and
    #: never consumes rng draws, but it perturbs amplitudes in the
    #: last ulp (matrix products round differently) — so a delivered
    #: outcome can differ from cycle-accurate execution only if a
    #: measurement draw lands inside that few-ulp probability window
    #: (~2^-50 per measurement; no fixed-seed test suite has ever
    #: observed one).  Disable for exact amplitude-level or
    #: guaranteed-exact outcome comparisons.
    trace_cache_dense_fusion: bool = True
    #: Compile noisy dense (statevector) trace-cache replay into a
    #: flat noise-site program — per-site channel draws, idle-decay
    #: windows, ZZ windows and readout corruption pre-resolved at
    #: compile time — instead of the per-op timed device-level Python
    #: loop.  Draw-for-draw identical either way; with
    #: ``trace_cache_dense_fusion`` off the amplitudes are bit-for-bit
    #: identical too, while fusion makes outcome identity almost-sure
    #: (see that flag's note).  The flag exists so benchmarks can
    #: compare the two replay modes.
    trace_cache_compiled_noise: bool = True
    #: Replay cached shots in batches: the shot engine hands the trace
    #: cache a whole cohort of shot seeds and the cache walks the trie
    #: as a *wavefront*, executing every compiled segment once for the
    #: live cohort — bit-plane XORs on stabilizer substrates, batch
    #: GEMMs on dense ones — instead of once per shot.  Bit-identical
    #: per shot-seed to serial replay (each shot still draws from its
    #: own salted rngs, in the same order); shots whose decision paths
    #: leave the cached trie fall back to the serial per-shot loop,
    #: which records the new path as usual.  Fails closed like
    #: :attr:`trace_cache_compiled_noise`: nodes whose programs contain
    #: a site the batch compiler does not model are replayed serially.
    trace_cache_batch: bool = True
    #: Cohort width for batched replay (``None`` = auto: 256 shots —
    #: four machine words per bit-plane row — on stabilizer
    #: substrates, memory-capped on dense ones; see
    #: :func:`~repro.qcp.tracecache.auto_batch_width`).
    trace_cache_batch_width: int | None = None
    #: Directory for the persistent compiled-trace artifact cache
    #: (``None`` = disabled).  When set, a shot engine whose identity
    #: (program, config, backend, noise profile) matches an artifact
    #: on disk starts *warm* — the recorded trie, compiled sign-trace
    #: programs and fused dense operators are mmap-ed in instead of
    #: recompiled — and engines publish their compiled tries back to
    #: the directory after running shots (atomic write-rename, safe to
    #: share across processes and service workers).  Loads are
    #: fail-closed: any mismatch or corruption silently falls back to
    #: a cold compile, never a wrong answer.  Never affects results —
    #: the field is excluded from the artifact key fingerprint and
    #: from service engine identity.  See :mod:`repro.qcp.artifacts`.
    artifact_cache_dir: str | None = None
    #: Size bound in bytes on the artifact-cache directory (``None`` =
    #: unbounded).  After each save the writing engine sweeps the
    #: directory, deleting oldest-stamped artifacts until the total
    #: fits (the newest artifact always survives) — the cross-process
    #: analogue of :attr:`trace_cache_max_nodes`'s recency eviction.
    artifact_cache_max_bytes: int | None = None
    #: LRU bound on trace-cache trie nodes (``None`` = unbounded).
    #: High-path-entropy workloads — RUS loops driven by fair coins —
    #: record a new path per novel decision sequence; the bound evicts
    #: the least-recently-used subtrees after each recording so memory
    #: stays O(bound).  Best-effort: the path recorded by the current
    #: shot is never evicted, so a single path longer than the bound
    #: keeps its nodes until a later eviction pass.
    trace_cache_max_nodes: int | None = None

    # -- standalone readout path (no analog boards attached) ---------------
    #: Stage I+II latency when no DAQ model is attached; 400 ns plus the
    #: conditional-logic cycles reproduces the ~450 ns feedback latency.
    result_latency_ns: int = 400

    # -- metrics --------------------------------------------------------------
    #: Gate time used as the TR denominator (Equation 2).
    gate_time_ns: int = 20

    def __post_init__(self) -> None:
        if self.clock_period_ns <= 0:
            raise ValueError("clock period must be positive")
        if self.fetch_width < 1:
            raise ValueError("fetch width must be at least 1")
        if self.n_quantum_pipelines < 1:
            raise ValueError("need at least one quantum pipeline")
        if self.buffer_capacity < self.fetch_width:
            raise ValueError("buffer must hold at least one fetch group")
        if self.trace_cache_max_nodes is not None \
                and self.trace_cache_max_nodes < 1:
            raise ValueError("trace-cache node bound must be positive")
        if self.trace_cache_batch_width is not None \
                and self.trace_cache_batch_width < 1:
            raise ValueError("trace-cache batch width must be positive")
        if self.artifact_cache_max_bytes is not None \
                and self.artifact_cache_max_bytes < 1:
            raise ValueError("artifact-cache size bound must be positive")
        if self.fuse_max_qubits is not None and self.fuse_max_qubits < 1:
            raise ValueError("fused-block width must be positive")

    @property
    def is_superscalar(self) -> bool:
        return self.fetch_width > 1

    def with_(self, **changes) -> "QCPConfig":
        """Copy with selected fields replaced."""
        return replace(self, **changes)


def scalar_config(**changes) -> QCPConfig:
    """The paper's baseline: single-issue, no fast context switch."""
    return QCPConfig().with_(**changes)


def superscalar_config(width: int = 8, **changes) -> QCPConfig:
    """The paper's 8-way quantum superscalar with fast context switch."""
    base = QCPConfig(fetch_width=width, n_quantum_pipelines=width,
                     buffer_capacity=2 * width, fast_context_switch=True)
    return base.with_(**changes)
