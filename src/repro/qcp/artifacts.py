"""Persistent compiled-trace artifact cache: warm starts across processes.

Every process still pays full compile cost on start — sign-trace
programs, GEMM-fused block operators and the recorded trie itself are
rebuilt from scratch before the first cached shot can replay.  This
module serializes a :class:`~repro.qcp.tracecache.TraceCache` to a
versioned on-disk artifact so a restarted engine, a fresh service
worker (including one built after a ``BrokenProcessPool`` rebuild), or
an entire fleet sharing one directory starts *warm*: first process
compiles, everyone else replays.

Key derivation
==============

One artifact file serves exactly one compiled-execution identity::

    key = sha256(canonical_json(fingerprint))

where the fingerprint covers the program (``to_asm()`` hash — the
instruction stream plus block structure), every :class:`QCPConfig`
field except the artifact-cache knobs themselves (they steer *where*
artifacts live, never what is computed), the resolved backend name,
the full noise-model profile (channel classes and parameters), the
processor count, the qubit count, the dependency mode and the artifact
schema version.  Anything the fingerprint cannot represent — an
unknown noise-channel type, say — makes the engine *non-cacheable*
rather than wrongly keyed (:func:`artifact_fingerprint` returns
``None`` and the engine simply stays cold).

On-disk format (schema 1)
=========================

::

    "QTAC" | u32 header_len | header JSON | meta JSON | pad | buffers | sha256

The header carries the schema version, the full key fingerprint and
the section lengths; the meta JSON describes the trie (nodes in
parent-before-child order, recorded items, decisions as decoded-pc
references, compiled sign-trace programs, fused dense block plans, LRU
recency order); the 16-byte-aligned binary section holds the packed
sign columns as flat fixed-width little-endian buffers plus the
``numpy`` arrays (exit tableaux, fused operators), all of which are
**mmap-ed on load** — masks and matrices are read straight out of the
mapping, never through Python file I/O.  The trailing sha256 covers
everything before it.

Fail-closed loading
===================

Loads follow the :attr:`NoiseModel.is_dense_compilable` philosophy:
*any* anomaly — key mismatch, schema bump, unknown field, checksum
failure, truncated file, out-of-range reference, a decoded pc that is
not the classical instruction the artifact claims — silently falls
back to a cold compile.  A load can therefore cost a recompile but
never a wrong answer; the differential fuzz suite asserts warm runs
bit-identical (histograms *and* ``total_ns``) to cold ones.

Cross-process safety
====================

Writers assemble the whole file in memory, write it to a private
temporary name and publish it with an atomic ``os.replace`` — readers
always map a complete, self-checksummed file, and the last concurrent
writer simply wins (both artifacts are valid by construction).  An
optional size bound triggers an eviction sweep after each save:
files are scored by modification stamp and the oldest are deleted
until the directory fits, mirroring the in-memory trie's
newest-stamp recency eviction.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import struct
import tempfile
from dataclasses import fields as dataclass_fields

import numpy as np

from repro.qcp.config import QCPConfig
from repro.qcp.decode import E_BRANCH, E_NONE, E_REG, K_CLASSICAL
from repro.qcp.tracecache import (TraceCache, TraceNode, _D_BRANCH,
                                  _D_MRCE, _I_CLS, _I_FMR, _I_MEAS,
                                  _I_OPS, _S_CLS, _S_FMR, _S_MEAS_D,
                                  _S_MEAS_R, _S_NOISE, _S_RESET_D,
                                  _S_RESET_R, _S_XOR)
from repro.qpu.stabilizer import StabilizerState
from repro.qpu.statevector import FUSE_MAX_QUBITS, StateVector, fuse_ops

#: Bumped whenever the on-disk layout changes; part of the key
#: fingerprint *and* checked against the header, so an old artifact is
#: both unfindable under the new key and rejected if renamed into place.
ARTIFACT_SCHEMA_VERSION = 2

ARTIFACT_MAGIC = b"QTAC"
ARTIFACT_SUFFIX = ".qta"

_CHECKSUM_BYTES = 32
_HEADER_KEYS = frozenset({"schema", "fingerprint", "meta_bytes",
                          "buffer_off", "buffer_bytes"})
_META_KEYS = frozenset({"mode", "fused", "masks", "arrays", "nodes",
                        "recency"})
_NODE_KEYS = frozenset({"p", "e", "t", "i", "d", "s", "x", "f"})

#: QCPConfig fields excluded from the fingerprint: they steer where
#: artifacts live and how large the directory may grow — never what a
#: shot computes.  ``device_profile`` is a *path*; the profile's
#: content is fingerprinted separately (renaming the file must not
#: change the key, editing one T1 must).
_CONFIG_FIELDS_EXCLUDED = frozenset({"artifact_cache_dir",
                                     "artifact_cache_max_bytes",
                                     "device_profile"})

#: Scalar JSON types a fingerprint (and a noise-channel parameter) may
#: contain.  Anything else fails closed: the engine is non-cacheable.
_SCALARS = (bool, int, float, str, type(None))


class _Invalid(Exception):
    """Internal: the artifact under inspection is unusable (any cause)."""


def _require(condition: bool) -> None:
    if not condition:
        raise _Invalid


def _canonical(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def cache_key(fingerprint: dict) -> str:
    """The artifact file stem for a fingerprint."""
    return hashlib.sha256(_canonical(fingerprint).encode()).hexdigest()


def _jsonable(value):
    """``value`` as a JSON-safe structure, or raise :class:`_Invalid`.

    Accepts scalars and (nested) lists/tuples of scalars — the shapes
    noise-channel parameters take (e.g. ZZ coupling pairs).  Anything
    richer cannot be fingerprinted and must disable caching.
    """
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    raise _Invalid


def _noise_fingerprint(noise) -> dict:
    """Channel-by-channel identity of a :class:`NoiseModel`.

    Walks the dataclass fields (skipping the runtime ``rng``, which is
    reseeded per shot and carries no identity) and renders each
    enabled channel as its class name plus parameters.  A channel that
    is not a dataclass of scalar fields raises :class:`_Invalid` —
    fail closed, like the replay compilers' channel allow-lists.
    """
    profile: dict = {}
    for spec in dataclass_fields(noise):
        if spec.name == "rng":
            continue
        value = getattr(noise, spec.name)
        if value is None or isinstance(value, _SCALARS):
            profile[spec.name] = value
            continue
        try:
            channel_fields = dataclass_fields(value)
        except TypeError:
            raise _Invalid from None
        profile[spec.name] = {
            "__channel__": type(value).__name__,
            **{f.name: _jsonable(getattr(value, f.name))
               for f in channel_fields},
        }
    return profile


def artifact_fingerprint(program, config: QCPConfig, backend: str,
                         noise, n_processors: int, n_qubits: int,
                         dependency_mode, profile=None) -> dict | None:
    """The full cache-key fingerprint for one engine identity.

    Returns ``None`` when any component cannot be represented — the
    caller must then skip artifact caching entirely (a missing key is
    a cold compile; a wrong key would be a wrong answer).  ``profile``
    is an optional :class:`~repro.qpu.profile.DeviceProfile`; its
    *content* rendering enters the key (so two paths to the same
    calibration share artifacts and editing one T1 misses), while the
    config's ``device_profile`` path is excluded above.
    """
    try:
        config_profile = {
            spec.name: _jsonable(getattr(config, spec.name))
            for spec in dataclass_fields(config)
            if spec.name not in _CONFIG_FIELDS_EXCLUDED}
        return {
            "schema": ARTIFACT_SCHEMA_VERSION,
            "program_sha": hashlib.sha256(
                program.to_asm().encode()).hexdigest(),
            "config": config_profile,
            "backend": str(backend),
            "noise": _noise_fingerprint(noise),
            "n_processors": int(n_processors),
            "n_qubits": int(n_qubits),
            "dependency_mode": str(dependency_mode.value),
            "device_profile": (None if profile is None
                               else profile.canonical()),
        }
    except Exception:
        return None


def replay_mode(qpu, config: QCPConfig) -> str:
    """Which replay representation this engine compiles to.

    Mirrors the dispatch in :meth:`TraceCache.replay` — the artifact
    stores mode-specific compiled programs, and a loader must agree
    with the live dispatch about which programs it may install.
    """
    state = qpu.state
    noise = qpu.noise
    if isinstance(state, StabilizerState) and noise.is_pauli_only:
        return "signs"
    if noise.is_ideal:
        return "generic"
    if (config.trace_cache_compiled_noise
            and isinstance(state, StateVector)
            and noise.is_dense_compilable):
        return "dense"
    return "device"


# -- decoded-pc <-> closure mapping ---------------------------------------
#
# Recorded items and decisions carry compiled classical micro-op
# *closures* (see repro.qcp.decode).  Each decode of a non-trivial
# classical instruction creates a fresh closure, so closure identity
# maps 1:1 onto a decoded pc — which is the serializable name.  The
# shared E_NONE closures (nop/halt/jmp) are never recorded.

def _closure_pcs(memory) -> dict[int, int]:
    table: dict[int, int] = {}
    for pc, entry in enumerate(memory._decoded):
        if entry[0] == K_CLASSICAL and entry[2][2] != E_NONE:
            table[id(entry[2][0])] = pc
    return table


def _closure_at(memory, pc, eclass):
    """The micro-op closure at ``pc``; fails closed on any mismatch."""
    decoded = memory._decoded
    _require(isinstance(pc, int) and not isinstance(pc, bool))
    _require(0 <= pc < len(decoded))
    entry = decoded[pc]
    _require(entry[0] == K_CLASSICAL)
    _require(entry[2][2] == eclass)
    return entry[2][0]


def _int_field(value, minimum=None):
    _require(isinstance(value, int) and not isinstance(value, bool))
    if minimum is not None:
        _require(value >= minimum)
    return value


def _float_or_none(value):
    if value is None:
        return None
    _require(isinstance(value, (int, float)) and not isinstance(value, bool))
    return value


# -- binary section -------------------------------------------------------

class _BufferWriter:
    """Accumulates the 16-byte-aligned binary section of an artifact."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []
        self.size = 0

    def add(self, data: bytes) -> tuple[int, int]:
        pad = (-self.size) % 16
        if pad:
            self._chunks.append(b"\x00" * pad)
            self.size += pad
        offset = self.size
        self._chunks.append(data)
        self.size += len(data)
        return offset, len(data)

    def add_array(self, array: np.ndarray, arrays: list) -> int:
        """Register a numpy array; returns its reference index."""
        data = np.ascontiguousarray(array).tobytes()
        offset, nbytes = self.add(data)
        arrays.append([offset, nbytes, array.dtype.name,
                       list(array.shape)])
        return len(arrays) - 1

    def render(self) -> bytes:
        return b"".join(self._chunks)


class _BufferReader:
    """Validated, zero-copy views into a mapped artifact's buffers."""

    def __init__(self, mm, buffer_off: int, buffer_bytes: int,
                 meta: dict, mask_bytes: int) -> None:
        self._mm = mm
        self._off = buffer_off
        self._bytes = buffer_bytes
        masks = meta["masks"]
        _require(isinstance(masks, list) and len(masks) == 3)
        self._mask_off = _int_field(masks[0], 0)
        mask_nbytes = _int_field(masks[1], 0)
        self._mask_slots = _int_field(masks[2], 0)
        self._mask_bytes = mask_bytes
        _require(mask_nbytes == self._mask_slots * mask_bytes)
        _require(self._mask_off + mask_nbytes <= buffer_bytes)
        arrays = meta["arrays"]
        _require(isinstance(arrays, list))
        self._arrays = arrays

    def mask(self, slot) -> int:
        _require(isinstance(slot, int) and not isinstance(slot, bool))
        _require(0 <= slot < self._mask_slots)
        start = self._off + self._mask_off + slot * self._mask_bytes
        return int.from_bytes(
            self._mm[start:start + self._mask_bytes], "little")

    def array(self, ref, dtype: str, ndim: int) -> np.ndarray:
        _require(isinstance(ref, int) and not isinstance(ref, bool))
        _require(0 <= ref < len(self._arrays))
        entry = self._arrays[ref]
        _require(isinstance(entry, list) and len(entry) == 4)
        offset = _int_field(entry[0], 0)
        nbytes = _int_field(entry[1], 0)
        _require(entry[2] == dtype)
        shape = entry[3]
        _require(isinstance(shape, list) and len(shape) == ndim)
        shape = tuple(_int_field(dim, 0) for dim in shape)
        np_dtype = np.dtype(dtype)
        count = 1
        for dim in shape:
            count *= dim
        _require(count * np_dtype.itemsize == nbytes)
        _require(offset + nbytes <= self._bytes)
        flat = np.frombuffer(self._mm, dtype=np_dtype, count=count,
                             offset=self._off + offset)
        return flat.reshape(shape)


# -- item / decision / program codecs -------------------------------------

def _encode_items(items: tuple, pcs: dict[int, int]) -> list:
    encoded = []
    for item in items:
        code = item[0]
        if code == _I_OPS:
            ops = [[kind, name, list(qubits), list(params)]
                   for kind, name, qubits, params in item[1]]
            encoded.append([_I_OPS, ops, list(item[2])])
        elif code == _I_MEAS:
            encoded.append([_I_MEAS, item[1], item[2]])
        elif code == _I_CLS:
            pc = pcs.get(id(item[2]))
            if pc is None:
                raise _Invalid
            encoded.append([_I_CLS, item[1], pc])
        else:  # _I_FMR
            encoded.append([_I_FMR, item[1], item[2], item[3]])
    return encoded


def _decode_items(encoded, memory) -> tuple:
    _require(isinstance(encoded, list))
    items = []
    for entry in encoded:
        _require(isinstance(entry, list) and entry)
        code = entry[0]
        if code == _I_OPS:
            _require(len(entry) == 3)
            raw_ops, raw_times = entry[1], entry[2]
            _require(isinstance(raw_ops, list)
                     and isinstance(raw_times, list))
            _require(len(raw_ops) == len(raw_times))
            ops = []
            for op in raw_ops:
                _require(isinstance(op, list) and len(op) == 4)
                kind, name, qubits, params = op
                _require(kind in ("gate", "reset"))
                _require(isinstance(name, str))
                _require(isinstance(qubits, list))
                _require(isinstance(params, list))
                ops.append((kind, name,
                            tuple(_int_field(q, 0) for q in qubits),
                            tuple(params)))
            times = tuple(_int_field(t) for t in raw_times)
            items.append((_I_OPS, tuple(ops), times))
        elif code == _I_MEAS:
            _require(len(entry) == 3)
            items.append((_I_MEAS, _int_field(entry[1], 0),
                          _int_field(entry[2])))
        elif code == _I_CLS:
            _require(len(entry) == 3)
            items.append((_I_CLS, _int_field(entry[1], 0),
                          _closure_at(memory, entry[2], E_REG)))
        elif code == _I_FMR:
            _require(len(entry) == 4)
            items.append((_I_FMR, _int_field(entry[1], 0),
                          _int_field(entry[2], 0),
                          _int_field(entry[3], 0)))
        else:
            raise _Invalid
    return tuple(items)


def _encode_decision(decision, pcs: dict[int, int]):
    if decision is None:
        return None
    if decision[0] == _D_BRANCH:
        pc = pcs.get(id(decision[2]))
        if pc is None:
            raise _Invalid
        return [_D_BRANCH, decision[1], pc]
    return [_D_MRCE, decision[1]]


def _decode_decision(encoded, memory):
    if encoded is None:
        return None
    _require(isinstance(encoded, list) and encoded)
    if encoded[0] == _D_BRANCH:
        _require(len(encoded) == 3)
        return (_D_BRANCH, _int_field(encoded[1], 0),
                _closure_at(memory, encoded[2], E_BRANCH))
    _require(encoded[0] == _D_MRCE and len(encoded) == 2)
    return (_D_MRCE, _int_field(encoded[1], 0))


def _encode_sign_program(program: list, pcs: dict[int, int],
                         masks: list, writer_masks=None) -> list:
    """Sign-trace ops with packed-integer masks as flat buffer slots."""

    def slot(mask: int) -> int:
        masks.append(mask)
        return len(masks) - 1

    encoded = []
    for op in program:
        code = op[0]
        if code == _S_XOR:
            encoded.append([_S_XOR, slot(op[1])])
        elif code == _S_MEAS_R:
            encoded.append([_S_MEAS_R, op[1], op[2], op[3],
                            slot(op[4]), slot(op[5])])
        elif code == _S_MEAS_D:
            encoded.append([_S_MEAS_D, op[1], slot(op[2]), op[3]])
        elif code == _S_RESET_R:
            encoded.append([_S_RESET_R, op[1], op[2], slot(op[3]),
                            slot(op[4]), slot(op[5])])
        elif code == _S_RESET_D:
            encoded.append([_S_RESET_D, slot(op[1]), op[2],
                            slot(op[3])])
        elif code == _S_CLS:
            pc = pcs.get(id(op[2]))
            if pc is None:
                raise _Invalid
            encoded.append([_S_CLS, op[1], pc])
        elif code == _S_FMR:
            encoded.append([_S_FMR, op[1], op[2], op[3]])
        elif code == _S_NOISE:
            qubit_masks = [[slot(m) for m in triple] for triple in op[2]]
            encoded.append([_S_NOISE, op[1], qubit_masks,
                            list(op[3]) if op[3] is not None else None])
        else:
            raise _Invalid
    return encoded


def _decode_sign_program(encoded, memory, buffers: _BufferReader,
                         rows: int) -> list:
    _require(isinstance(encoded, list))
    program = []
    for op in encoded:
        _require(isinstance(op, list) and op)
        code = op[0]
        if code == _S_XOR:
            _require(len(op) == 2)
            program.append((_S_XOR, buffers.mask(op[1])))
        elif code == _S_MEAS_R:
            _require(len(op) == 6)
            pivot = _int_field(op[2], 0)
            pm = _int_field(op[3], 0)
            _require(pivot < rows and pm < rows)
            program.append((_S_MEAS_R, _int_field(op[1], 0), pivot,
                            pm, buffers.mask(op[4]),
                            buffers.mask(op[5])))
        elif code == _S_MEAS_D:
            _require(len(op) == 4)
            program.append((_S_MEAS_D, _int_field(op[1], 0),
                            buffers.mask(op[2]), _int_field(op[3], 0)))
        elif code == _S_RESET_R:
            _require(len(op) == 6)
            pivot = _int_field(op[1], 0)
            pm = _int_field(op[2], 0)
            _require(pivot < rows and pm < rows)
            program.append((_S_RESET_R, pivot, pm,
                            buffers.mask(op[3]), buffers.mask(op[4]),
                            buffers.mask(op[5])))
        elif code == _S_RESET_D:
            _require(len(op) == 4)
            program.append((_S_RESET_D, buffers.mask(op[1]),
                            _int_field(op[2], 0), buffers.mask(op[3])))
        elif code == _S_CLS:
            _require(len(op) == 3)
            program.append((_S_CLS, _int_field(op[1], 0),
                            _closure_at(memory, op[2], E_REG)))
        elif code == _S_FMR:
            _require(len(op) == 4)
            program.append((_S_FMR, _int_field(op[1], 0),
                            _int_field(op[2], 0), _int_field(op[3], 0)))
        elif code == _S_NOISE:
            _require(len(op) == 4)
            dep_p = _float_or_none(op[1])
            _require(isinstance(op[2], list))
            triples = []
            for triple in op[2]:
                _require(isinstance(triple, list) and len(triple) == 3)
                triples.append(tuple(buffers.mask(m) for m in triple))
            pauli_cum = op[3]
            if pauli_cum is not None:
                _require(isinstance(pauli_cum, list)
                         and len(pauli_cum) == 3)
                pauli_cum = tuple(_float_or_none(p) for p in pauli_cum)
            program.append((_S_NOISE, dep_p, tuple(triples), pauli_cum))
        else:
            raise _Invalid
    return program


def _encode_fused_plans(items: tuple, writer: _BufferWriter,
                        arrays: list,
                        max_qubits: int | None = None) -> list:
    """Per-item GEMM-fusion plans for an ideal dense node.

    Recomputes :func:`fuse_ops` over each recorded op run (the live
    node caches only the opaque replay closure) and stores the fused
    block operators as buffer-backed matrices, so a warm start skips
    the fusion matrix products entirely.  ``max_qubits`` must match
    the width the live replay fuses at (``config.fuse_max_qubits``) or
    warm and cold amplitudes would round differently.
    """
    if max_qubits is None:
        max_qubits = FUSE_MAX_QUBITS
    plans = []
    for item in items:
        if item[0] != _I_OPS:
            plans.append(None)
            continue
        steps = []
        for step in fuse_ops(item[1], max_qubits=max_qubits):
            if step[0] == "reset":
                steps.append(["reset", step[1]])
            else:
                ref = writer.add_array(
                    np.ascontiguousarray(step[1], dtype=np.complex128),
                    arrays)
                steps.append(["gate", ref, list(step[2])])
        plans.append(steps)
    return plans


def _decode_fused_program(plans, items: tuple, state,
                          buffers: _BufferReader) -> list:
    """Rebuild a node's fused replay program from stored block plans.

    Mirrors :meth:`StateVector.compile_fused_ops` step for step — the
    stored matrices go through the same :meth:`block_applier` closures,
    so the arithmetic (and every amplitude) is bit-identical to a cold
    compile of the same recorded ops.
    """
    _require(isinstance(plans, list) and len(plans) == len(items))
    program = []
    for plan, item in zip(plans, items):
        if item[0] != _I_OPS:
            _require(plan is None)
            program.append(item)
            continue
        _require(isinstance(plan, list))
        steps = []
        for step in plan:
            _require(isinstance(step, list) and step)
            if step[0] == "reset":
                _require(len(step) == 2)
                qubit = _int_field(step[1], 0)
                _require(qubit < state.n_qubits)
                steps.append(lambda q=qubit, s=state: s.reset(q))
            else:
                _require(step[0] == "gate" and len(step) == 3)
                support = step[2]
                _require(isinstance(support, list) and support)
                support = tuple(_int_field(q, 0) for q in support)
                _require(all(q < state.n_qubits for q in support))
                dim = 1 << len(support)
                matrix = buffers.array(step[1], "complex128", 2)
                _require(matrix.shape == (dim, dim))
                steps.append(state.block_applier(matrix, support))
        steps = tuple(steps)

        def replay(steps=steps) -> None:
            for apply in steps:
                apply()

        program.append((_I_OPS, replay))
    return program


def _node_devops(items: tuple) -> int:
    """Recomputed from the items — never trusted from the file."""
    return sum(len(item[1]) if item[0] == _I_OPS else 1
               for item in items
               if item[0] == _I_OPS or item[0] == _I_MEAS)


# -- the cache ------------------------------------------------------------

class ArtifactCache:
    """One engine's handle on a shared artifact directory.

    Counters (all per-handle): ``warm_loads`` (successful trie
    installs), ``cold_compiles`` (load attempts that found nothing
    usable), ``invalidations`` (the subset of cold loads where a file
    existed but was rejected), ``saves``, ``evicted_files`` (artifacts
    deleted by this handle's size sweeps) and ``bytes_on_disk`` (the
    directory footprint after the last save/sweep).
    """

    def __init__(self, directory: str, fingerprint: dict,
                 max_bytes: int | None = None) -> None:
        self.directory = os.fspath(directory)
        # Normalize through JSON so equality with a parsed file
        # fingerprint compares like for like (tuples become lists).
        self.fingerprint = json.loads(_canonical(fingerprint))
        self.key = cache_key(self.fingerprint)
        self.max_bytes = max_bytes
        self.warm_loads = 0
        self.cold_compiles = 0
        self.invalidations = 0
        self.saves = 0
        self.evicted_files = 0
        self.bytes_on_disk = 0
        self._retained: list = []  # mmaps backing live trie nodes
        os.makedirs(self.directory, exist_ok=True)

    @property
    def path(self) -> str:
        return os.path.join(self.directory, self.key + ARTIFACT_SUFFIX)

    def stats(self) -> dict:
        return {"warm_loads": self.warm_loads,
                "cold_compiles": self.cold_compiles,
                "invalidations": self.invalidations,
                "saves": self.saves,
                "evicted_files": self.evicted_files,
                "bytes_on_disk": self.bytes_on_disk}

    # -- save -------------------------------------------------------------

    def save_from(self, cache: TraceCache, memory, qpu) -> bool:
        """Serialize ``cache`` and atomically publish the artifact.

        Returns False (and writes nothing) when the trie is empty or
        contains anything the codec cannot name — a closure with no
        decoded pc, say.  Publication is write-to-temp + ``os.replace``
        so concurrent readers and writers always see complete files.
        """
        root = cache.root
        if root is None or root.items is None:
            return False
        try:
            payload = self._serialize(cache, memory, qpu)
        except Exception:
            # Anything the codec cannot represent (or any compile-state
            # surprise) simply skips the save — the live trie is
            # untouched and the next engine compiles cold.
            return False
        final = self.path
        tmp = None
        try:
            fd, tmp = tempfile.mkstemp(dir=self.directory,
                                       prefix="." + self.key[:16],
                                       suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp, final)
        except OSError:
            # A read-only or vanished cache directory must never take a
            # run down: the save silently degrades to cold compiles.
            if tmp is not None:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            return False
        self.saves += 1
        self.sweep()
        return True

    def _serialize(self, cache: TraceCache, memory, qpu) -> bytes:
        config = cache.config
        mode = replay_mode(qpu, config)
        state = qpu.state
        fuse = bool(config.trace_cache_dense_fusion)
        save_fused = (mode == "generic" and fuse
                      and isinstance(state, StateVector))
        pcs = _closure_pcs(memory)
        writer = _BufferWriter()
        arrays: list = []
        masks: list[int] = []

        order: list[TraceNode] = []
        index: dict[int, int] = {}
        queue = [cache.root]
        while queue:
            node = queue.pop(0)
            if node.items is None:
                continue
            index[id(node)] = len(order)
            order.append(node)
            queue.extend(node.children.values())

        nodes_meta = []
        for node in order:
            encoded: dict = {
                "p": (index[id(node.parent)]
                      if node.parent is not None else -1),
                "e": node.edge,
                "t": node.total_ns,
                "i": _encode_items(node.items, pcs),
                "d": _encode_decision(node.decision, pcs),
                "s": None, "x": None, "f": None,
            }
            if (mode == "signs" and node._program is not None
                    and node._program_state is state
                    and node._exit_xz is not None):
                encoded["s"] = _encode_sign_program(node._program, pcs,
                                                    masks)
                encoded["x"] = [
                    writer.add_array(node._exit_xz[0], arrays),
                    writer.add_array(node._exit_xz[1], arrays)]
            elif save_fused:
                encoded["f"] = _encode_fused_plans(
                    node.items, writer, arrays,
                    max_qubits=config.fuse_max_qubits)
            nodes_meta.append(encoded)

        # Pack every integer mask into one flat fixed-width buffer —
        # the "packed sign columns as flat binary buffers" the loader
        # reads straight out of the mapping.
        rows = 2 * int(self.fingerprint["n_qubits"]) + 1
        mask_bytes = (rows + 7) // 8
        mask_blob = b"".join(m.to_bytes(mask_bytes, "little")
                             for m in masks)
        mask_off, mask_nbytes = (writer.add(mask_blob)
                                 if mask_blob else (writer.size, 0))

        recency: list[int] = []
        current = cache._lru_tail.lru_prev
        while current is not cache._lru_head:
            position = index.get(id(current))
            if position is not None:
                recency.append(position)
            current = current.lru_prev

        meta = {"mode": mode, "fused": save_fused,
                "masks": [mask_off, mask_nbytes, len(masks)],
                "arrays": arrays, "nodes": nodes_meta,
                "recency": recency}
        return _assemble(self.fingerprint, meta, writer.render())

    # -- load -------------------------------------------------------------

    def load_into(self, cache: TraceCache, memory, qpu) -> bool:
        """Install the keyed artifact into a cold ``cache``.

        Fail-closed: every anomaly is swallowed and counted, the cache
        is left untouched (cold), and the caller compiles as if no
        artifact existed.  On success the trie, its compiled programs
        and its LRU recency order are live, and the backing mmap stays
        referenced for the handle's lifetime.
        """
        if cache.root is not None:
            return False
        try:
            handle = open(self.path, "rb")
        except OSError:
            self.cold_compiles += 1
            return False
        mapped = None
        try:
            mapped = mmap.mmap(handle.fileno(), 0,
                               access=mmap.ACCESS_READ)
            fingerprint, meta, buffers = _parse(mapped, self.fingerprint)
            self._install(meta, buffers, cache, memory, qpu)
        except Exception:
            if mapped is not None:
                try:
                    mapped.close()
                except (BufferError, ValueError):
                    pass  # stray views; keep the mapping alive
            self.invalidations += 1
            self.cold_compiles += 1
            return False
        finally:
            handle.close()
        self._retained.append(mapped)
        self.warm_loads += 1
        return True

    def _install(self, meta: dict, buffers: _BufferReader,
                 cache: TraceCache, memory, qpu) -> None:
        config = cache.config
        mode = meta["mode"]
        _require(mode == replay_mode(qpu, config))
        fused = meta["fused"]
        _require(isinstance(fused, bool))
        state = qpu.state
        if fused:
            _require(mode == "generic"
                     and bool(config.trace_cache_dense_fusion)
                     and isinstance(state, StateVector))
        rows = 2 * int(self.fingerprint["n_qubits"]) + 1

        encoded_nodes = meta["nodes"]
        _require(isinstance(encoded_nodes, list) and encoded_nodes)
        if (cache.max_nodes is not None
                and len(encoded_nodes) > cache.max_nodes):
            # A trie the live bound would immediately evict is not
            # worth installing; stay cold.
            raise _Invalid
        nodes: list[TraceNode] = []
        for position, encoded in enumerate(encoded_nodes):
            _require(isinstance(encoded, dict))
            _require(set(encoded) == set(_NODE_KEYS))
            node = TraceNode()
            node.items = _decode_items(encoded["i"], memory)
            node.decision = _decode_decision(encoded["d"], memory)
            node.total_ns = _int_field(encoded["t"], 0)
            node.devops = _node_devops(node.items)
            parent = encoded["p"]
            if position == 0:
                _require(parent == -1 and encoded["e"] is None)
            else:
                _require(isinstance(parent, int)
                         and 0 <= parent < position)
                edge = _int_field(encoded["e"], 0)
                owner = nodes[parent]
                _require(owner.decision is not None)
                _require(edge not in owner.children)
                node.parent = owner
                node.edge = edge
                owner.children[edge] = node
            if encoded["s"] is not None:
                _require(mode == "signs")
                refs = encoded["x"]
                _require(isinstance(refs, list) and len(refs) == 2)
                exit_x = buffers.array(refs[0], "uint8", 2)
                exit_z = buffers.array(refs[1], "uint8", 2)
                expected = (rows, int(self.fingerprint["n_qubits"]))
                _require(exit_x.shape == expected
                         and exit_z.shape == expected)
                node._program = _decode_sign_program(
                    encoded["s"], memory, buffers, rows)
                node._program_state = state
                node._exit_xz = (exit_x, exit_z)
            else:
                _require(encoded["x"] is None)
            if encoded["f"] is not None:
                _require(fused)
                node._program = _decode_fused_program(
                    encoded["f"], node.items, state, buffers)
                node._program_state = state
            nodes.append(node)

        recency = meta["recency"]
        _require(isinstance(recency, list))
        _require(sorted(recency) == list(range(1, len(nodes))))

        # All validated — attach.  From here on the trie is live; the
        # recency touches reproduce the saved LRU order (coldest
        # first), preserving the parent-before-child invariant the
        # eviction pass relies on.
        cache.root = nodes[0]
        cache.nodes = len(nodes)
        cache._tick += 1
        cache._touch(nodes[0])
        for position in recency:
            cache._touch(nodes[position])

    # -- size-bounded cross-process eviction ------------------------------

    def sweep(self) -> None:
        """Refresh ``bytes_on_disk``; evict oldest files past the bound.

        Newest-stamp scoring, mirroring the in-memory trie's recency
        list: artifacts are ranked by modification stamp (every
        ``os.replace`` publish refreshes it) and deleted coldest-first
        until the directory fits ``max_bytes``.  The newest artifact
        always survives, and racing deleters are harmless — a missing
        file was simply evicted by someone else first.
        """
        entries = []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in names:
            if not name.endswith(ARTIFACT_SUFFIX):
                continue
            full = os.path.join(self.directory, name)
            try:
                info = os.stat(full)
            except OSError:
                continue
            entries.append((info.st_mtime_ns, info.st_size, full))
        entries.sort(reverse=True)  # newest first
        total = sum(size for _, size, _ in entries)
        if self.max_bytes is not None:
            while len(entries) > 1 and total > self.max_bytes:
                _, size, full = entries.pop()
                try:
                    os.unlink(full)
                except OSError:
                    pass
                else:
                    self.evicted_files += 1
                total -= size
        self.bytes_on_disk = total


# -- file assembly / parsing ----------------------------------------------

def _assemble(fingerprint: dict, meta: dict, buffers: bytes) -> bytes:
    """Render one complete artifact file (exposed for tests)."""
    meta_blob = _canonical(meta).encode()
    prefix_len = len(ARTIFACT_MAGIC) + 4
    # Header length depends on the buffer offset it records, which
    # depends on the header length; fix by iterating to a fixed point
    # (two passes suffice — the offset's digit count stabilizes).
    buffer_off = 0
    for _ in range(3):
        header_blob = _canonical({
            "schema": ARTIFACT_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "meta_bytes": len(meta_blob),
            "buffer_off": buffer_off,
            "buffer_bytes": len(buffers),
        }).encode()
        unpadded = prefix_len + len(header_blob) + len(meta_blob)
        aligned = unpadded + ((-unpadded) % 16)
        if aligned == buffer_off:
            break
        buffer_off = aligned
    body = (ARTIFACT_MAGIC + struct.pack("<I", len(header_blob))
            + header_blob + meta_blob
            + b"\x00" * (buffer_off - unpadded) + buffers)
    return body + hashlib.sha256(body).digest()


def _parse(mapped, expected_fingerprint: dict):
    """Validate a mapped artifact; returns (fingerprint, meta, buffers).

    Raises :class:`_Invalid` on any structural problem — magic, schema,
    checksum, truncation, unknown fields, inconsistent section bounds
    or a fingerprint that is not the expected one.
    """
    size = len(mapped)
    prefix_len = len(ARTIFACT_MAGIC) + 4
    _require(size >= prefix_len + _CHECKSUM_BYTES)
    _require(mapped[:len(ARTIFACT_MAGIC)] == ARTIFACT_MAGIC)
    digest = hashlib.sha256(mapped[:size - _CHECKSUM_BYTES]).digest()
    _require(mapped[size - _CHECKSUM_BYTES:] == digest)
    (header_len,) = struct.unpack(
        "<I", mapped[len(ARTIFACT_MAGIC):prefix_len])
    _require(prefix_len + header_len <= size - _CHECKSUM_BYTES)
    try:
        header = json.loads(mapped[prefix_len:prefix_len + header_len])
    except (ValueError, UnicodeDecodeError):
        raise _Invalid from None
    _require(isinstance(header, dict))
    _require(set(header) == set(_HEADER_KEYS))
    _require(header["schema"] == ARTIFACT_SCHEMA_VERSION)
    _require(header["fingerprint"] == expected_fingerprint)
    meta_bytes = _int_field(header["meta_bytes"], 0)
    buffer_off = _int_field(header["buffer_off"], 0)
    buffer_bytes = _int_field(header["buffer_bytes"], 0)
    meta_start = prefix_len + header_len
    _require(meta_start + meta_bytes <= buffer_off)
    _require(buffer_off + buffer_bytes == size - _CHECKSUM_BYTES)
    try:
        meta = json.loads(mapped[meta_start:meta_start + meta_bytes])
    except (ValueError, UnicodeDecodeError):
        raise _Invalid from None
    _require(isinstance(meta, dict))
    _require(set(meta) == set(_META_KEYS))
    n_qubits = int(expected_fingerprint["n_qubits"])
    mask_bytes = (2 * n_qubits + 1 + 7) // 8
    buffers = _BufferReader(mapped, buffer_off, buffer_bytes, meta,
                            mask_bytes)
    return header["fingerprint"], meta, buffers
