"""CES and TR metrics (Equations 1 and 2).

``CES`` (cycles each step) decomposes into four parts:

    CES = pipeline CEQI x QICES            (quantum dispatch cycles)
        + classical instruction cycles
        + classical control stalls
        + QCP execution delay of feedback control (stage III)

The stage I+II wait of a feedback control (measurement pulse + digital
acquisition) is *excluded* (Section 3.2.1) and tracked separately.

``TR_i = clock_time x CES_i / gate_time`` (Equation 2); the evaluation
uses 10 ns clock time and 20 ns gate time.  The QOLP design goal is
TR <= 1 for the whole program.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CESRecord:
    """Per-step cycle accounting, following Equation (1)."""

    step_id: int
    quantum_cycles: int = 0
    classical_cycles: int = 0
    control_stall_cycles: int = 0
    feedback_cycles: int = 0
    excluded_wait_ns: int = 0  # stage I+II, not part of CES

    @property
    def ces(self) -> int:
        """Total cycles each step (Equation 1)."""
        return (self.quantum_cycles + self.classical_cycles
                + self.control_stall_cycles + self.feedback_cycles)


@dataclass
class CESAccumulator:
    """Collects per-step cycle attributions during execution."""

    records: dict[int, CESRecord] = field(default_factory=dict)

    def _record(self, step_id: int | None) -> CESRecord | None:
        if step_id is None:
            return None
        if step_id not in self.records:
            self.records[step_id] = CESRecord(step_id=step_id)
        return self.records[step_id]

    def quantum(self, step_id: int | None, cycles: int = 1) -> None:
        record = self._record(step_id)
        if record is not None:
            record.quantum_cycles += cycles

    def classical(self, step_id: int | None, cycles: int = 1) -> None:
        record = self._record(step_id)
        if record is not None:
            record.classical_cycles += cycles

    def control_stall(self, step_id: int | None, cycles: int) -> None:
        record = self._record(step_id)
        if record is not None:
            record.control_stall_cycles += cycles

    def feedback(self, step_id: int | None, cycles: int) -> None:
        record = self._record(step_id)
        if record is not None:
            record.feedback_cycles += cycles

    def excluded_wait(self, step_id: int | None, ns: int) -> None:
        record = self._record(step_id)
        if record is not None:
            record.excluded_wait_ns += ns

    def merge(self, other: "CESAccumulator") -> None:
        """Fold another accumulator (e.g. a second processor) in."""
        for step_id, record in other.records.items():
            mine = self._record(step_id)
            mine.quantum_cycles += record.quantum_cycles
            mine.classical_cycles += record.classical_cycles
            mine.control_stall_cycles += record.control_stall_cycles
            mine.feedback_cycles += record.feedback_cycles
            mine.excluded_wait_ns += record.excluded_wait_ns


@dataclass
class TRReport:
    """Time-ratio summary over all circuit steps of a program."""

    per_step: dict[int, float]
    clock_period_ns: int
    gate_time_ns: int

    @property
    def average(self) -> float:
        if not self.per_step:
            return 0.0
        return sum(self.per_step.values()) / len(self.per_step)

    @property
    def maximum(self) -> float:
        return max(self.per_step.values(), default=0.0)

    @property
    def meets_deadline(self) -> bool:
        """True when TR <= 1 for every step (the QOLP design goal)."""
        return all(tr <= 1.0 + 1e-9 for tr in self.per_step.values())


def time_ratio(ces: CESAccumulator, clock_period_ns: int = 10,
               gate_time_ns: int = 20,
               step_durations_ns: dict[int, int] | None = None) -> TRReport:
    """Compute TR per step (Equation 2).

    By default the paper's fixed 20 ns gate time is the denominator; pass
    ``step_durations_ns`` to use each step's actual QPU duration instead.
    """
    per_step: dict[int, float] = {}
    for step_id, record in sorted(ces.records.items()):
        if step_durations_ns is not None:
            gate_time = step_durations_ns.get(step_id, gate_time_ns)
        else:
            gate_time = gate_time_ns
        if gate_time <= 0:
            continue
        per_step[step_id] = clock_period_ns * record.ces / gate_time
    return TRReport(per_step=per_step, clock_period_ns=clock_period_ns,
                    gate_time_ns=gate_time_ns)


def average_ces(ces: CESAccumulator) -> float:
    """Mean CES over all recorded steps."""
    if not ces.records:
        return 0.0
    return sum(r.ces for r in ces.records.values()) / len(ces.records)
