"""Shot-based execution: repeated runs with outcome histograms.

Experiments sample a circuit many times.  :func:`run_shots` executes a
program repeatedly on fresh QPU states, collects each shot's
measurement outcomes, and returns a :class:`ShotResult` histogram —
the interface a lab would script against.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.isa.program import Program
from repro.qcp.config import QCPConfig
from repro.qcp.system import QuAPESystem, infer_qubit_count
from repro.qpu.device import QPUBase, StateVectorQPU


@dataclass
class ShotResult:
    """Histogram of per-shot measurement outcomes."""

    shots: int
    measured_qubits: tuple[int, ...]
    counts: Counter = field(default_factory=Counter)
    total_ns: int = 0

    def probability(self, bitstring: str) -> float:
        """Relative frequency of ``bitstring`` (qubit order as in
        ``measured_qubits``, leftmost = first measured qubit)."""
        if self.shots == 0:
            return 0.0
        return self.counts[bitstring] / self.shots

    def expectation(self, qubit: int) -> float:
        """Mean value of one measured qubit (0..1)."""
        position = self.measured_qubits.index(qubit)
        total = sum(count for bits, count in self.counts.items()
                    if bits[position] == "1")
        return total / self.shots if self.shots else 0.0

    def most_frequent(self) -> str:
        """The modal outcome bitstring."""
        if not self.counts:
            raise ValueError("no shots recorded")
        return self.counts.most_common(1)[0][0]


def run_shots(program: Program, shots: int,
              qpu_factory: Callable[[int], QPUBase] | None = None,
              config: QCPConfig | None = None,
              n_processors: int = 1,
              n_qubits: int | None = None) -> ShotResult:
    """Execute ``program`` ``shots`` times and histogram the outcomes.

    ``qpu_factory(seed)`` builds a fresh QPU per shot (default: an
    ideal state-vector QPU); each shot runs on its own system so there
    is no state leakage between shots.  A shot's bitstring records, for
    every measured qubit (sorted), the *last* delivered result.
    """
    if shots < 1:
        raise ValueError("need at least one shot")
    config = config or QCPConfig()
    if qpu_factory is None:
        qubit_count = n_qubits or infer_qubit_count(program)

        def qpu_factory(seed: int) -> QPUBase:
            return StateVectorQPU(qubit_count, seed=seed)

    result: ShotResult | None = None
    for seed in range(shots):
        system = QuAPESystem(program=program, config=config,
                             n_processors=n_processors,
                             qpu=qpu_factory(seed), n_qubits=n_qubits)
        execution = system.run()
        system.kernel.run()  # drain trailing deliveries
        last_value: dict[int, int] = {}
        for delivery in system.results.history:
            last_value[delivery.qubit] = delivery.value
        measured = tuple(sorted(last_value))
        bits = "".join(str(last_value[q]) for q in measured)
        if result is None:
            result = ShotResult(shots=shots, measured_qubits=measured)
        result.counts[bits] += 1
        result.total_ns += execution.total_ns
    assert result is not None
    return result
