"""Shot-based execution: repeated runs with outcome histograms.

Experiments sample a circuit many times.  :class:`ShotEngine` is the
compile-once executor behind that: constructing it decodes the program
into the immutable control-stack artifacts — the instruction memory,
the block-information table and the analog channel map — exactly once,
and builds one reusable QPU.  Each shot then only resets the quantum
state (``qpu.restart()``) and wires fresh lightweight executors
(kernel, scheduler, processors, emitter) around the shared artifacts,
instead of rebuilding the entire world per shot.  :func:`run_shots` is
the one-call convenience wrapper a lab script would use.

On top of that, the engine keeps a decision-keyed **trace cache**
(:mod:`repro.qcp.tracecache`, ``QCPConfig.trace_cache``): the first
shot down any control-flow decision path runs the cycle-accurate
control-stack simulation and records the device-op stream; every
later shot sharing that decision path replays the recorded stream
straight into the QPU backend, skipping the event kernel entirely
while producing bit-identical outcomes, histograms and timings.
Replay itself is compiled per substrate: sign-trace programs on the
stabilizer backend, GEMM-fused block operators on the ideal dense
backend (``QCPConfig.trace_cache_dense_fusion``), and flat noise-site
programs on the noisy dense backend
(``QCPConfig.trace_cache_compiled_noise``), all funnelling through
one shared decide/hit/resume epilogue.
This includes **noisy substrates** (pass ``noise=``): the per-shot
reseeded noise rng is replayed positionally, and a replay that
diverges from the trie resumes the cycle-accurate simulation from
the divergence frontier (:class:`~repro.qcp.tracecache.CheckpointQPU`)
instead of re-simulating the whole shot.  Only custom ``qpu_factory``
devices fall back to always-cycle-accurate execution — the cache
cannot see inside them.

Backend selection
=================

The quantum substrate is chosen by name (see :mod:`repro.qpu.backend`):
``backend="statevector"`` (dense, exact, <= 24 qubits — the default)
or ``backend="stabilizer"`` (Aaronson–Gottesman tableau, polynomial,
100+ qubits, Clifford gates only).  The default comes from
``QCPConfig.qpu_backend``, so one config object can steer a whole
experiment; a custom ``qpu_factory`` overrides everything.  Running a
non-Clifford program on the stabilizer backend raises
:class:`~repro.qpu.backend.NonCliffordGateError`.

Histogram semantics
===================

Conditional branches can make different shots measure different qubit
sets (e.g. "measure q1 only if q0 read 1").  Bitstrings are therefore
keyed against the **union** of the qubits measured across all shots,
in sorted order, with ``-`` marking a qubit the shot never measured —
so mixed-shape shots can never silently misalign the histogram.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.isa.program import BlockInfoTable, DependencyMode, Program
from repro.analog.channels import ChannelMap
from repro.qcp.artifacts import ArtifactCache, artifact_fingerprint
from repro.qcp.config import QCPConfig
from repro.qcp.memory import InstructionMemory
from repro.qcp.system import QuAPESystem, infer_qubit_count
from repro.qcp.routing import RoutingDecision, route_backend
from repro.qcp.tracecache import (CheckpointQPU, RecordingQPU,
                                  ResumePoint, TraceCache,
                                  auto_batch_width)
from repro.qpu.device import QPUBase, SimulatedQPU
from repro.qpu.noise import NoiseModel
from repro.qpu.profile import DeviceProfile, load_device_profile

#: Placeholder in a bitstring for a union qubit this shot never measured.
UNMEASURED = "-"

#: One shot's outcome as a hashable, order-canonical key: sorted
#: ``(qubit, value)`` pairs.  Unlike a rendered bitstring, the key is
#: independent of which *other* shots ran alongside it — which is what
#: makes shard histograms mergeable without re-running anything.
OutcomeKey = tuple[tuple[int, int], ...]


@dataclass
class ShardOutcomes:
    """Partial histogram of one contiguous seed range of a sweep.

    The histogram is keyed by :data:`OutcomeKey` rather than rendered
    bitstrings, because bitstring rendering depends on the cross-shot
    measurement union — a global property a shard cannot know.  Keys
    make the merge commutative and associative: summing the counters
    of any disjoint cover of ``range(0, shots)`` and rendering once at
    the end (:func:`merge_shard_outcomes`) reproduces, count for count
    and nanosecond for nanosecond, what a serial
    :meth:`ShotEngine.run` over the same seeds produces.
    """

    start: int
    stop: int
    counts: Counter = field(default_factory=Counter)
    total_ns: int = 0

    @property
    def shots(self) -> int:
        return self.stop - self.start


def merge_shard_outcomes(shards) -> ShotResult:
    """Merge :class:`ShardOutcomes` into one :class:`ShotResult`.

    Purely commutative: counter sum plus integer ``total_ns`` sum,
    then one rendering pass against the union of measured qubits.
    Because each shot's :data:`OutcomeKey` and duration are pure
    functions of its seed (PR 4's salted per-shot derivation), the
    merged result is bit-identical to serially executing the union of
    the shard ranges — the property the shot-sweep service asserts
    for its sharded sweeps.
    """
    shards = list(shards)
    if not shards:
        raise ValueError("no shards to merge")
    merged: Counter = Counter()
    total_ns = 0
    shots = 0
    for shard in shards:
        merged.update(shard.counts)
        total_ns += shard.total_ns
        shots += shard.shots
    measured = tuple(sorted(
        set().union(*({qubit for qubit, _ in key} for key in merged))))
    result = ShotResult(shots=shots, measured_qubits=measured,
                        total_ns=total_ns)
    for key, count in merged.items():
        values = dict(key)
        bits = "".join([str(values[q]) if q in values else UNMEASURED
                        for q in measured])
        result.counts[bits] += count
    return result


def program_has_measurement(program: Program) -> bool:
    """True when any instruction can deliver a measurement result.

    A program without a single ``qmeas`` yields the empty outcome on
    every shot (``measured_qubits == ()``); callers that need a
    histogram of *bitstrings* — the shot-sweep service, most analyses
    — should reject such programs up front instead of discovering an
    all-``""`` histogram afterwards.
    """
    from repro.isa.opcodes import Opcode

    def measures(instr) -> bool:
        if getattr(instr, "opcode", None) == Opcode.QMEAS:
            return True
        # VLIW bundles carry qmeas operations in their slots.
        return any(measures(op) for op in getattr(instr, "slots", ()))

    return any(measures(instr) for instr in program.instructions)


@dataclass
class ShotResult:
    """Histogram of per-shot measurement outcomes.

    ``measured_qubits`` is the sorted union of every qubit measured by
    at least one shot; a bitstring position holds ``"0"``/``"1"`` for
    the *last* delivered result of that qubit, or ``"-"`` if the shot
    (e.g. down an untaken conditional branch) never measured it.
    """

    shots: int
    measured_qubits: tuple[int, ...]
    counts: Counter = field(default_factory=Counter)
    total_ns: int = 0

    def probability(self, bitstring: str) -> float:
        """Relative frequency of ``bitstring`` (qubit order as in
        ``measured_qubits``, leftmost = first measured qubit)."""
        if self.shots == 0:
            return 0.0
        return self.counts[bitstring] / self.shots

    def expectation(self, qubit: int) -> float:
        """Mean value of one measured qubit (0..1), over the shots
        that actually measured it."""
        if qubit not in self.measured_qubits:
            raise ValueError(
                f"qubit {qubit} was never measured by any shot; "
                f"measured_qubits={self.measured_qubits}")
        position = self.measured_qubits.index(qubit)
        ones = observed = 0
        for bits, count in self.counts.items():
            if bits[position] == UNMEASURED:
                continue
            observed += count
            if bits[position] == "1":
                ones += count
        return ones / observed if observed else 0.0

    def most_frequent(self) -> str:
        """The modal outcome bitstring.

        A program that never measures produces the empty-string
        outcome for every shot (``measured_qubits == ()``); asking for
        a modal *bitstring* then is a category error, so it raises
        instead of silently returning ``""``.  The histogram itself is
        still available (``counts[""] == shots``).
        """
        if not self.counts:
            raise ValueError("no shots recorded")
        if not self.measured_qubits:
            raise ValueError(
                "program never measured any qubit: every shot "
                "produced the empty outcome (counts[''] holds the "
                "shot count)")
        return self.counts.most_common(1)[0][0]


class ShotEngine:
    """Compile-once, run-many executor for one program.

    Construction performs every program-derived, shot-invariant step:
    qubit-count inference, instruction-memory and block-info-table
    decode, channel-map construction and (unless a ``qpu_factory`` is
    supplied) QPU construction.  :meth:`run` then executes shots that
    each cost only a state reset plus the event-driven execution
    itself.

    ``backend`` picks the simulation backend by registry name and
    defaults to ``config.qpu_backend``.  ``noise`` attaches a
    :class:`~repro.qpu.noise.NoiseModel` to the engine-owned QPU (its
    channel rng is reseeded per shot, so noisy shots stay seed-
    reproducible and trace-cacheable).  ``qpu_factory(seed)``, when
    given, takes full control of QPU construction (one call per shot,
    preserving the historical ``run_shots`` contract) and is mutually
    exclusive with ``noise``.
    """

    def __init__(self, program: Program,
                 config: QCPConfig | None = None,
                 n_processors: int = 1,
                 n_qubits: int | None = None,
                 backend: str | None = None,
                 noise: NoiseModel | None = None,
                 qpu_factory: Callable[[int], QPUBase] | None = None,
                 dependency_mode: DependencyMode = DependencyMode.PRIORITY,
                 seed: int = 0,
                 profile: DeviceProfile | None = None) -> None:
        self.program = program
        self.config = config or QCPConfig()
        self.backend = backend or self.config.qpu_backend
        self.n_processors = n_processors
        self.n_qubits = n_qubits
        self.qubit_count = n_qubits or infer_qubit_count(program)
        self.dependency_mode = dependency_mode
        self.qpu_factory = qpu_factory
        if qpu_factory is not None and noise is not None:
            raise ValueError(
                "noise= configures the engine-owned QPU; a custom "
                "qpu_factory builds its own devices (give them their "
                "own NoiseModel instead)")
        # -- calibrated device profile -----------------------------------
        # An explicit profile object (the service passes inline
        # profiles this way) wins over the config path.  A custom
        # qpu_factory owns its devices, so a profile cannot reach them.
        if profile is None and self.config.device_profile is not None:
            profile = load_device_profile(self.config.device_profile)
        if qpu_factory is not None and profile is not None:
            raise ValueError(
                "a device profile configures the engine-owned QPU; a "
                "custom qpu_factory builds its own devices")
        self.profile = profile
        # -- automatic backend routing (backend="auto") ------------------
        # Resolved once, before the QPU is built: the routed name (and
        # the adaptive fusion width it may carry) is what flows into
        # the device, the engine identity and the artifact fingerprint
        # — "auto" itself never reaches make_backend.
        self.routing: RoutingDecision | None = None
        if self.backend == "auto":
            if qpu_factory is not None:
                raise ValueError(
                    'backend="auto" routes the engine-owned QPU; a '
                    "custom qpu_factory builds its own devices")
            preview = (profile.noise_model(base=noise)
                       if profile is not None else noise)
            self.routing = route_backend(program, self.qubit_count,
                                         noise=preview, profile=profile)
            self.backend = self.routing.backend
            if (self.routing.fuse_max_qubits is not None
                    and self.config.fuse_max_qubits is None):
                self.config = self.config.with_(
                    fuse_max_qubits=self.routing.fuse_max_qubits)
        # -- compile-once artifacts, shared by every shot ----------------
        self.memory = InstructionMemory(program)
        self.table = BlockInfoTable(program, mode=dependency_mode)
        self.channel_map = ChannelMap.default(self.qubit_count)
        self._qpu: QPUBase | None = None
        if qpu_factory is None:
            self._qpu = SimulatedQPU(self.qubit_count, seed=seed,
                                     backend=self.backend, noise=noise,
                                     profile=profile)
        # -- trace cache: replay decision-path-identical shots -----------
        # Any engine-owned SimulatedQPU is cacheable — ideal or noisy
        # (noise draws replay positionally from the per-shot reseeded
        # channel rng).  A custom factory is opaque to the recorder.
        self.trace_cache: TraceCache | None = None
        if self.config.trace_cache and self._qpu is not None:
            self.trace_cache = TraceCache(self.config)
        # -- persistent artifact cache: warm-start the trace cache -------
        # Keyed by the full engine identity; an engine whose identity
        # cannot be fingerprinted (exotic noise channel) stays cold
        # rather than risking a wrong key.  See repro.qcp.artifacts.
        self.artifacts: ArtifactCache | None = None
        self._artifact_sig: tuple | None = None
        if (self.trace_cache is not None
                and self.config.artifact_cache_dir is not None):
            fingerprint = artifact_fingerprint(
                program, self.config, self.backend, self._qpu.noise,
                n_processors, self.qubit_count, dependency_mode,
                profile=profile)
            if fingerprint is not None:
                self.artifacts = ArtifactCache(
                    self.config.artifact_cache_dir, fingerprint,
                    self.config.artifact_cache_max_bytes)
                self.artifacts.load_into(self.trace_cache, self.memory,
                                         self._qpu)
                self._artifact_sig = self._artifact_state()

    def _artifact_state(self) -> tuple:
        """A cheap signature of what an artifact save would capture.

        Saves are skipped while this is unchanged — replay-only
        workloads (the steady state of a warm worker) never rewrite an
        identical artifact.  Compiled-program installs matter too: a
        warm batch of shots can compile sign programs for nodes that
        were recorded earlier, which is exactly the compile work the
        next process wants to skip.
        """
        cache = self.trace_cache
        compiled = 0
        nodes = [cache.root] if cache.root is not None else []
        while nodes:
            node = nodes.pop()
            if node.items is None:
                continue
            if node._program is not None:
                compiled += 1
            nodes.extend(node.children.values())
        return (cache.nodes, cache.misses, cache.evictions, compiled)

    def _sync_artifacts(self) -> None:
        """Publish the compiled trie to the artifact directory."""
        artifacts = self.artifacts
        cache = self.trace_cache
        if artifacts is None or cache is None or cache.root is None:
            return
        signature = self._artifact_state()
        if signature == self._artifact_sig:
            return
        if artifacts.save_from(cache, self.memory, self._qpu):
            self._artifact_sig = signature

    def _shot_qpu(self, seed: int) -> QPUBase:
        if self.qpu_factory is not None:
            return self.qpu_factory(seed)
        qpu = self._qpu
        qpu.operation_log.clear()
        qpu.timing_violations.clear()
        qpu.restart(seed=seed)
        return qpu

    def run_shot(self, seed: int = 0) -> tuple[dict[int, int], int]:
        """Execute one shot; returns (last result per qubit, run ns).

        ``seed`` makes the shot reproducible on either path: it is
        passed to ``qpu_factory`` when one was supplied, and reseeds
        the reused QPU's measurement RNG otherwise.

        With the trace cache enabled the shot first attempts a trie
        replay (batched backend ops, no event kernel); a replay that
        diverges from the trie *resumes* the cycle-accurate simulation
        from the divergence frontier — the backend state and rng
        positions the replay prefix left behind — behind a
        :class:`~repro.qcp.tracecache.CheckpointQPU` proxy that skips
        the prefix device operations, then records the newly explored
        path.  A cold cache falls back to a full cycle-accurate shot.
        All paths return bit-identical results for the same seed.
        """
        cache = self.trace_cache
        resume: ResumePoint | None = None
        if cache is not None:
            replayed = cache.replay(self._qpu, seed)
            if isinstance(replayed, ResumePoint):
                resume = replayed
            elif replayed is not None:
                return replayed
        if resume is not None:
            # The replay already restarted/reseeded the QPU and drove
            # it to the frontier; do not reset it again.
            qpu: QPUBase = CheckpointQPU(self._qpu, resume)
        else:
            qpu = self._shot_qpu(seed)
        recorded: list | None = None
        if cache is not None:
            recorded = []
            qpu = RecordingQPU(qpu, recorded)
        system = QuAPESystem(
            program=self.program, config=self.config,
            n_processors=self.n_processors, qpu=qpu,
            n_qubits=self.n_qubits,
            dependency_mode=self.dependency_mode,
            memory=self.memory, table=self.table,
            channel_map=self.channel_map, recorder=recorded)
        execution = system.run()
        system.kernel.run()  # drain trailing deliveries
        last_value: dict[int, int] = {}
        for delivery in system.results.history:
            last_value[delivery.qubit] = delivery.value
        if recorded is not None:
            cache.record(recorded, execution.total_ns)
        return last_value, execution.total_ns

    def _run_all(self, shots: int):
        """Yield every shot's (last results, ns) for seeds 0..shots-1."""
        return self._run_seeds(range(shots))

    def _run_seeds(self, seeds: range):
        """Yield each seed's (last results, ns) in seed order.

        With batching enabled (``QCPConfig.trace_cache_batch``) the
        first seed runs serially to warm the trie, then the remaining
        seeds go to the trace cache in cohorts of
        ``trace_cache_batch_width`` (default: substrate-dependent, see
        :func:`~repro.qcp.tracecache.auto_batch_width`): the cache
        replays each cohort as one wavefront over the trie and hands
        back ``None`` for shots that diverged off the cached paths or
        hit an unbatchable segment — those fall back to
        :meth:`run_shot`, which records their new paths as usual.
        Every shot is bit-identical to its serial ``run_shot(seed)``
        either way, so histograms and timings depend on neither the
        batch width nor how a sweep is sharded into seed ranges.
        """
        cache = self.trace_cache
        if (cache is None or not self.config.trace_cache_batch
                or len(seeds) < 2):
            for seed in seeds:
                yield self.run_shot(seed)
            return
        width = self.config.trace_cache_batch_width
        if width is None:
            width = auto_batch_width(self._qpu)
        yield self.run_shot(seeds[0])
        index = 1
        batching = True
        while index < len(seeds):
            chunk = list(seeds[index:index + width])
            replayed = (cache.replay_batch(self._qpu, chunk)
                        if batching else None)
            if replayed is None:
                # No batch kernel for this substrate/noise/config —
                # stay serial for the rest of the run.
                batching = False
                replayed = [None] * len(chunk)
            for chunk_seed, result in zip(chunk, replayed):
                yield (result if result is not None
                       else self.run_shot(chunk_seed))
            index += len(chunk)

    def run_range(self, start: int, stop: int) -> ShardOutcomes:
        """Execute seeds ``start..stop-1``; return the partial histogram.

        This is the shard entry point of the shot-sweep service
        (:mod:`repro.service`): a worker runs one contiguous seed
        range and hands back outcome-keyed counts plus the summed
        duration, without rendering bitstrings — rendering needs the
        cross-shard measurement union, which only the merge
        (:func:`merge_shard_outcomes`) knows.  Shots are pure
        functions of their seed, so any disjoint cover of a seed range
        merges to exactly the serial result.
        """
        if stop <= start:
            raise ValueError(
                f"empty shard range [{start}, {stop})")
        shard = ShardOutcomes(start=start, stop=stop)
        counts = shard.counts
        # Batched replay hands out one shared outcome dict per
        # distinct leaf pattern; memoizing the outcome key by object
        # identity collapses per-shot keying to a dict hit.  Keeping a
        # reference to each keyed dict pins its id for the shard's
        # lifetime.
        keyed: dict[int, tuple[dict[int, int], OutcomeKey]] = {}
        for last_value, shot_ns in self._run_seeds(range(start, stop)):
            entry = keyed.get(id(last_value))
            if entry is None:
                key: OutcomeKey = tuple(sorted(last_value.items()))
                keyed[id(last_value)] = (last_value, key)
            else:
                key = entry[1]
            counts[key] += 1
            shard.total_ns += shot_ns
        self._sync_artifacts()
        return shard

    def run(self, shots: int) -> ShotResult:
        """Execute ``shots`` shots and histogram the outcomes.

        Implemented as the single-shard case of the shard/merge
        pipeline, so serial execution and a sharded sweep share one
        histogramming code path by construction.
        """
        if shots < 1:
            raise ValueError("need at least one shot")
        return merge_shard_outcomes([self.run_range(0, shots)])


def run_shots(program: Program, shots: int,
              qpu_factory: Callable[[int], QPUBase] | None = None,
              config: QCPConfig | None = None,
              n_processors: int = 1,
              n_qubits: int | None = None,
              backend: str | None = None,
              noise: NoiseModel | None = None) -> ShotResult:
    """Execute ``program`` ``shots`` times and histogram the outcomes.

    Convenience wrapper constructing a :class:`ShotEngine` (one
    program decode) and running it.  ``qpu_factory(seed)`` builds a
    fresh QPU per shot when supplied; otherwise one simulated QPU is
    built with the ``backend`` (default ``config.qpu_backend``, i.e.
    the dense statevector) and the optional ``noise`` model, and reset
    between shots.  A shot's bitstring records, for every qubit in the
    cross-shot measurement union (sorted), the *last* delivered result
    — see :class:`ShotResult` for the mixed-branch semantics.
    """
    engine = ShotEngine(program, config=config,
                        n_processors=n_processors, n_qubits=n_qubits,
                        backend=backend, noise=noise,
                        qpu_factory=qpu_factory)
    return engine.run(shots)
