"""Compile-once instruction decode for the processor cores.

The cycle-accurate processor models used to re-discover what every
instruction *is* on every cycle: a chain of ``isinstance`` checks, enum
lookups, field validation and :class:`~repro.qcp.emitter.QuantumOp`
construction, repeated for each of the millions of cycles a shot sweep
executes.  All of that is a pure function of the (immutable) program,
so this module performs it exactly once when the instruction memory is
built.

Each instruction decodes to a flat tuple ``(kind, instr, payload)``:

* ``kind`` — a small int (``K_QOP`` .. ``K_CLASSICAL``) the cores
  dispatch on with integer compares instead of ``isinstance`` chains;
* ``instr`` — the original instruction, kept for the paths that still
  need source-level fields (MRCE feedback, FMR waiters, tracing);
* ``payload`` — kind-specific pre-computed artifacts: the immutable
  ``QuantumOp`` a quantum instruction will enqueue (built once, reused
  every shot), per-slot bundle expansions, or a compiled *classical
  micro-op*: a closure ``run(processor) -> (disposition, extra_cycles)``
  with operand fields and comparators already bound.

The compiled classical closures replicate the architectural semantics
previously implemented by ``ProcessorCore._apply_classical``; the
dispositions (``"next"``/``"taken"``/``"halt"``/``"stall_fmr"``) and
stall-cycle accounting are unchanged.
"""

from __future__ import annotations

from typing import Callable

from repro.isa.instructions import (Alu, Addi, Branch, Fmr, Halt,
                                    Instruction, Jmp, Ldi, Ldm, Mov, Mrce,
                                    Nop, Not, Qmeas, Qop, Stm)
from repro.isa.vliw import Bundle
from repro.qcp.emitter import QuantumOp

# Dispatch kinds.  K_QOP/K_QMEAS are adjacent so "is quantum" is a
# single ``kind <= K_QMEAS`` compare.
K_QOP = 0
K_QMEAS = 1
K_BUNDLE = 2
K_MRCE = 3
K_CLASSICAL = 4

# Effect classes of classical instructions, used by the trace-cache
# recorder to decide what must be captured for a functional replay:
# E_NONE has no architectural effect beyond control flow that is
# constant (nop/halt/jmp), E_REG mutates register state (replayed via
# the compiled micro-op), E_BRANCH is a data-dependent control decision
# (a trie branch point), E_FMR moves a measurement result into a
# register (replayed from the delivered-outcome map).
E_NONE = 0
E_REG = 1
E_BRANCH = 2
E_FMR = 3

#: A decoded entry: (kind, instruction, payload).
DecodedInstr = tuple

#: A compiled classical micro-op.
ClassicalRun = Callable[["object"], tuple[str, int]]


def _run_nop(proc) -> tuple[str, int]:
    return "next", 0


def _run_halt(proc) -> tuple[str, int]:
    return "halt", 0


def _compile_classical(instr: Instruction) -> ClassicalRun:
    """Bind one classical instruction into a micro-op closure."""
    if isinstance(instr, Nop):
        return _run_nop
    if isinstance(instr, Halt):
        return _run_halt
    if isinstance(instr, Jmp):
        target = int(instr.target)

        def run_jmp(proc):
            proc.pc = target
            return "taken", proc.config.branch_penalty_cycles
        return run_jmp
    if isinstance(instr, Branch):
        compare = instr._COMPARATORS[instr.opcode]
        rs, rt, target = instr.rs, instr.rt, int(instr.target)

        def run_branch(proc):
            registers = proc.registers
            if compare(registers.read(rs), registers.read(rt)):
                proc.pc = target
                return "taken", proc.config.branch_penalty_cycles
            return "next", 0
        return run_branch
    if isinstance(instr, Ldi):
        rd, imm = instr.rd, instr.imm

        def run_ldi(proc):
            proc.registers.write(rd, imm)
            return "next", 0
        return run_ldi
    if isinstance(instr, Mov):
        rd, rs = instr.rd, instr.rs

        def run_mov(proc):
            registers = proc.registers
            registers.write(rd, registers.read(rs))
            return "next", 0
        return run_mov
    if isinstance(instr, Ldm):
        rd, addr = instr.rd, instr.addr

        def run_ldm(proc):
            proc.registers.write(rd, proc.shared.read(addr))
            return "next", 0
        return run_ldm
    if isinstance(instr, Stm):
        rs, addr = instr.rs, instr.addr

        def run_stm(proc):
            proc.shared.write(addr, proc.registers.read(rs))
            return "next", 0
        return run_stm
    if isinstance(instr, Addi):
        rd, rs, imm = instr.rd, instr.rs, instr.imm

        def run_addi(proc):
            registers = proc.registers
            registers.write(rd, registers.read(rs) + imm)
            return "next", 0
        return run_addi
    if isinstance(instr, Not):
        rd, rs = instr.rd, instr.rs

        def run_not(proc):
            registers = proc.registers
            registers.write(rd, registers.read(rs) ^ 1)
            return "next", 0
        return run_not
    if isinstance(instr, Alu):
        evaluate = instr._FUNCS[instr.opcode]
        rd, rs, rt = instr.rd, instr.rs, instr.rt

        def run_alu(proc):
            registers = proc.registers
            registers.write(rd, evaluate(registers.read(rs),
                                         registers.read(rt)))
            return "next", 0
        return run_alu
    if isinstance(instr, Fmr):
        rd, qubit = instr.rd, instr.qubit

        def run_fmr(proc):
            results = proc.results
            if results.is_valid(qubit):
                proc.registers.write(rd, results.read(qubit))
                return "next", 0
            return "stall_fmr", 0
        return run_fmr
    raise TypeError(f"not a classical instruction: {instr}")


def _op_for(instr: Qop | Qmeas) -> QuantumOp:
    """The immutable, reusable QuantumOp a quantum instruction issues."""
    if isinstance(instr, Qmeas):
        return QuantumOp(gate="measure", qubits=(instr.qubit,),
                         block=instr.block, step_id=instr.step_id)
    return QuantumOp(gate=instr.gate, qubits=instr.qubits,
                     params=instr.params, block=instr.block,
                     step_id=instr.step_id)


def decode_instruction(instr: Instruction) -> DecodedInstr:
    """Decode one instruction into its ``(kind, instr, payload)`` entry.

    Called once per instruction when the
    :class:`~repro.qcp.memory.InstructionMemory` is built; the cores
    then dispatch on the integer ``kind`` every cycle.  Payloads by
    kind:

    * ``K_QOP`` / ``K_QMEAS`` — ``(QuantumOp, timing, step_id)``, the
      reusable operation object plus its issue-timing label;
    * ``K_BUNDLE`` — per-slot ``(QuantumOp, measured qubit or None,
      slot timing)`` expansions plus the bundle's step and qubit set;
    * ``K_MRCE`` — ``None`` (feedback needs the live instruction);
    * ``K_CLASSICAL`` — ``(micro-op closure, hoistable, effect
      class)``; the effect class (``E_NONE``/``E_REG``/``E_BRANCH``/
      ``E_FMR``) tells the trace-cache recorder whether and how the
      instruction must be captured for a functional replay.
    """
    if isinstance(instr, Bundle):
        slots = tuple(
            (_op_for(slot),
             slot.qubit if isinstance(slot, Qmeas) else None,
             instr.timing if position == 0 else 0)
            for position, slot in enumerate(instr.slots))
        return (K_BUNDLE, instr,
                (slots, instr.step_id, instr.qubits))
    if isinstance(instr, Qmeas):
        return (K_QMEAS, instr,
                (_op_for(instr), instr.timing, instr.step_id))
    if isinstance(instr, Qop):
        return (K_QOP, instr,
                (_op_for(instr), instr.timing, instr.step_id))
    if isinstance(instr, Mrce):
        return (K_MRCE, instr, None)
    hoistable = not (instr.is_branch
                     or instr.opcode.name in ("HALT", "FMR"))
    if isinstance(instr, (Nop, Halt, Jmp)):
        eclass = E_NONE
    elif isinstance(instr, Branch):
        eclass = E_BRANCH
    elif isinstance(instr, Fmr):
        eclass = E_FMR
    else:
        eclass = E_REG
    return (K_CLASSICAL, instr,
            (_compile_classical(instr), hoistable, eclass))
