"""Instruction memory and private instruction caches (Section 5.2.3).

All instructions live in a centralized :class:`InstructionMemory` shared
by every processor.  Each processor owns a :class:`PrivateInstructionCache`
with **two banks**: the active bank holds the executing block, the other
is filled by the scheduler's prefetch so a block switch only costs the
bank-select cycles instead of a full cache fill.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction
from repro.isa.program import BlockInfo, Program
from repro.qcp.decode import DecodedInstr, decode_instruction


class InstructionMemory:
    """Centralized main memory holding the whole program.

    Construction pre-decodes every instruction into its dispatch entry
    (kind code, reusable ``QuantumOp``, compiled classical micro-op —
    see :mod:`repro.qcp.decode`), so the per-cycle fetch path of the
    processor cores is an O(1) list index instead of instruction-object
    introspection.  A shot engine shares one memory across all shots,
    amortising the decode to zero.
    """

    def __init__(self, program: Program) -> None:
        self.program = program
        self._decoded: list[DecodedInstr] = [
            decode_instruction(instr) for instr in program.instructions]

    def __len__(self) -> int:
        return len(self.program)

    def fetch(self, pc: int) -> Instruction:
        if not 0 <= pc < len(self.program):
            raise IndexError(f"instruction fetch out of range: pc={pc}")
        return self.program.instructions[pc]

    def fetch_decoded(self, pc: int) -> DecodedInstr:
        """The pre-decoded ``(kind, instr, payload)`` entry at ``pc``."""
        if not 0 <= pc < len(self._decoded):
            raise IndexError(f"instruction fetch out of range: pc={pc}")
        return self._decoded[pc]

    def block_instructions(self, block: BlockInfo) -> list[Instruction]:
        return self.program.instructions[block.start:block.end]


@dataclass
class _Bank:
    block: BlockInfo | None = None
    ready: bool = False


class CacheError(RuntimeError):
    """Raised on fetches outside the active block (a hardware bug)."""


class PrivateInstructionCache:
    """Double-buffered per-processor instruction cache."""

    def __init__(self, memory: InstructionMemory) -> None:
        self.memory = memory
        self._banks = [_Bank(), _Bank()]
        self._active = 0

    # -- scheduler-facing ---------------------------------------------------

    @property
    def active_block(self) -> BlockInfo | None:
        return self._banks[self._active].block

    @property
    def prefetched_block(self) -> BlockInfo | None:
        bank = self._banks[1 - self._active]
        return bank.block if bank.ready else None

    @property
    def inactive_bank_free(self) -> bool:
        return self._banks[1 - self._active].block is None

    def fill_active(self, block: BlockInfo) -> None:
        """Full allocation: load ``block`` into the active bank."""
        bank = self._banks[self._active]
        bank.block = block
        bank.ready = True

    def prefetch(self, block: BlockInfo) -> None:
        """Load ``block`` into the inactive bank."""
        bank = self._banks[1 - self._active]
        if bank.block is not None:
            raise CacheError(
                f"prefetch into occupied bank (holds {bank.block.name!r})")
        bank.block = block
        bank.ready = True

    def switch(self) -> BlockInfo:
        """Flip to the prefetched bank; returns the new active block."""
        target = self._banks[1 - self._active]
        if target.block is None or not target.ready:
            raise CacheError("switch to an empty/unready bank")
        self.release_active()
        self._active = 1 - self._active
        return target.block

    def release_active(self) -> None:
        """Drop the active bank's block (execution finished)."""
        bank = self._banks[self._active]
        bank.block = None
        bank.ready = False

    def drop_prefetch(self) -> None:
        """Discard a prefetched block (scheduling changed its mind)."""
        bank = self._banks[1 - self._active]
        bank.block = None
        bank.ready = False

    # -- processor-facing ------------------------------------------------------

    def fetch(self, pc: int) -> Instruction:
        """Fetch from the active bank, enforcing the block range."""
        block = self.active_block
        if block is None:
            raise CacheError("fetch with no active block")
        if not block.start <= pc < block.end:
            raise CacheError(
                f"pc {pc} outside active block {block.name!r} "
                f"[{block.start}, {block.end})")
        return self.memory.fetch(pc)

    def fetch_decoded(self, pc: int) -> DecodedInstr:
        """Pre-decoded fetch from the active bank (same range rules)."""
        block = self.active_block
        if block is None:
            raise CacheError("fetch with no active block")
        if not block.start <= pc < block.end:
            raise CacheError(
                f"pc {pc} outside active block {block.name!r} "
                f"[{block.start}, {block.end})")
        return self.memory.fetch_decoded(pc)

    def in_active_block(self, pc: int) -> bool:
        block = self.active_block
        return block is not None and block.start <= pc < block.end
