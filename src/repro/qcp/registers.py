"""Register resources of the control processor (Section 5.2.4).

* :class:`RegisterFile` — per-processor general-purpose registers with a
  hardwired zero register.
* :class:`SharedRegisters` — registers visible to all processors, used
  for race-condition management and synchronisation.
* :class:`MeasurementResultRegisters` — written by the digital
  acquisition path, read-only for processors; supports the
  wait-until-valid synchronisation protocol of Section 2.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa.instructions import NUM_REGISTERS, ZERO_REG


class RegisterFile:
    """General-purpose registers; register 0 always reads zero."""

    def __init__(self, size: int = NUM_REGISTERS) -> None:
        if size < 2:
            raise ValueError("register file needs at least two registers")
        self._values = [0] * size

    def __len__(self) -> int:
        return len(self._values)

    def read(self, index: int) -> int:
        if index == ZERO_REG:
            return 0
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        if index == ZERO_REG:
            return  # writes to the zero register are ignored
        self._values[index] = int(value)

    def reset(self) -> None:
        for index in range(len(self._values)):
            self._values[index] = 0


class SharedRegisters:
    """Registers shared by all processors (LDM/STM target)."""

    def __init__(self, size: int = 64) -> None:
        self._values = [0] * size

    def __len__(self) -> int:
        return len(self._values)

    def read(self, addr: int) -> int:
        return self._values[addr]

    def write(self, addr: int, value: int) -> None:
        self._values[addr] = int(value)


@dataclass
class _ResultSlot:
    value: int = 0
    valid: bool = False
    pending: bool = False
    waiters: list[Callable[[int, int], None]] = field(default_factory=list)


@dataclass(frozen=True)
class ResultDelivery:
    """History record of one DAQ write."""

    qubit: int
    value: int
    time_ns: int


class MeasurementResultRegisters:
    """Per-qubit measurement result registers with valid flags.

    Processors may only read; the DAQ (or the standalone readout path)
    calls :meth:`deliver`.  :meth:`wait` registers a callback fired when
    the result becomes valid — the mechanism behind both the FMR
    synchronisation stall and the fast-context-switch wake-up.
    """

    def __init__(self, n_qubits: int) -> None:
        if n_qubits <= 0:
            raise ValueError("need at least one qubit")
        self.n_qubits = n_qubits
        self._slots = [_ResultSlot() for _ in range(n_qubits)]
        self.history: list[ResultDelivery] = []

    def _slot(self, qubit: int) -> _ResultSlot:
        if not 0 <= qubit < self.n_qubits:
            raise ValueError(f"qubit q{qubit} out of range")
        return self._slots[qubit]

    def invalidate(self, qubit: int) -> None:
        """Mark a result as pending (a measurement was just issued)."""
        slot = self._slot(qubit)
        slot.valid = False
        slot.pending = True

    def deliver(self, qubit: int, value: int, time_ns: int) -> None:
        """DAQ write: store the result, validate, wake all waiters."""
        slot = self._slot(qubit)
        slot.value = int(value)
        slot.valid = True
        slot.pending = False
        self.history.append(ResultDelivery(qubit, int(value), time_ns))
        waiters, slot.waiters = slot.waiters, []
        for callback in waiters:
            callback(int(value), time_ns)

    def is_valid(self, qubit: int) -> bool:
        return self._slot(qubit).valid

    def is_pending(self, qubit: int) -> bool:
        return self._slot(qubit).pending

    def read(self, qubit: int) -> int:
        slot = self._slot(qubit)
        if not slot.valid:
            raise RuntimeError(
                f"read of invalid measurement result for q{qubit}; the "
                "synchronisation protocol should have stalled")
        return slot.value

    def wait(self, qubit: int,
             callback: Callable[[int, int], None]) -> None:
        """Call ``callback(value, time_ns)`` when the result is valid.

        Fires immediately if the result is already valid.
        """
        slot = self._slot(qubit)
        if slot.valid:
            callback(slot.value, -1)
        else:
            slot.waiters.append(callback)
