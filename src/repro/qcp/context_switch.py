"""Fast context switch for simple feedback control (Section 5.4).

An ``MRCE`` instruction stores its feedback context (result qubit,
target qubit, the two candidate operations) in a context slot instead of
stalling the pipeline.  The processor keeps executing instructions that
do not touch the stored qubits; when the measurement result returns, the
processor switches back (three clock cycles in the prototype), issues
the selected operation and resumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Mrce


@dataclass
class PendingContext:
    """One saved simple-feedback-control context."""

    instr: Mrce
    saved_at_ns: int
    resolved: bool = False
    result: int | None = None
    resolved_at_ns: int | None = None

    @property
    def qubits(self) -> frozenset[int]:
        """Qubits an in-flight context protects from reordering."""
        return frozenset((self.instr.result_qubit,
                          self.instr.target_qubit))


class ContextSwitchUnit:
    """Holds pending MRCE contexts and answers dependency queries."""

    def __init__(self, slots: int = 4) -> None:
        if slots < 1:
            raise ValueError("need at least one context slot")
        self.slots = slots
        self.pending: list[PendingContext] = []
        self.resolved_queue: list[PendingContext] = []
        self.total_switches = 0

    @property
    def has_free_slot(self) -> bool:
        return len(self.pending) < self.slots

    @property
    def busy(self) -> bool:
        return bool(self.pending) or bool(self.resolved_queue)

    def save(self, instr: Mrce, now_ns: int) -> PendingContext:
        """Store a context (the MRCE side of the switch)."""
        if not self.has_free_slot:
            raise RuntimeError("no free context slot; caller must stall")
        context = PendingContext(instr=instr, saved_at_ns=now_ns)
        self.pending.append(context)
        return context

    def resolve(self, context: PendingContext, result: int,
                now_ns: int) -> None:
        """The measurement result arrived; queue the switch-back."""
        context.resolved = True
        context.result = result
        context.resolved_at_ns = now_ns
        self.pending.remove(context)
        self.resolved_queue.append(context)
        self.total_switches += 1

    def pop_resolved(self) -> PendingContext | None:
        """Next context whose switch-back the processor must perform."""
        if self.resolved_queue:
            return self.resolved_queue.pop(0)
        return None

    def conflicts_with(self, qubits: tuple[int, ...]) -> bool:
        """True if an instruction on ``qubits`` must stall (Section 5.4,
        termination condition 2: "the pipeline reads an instruction about
        the stored qubits")."""
        touched = set(qubits)
        return any(context.qubits & touched for context in self.pending)
