"""QuAPE control microarchitecture — the paper's core contribution."""

from repro.qcp.config import QCPConfig, scalar_config, superscalar_config
from repro.qcp.context_switch import ContextSwitchUnit, PendingContext
from repro.qcp.emitter import Emitter, QuantumOp
from repro.qcp.memory import (CacheError, InstructionMemory,
                              PrivateInstructionCache)
from repro.qcp.metrics import (CESAccumulator, CESRecord, TRReport,
                               average_ces, time_ratio)
from repro.qcp.processor import ProcessorCore, ProcState, ScalarProcessor
from repro.qcp.registers import (MeasurementResultRegisters, RegisterFile,
                                 ResultDelivery, SharedRegisters)
from repro.qcp.scheduler import BlockScheduler, BlockState
from repro.qcp.superscalar import SuperscalarProcessor
from repro.qcp.shots import (ShardOutcomes, ShotEngine, ShotResult,
                             merge_shard_outcomes,
                             program_has_measurement, run_shots)
from repro.qcp.tracecache import (RecordingQPU, TraceCache,
                                  TraceDivergenceError, TraceNode)
from repro.qcp.system import (ExecutionResult, QuAPESystem,
                              infer_qubit_count, run_program)
from repro.qcp.timing import TimingController
from repro.qcp.trace import (BlockEvent, BlockEventKind, IssueRecord,
                             Trace)

__all__ = [
    "BlockEvent", "BlockEventKind", "BlockScheduler", "BlockState",
    "CacheError", "CESAccumulator", "CESRecord", "ContextSwitchUnit",
    "Emitter", "ExecutionResult", "InstructionMemory", "IssueRecord",
    "MeasurementResultRegisters", "PendingContext",
    "PrivateInstructionCache", "ProcState", "ProcessorCore", "QCPConfig",
    "QuantumOp", "QuAPESystem", "RecordingQPU", "RegisterFile",
    "ResultDelivery", "ScalarProcessor", "ShardOutcomes",
    "SharedRegisters", "ShotEngine", "ShotResult",
    "SuperscalarProcessor", "TraceCache", "TraceDivergenceError",
    "TraceNode", "infer_qubit_count", "merge_shard_outcomes",
    "program_has_measurement", "run_shots",
    "TimingController", "TRReport", "Trace", "average_ces", "run_program",
    "scalar_config", "superscalar_config", "time_ratio",
]
