"""Processor cores: shared machinery and the scalar baseline.

A processor executes the instructions of its current program block,
pushing quantum operations into its timing controller.  The scalar
baseline models the paper's comparison design (equivalent to a
QuMA_v2-style single-issue pipeline): one instruction per cycle,
feedback control stalls the pipeline, no fast context switch unless
enabled in the configuration.

Timing model: the processor advances in whole clock cycles via kernel
events.  Stalls that depend on external events (measurement results)
suspend the event chain and resume via measurement-result-register
waiters; their duration is the stage I+II wait excluded from CES.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.isa.instructions import Mrce, Qmeas, Qop
from repro.isa.program import BlockInfo
from repro.qcp.config import QCPConfig
from repro.qcp.context_switch import ContextSwitchUnit, PendingContext
from repro.qcp.decode import (E_BRANCH, E_FMR, E_REG, K_BUNDLE,
                              K_CLASSICAL, K_MRCE, K_QMEAS, K_QOP)
from repro.qcp.tracecache import REC_CLS, REC_DEC, REC_FMR, REC_MDEC
from repro.qcp.emitter import Emitter, QuantumOp
from repro.qcp.memory import PrivateInstructionCache
from repro.qcp.metrics import CESAccumulator
from repro.qcp.registers import (MeasurementResultRegisters, RegisterFile,
                                 SharedRegisters)
from repro.qcp.timing import TimingController
from repro.qcp.trace import Trace
from repro.sim.kernel import SimKernel


class ProcState(enum.Enum):
    IDLE = "idle"
    RUNNING = "running"
    WAIT_RESULT = "wait_result"     # FMR / baseline-MRCE stall (stage I+II)
    WAIT_CONTEXT = "wait_context"   # dependent instruction on stored qubit
    DRAIN = "drain"                 # halt seen, pending contexts remain


class ProcessorCore:
    """Common state and helpers for scalar and superscalar cores."""

    def __init__(self, proc_id: int, kernel: SimKernel, config: QCPConfig,
                 cache: PrivateInstructionCache, shared: SharedRegisters,
                 results: MeasurementResultRegisters, emitter: Emitter,
                 trace: Trace,
                 on_done: Callable[["ProcessorCore"], None]) -> None:
        self.proc_id = proc_id
        self.kernel = kernel
        self.config = config
        self.cache = cache
        self.shared = shared
        self.results = results
        self.emitter = emitter
        self.trace = trace
        self.on_done = on_done
        self.registers = RegisterFile()
        self.timing = TimingController(kernel, emitter,
                                       config.clock_period_ns, proc_id)
        self.ces = CESAccumulator()
        self.contexts = ContextSwitchUnit(config.context_slots)
        self.state = ProcState.IDLE
        self.pc = 0
        self.block: BlockInfo | None = None
        self.blocks_completed = 0
        self._busy_until_ns = 0
        self._current_step: int | None = None
        self._stall_began_ns = 0
        #: Trace-cache chronological stream; set by the system when a
        #: shot is being recorded, ``None`` otherwise (see
        #: :mod:`repro.qcp.tracecache`).
        self.recording: list | None = None

    # -- lifecycle ------------------------------------------------------------

    @property
    def idle(self) -> bool:
        return self.state is ProcState.IDLE

    def start_block(self, block: BlockInfo) -> None:
        """Begin executing ``block`` (its cache bank is already filled)."""
        if self.state is not ProcState.IDLE:
            raise RuntimeError(
                f"processor {self.proc_id} started while {self.state}")
        self.block = block
        self.pc = block.start
        self.state = ProcState.RUNNING
        self.timing.reset_timeline()
        self._reset_stream_state()
        self._schedule_cycle(0)

    def _reset_stream_state(self) -> None:
        """Hook for subclasses to clear fetch buffers etc."""

    def _finish_block(self) -> None:
        self.state = ProcState.IDLE
        finished, self.block = self.block, None
        self.blocks_completed += 1
        self.cache.release_active()
        # A block is complete once its last quantum operation has left
        # for the QPU, not merely when halt was dispatched: the
        # processor may run ahead of its timeline, and a successor
        # block must not overlap this block's issue tail.
        done_at = max(self.kernel.now, self._busy_until_ns,
                      self.timing.last_issue_ns or 0)
        self.kernel.schedule_at(done_at, self.on_done, self)
        del finished

    # -- cycle scheduling ---------------------------------------------------------

    @property
    def period(self) -> int:
        return self.config.clock_period_ns

    def _schedule_cycle(self, cycles: int) -> None:
        """Schedule the next cycle event ``cycles`` cycles from now."""
        target = max(self.kernel.now + cycles * self.period,
                     self._busy_until_ns)
        self.kernel.schedule_at(target, self._cycle)

    def _cycle(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    # -- trace-cache recording ------------------------------------------------

    def _record_classical(self, instr, run, eclass: int,
                          disposition: str) -> None:
        """Append one executed classical micro-op to the recording
        stream (caller has already checked ``recording is not None``
        and ``eclass``)."""
        if eclass == E_REG:
            self.recording.append((REC_CLS, self.proc_id, run))
        elif eclass == E_BRANCH:
            self.recording.append(
                (REC_DEC, self.proc_id, run,
                 1 if disposition == "taken" else 0))
        elif disposition == "next":  # valid-path FMR
            self.recording.append((REC_FMR, self.proc_id, instr.rd,
                                   instr.qubit))

    # -- quantum execution helpers ---------------------------------------------

    def _execute_quantum_decoded(self, op: QuantumOp, timing: int,
                                 step_id: int | None,
                                 is_measure: bool) -> None:
        """Push a pre-decoded operation onto the timeline."""
        if is_measure:
            # Invalidate at *execute* time so a subsequent FMR cannot
            # read a stale result from an earlier measurement.
            self.results.invalidate(op.qubits[0])
        self.timing.enqueue(op, timing, self.kernel.now)
        self._current_step = step_id
        self.trace.instructions_executed += 1

    def _step_of(self, instr) -> int | None:
        return instr.step_id if instr.step_id is not None \
            else self._current_step

    # -- simple feedback control (MRCE) --------------------------------------------

    def _mrce_issue(self, instr: Mrce, result: int, at_ns: int) -> None:
        """Issue the operation selected by the measurement result."""
        selected = instr.selected_op(result)
        if selected == "i":
            return
        op = QuantumOp(gate=selected, qubits=(instr.target_qubit,),
                       block=instr.block, step_id=instr.step_id)
        self.timing.enqueue_immediate(op, at_ns)

    def _execute_mrce_blocking(self, instr: Mrce) -> bool:
        """Baseline MRCE: stall until the result is valid.

        Returns True if the processor completed the MRCE synchronously
        (result already valid), False if it is now stalled.
        """
        self.trace.instructions_executed += 1
        logic = self.config.mrce_logic_cycles
        if self.results.is_valid(instr.result_qubit):
            result = self.results.read(instr.result_qubit)
            if self.recording is not None:
                self.recording.append((REC_MDEC, instr.result_qubit,
                                       result))
            self.ces.feedback(self._step_of(instr), 1 + logic)
            self._mrce_issue(instr, result,
                             self.kernel.now + logic * self.period)
            return True
        self.state = ProcState.WAIT_RESULT
        self._stall_began_ns = self.kernel.now
        self.results.wait(instr.result_qubit,
                          lambda value, _t: self._resume_mrce(instr, value))
        return False

    def _resume_mrce(self, instr: Mrce, value: int) -> None:
        now = self.kernel.now
        if self.recording is not None:
            self.recording.append((REC_MDEC, instr.result_qubit, value))
        self.ces.excluded_wait(self._step_of(instr),
                               now - self._stall_began_ns)
        logic = self.config.mrce_logic_cycles
        self.ces.feedback(self._step_of(instr), 1 + logic)
        self._mrce_issue(instr, value, now + logic * self.period)
        self.state = ProcState.RUNNING
        self.pc += 1
        self._schedule_cycle(1 + logic)

    def _execute_mrce_fast(self, instr: Mrce) -> bool:
        """Fast-context-switch MRCE.  Returns False if stalled on a
        full context file, True when saved (or resolved immediately)."""
        self.trace.instructions_executed += 1
        if self.results.is_valid(instr.result_qubit):
            # Result already there: no switch needed, plain conditional.
            logic = self.config.mrce_logic_cycles
            result = self.results.read(instr.result_qubit)
            if self.recording is not None:
                self.recording.append((REC_MDEC, instr.result_qubit,
                                       result))
            self.ces.feedback(self._step_of(instr), 1 + logic)
            self._mrce_issue(instr, result,
                             self.kernel.now + logic * self.period)
            self._busy_until_ns = max(
                self._busy_until_ns,
                self.kernel.now + (1 + logic) * self.period)
            return True
        if not self.contexts.has_free_slot:
            return False
        context = self.contexts.save(instr, self.kernel.now)
        self.ces.feedback(self._step_of(instr), 1)  # the save cycle
        self.results.wait(
            instr.result_qubit,
            lambda value, _t: self._on_context_result(context, value))
        return True

    def _on_context_result(self, context: PendingContext,
                           value: int) -> None:
        """A stored context's measurement result arrived."""
        self.contexts.resolve(context, value, self.kernel.now)
        self.trace.context_switches += 1
        if self.state is ProcState.RUNNING:
            return  # the next cycle event performs the switch-back
        # The pipeline is stalled or draining: the switch-back happens
        # during otherwise-idle cycles.
        self._perform_switch_back(context)
        if self.state is ProcState.WAIT_CONTEXT:
            if not self.contexts.conflicts_with(self._waiting_qubits):
                self.state = ProcState.RUNNING
                self.ces.excluded_wait(
                    self._current_step,
                    self.kernel.now - self._stall_began_ns)
                self._schedule_cycle(0)
        elif self.state is ProcState.DRAIN:
            self._maybe_finish_drain()

    def _perform_switch_back(self, context: PendingContext) -> None:
        """Charge the switch cycles and issue the selected operation."""
        if context in self.contexts.resolved_queue:
            self.contexts.resolved_queue.remove(context)
        if self.recording is not None:
            self.recording.append((REC_MDEC,
                                   context.instr.result_qubit,
                                   context.result or 0))
        switch = self.config.context_switch_cycles
        start = max(self.kernel.now, self._busy_until_ns)
        self._busy_until_ns = start + (switch + 1) * self.period
        self.ces.feedback(self._step_of(context.instr), switch + 1)
        self._mrce_issue(context.instr, context.result or 0,
                         start + switch * self.period)

    _waiting_qubits: tuple[int, ...] = ()

    def _maybe_finish_drain(self) -> None:
        if not self.contexts.busy:
            self._finish_block()


class ScalarProcessor(ProcessorCore):
    """Single-issue in-order core: the paper's baseline design.

    The cycle loop dispatches on pre-decoded kind codes and compiled
    classical micro-ops (see :mod:`repro.qcp.decode`) so each simulated
    cycle costs a list index plus a few integer compares instead of
    instruction-object introspection.
    """

    def _cycle(self) -> None:
        if self.state is not ProcState.RUNNING:
            return  # stale event after a state change
        # Resolved contexts take priority: switch back before new work.
        context = self.contexts.pop_resolved()
        if context is not None:
            self._perform_switch_back(context)
            self._schedule_cycle(0)
            return
        kind, instr, payload = self.cache.fetch_decoded(self.pc)
        if kind <= K_QMEAS:
            op, timing, step_id = payload
            if self.config.fast_context_switch and \
                    self.contexts.conflicts_with(op.qubits):
                self._stall_on_context(op.qubits)
                return
            self.ces.quantum(step_id if step_id is not None
                             else self._current_step, 1)
            self._execute_quantum_decoded(op, timing, step_id,
                                          kind == K_QMEAS)
            self.pc += 1
            self._schedule_cycle(1)
            return
        if kind == K_BUNDLE:
            # VLIW execution: all slot operations issue at one timing
            # point, one cycle per bundle (QuMA_v2-style baseline).
            slots, step_id, qubits = payload
            if self.config.fast_context_switch and \
                    self.contexts.conflicts_with(qubits):
                self._stall_on_context(qubits)
                return
            self.ces.quantum(step_id if step_id is not None
                             else self._current_step, 1)
            now = self.kernel.now
            for op, meas_qubit, slot_timing in slots:
                if meas_qubit is not None:
                    self.results.invalidate(meas_qubit)
                self.timing.enqueue(op, slot_timing, now)
            self._current_step = step_id
            self.trace.instructions_executed += 1
            self.pc += 1
            self._schedule_cycle(1)
            return
        if kind == K_MRCE:
            if self.config.fast_context_switch:
                if self.contexts.conflicts_with(
                        (instr.result_qubit, instr.target_qubit)):
                    self._stall_on_context(
                        (instr.result_qubit, instr.target_qubit))
                    return
                if self._execute_mrce_fast(instr):
                    self.pc += 1
                    self._schedule_cycle(1)
                else:
                    self._stall_on_context(
                        (instr.result_qubit, instr.target_qubit))
                return
            if self._execute_mrce_blocking(instr):
                self.pc += 1
                self._schedule_cycle(1 + self.config.mrce_logic_cycles)
            return
        # Classical path: run the compiled micro-op.
        run, _hoistable, eclass = payload
        self.trace.instructions_executed += 1
        disposition, extra = run(self)
        if self.recording is not None and eclass:
            self._record_classical(instr, run, eclass, disposition)
        step = self._step_of(instr)
        if disposition == "stall_fmr":
            self.state = ProcState.WAIT_RESULT
            self._stall_began_ns = self.kernel.now
            self.results.wait(
                instr.qubit,
                lambda value, _t: self._resume_fmr(instr, value))
            return
        if disposition == "halt":
            # Halt is block packaging, not circuit-step work: it does
            # not contribute to CES (Equation 1).
            if self.contexts.busy:
                self.state = ProcState.DRAIN
            else:
                self._finish_block()
            return
        self.ces.classical(step, 1)
        if extra:
            self.ces.control_stall(step, extra)
        if disposition == "next":
            self.pc += 1
        self._schedule_cycle(1 + extra)

    def _resume_fmr(self, instr, value: int) -> None:
        now = self.kernel.now
        self.ces.excluded_wait(self._step_of(instr),
                               now - self._stall_began_ns)
        self.registers.write(instr.rd, value)
        if self.recording is not None:
            self.recording.append((REC_FMR, self.proc_id, instr.rd,
                                   instr.qubit))
        self.ces.classical(self._step_of(instr), 1)
        self.state = ProcState.RUNNING
        self.pc += 1
        self._schedule_cycle(1)

    def _stall_on_context(self, qubits: tuple[int, ...]) -> None:
        self.state = ProcState.WAIT_CONTEXT
        self._waiting_qubits = tuple(qubits)
        self._stall_began_ns = self.kernel.now
        # Resumption happens in _on_context_result.
