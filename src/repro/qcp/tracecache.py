"""Decision-keyed trace cache: replay shots without the event kernel.

The paper's central observation — control flow is deterministic between
measurement results — makes shot execution cacheable: for a fixed
program, everything a shot does is a pure function of the *control-flow
decisions* taken so far, and every decision is itself a pure function
of the measurement outcomes the classical code has consumed.  Two
shots that resolve the same decision sequence execute identical
control-stack behaviour: the same quantum operations reach the QPU in
the same order at the same simulated times, however their individual
measurement outcomes differ.

That last point is what makes the cache effective on QEC workloads: a
Shor-syndrome shot draws dozens of random readout bits, but folds them
into parities whose *votes* are identical shot after shot — so all
those shots share one decision path and replay from a trie that stays
a handful of nodes deep.

:class:`TraceCache` stores executed shots in a trie keyed by the
decision sequence.  A node holds the *segment* of work between two
decisions, in chronological (kernel-event) order:

* device-level backend operations (gates/resets) with their issue
  times — replayed through compiled batched closures
  (:meth:`~repro.qpu.backend.SimulationBackend.compile_ops`) on ideal
  substrates, or through a timed device-level program on noisy ones;
* measurements — executed **live** against the backend so each shot
  draws its own outcomes (one rng draw per measurement/reset keeps the
  replay draw-for-draw aligned with the recording simulation);
* the executed classical micro-ops (register/shared-memory writes) and
  measurement-result fetches — replayed against a lightweight
  register-file facade, because the next decision must be *computed*
  from this shot's own outcomes, not assumed from the recording.

Edges leave a node at its recorded decision point: a data-dependent
branch (keyed by taken/not-taken, evaluated by re-running the compiled
branch micro-op on the facade) or an MRCE resolution (keyed by the
consumed result bit).  Leaves record the shot's completion time, which
is equally decision-determined.

* The **first** shot down any decision path runs the full
  cycle-accurate simulation (kernel events, processor cycles,
  scheduler, emitter) with a :class:`RecordingQPU` proxy and processor
  recording hooks capturing the chronological stream, then extends the
  trie.
* **Every subsequent** shot re-computes its decisions during replay; a
  decision with no matching edge is a *miss* handled by
  **checkpoint-resume at the divergence frontier** (below).

Noise-aware replay
==================

Noisy :class:`~repro.qpu.device.SimulatedQPU` substrates are cacheable
because :meth:`~repro.qpu.device.SimulatedQPU.restart` reseeds the
noise rng per shot (see :mod:`repro.qpu.noise`): the noise trajectory
is then a pure function of the shot seed, and a replay reproduces it
by consuming the noise rng *positionally* — drawing at exactly the
sites the cycle-accurate simulation would:

* On the **stabilizer** backend with Pauli-only noise (depolarizing /
  Pauli channels plus classical readout flips — everything the tableau
  can represent, :attr:`~repro.qpu.noise.NoiseModel.is_pauli_only`),
  noise folds into the compiled sign-trace: a Pauli injection never
  touches the tableau's x/z bits, so the x/z evolution along a
  decision path stays shot-invariant and each potential injection site
  compiles to pre-computed sign masks (``_S_NOISE``).  Readout flips
  are drawn live at each compiled measurement.
* On the **dense** backend, a noisy replay runs the node's compiled
  *noise-site program* (:meth:`TraceNode.dense_program`): the per-op
  timed device loop is pre-resolved at compile time into a flat list
  of prebound steps — idle-decay sites (durations precomputed from
  the recorded issue times), gate-channel sites, ZZ crosstalk windows
  (overlaps precomputed by modelling the device's window bookkeeping)
  and live measurements with readout corruption — analogous to the
  stabilizer ``_S_NOISE`` sites.  Each step calls exactly the channel
  code the device layer would with exactly the same arguments, so the
  replay is draw-for-draw and bit-for-bit identical; only the
  *structure* (which sites exist, with which constants) is hoisted
  out of the per-shot loop.  ``QCPConfig.trace_cache_compiled_noise``
  falls back to the original per-op timed device loop
  (:meth:`TraceNode.device_program`) for comparison.

Dense GEMM fusion
=================

Decision-free unitary runs on the statevector backend are fused into
precomposed block operators (:func:`repro.qpu.statevector.fuse_ops`)
before replay — one batched matmul per run instead of one dispatch
per gate.  Fusion is keyed per :class:`TraceNode` and never crosses a
decision, a measurement, a reset, or a noise site, so the rng draw
sequence (and with it every delivered outcome, histogram and timing
under a fixed seed) is identical to unfused replay; intermediate
amplitudes may differ in the last ulp.  Disable with
``QCPConfig.trace_cache_dense_fusion``.

Readout corruption is drawn exactly as the device draws it, so the
*delivered* bit (which the control stack keys decisions on) and the
*collapsed* state (which stays uncorrupted) both match the
cycle-accurate path bit for bit.

Checkpoint-resume at the divergence frontier
============================================

A replay that reaches a decision with no recorded edge has already
done real work: the backend state, the rng positions (measurement and
noise) and the delivered-outcome history are all exactly at the last
shared trie node.  Instead of discarding that and re-simulating the
whole shot, the cache returns a :class:`ResumePoint` and the shot
engine re-runs the cycle-accurate simulation behind a
:class:`CheckpointQPU` proxy: the first ``skip_ops`` device operations
(the shared prefix the control stack re-issues) are *skipped* — the
state already includes them — and prefix measurements return the
recorded delivered bits.  Only the divergent suffix is simulated
against the live backend, after which the newly discovered path is
recorded into the trie as usual.  The sign-trace replay materializes
the frontier tableau first (its compile-time x/z model plus the live
packed sign column) through
:meth:`~repro.qpu.backend.SimulationBackend.restore`.

LRU bound
=========

High-path-entropy workloads (RUS loops driven by fair coins) record a
new path per novel decision sequence and would grow the trie without
bound.  ``QCPConfig.trace_cache_max_nodes`` caps the node count:
after each recording that exceeds the bound, the least-recently-used
subtrees (by last replay/record visit) are evicted until the trie
fits.  Recency is tracked **amortized**: every node sits on an
intrusive doubly-linked list ordered by last touch, so a touch is
O(1) and an eviction pass walks only the cold tail plus the evicted
nodes themselves — no full-trie scoring scan per overflow (which made
small bounds on hot RUS loops quadratic).  Because a shot touches
nodes root-to-leaf, a parent is always at least as recent as its
descendants, so detaching the coldest listed node always removes a
coldest-first *subtree*.  The path touched by the current shot is
never evicted, so the bound is best-effort when a single path is
longer than the cap.

Not cacheable (the shot engine falls back to cycle-accurate
execution): custom ``qpu_factory`` devices — the cache cannot see
inside them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.circuit.gates import lookup_gate
from repro.qcp.config import QCPConfig
from repro.qcp.registers import RegisterFile, SharedRegisters
from repro.qpu.backend import SimulationBackend
from repro.qpu.device import SimulatedQPU
from repro.qpu.noise import NOISE_SEED_SALT, NoiseModel
from repro.qpu.stabilizer import (SignBitPlanes, StabilizerState,
                                  _CLIFFORD_DECOMPOSITIONS,
                                  _TWO_QUBIT_DECOMPOSITIONS,
                                  pack_shot_mask)
from repro.qpu.statevector import (BatchStateVector, FUSE_MAX_QUBITS,
                                   StateVector, _lift,
                                   batch_block_applier, cached_unitary,
                                   fuse_into)

# Chronological-stream entry tags (recording side).  REC_GATE/REC_RESET
# double as the BackendOp kind strings, so a recorded entry's first
# four fields are a ready-made BackendOp.
REC_GATE = "gate"   # (REC_GATE, name, qubits, params, time_ns)
REC_RESET = "reset"  # (REC_RESET, "reset", (qubit,), (), time_ns)
REC_MEAS = "meas"   # (REC_MEAS, qubit, time_ns)
REC_CLS = "cls"     # (REC_CLS, proc_id, run)
REC_FMR = "fmr"     # (REC_FMR, proc_id, rd, qubit)
REC_DEC = "dec"     # (REC_DEC, proc_id, run, taken)
REC_MDEC = "mdec"   # (REC_MDEC, result_qubit, value)

# Compiled node-program item codes (replay side).
_I_OPS = 0     # (_I_OPS, backend_ops, issue_times)
_I_MEAS = 1    # (_I_MEAS, qubit, time_ns)
_I_CLS = 2     # (_I_CLS, proc_id, run)
_I_FMR = 3     # (_I_FMR, proc_id, rd, qubit)

# Decision kinds.
_D_BRANCH = 0  # (_D_BRANCH, proc_id, run)
_D_MRCE = 1    # (_D_MRCE, result_qubit)

# Compiled *sign-trace* op codes (stabilizer backend only, see
# _compile_sign_node): the replay state is a single arbitrary-precision
# integer holding the tableau's sign column, one bit per row.
_S_XOR = 0      # (_S_XOR, mask)                      r ^= mask
_S_MEAS_R = 1   # (_S_MEAS_R, qubit, pivot, pm, tmask, gmask)
_S_MEAS_D = 2   # (_S_MEAS_D, qubit, rowsmask, ghalf)
_S_RESET_R = 3  # (_S_RESET_R, pivot, pm, tmask, gmask, zmask)
_S_RESET_D = 4  # (_S_RESET_D, rowsmask, ghalf, zmask)
_S_CLS = 5      # (_S_CLS, proc_id, run)
_S_FMR = 6      # (_S_FMR, proc_id, rd, qubit)
_S_NOISE = 7    # (_S_NOISE, dep_p, per_qubit_masks, pauli_cumulative)

# Timed device-program step codes (uncompiled noisy dense replay —
# the PR 4 comparison mode, see TraceNode.device_program).
_DV_GATE = 0    # (_DV_GATE, time_ns, name, qubits, params, duration)
_DV_RESET = 1   # (_DV_RESET, time_ns, qubit, duration)
_DV_MEAS = 2    # (_DV_MEAS, time_ns, qubit, duration)
_DV_CLS = 3     # (_DV_CLS, proc_id, run)
_DV_FMR = 4     # (_DV_FMR, proc_id, rd, qubit)

# The compiled *noise-site program* (noisy dense replay, see
# TraceNode.dense_program) has no step codes at all: it is a flat list
# of zero-argument closures — fused unitary blocks, idle-decay sites
# with precomputed durations, channel-draw sites, ZZ windows with
# precomputed overlaps, live measurements with readout corruption, and
# classical micro-ops over the shared replay context — so the hot loop
# is nothing but ``for step in program: step()``.  Each closure calls
# exactly the code the device layer would run with exactly the
# arguments the device would pass, keeping the replay draw-for-draw
# identical to cycle-accurate execution.

#: Sentinel returned by the shared replay epilogue when a shot
#: completed at a recorded leaf.
_HIT = object()

#: Index alias for ``random.Random.choice`` at noise sites: consuming
#: the rng through ``choice`` on a length-3 sequence is draw-for-draw
#: identical to ``DepolarizingNoise``'s ``rng.choice(("x","y","z"))``,
#: and the returned index selects the matching sign mask directly.
_PAULI_INDICES = (0, 1, 2)


class TraceDivergenceError(RuntimeError):
    """A recorded shot contradicted the trie.

    Control flow stopped being a pure function of the decision history
    — e.g. an externally mutated substrate or a non-positional rng
    consumer slipped past the cacheability gate.
    """


@dataclass
class ResumePoint:
    """Where a replay stopped: the divergence frontier of a trie miss.

    The backend state, rng positions and (for noisy substrates) the
    device's busy/window bookkeeping are live at the frontier when
    this is returned; the shot engine wraps the QPU in a
    :class:`CheckpointQPU` built from this point so the cycle-accurate
    re-run skips the shared prefix.
    """

    #: Device-level operations (gates + resets + measurements) the
    #: replay already applied; the re-run skips this many.
    skip_ops: int = 0
    #: Delivered measurement bits of the prefix, in call order —
    #: served to the control stack instead of re-measuring.
    outcomes: list[int] = field(default_factory=list)


class _ReplayProcessor:
    """Register-level facade a compiled classical micro-op runs against.

    Presents exactly the attributes the micro-ops touch: the register
    file, the shared registers, the config (branch penalties) and a
    throwaway ``pc`` for branch targets.
    """

    __slots__ = ("registers", "shared", "config", "pc")

    def __init__(self, shared: SharedRegisters, config: QCPConfig) -> None:
        self.registers = RegisterFile()
        self.shared = shared
        self.config = config
        self.pc = 0


class _ReplayContext:
    """Per-shot classical replay state, shared by every replay mode.

    Owns the pieces the three specialized hot loops all need — the
    delivered-outcome map, the chronological outcome list, the
    skipped-devop count, and the lazily created per-processor register
    facades over one shared register file — so the decide/hit/resume
    epilogue (:meth:`TraceCache._epilogue`) is written once against
    this object instead of being triplicated per mode.
    """

    __slots__ = ("config", "delivered", "outcomes", "skip_ops",
                 "shared", "procs")

    def __init__(self, config: QCPConfig) -> None:
        self.config = config
        self.delivered: dict[int, int] = {}
        self.outcomes: list[int] = []
        self.skip_ops = 0
        self.shared = SharedRegisters()
        self.procs: dict[int, _ReplayProcessor] = {}

    def reset(self) -> None:
        """Prepare for the next shot, keeping container identity.

        The compiled dense programs capture ``delivered`` and
        ``outcomes`` *by object* in their closures, so those MUST be
        cleared in place — replacing them with fresh containers would
        silently disconnect every already-compiled program.  Anything
        handed to an earlier consumer is protected by copying on the
        way out instead: :meth:`TraceCache._resume_point` copies
        ``outcomes`` and the dense hit path copies ``delivered``.
        ``shared`` is the exception — nothing compiled captures it
        (procs re-read it on creation), so it is simply replaced.
        """
        self.delivered.clear()
        self.outcomes.clear()
        self.skip_ops = 0
        self.shared = SharedRegisters()
        self.procs.clear()

    def proc(self, proc_id: int) -> _ReplayProcessor:
        """The register facade for ``proc_id`` (created on first use)."""
        proc = self.procs.get(proc_id)
        if proc is None:
            proc = self.procs[proc_id] = _ReplayProcessor(
                self.shared, self.config)
        return proc

    def write_fmr(self, proc_id: int, rd: int, qubit: int) -> None:
        """Replay a result fetch: this shot's own delivered bit."""
        self.proc(proc_id).registers.write(rd, self.delivered[qubit])

    def deliver(self, qubit: int, value: int) -> None:
        """Record one live measurement outcome."""
        self.delivered[qubit] = value
        self.outcomes.append(value)


class TraceNode:
    """One trie node: the work segment up to the next decision point.

    ``items is None`` marks an unexplored node (created as a child edge
    but not yet recorded).  A recorded node is *interior* when
    ``decision`` is set and a *leaf* (shot end) when it is ``None``;
    leaves carry the shot's ``total_ns``.  ``devops`` counts the
    device-level operations (gates, resets, measurements) in the
    segment — the prefix length a checkpoint-resume must skip.

    ``last_used`` is the LRU stamp of the latest shot that replayed or
    recorded through this node; ``parent``/``edge`` locate the node in
    the trie and ``lru_prev``/``lru_next`` link it into the cache's
    recency list (amortized eviction, see :meth:`TraceCache._evict`).
    """

    __slots__ = ("items", "decision", "children", "total_ns", "devops",
                 "last_used", "parent", "edge", "lru_prev", "lru_next",
                 "_program", "_program_state", "_exit_xz",
                 "_device_program", "_dense_program", "_dense_state",
                 "_exit_busy", "_exit_windows",
                 "_bsign_program", "_bsign_state",
                 "_bdense_program", "_bdense_state", "_bexit_windows")

    def __init__(self) -> None:
        self.items: tuple | None = None
        self.decision: tuple | None = None
        self.children: dict[int, TraceNode] = {}
        self.total_ns = 0
        self.devops = 0
        self.last_used = 0
        self.parent: TraceNode | None = None
        self.edge: int | None = None
        self.lru_prev: TraceNode | None = None
        self.lru_next: TraceNode | None = None
        self._program: list | None = None
        self._program_state: SimulationBackend | None = None
        #: Stabilizer sign-trace compilation: model (x, z) bit matrices
        #: at node exit, the entry state for compiling child nodes and
        #: the tableau half of a divergence-frontier checkpoint.
        self._exit_xz: tuple[np.ndarray, np.ndarray] | None = None
        self._device_program: list | None = None
        self._dense_program: list | None = None
        self._dense_state: SimulationBackend | None = None
        #: Noise-site compilation: the device's busy-until and
        #: drive-window bookkeeping at node exit — the entry state for
        #: compiling child nodes, and what a divergence-frontier
        #: resume restores into the live device.
        self._exit_busy: dict[int, int] | None = None
        self._exit_windows: dict[int, tuple[int, int]] | None = None
        #: Batched (wavefront) replay compilations: the sign-trace
        #: program with masks re-expressed as bit-plane row indices,
        #: and the dense program as cohort-taking step closures.
        self._bsign_program: list | None = None
        self._bsign_state: SimulationBackend | None = None
        self._bdense_program: list | None = None
        self._bdense_state: SimulationBackend | None = None
        self._bexit_windows: dict[int, tuple[int, int]] | None = None

    def program(self, state: SimulationBackend, fuse: bool = False,
                max_qubits: int | None = None) -> list:
        """This node's generic replay program, compiled for ``state``.

        With ``fuse`` the backend ops go through
        :meth:`~repro.qpu.backend.SimulationBackend.compile_fused_ops`
        (GEMM fusion on the dense backend; a no-op elsewhere), with
        ``max_qubits`` as the fusion-width bound (``None`` = the
        backend default; the router widens it for small registers).
        """
        if self._program is None or self._program_state is not state:
            if fuse:
                def compile_ops(ops):
                    return state.compile_fused_ops(
                        ops, max_qubits=max_qubits)
            else:
                compile_ops = state.compile_ops
            program = []
            for item in self.items:
                if item[0] == _I_OPS:
                    program.append((_I_OPS, compile_ops(item[1])))
                else:
                    program.append(item)
            self._program = program
            self._program_state = state
        return self._program

    def sign_program(self, state: StabilizerState,
                     parent: "TraceNode | None",
                     noise: NoiseModel) -> list:
        """This node's compiled sign-trace (stabilizer backends).

        Along a fixed decision path, the tableau's x/z bit matrices are
        *shot-invariant*: gates and measurement collapses never read
        the sign column, and Pauli-only noise injections never write
        the x/z bits — so only the signs differ between shots.  The
        node's segment therefore compiles to a handful of integer
        bit operations on the packed sign column (see
        :func:`_compile_sign_node`), with one ``_S_NOISE`` site per
        noisy gate; the compile-time model tableau is chained from the
        parent node's exit snapshot.
        """
        if self._program is None or self._program_state is not state:
            if parent is None:
                n = state.n_qubits
                rows = 2 * n + 1
                x = np.zeros((rows, n), dtype=np.uint8)
                z = np.zeros((rows, n), dtype=np.uint8)
                idx = np.arange(n)
                x[idx, idx] = 1
                z[n + idx, idx] = 1
            else:
                x = parent._exit_xz[0].copy()
                z = parent._exit_xz[1].copy()
            self._program = _compile_sign_node(self.items,
                                               state.n_qubits, x, z,
                                               noise)
            self._exit_xz = (x, z)
            self._program_state = state
        return self._program

    def device_program(self, profile=None) -> list:
        """This node's timed device-level replay program.

        Used for noisy substrates the sign-trace cannot model: each
        step re-applies one recorded operation at its original issue
        time through the same state/noise sequence the device layer
        performs — gate-name resolution and duration lookups (against
        ``profile``'s per-qubit calibration when the owning device has
        one) are done once here instead of per replay.  The compiled
        steps depend only on the recorded items, the gate registry and
        the device profile; a cache serves one engine whose profile is
        fixed, so caching them on the node is sound.
        """
        if self._device_program is None:
            steps: list[tuple] = []
            if profile is None:
                def duration_of(name, qubits):
                    return lookup_gate(name).duration_ns
            else:
                duration_of = profile.gate_duration_ns
            for item in self.items:
                code = item[0]
                if code == _I_OPS:
                    for (kind, name, qubits, params), time_ns in \
                            zip(item[1], item[2]):
                        duration = duration_of(name, qubits)
                        if kind == "reset":
                            steps.append((_DV_RESET, time_ns, qubits[0],
                                          duration))
                        else:
                            steps.append((_DV_GATE, time_ns, name,
                                          qubits, params, duration))
                elif code == _I_MEAS:
                    steps.append((_DV_MEAS, item[2], item[1],
                                  duration_of("measure", (item[1],))))
                elif code == _I_CLS:
                    steps.append((_DV_CLS, item[1], item[2]))
                else:  # _I_FMR
                    steps.append((_DV_FMR, item[1], item[2], item[3]))
            self._device_program = steps
        return self._device_program

    def dense_program(self, qpu: SimulatedQPU,
                      parent: "TraceNode | None", fuse: bool,
                      ctx: _ReplayContext,
                      max_qubits: int | None = None) -> list:
        """This node's compiled noise-site program (noisy dense replay).

        Compiles the segment against the device's timing model: the
        busy-until map and drive-window bookkeeping are *decision-path
        invariants* (they depend only on the recorded issue times), so
        they are modelled once at compile time — chained from the
        parent node's exit state, exactly like the sign trace chains
        its model tableau — and every idle-decay duration, channel
        site and ZZ overlap becomes a prebound closure over ``ctx``
        (the owning cache's persistent replay context).  The exit maps
        are kept on the node so child nodes compile from them and a
        divergence-frontier resume can restore them into the live
        device.
        """
        state = qpu.state
        if self._dense_program is None or self._dense_state is not state:
            if parent is None:
                busy: dict[int, int] = {}
                windows: dict[int, tuple[int, int]] = {}
            else:
                busy = dict(parent._exit_busy)
                windows = dict(parent._exit_windows)
            self._dense_program = _compile_dense_node(
                self.items, qpu, busy, windows, fuse, ctx,
                max_qubits=max_qubits)
            self._exit_busy = busy
            self._exit_windows = windows
            self._dense_state = state
        return self._dense_program

    def batch_sign_program(self, state: StabilizerState,
                           parent: "TraceNode | None",
                           noise: NoiseModel) -> list:
        """The sign trace re-expressed for bit-plane cohorts.

        Derived from :meth:`sign_program` (compiling it on demand, so
        the model-tableau chaining and exit snapshots stay in one
        place): every packed integer mask becomes an array of tableau
        row indices, turning each serial integer XOR into one
        vectorised XOR over the cohort's bit-plane rows.  Returns
        ``(batched_ops, measured_qubits)`` — see
        :func:`_batch_sign_ops`.
        """
        serial = self.sign_program(state, parent, noise)
        if self._bsign_program is None or self._bsign_state is not state:
            self._bsign_program = _batch_sign_ops(serial)
            self._bsign_state = state
        return self._bsign_program

    def batch_dense_program(self, qpu: SimulatedQPU,
                            parent: "TraceNode | None",
                            fuse: bool,
                            max_qubits: int | None = None) -> list:
        """This node's cohort-taking dense program (batched replay).

        Like :meth:`dense_program` but every step is a closure over a
        :class:`_BatchCohort` argument instead of a captured per-shot
        context, so one compilation serves every wavefront (and every
        ``take``-partitioned sub-cohort) that passes through the node.
        ZZ drive windows are chained from the parent's batched exit
        map exactly like the serial compiler chains its bookkeeping.
        Raises :class:`_UnbatchableNode` when the segment contains a
        site the batch compiler does not model — the caller then falls
        back to the serial per-shot loop (fail closed).
        """
        state = qpu.state
        if self._bdense_program is None or self._bdense_state is not state:
            if parent is None:
                windows: dict[int, tuple[int, int]] = {}
            else:
                windows = dict(parent._bexit_windows)
            self._bdense_program = _compile_batch_dense_node(
                self.items, qpu, windows, fuse, max_qubits=max_qubits)
            self._bexit_windows = windows
            self._bdense_state = state
        return self._bdense_program


def _bitmask(rows: np.ndarray | list) -> int:
    """Pack row indices (or a 0/1 row vector) into an integer mask."""
    mask = 0
    for index in np.nonzero(rows)[0]:
        mask |= 1 << int(index)
    return mask


def _index_mask(indices) -> int:
    mask = 0
    for index in indices:
        mask |= 1 << int(index)
    return mask


def _unpack_signs(r: int, rows: int) -> np.ndarray:
    """The packed sign column as a uint8 vector of ``rows`` bits."""
    raw = np.frombuffer(r.to_bytes((rows + 7) // 8, "little"),
                        dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:rows].copy()


def _flip_h(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    flip = x[:, a] & z[:, a]
    x[:, a], z[:, a] = z[:, a].copy(), x[:, a].copy()
    return flip


def _flip_s(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    flip = x[:, a] & z[:, a]
    z[:, a] ^= x[:, a]
    return flip


def _flip_x(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    return z[:, a]


def _flip_z(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    return x[:, a]


def _flip_y(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    return x[:, a] ^ z[:, a]


_FLIP_ONE_QUBIT = {"h": _flip_h, "s": _flip_s, "x": _flip_x,
                   "z": _flip_z, "y": _flip_y}


def _flip_cnot(x: np.ndarray, z: np.ndarray, a: int, b: int) -> np.ndarray:
    flip = x[:, a] & z[:, b] & (x[:, b] ^ z[:, a] ^ 1)
    x[:, b] ^= x[:, a]
    z[:, a] ^= z[:, b]
    return flip


def _compile_sign_measure(x: np.ndarray, z: np.ndarray, n: int,
                          qubit: int, reset: bool) -> tuple:
    """Compile one measurement (or reset) against the model tableau.

    Mirrors :meth:`StabilizerState.measure` with the sign column
    abstracted out: the pivot/target/row selections and the CHP ``g``
    phase contributions depend only on x/z, so they become constants;
    what remains at replay time is sign parity and the rng draw.
    """
    column = x[n:2 * n, qubit]
    first = int(column.argmax())
    if column[first]:
        pivot = n + first
        targets = np.nonzero(x[:, qubit])[0]
        targets = targets[targets != pivot]
        tmask = _index_mask(targets)
        gmask = 0
        if targets.size:
            x1 = x[pivot].astype(np.int16)
            z1 = z[pivot].astype(np.int16)
            x2 = x[targets].astype(np.int16)
            z2 = z[targets].astype(np.int16)
            g = StabilizerState._g_terms(x1, z1, x2, z2).sum(
                axis=1, dtype=np.int64) % 4 // 2
            gmask = _index_mask(targets[g.astype(bool)])
            # The batch rowsum multiplies the pivot into every target
            # row's Pauli part as well.
            x[targets] ^= x[pivot]
            z[targets] ^= z[pivot]
        # Model collapse: the pivot's destabilizer inherits the old
        # stabilizer; the pivot row becomes +/- Z_qubit.
        x[pivot - n] = x[pivot]
        z[pivot - n] = z[pivot]
        x[pivot] = 0
        z[pivot] = 0
        z[pivot, qubit] = 1
        if reset:
            return (_S_RESET_R, pivot, pivot - n, tmask, gmask,
                    _bitmask(z[:, qubit]))
        return (_S_MEAS_R, qubit, pivot, pivot - n, tmask, gmask)
    hits = np.nonzero(x[:n, qubit])[0]
    ghalf = 0
    rowsmask = 0
    if hits.size:
        rows = hits + n
        rowsmask = _index_mask(rows)
        x1 = x[rows].astype(np.int16)
        z1 = z[rows].astype(np.int16)
        x2 = np.zeros_like(x1)
        z2 = np.zeros_like(z1)
        np.bitwise_xor.accumulate(x1[:-1], axis=0, out=x2[1:])
        np.bitwise_xor.accumulate(z1[:-1], axis=0, out=z2[1:])
        g = int(StabilizerState._g_terms(x1, z1, x2, z2).sum(
            dtype=np.int64))
        ghalf = (g % 4) // 2
    if reset:
        return (_S_RESET_D, rowsmask, ghalf, _bitmask(z[:, qubit]))
    return (_S_MEAS_D, qubit, rowsmask, ghalf)


def _compile_sign_node(items: tuple, n: int, x: np.ndarray,
                       z: np.ndarray, noise: NoiseModel) -> list:
    """Compile a node's segment into sign-column operations.

    ``x``/``z`` is the model tableau at node entry; it is advanced in
    place to the node's exit state.  Consecutive gates fold into a
    single XOR mask — an entire gate run costs one integer XOR at
    replay time.

    When ``noise`` carries gate channels (depolarizing / Pauli), every
    unitary gate additionally compiles a ``_S_NOISE`` site holding the
    (X, Y, Z) sign masks of each touched qubit *after* the gate's
    conjugation: a Pauli injection is sign-only, so the masks are
    shot-invariant constants and the replay merely draws the channel
    rng positionally and XORs the selected mask.  Reset operations get
    no site — the device layer applies no gate noise after a reset.
    """
    depolarizing = noise.depolarizing
    two_qubit = noise.two_qubit_depolarizing
    pauli = noise.pauli
    pauli_cum = None
    if pauli is not None:
        pauli_cum = (pauli.px, pauli.px + pauli.py,
                     pauli.px + pauli.py + pauli.pz)
    has_gate_noise = (depolarizing is not None or two_qubit is not None
                      or pauli is not None)
    program: list = []
    pending = 0

    def flush() -> None:
        nonlocal pending
        if pending:
            program.append((_S_XOR, pending))
            pending = 0

    def noise_site(qubits: tuple[int, ...]) -> None:
        """One post-gate injection site: masks + channel constants."""
        channel = depolarizing
        if len(qubits) == 2 and two_qubit is not None:
            channel = two_qubit
        dep_p = channel.p if channel is not None else None
        if dep_p is None and pauli_cum is None:
            return
        masks = []
        for q in qubits:
            x_flips = _bitmask(z[:, q])
            z_flips = _bitmask(x[:, q])
            masks.append((x_flips, x_flips ^ z_flips, z_flips))
        masks = tuple(masks)
        program.append((_S_NOISE, dep_p, masks, pauli_cum))

    for item in items:
        code = item[0]
        if code == _I_OPS:
            for kind, name, qubits, _params in item[1]:
                if kind == "reset":
                    flush()
                    program.append(_compile_sign_measure(
                        x, z, n, qubits[0], reset=True))
                    continue
                if name in _CLIFFORD_DECOMPOSITIONS:
                    for primitive in _CLIFFORD_DECOMPOSITIONS[name]:
                        pending ^= _bitmask(
                            _FLIP_ONE_QUBIT[primitive](x, z, qubits[0]))
                else:
                    for primitive, a, b in \
                            _TWO_QUBIT_DECOMPOSITIONS[name]:
                        if primitive == "cnot":
                            pending ^= _bitmask(
                                _flip_cnot(x, z, qubits[a], qubits[b]))
                        else:
                            pending ^= _bitmask(
                                _FLIP_ONE_QUBIT[primitive](x, z,
                                                           qubits[a]))
                if has_gate_noise:
                    # Sign XORs commute, so the pending gate flips need
                    # no flush — the site only draws the noise rng and
                    # XORs masks of its own.
                    noise_site(qubits)
        elif code == _I_MEAS:
            flush()
            program.append(_compile_sign_measure(x, z, n, item[1],
                                                 reset=False))
        elif code == _I_CLS:
            flush()
            program.append((_S_CLS, item[1], item[2]))
        else:  # _I_FMR
            flush()
            program.append((_S_FMR, item[1], item[2], item[3]))
    flush()
    return program


def _mask_rows(mask: int) -> np.ndarray:
    """A packed integer row mask as an array of row indices.

    The bit-plane representation indexes tableau rows directly — a
    serial op's ``r ^= mask`` becomes ``planes[rows] ^= cohort_mask``.
    """
    rows = []
    while mask:
        low = mask & -mask
        rows.append(low.bit_length() - 1)
        mask ^= low
    return np.array(rows, dtype=np.intp)


def _batch_sign_ops(program: list) -> tuple:
    """Re-express a compiled sign trace for bit-plane execution.

    Structure and op order are identical to the serial program — only
    the integer masks become row-index arrays (and the CHP ``g`` phase
    collapses to its parity bit), so the batched loop mirrors the
    serial loop op for op and draw for draw.  Returns
    ``(batched_ops, measured_qubits)``: the second element is the
    segment's measurement manifest in program order, which the
    wavefront accumulates along its path so a completed shot can
    materialize its delivered map from the cohort-level outcome words
    in one pass.
    """
    batched: list = []
    measured: list = []
    for op in program:
        code = op[0]
        if code == _S_XOR:
            batched.append((_S_XOR, _mask_rows(op[1])))
        elif code == _S_MEAS_D:
            batched.append((_S_MEAS_D, op[1], _mask_rows(op[2]),
                            op[3] & 1))
            measured.append(op[1])
        elif code == _S_MEAS_R:
            _c, qubit, pivot, pm, tmask, gmask = op
            batched.append((_S_MEAS_R, qubit, pivot, pm,
                            _mask_rows(tmask), _mask_rows(gmask)))
            measured.append(qubit)
        elif code == _S_RESET_R:
            _c, pivot, pm, tmask, gmask, zmask = op
            batched.append((_S_RESET_R, pivot, pm, _mask_rows(tmask),
                            _mask_rows(gmask), _mask_rows(zmask)))
        elif code == _S_RESET_D:
            batched.append((_S_RESET_D, _mask_rows(op[1]), op[2] & 1,
                            _mask_rows(op[3])))
        elif code == _S_NOISE:
            _c, dep_p, masks, pauli_cum = op
            rows = tuple(tuple(_mask_rows(mask) for mask in qubit_masks)
                         for qubit_masks in masks)
            batched.append((_S_NOISE, dep_p, rows, pauli_cum))
        else:  # _S_CLS / _S_FMR — classical, already shot-indexed
            batched.append(op)
    return batched, tuple(measured)


def _word_int(words) -> int:
    """A little-endian sequence of 64-bit words as one Python int."""
    value = 0
    for index in range(len(words) - 1, -1, -1):
        value = (value << 64) | int(words[index])
    return value


def _int_words(value: int, words: int) -> np.ndarray:
    """A Python int as a little-endian array of 64-bit words."""
    out = np.empty(words, dtype=np.uint64)
    for index in range(words):
        out[index] = value & 0xFFFFFFFFFFFFFFFF
        value >>= 64
    return out


class _BitPlaneDelivered:
    """Per-shot view over the cohort-level delivered-outcome words.

    The batched sign replay records measurement outcomes as one
    arbitrary-precision integer per qubit (bit ``b`` is shot ``b``'s
    latest outcome) instead of touching every shot's dict on every
    measurement.  This view makes those words look like the per-shot
    ``delivered`` mapping the shared epilogue reads — an MRCE decision
    or an FMR register write costs one shift-and-mask — and
    ``snapshot`` materializes the real dict once, when the shot
    completes at a leaf.
    """

    __slots__ = ("words", "slot")

    def __init__(self, words: dict, slot: int) -> None:
        self.words = words
        self.slot = slot

    def __getitem__(self, qubit: int) -> int:
        return (self.words[qubit] >> self.slot) & 1

    def snapshot(self, measured: tuple) -> dict:
        slot = self.slot
        words = self.words
        return {qubit: (words[qubit] >> slot) & 1 for qubit in measured}


class _DenseBlockCompiler:
    """Incremental GEMM fusion with deferred channel sites.

    Builds one open block operator (matrix + qubit support) out of
    consecutive unitaries, the dense analogue of the sign trace's
    pending XOR mask.  A gate-channel site inside the block is
    *deferred*: its potential Pauli injections are conjugated through
    the rest of the block (``C = R P R†`` with ``R`` the product of
    the block's later unitaries) and emitted as a correction step
    *after* the block — for sites ``j < j'``,
    ``C_j' C_j M = U_m..U_{j'+1} P' U_j'..U_{j+1} P U_j..U_1``, so
    applying corrections in site order is algebraically exact, and
    since each site still performs its own rng draws in program order
    the draw streams stay positionally identical to the device.  This
    is what keeps fusion alive under per-gate channel noise, where a
    naive compiler would have to flush at every gate.
    """

    def __init__(self, state: StateVector, nrng, steps: list,
                 max_qubits: int | None = None) -> None:
        self.state = state
        self.nrng = nrng
        self.steps = steps
        self.max_qubits = (FUSE_MAX_QUBITS if max_qubits is None
                           else max_qubits)
        self.support: tuple[int, ...] = ()
        self.matrix: np.ndarray | None = None
        #: Deferred sites: (kind, params, site_qubits, prefix, support)
        #: where ``prefix`` is the block operator at the site's
        #: position and ``kind`` is "dep" or "pauli".
        self.sites: list[tuple] = []

    def add_unitary(self, matrix: np.ndarray,
                    qubits: tuple[int, ...]) -> None:
        if self.matrix is None:
            self.support, self.matrix = tuple(qubits), matrix
            return
        fused = fuse_into(self.matrix, self.support, matrix,
                          tuple(qubits), max_qubits=self.max_qubits)
        if fused is not None:
            self.matrix, self.support = fused
        else:
            self.flush()
            self.support, self.matrix = tuple(qubits), matrix

    def add_site(self, kind: str, params,
                 qubits: tuple[int, ...]) -> None:
        # The site's gate was just added, so the block is open and
        # contains it; the prefix snapshot pins the injection point.
        self.sites.append((kind, params, qubits, self.matrix,
                           self.support))

    def flush(self) -> None:
        if self.matrix is None:
            return
        block = self.matrix
        support = self.support
        self.steps.append(self.state.block_applier(block, support))
        nrng = self.nrng
        for kind, params, qubits, prefix, prefix_support in self.sites:
            # R = block @ prefix† (the product of the unitaries after
            # the site); corrections are R P R† per qubit per Pauli.
            lifted = _lift(prefix, prefix_support, support)
            rest = block @ lifted.conj().T
            rest_dag = rest.conj().T
            appliers = []
            for qubit in qubits:
                triplet = tuple(
                    self.state.block_applier(
                        rest @ _lift(cached_unitary(pauli),
                                     (qubit,), support) @ rest_dag,
                        support)
                    for pauli in ("x", "y", "z"))
                appliers.append(triplet)
            appliers = tuple(appliers)
            if kind == "dep":
                p = params

                def site(nrng=nrng, p=p, appliers=appliers) -> None:
                    # Draw-for-draw DepolarizingNoise.apply: one
                    # random() per qubit, one choice() on a fire.
                    for triplet in appliers:
                        if nrng.random() < p:
                            triplet[nrng.choice(_PAULI_INDICES)]()
            else:  # "pauli"
                cx, cxy, cxyz = params

                def site(nrng=nrng, cx=cx, cxy=cxy, cxyz=cxyz,
                         appliers=appliers) -> None:
                    # Draw-for-draw PauliChannel.apply.
                    for triplet in appliers:
                        draw = nrng.random()
                        if draw < cx:
                            triplet[0]()
                        elif draw < cxy:
                            triplet[1]()
                        elif draw < cxyz:
                            triplet[2]()
            self.steps.append(site)
        self.support, self.matrix = (), None
        self.sites = []


def _compile_dense_node(items: tuple, qpu: SimulatedQPU,
                        busy: dict[int, int],
                        windows: dict[int, tuple[int, int]],
                        fuse: bool, ctx: _ReplayContext,
                        max_qubits: int | None = None) -> list:
    """Compile a node's segment into a flat noise-site program.

    ``busy``/``windows`` model :class:`~repro.qpu.device.SimulatedQPU`
    bookkeeping at node entry and are advanced **in place** to the
    node's exit state.  Idle durations and ZZ overlaps are pure
    functions of the recorded issue times, so they become constants;
    the replay consumes both rngs at exactly the recorded sites,
    preserving bit-identity of every draw and delivered outcome.

    The program is a list of zero-argument closures over ``state``,
    the noise channels and the (persistent, per-shot-reset) replay
    context ``ctx``.  With ``fuse`` unset, every step performs the
    same arithmetic the device layer would (channel/decay/ZZ steps
    call the very device code; per-gate steps go through
    :meth:`~repro.qpu.statevector.StateVector.block_applier`, which
    is bit-for-bit identical to the device's apply path) — amplitudes
    included.  With ``fuse`` set, unitary runs are GEMM-fused through
    channel sites (:class:`_DenseBlockCompiler`) and ZZ windows are
    folded into the fusion stream as per-pair conditional-phase
    unitaries; amplitudes may then differ in the last ulp (the fusion
    contract) while draw streams, outcomes and timings are unchanged.
    State-*reading* sites — idle decay (amplitude damping depends on
    the live excited-state probability), resets and measurements —
    always flush the open block.
    """
    state = qpu.state
    noise = qpu.noise
    nrng = noise.rng
    decoherence = noise.decoherence
    zz = noise.zz
    pauli = noise.pauli
    pauli_cum = None
    if pauli is not None:
        pauli_cum = (pauli.px, pauli.px + pauli.py,
                     pauli.px + pauli.py + pauli.pz)
    profile = qpu.profile
    if profile is None:
        def duration_of(name, qubits):
            return lookup_gate(name).duration_ns
    else:
        duration_of = profile.gate_duration_ns
    state_measure = state.measure
    readout = noise.readout
    delivered = ctx.delivered
    outcomes = ctx.outcomes
    steps: list = []
    block = (_DenseBlockCompiler(state, nrng, steps, max_qubits)
             if fuse else None)

    def flush_gates() -> None:
        if block is not None:
            block.flush()

    def channel_sites(qubits: tuple[int, ...]) -> None:
        # One source of truth for channel selection/order:
        # NoiseModel.gate_site_specs.  Fused mode defers the sites
        # into the open block; unfused mode emits the very channel
        # calls the device would make.
        if block is None:
            for applier in noise.gate_site_appliers(qubits):
                steps.append(lambda a=applier, q=qubits:
                             a(state, q, nrng))
            return
        for kind, channel in noise.gate_site_specs(qubits):
            if kind == "dep":
                block.add_site(kind, channel.p, qubits)
            elif kind == "pauli":
                block.add_site(kind, pauli_cum, qubits)
            else:
                # Fail closed on a site kind this compiler predates
                # (is_dense_compilable should have routed the model
                # to the device loop before we ever get here).
                raise TraceDivergenceError(
                    f"unknown gate-channel site kind {kind!r}")

    def decay_sites(time_ns: int, qubits: tuple[int, ...]) -> None:
        # Mirrors SimulatedQPU._decay_idle with the idle durations and
        # the qubit's calibrated T1/T2 channel resolved at compile
        # time (for_qubit is identity on the uniform channel).
        if decoherence is None:
            return
        for qubit in qubits:
            idle = time_ns - busy.get(qubit, 0)
            if idle > 0:
                flush_gates()
                steps.append(
                    lambda q=qubit, t=idle,
                    ch=decoherence.for_qubit(qubit):
                    ch.apply_idle(state, q, t, nrng))

    def note_window(time_ns: int, qubits: tuple[int, ...],
                    duration: int) -> None:
        # Mirrors SimulatedQPU._note_window on the model dict —
        # including the expired-window pruning, so a divergence-
        # frontier resume restores exactly the dict the live device
        # would hold; only the triggered per-pair ZZ applications
        # survive into the program (ZZCrosstalk.window_events is the
        # single shared overlap-accounting implementation).
        expired = [qubit for qubit, (_, stop) in windows.items()
                   if stop <= time_ns]
        for qubit in expired:
            del windows[qubit]
        end = time_ns + duration
        events = (zz.window_events(windows, time_ns, end, qubits)
                  if zz is not None else ())
        for qubit in qubits:
            windows[qubit] = (time_ns, end)
        for left, right, overlap_ns in events:
            if block is not None:
                # Fold the deterministic per-pair conditional phase
                # into the fusion stream, exactly as
                # ZZCrosstalk.apply_pair would apply it.
                matrix = zz.pair_unitary(left, right, overlap_ns)
                if matrix is not None:
                    block.add_unitary(matrix, (left, right))
            else:
                steps.append(
                    lambda lft=left, rgt=right, o=overlap_ns:
                    zz.apply_pair(state, lft, rgt, o))

    def measure_step(qubit: int):
        # NoiseModel.corrupt_readout with the None check compiled out
        # and the qubit's calibrated readout channel resolved at
        # compile time (one rng draw per measurement either way).
        if readout is None:
            def step(q=qubit) -> None:
                value = state_measure(q)
                delivered[q] = value
                outcomes.append(value)
        else:
            rcorrupt = readout.for_qubit(qubit).corrupt

            def step(q=qubit) -> None:
                value = rcorrupt(state_measure(q), nrng)
                delivered[q] = value
                outcomes.append(value)
        return step

    for item in items:
        code = item[0]
        if code == _I_OPS:
            for op, time_ns in zip(item[1], item[2]):
                kind, name, qubits, params = op
                duration = duration_of(name, qubits)
                decay_sites(time_ns, qubits)
                for qubit in qubits:
                    busy[qubit] = time_ns + duration
                if kind == "reset":
                    # The device applies no gate noise after a reset
                    # and opens no drive window for it; resets draw
                    # the backend rng, so they always flush.
                    flush_gates()
                    steps.append(lambda q=qubits[0]: state.reset(q))
                    continue
                matrix = (cached_unitary(name, params)
                          if len(qubits) == 1
                          else lookup_gate(name).unitary(params))
                if block is not None:
                    block.add_unitary(matrix, qubits)
                else:
                    # block_applier is bit-identical to the device's
                    # apply path, so unfused mode shares the applier
                    # instead of duplicating per-gate dispatch here.
                    steps.append(state.block_applier(matrix, qubits))
                channel_sites(qubits)
                note_window(time_ns, qubits, duration)
        elif code == _I_MEAS:
            qubit, time_ns = item[1], item[2]
            decay_sites(time_ns, (qubit,))
            busy[qubit] = time_ns + duration_of("measure", (qubit,))
            flush_gates()
            steps.append(measure_step(qubit))
        elif code == _I_CLS:
            # Classical micro-ops never touch the quantum state, so
            # they need no gate flush; program order within the
            # segment is preserved for everything that matters (the
            # delivered-outcome map is only written at measure steps,
            # which do flush).
            steps.append(lambda run=item[2], pid=item[1]:
                         run(ctx.proc(pid)))
        else:  # _I_FMR
            steps.append(lambda pid=item[1], rd=item[2], q=item[3]:
                         ctx.write_fmr(pid, rd, q))
    flush_gates()
    return steps


class _UnbatchableNode(Exception):
    """A node's segment contains a site the batch compiler cannot
    model; the wavefront falls back to the serial per-shot loop for
    the affected shots (fail closed, mirroring ``is_dense_compilable``'s
    routing to the device loop)."""


class _BatchCohort:
    """The live shots of one wavefront branch, advanced in lockstep.

    Pairs the stacked quantum state (:class:`BatchStateVector` row
    ``b``) with shot ``b``'s classical replay context and its two
    seeded rngs — measurement (``random.Random(seed)``) and noise
    (``random.Random(seed ^ NOISE_SEED_SALT)``), the exact per-shot
    streams :meth:`~repro.qpu.device.SimulatedQPU.restart` would seed
    — plus the shot's slot in the caller's result list.  ``take``
    is the wavefront partition primitive.
    """

    __slots__ = ("batch", "slots", "ctxs", "srngs", "nrngs")

    def __init__(self, batch: BatchStateVector, slots: list,
                 ctxs: list, srngs: list, nrngs: list) -> None:
        self.batch = batch
        self.slots = slots
        self.ctxs = ctxs
        self.srngs = srngs
        self.nrngs = nrngs

    def take(self, rows: list) -> "_BatchCohort":
        """The sub-cohort of the given rows (self when all survive)."""
        if len(rows) == len(self.slots):
            return self
        return _BatchCohort(self.batch.take(rows),
                            [self.slots[r] for r in rows],
                            [self.ctxs[r] for r in rows],
                            [self.srngs[r] for r in rows],
                            None if self.nrngs is None
                            else [self.nrngs[r] for r in rows])


class _BatchDenseCompiler:
    """Cohort-step analogue of :class:`_DenseBlockCompiler`.

    Same incremental GEMM fusion and deferred-site algebra (``R P R†``
    corrections emitted after the block, exact in site order), but the
    emitted steps take a :class:`_BatchCohort`: the block applies to
    every row in one batch GEMM, and each deferred channel site draws
    every shot's own noise rng — qubit-outer, shot-inner, preserving
    each shot's serial draw order — then applies the fired corrections
    to just those rows.
    """

    def __init__(self, n_qubits: int, steps: list,
                 max_qubits: int | None = None) -> None:
        self.n_qubits = n_qubits
        self.steps = steps
        self.max_qubits = (FUSE_MAX_QUBITS if max_qubits is None
                           else max_qubits)
        self.support: tuple[int, ...] = ()
        self.matrix: np.ndarray | None = None
        self.sites: list[tuple] = []

    def add_unitary(self, matrix: np.ndarray,
                    qubits: tuple[int, ...]) -> None:
        if self.matrix is None:
            self.support, self.matrix = tuple(qubits), matrix
            return
        fused = fuse_into(self.matrix, self.support, matrix,
                          tuple(qubits), max_qubits=self.max_qubits)
        if fused is not None:
            self.matrix, self.support = fused
        else:
            self.flush()
            self.support, self.matrix = tuple(qubits), matrix

    def add_site(self, kind: str, params,
                 qubits: tuple[int, ...]) -> None:
        self.sites.append((kind, params, qubits, self.matrix,
                           self.support))

    def flush(self) -> None:
        if self.matrix is None:
            return
        block = self.matrix
        support = self.support
        applier = batch_block_applier(self.n_qubits, block, support)
        self.steps.append(lambda cohort, a=applier: a(cohort.batch))
        for kind, params, qubits, prefix, prefix_support in self.sites:
            lifted = _lift(prefix, prefix_support, support)
            rest = block @ lifted.conj().T
            rest_dag = rest.conj().T
            appliers = tuple(
                tuple(batch_block_applier(
                    self.n_qubits,
                    rest @ _lift(cached_unitary(pauli),
                                 (qubit,), support) @ rest_dag,
                    support)
                    for pauli in ("x", "y", "z"))
                for qubit in qubits)
            self.steps.append(_batch_channel_step(kind, params, appliers))
        self.support, self.matrix = (), None
        self.sites = []


def _batch_channel_step(kind: str, params, appliers: tuple):
    """One cohort step for a stochastic gate-channel site.

    ``appliers`` holds, per site qubit, the (X, Y, Z) correction
    appliers (sub-cohort capable).  Draw order matches the device:
    each shot consumes its own noise rng exactly as
    ``DepolarizingNoise.apply`` / ``PauliChannel.apply`` would — one
    ``random()`` per qubit (plus one ``choice()`` on a depolarizing
    fire) — qubit-outer so vectorised application groups the fired
    shots per Pauli without reordering any single shot's draws.
    """
    if kind == "dep":
        p = params

        def step(cohort: _BatchCohort) -> None:
            for triplet in appliers:
                fired: tuple[list, list, list] = ([], [], [])
                for row, nrng in enumerate(cohort.nrngs):
                    if nrng.random() < p:
                        fired[nrng.choice(_PAULI_INDICES)].append(row)
                for index in range(3):
                    if fired[index]:
                        triplet[index](cohort.batch,
                                       np.array(fired[index],
                                                dtype=np.intp))
    elif kind == "pauli":
        cx, cxy, cxyz = params

        def step(cohort: _BatchCohort) -> None:
            for triplet in appliers:
                fired = ([], [], [])
                for row, nrng in enumerate(cohort.nrngs):
                    draw = nrng.random()
                    if draw < cx:
                        fired[0].append(row)
                    elif draw < cxy:
                        fired[1].append(row)
                    elif draw < cxyz:
                        fired[2].append(row)
                for index in range(3):
                    if fired[index]:
                        triplet[index](cohort.batch,
                                       np.array(fired[index],
                                                dtype=np.intp))
    else:
        raise _UnbatchableNode(
            f"unknown gate-channel site kind {kind!r}")
    return step


def _compile_batch_dense_node(items: tuple, qpu: SimulatedQPU,
                              windows: dict[int, tuple[int, int]],
                              fuse: bool,
                              max_qubits: int | None = None) -> list:
    """Compile a node's segment into cohort-taking dense steps.

    The batched analogue of :func:`_compile_dense_node` minus the
    idle-decay sites (amplitude damping reads per-shot live state, so
    decoherent models are gated out by
    :attr:`~repro.qpu.noise.NoiseModel.is_batch_compilable` — and
    fail closed here if one slips through).  ``windows`` models the
    device's drive-window bookkeeping at node entry, advanced in place
    to the exit state.  Measurements become one cohort probability
    reduction plus per-shot draws/collapse; every other stochastic
    site draws shot-by-shot from each shot's own noise rng in serial
    order, so the batch is draw-for-draw identical per shot-seed.
    """
    state = qpu.state
    noise = qpu.noise
    if noise.decoherence is not None:
        raise _UnbatchableNode("idle decay reads per-shot live state")
    n = state.n_qubits
    zz = noise.zz
    pauli = noise.pauli
    pauli_cum = None
    if pauli is not None:
        pauli_cum = (pauli.px, pauli.px + pauli.py,
                     pauli.px + pauli.py + pauli.pz)
    readout = noise.readout
    profile = qpu.profile
    if profile is None:
        def duration_of(name, qubits):
            return lookup_gate(name).duration_ns
    else:
        duration_of = profile.gate_duration_ns
    steps: list = []
    block = _BatchDenseCompiler(n, steps, max_qubits) if fuse else None

    def flush_gates() -> None:
        if block is not None:
            block.flush()

    def gate_applier(matrix: np.ndarray,
                     qubits: tuple[int, ...]) -> None:
        if block is not None:
            block.add_unitary(matrix, qubits)
            return
        applier = batch_block_applier(n, matrix, qubits)
        steps.append(lambda cohort, a=applier: a(cohort.batch))

    def channel_sites(qubits: tuple[int, ...]) -> None:
        for kind, channel in noise.gate_site_specs(qubits):
            if kind == "dep":
                params = channel.p
            elif kind == "pauli":
                params = pauli_cum
            else:
                raise _UnbatchableNode(
                    f"unknown gate-channel site kind {kind!r}")
            if block is not None:
                block.add_site(kind, params, qubits)
                continue
            appliers = tuple(
                tuple(batch_block_applier(n, cached_unitary(p), (q,))
                      for p in ("x", "y", "z"))
                for q in qubits)
            steps.append(_batch_channel_step(kind, params, appliers))

    def note_window(time_ns: int, qubits: tuple[int, ...],
                    duration: int) -> None:
        # Same model as _compile_dense_node's: prune expired windows,
        # then one per-pair event per coupled pair's own overlap
        # (ZZCrosstalk.window_events is the single shared
        # implementation).  Overlaps are decision-path constants, so
        # the phases fold into the fusion block at compile time.
        expired = [qubit for qubit, (_, stop) in windows.items()
                   if stop <= time_ns]
        for qubit in expired:
            del windows[qubit]
        end = time_ns + duration
        events = (zz.window_events(windows, time_ns, end, qubits)
                  if zz is not None else ())
        for qubit in qubits:
            windows[qubit] = (time_ns, end)
        for left, right, overlap_ns in events:
            matrix = zz.pair_unitary(left, right, overlap_ns)
            if matrix is not None:
                gate_applier(matrix, (left, right))

    def measure_step(qubit: int):
        # Per-qubit readout calibration resolves at compile time;
        # for_qubit is identity on the uniform channel.
        rcorrupt = (None if readout is None
                    else readout.for_qubit(qubit).corrupt)

        def step(cohort: _BatchCohort, q=qubit) -> None:
            # One cohort-wide reduction replaces per-shot probability
            # scans; outcomes still come from each shot's own rng.
            p_one = cohort.batch.probability_of_one(q)
            outcomes = [1 if srng.random() < p_one[row] else 0
                        for row, srng in enumerate(cohort.srngs)]
            cohort.batch.collapse(q, np.array(outcomes), p_one)
            if rcorrupt is None:
                for row, ctx in enumerate(cohort.ctxs):
                    ctx.deliver(q, outcomes[row])
            else:
                for row, ctx in enumerate(cohort.ctxs):
                    ctx.deliver(q, rcorrupt(outcomes[row],
                                            cohort.nrngs[row]))
        return step

    def reset_step(qubit: int):
        applier = batch_block_applier(n, cached_unitary("x"), (qubit,))

        def step(cohort: _BatchCohort, q=qubit) -> None:
            p_one = cohort.batch.probability_of_one(q)
            outcomes = [1 if srng.random() < p_one[row] else 0
                        for row, srng in enumerate(cohort.srngs)]
            cohort.batch.collapse(q, np.array(outcomes), p_one)
            ones = [row for row, outcome in enumerate(outcomes)
                    if outcome]
            if ones:
                applier(cohort.batch, np.array(ones, dtype=np.intp))
        return step

    for item in items:
        code = item[0]
        if code == _I_OPS:
            for op, time_ns in zip(item[1], item[2]):
                kind, name, qubits, params = op
                duration = duration_of(name, qubits)
                if kind == "reset":
                    flush_gates()
                    steps.append(reset_step(qubits[0]))
                    continue
                matrix = (cached_unitary(name, params)
                          if len(qubits) == 1
                          else lookup_gate(name).unitary(params))
                gate_applier(matrix, qubits)
                channel_sites(qubits)
                note_window(time_ns, qubits, duration)
        elif code == _I_MEAS:
            flush_gates()
            steps.append(measure_step(item[1]))
        elif code == _I_CLS:
            def cls_step(cohort: _BatchCohort,
                         run=item[2], pid=item[1]) -> None:
                for ctx in cohort.ctxs:
                    run(ctx.proc(pid))
            steps.append(cls_step)
        else:  # _I_FMR
            def fmr_step(cohort: _BatchCohort, pid=item[1],
                         rd=item[2], q=item[3]) -> None:
                for ctx in cohort.ctxs:
                    ctx.write_fmr(pid, rd, q)
            steps.append(fmr_step)
    flush_gates()
    return steps


def auto_batch_width(qpu: SimulatedQPU) -> int:
    """Default cohort width for batched replay on ``qpu``'s substrate.

    Stabilizer sign traces pack 64 shots per machine word; four words
    per bit-plane row keep the vectorised XORs effectively free while
    quartering the per-segment dispatch overhead each shot pays, so
    the default cohort is 256.  Dense cohorts are capped so the
    ``(width, 2^n)`` amplitude matrix stays around a few hundred
    megabytes of complex amplitudes.
    """
    if isinstance(qpu.state, StateVector):
        return min(64, max(1, (1 << 23) >> qpu.state.n_qubits))
    return 256


class RecordingQPU:
    """Device proxy capturing the backend-op stream of one shot.

    Wraps a :class:`~repro.qpu.device.SimulatedQPU` (or a
    :class:`CheckpointQPU` around one); every attribute not intercepted
    here delegates to it, so the control stack drives the proxy
    exactly like the real device.  Backend operations and measurement
    samples are appended — with their issue times, which the noisy
    device replay needs — to the shared chronological ``recorded``
    stream, interleaved with the classical entries the processor
    recording hooks contribute.
    """

    def __init__(self, inner, recorded: list) -> None:
        self._inner = inner
        self.recorded = recorded

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def apply_gate(self, time_ns: int, gate: str, qubits: tuple[int, ...],
                   params: tuple[float, ...] = ()) -> None:
        self._inner.apply_gate(time_ns, gate, qubits, params)
        definition = lookup_gate(gate)
        if definition.is_reset:
            self.recorded.append((REC_RESET, "reset", (qubits[0],), (),
                                  time_ns))
        else:
            self.recorded.append((REC_GATE, definition.name,
                                  tuple(qubits), tuple(params), time_ns))

    def measure(self, time_ns: int, qubit: int) -> int:
        outcome = self._inner.measure(time_ns, qubit)
        self.recorded.append((REC_MEAS, qubit, time_ns))
        return outcome

    def reset(self, time_ns: int, qubit: int) -> None:
        self.apply_gate(time_ns, "reset", (qubit,))


class CheckpointQPU:
    """Prefix-skipping device proxy for divergence-frontier resume.

    Built from a :class:`ResumePoint`: the wrapped QPU's state, rng
    positions and bookkeeping are already at the frontier, so the
    first ``skip_ops`` device operations the re-running control stack
    issues are dropped (their effects are live) and prefix
    measurements return the recorded delivered bits.  Once the prefix
    is exhausted every call passes through, simulating only the
    divergent suffix.
    """

    def __init__(self, inner: SimulatedQPU, resume: ResumePoint) -> None:
        self._inner = inner
        self._skip = resume.skip_ops
        self._outcomes = resume.outcomes
        self._next_outcome = 0

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def apply_gate(self, time_ns: int, gate: str, qubits: tuple[int, ...],
                   params: tuple[float, ...] = ()) -> None:
        if self._skip:
            self._skip -= 1
            return
        self._inner.apply_gate(time_ns, gate, qubits, params)

    def measure(self, time_ns: int, qubit: int) -> int:
        if self._skip:
            self._skip -= 1
            if self._next_outcome >= len(self._outcomes):
                raise TraceDivergenceError(
                    "checkpoint prefix re-issued more measurements "
                    "than the replay delivered; the recorded trace "
                    "and the re-run disagree on the op stream")
            value = self._outcomes[self._next_outcome]
            self._next_outcome += 1
            return value
        return self._inner.measure(time_ns, qubit)

    def reset(self, time_ns: int, qubit: int) -> None:
        self.apply_gate(time_ns, "reset", (qubit,))


class TraceCache:
    """Trie of recorded shot traces keyed by control-flow decisions.

    Public counters: ``hits`` (full trie replays), ``misses`` (shots
    that needed the cycle-accurate simulator, cold or resumed),
    ``resumes`` (the subset of misses that restarted from the
    divergence frontier instead of from scratch), ``nodes`` (live trie
    nodes) and ``evictions`` (nodes dropped by the LRU bound).
    Batched replay adds ``batched_shots`` (the subset of hits
    completed by a wavefront cohort), ``wavefront_splits`` (cohort
    partitions at decision points) and ``serial_fallbacks`` (shots a
    wavefront handed back to the serial per-shot loop — divergences
    off the cached trie plus unbatchable segments).
    """

    def __init__(self, config: QCPConfig) -> None:
        self.config = config
        self.root: TraceNode | None = None
        self.max_nodes = config.trace_cache_max_nodes
        self.hits = 0
        self.misses = 0
        self.resumes = 0
        self.nodes = 0
        self.evictions = 0
        self.batched_shots = 0
        self.wavefront_splits = 0
        self.serial_fallbacks = 0
        self._tick = 0
        # Persistent replay context for the compiled dense programs
        # (their closures capture it; reset in place per shot).
        self._dense_ctx: _ReplayContext | None = None
        # Intrusive recency list (amortized LRU): head side is most
        # recent.  Every non-root node is linked; the root is covered
        # by the current-path rule (its stamp always equals the
        # newest tick) and has no parent edge to detach anyway.
        self._lru_head = TraceNode()
        self._lru_tail = TraceNode()
        self._lru_head.lru_next = self._lru_tail
        self._lru_tail.lru_prev = self._lru_head

    def _touch(self, node: TraceNode) -> None:
        """Stamp ``node`` and move it to the recent end — O(1)."""
        node.last_used = self._tick
        if node.parent is None:
            return
        prev = node.lru_prev
        if prev is not None:
            nxt = node.lru_next
            prev.lru_next = nxt
            nxt.lru_prev = prev
        head = self._lru_head
        first = head.lru_next
        node.lru_prev = head
        node.lru_next = first
        head.lru_next = node
        first.lru_prev = node

    # -- replay ------------------------------------------------------------

    def replay(self, qpu: SimulatedQPU, seed: int
               ) -> tuple[dict[int, int], int] | ResumePoint | None:
        """Replay one shot through the trie.

        Clears the per-shot device logs, restarts/reseeds ``qpu``
        (measurement *and* noise rng) and walks the trie: backend
        segments are applied through compiled closures (or the timed
        device program on noisy dense substrates), measurements
        execute live so each shot draws its own outcomes, classical
        micro-ops run against a register facade, and each decision is
        re-computed from this shot's own delivered bits to pick the
        next edge.

        Returns ``(last result per qubit, total ns)`` on a full hit; a
        :class:`ResumePoint` on a divergence-frontier miss (the caller
        re-runs the cycle-accurate simulation behind a
        :class:`CheckpointQPU` and records the new branch); or
        ``None`` when the trie is cold (first shot ever) — the caller
        then restarts the QPU itself and simulates from scratch.
        """
        node = self.root
        if node is None or node.items is None:
            self.misses += 1
            return None
        self._tick += 1
        qpu.operation_log.clear()
        qpu.timing_violations.clear()
        qpu.restart(seed=seed)
        state = qpu.state
        if isinstance(state, StabilizerState) and qpu.noise.is_pauli_only:
            return self._replay_signs(node, qpu)
        if qpu.noise.is_ideal:
            return self._replay_generic(node, qpu)
        if (self.config.trace_cache_compiled_noise
                and isinstance(state, StateVector)
                and qpu.noise.is_dense_compilable):
            # is_dense_compilable fails closed: a NoiseModel channel
            # the compiler does not know about routes to the timed
            # device loop below, whose live hooks pick it up.
            return self._replay_dense(node, qpu)
        return self._replay_device(node, qpu)

    def _resume_point(self, ctx: _ReplayContext) -> ResumePoint:
        self.misses += 1
        self.resumes += 1
        # Copy: the dense replay context is reused across shots, so the
        # ResumePoint must not alias its (soon reset) outcome list.
        return ResumePoint(skip_ops=ctx.skip_ops,
                           outcomes=list(ctx.outcomes))

    def _epilogue(self, node: TraceNode,
                  ctx: _ReplayContext) -> "TraceNode | object | None":
        """The shared decide/hit/resume tail of every replay mode.

        Re-computes the node's recorded decision from this shot's own
        state — a data-dependent branch re-runs its compiled micro-op
        on the register facade, an MRCE resolution reads the delivered
        bit — and returns the child :class:`TraceNode` to continue
        into, the :data:`_HIT` sentinel when the shot completed at a
        recorded leaf (hit counted here), or ``None`` on a trie miss:
        the caller materializes its mode-specific frontier (sign
        replay restores the tableau, noise-site replay restores the
        device bookkeeping) and returns :meth:`_resume_point`.

        This epilogue is the correctness-critical part the three
        specialized hot loops must agree on; keeping it in one place
        is what the differential fuzzing suite leans on.
        """
        decision = node.decision
        if decision is None:
            self.hits += 1
            return _HIT
        if decision[0] == _D_BRANCH:
            outcome = (1 if decision[2](ctx.proc(decision[1]))[0]
                       == "taken" else 0)
        else:  # _D_MRCE
            outcome = ctx.delivered[decision[1]]
        child = node.children.get(outcome)
        if child is None or child.items is None:
            return None
        return child

    def _replay_generic(self, node: TraceNode, qpu: SimulatedQPU
                        ) -> tuple[dict[int, int], int] | ResumePoint:
        """Ideal-substrate replay through compiled backend closures."""
        state = qpu.state
        measure = state.measure
        fuse = self.config.trace_cache_dense_fusion
        width = self.config.fuse_max_qubits
        ctx = _ReplayContext(self.config)
        delivered = ctx.delivered
        outcomes = ctx.outcomes
        while True:
            self._touch(node)
            ctx.skip_ops += node.devops
            for item in node.program(state, fuse, max_qubits=width):
                code = item[0]
                if code == _I_OPS:
                    item[1]()
                elif code == _I_MEAS:
                    value = measure(item[1])
                    delivered[item[1]] = value
                    outcomes.append(value)
                elif code == _I_CLS:
                    item[2](ctx.proc(item[1]))
                else:  # _I_FMR
                    ctx.write_fmr(item[1], item[2], item[3])
            nxt = self._epilogue(node, ctx)
            if nxt is _HIT:
                return delivered, node.total_ns
            if nxt is None:
                # The live backend state *is* the frontier checkpoint.
                return self._resume_point(ctx)
            node = nxt

    def _replay_dense(self, node: TraceNode, qpu: SimulatedQPU
                      ) -> tuple[dict[int, int], int] | ResumePoint:
        """Noisy dense replay through the compiled noise-site program.

        Every step is prebound (fused unitary runs, idle-decay sites
        with precomputed durations, channel draws, ZZ windows with
        precomputed overlaps); measurements execute live with readout
        corruption so each shot draws its own outcomes.  On a miss,
        the device's busy/window bookkeeping is restored from the
        frontier node's compile-time exit maps — the backend state and
        both rngs are already live at the frontier.
        """
        fuse = self.config.trace_cache_dense_fusion
        width = self.config.fuse_max_qubits
        ctx = self._dense_ctx
        if ctx is None:
            ctx = self._dense_ctx = _ReplayContext(self.config)
        else:
            ctx.reset()
        parent: TraceNode | None = None
        while True:
            self._touch(node)
            ctx.skip_ops += node.devops
            for step in node.dense_program(qpu, parent, fuse, ctx,
                                           max_qubits=width):
                step()
            nxt = self._epilogue(node, ctx)
            if nxt is _HIT:
                # Copy: the context (and its delivered map) is reused
                # by the next shot, but the caller keeps this result.
                return dict(ctx.delivered), node.total_ns
            if nxt is None:
                # Restore the device bookkeeping the resumed
                # cycle-accurate suffix will read (idle gaps, ZZ
                # windows); rngs and backend state are already live.
                qpu._busy_until.clear()
                qpu._busy_until.update(node._exit_busy)
                qpu._windows.clear()
                qpu._windows.update(node._exit_windows)
                return self._resume_point(ctx)
            parent = node
            node = nxt

    def _replay_device(self, node: TraceNode, qpu: SimulatedQPU
                       ) -> tuple[dict[int, int], int] | ResumePoint:
        """Noisy-substrate replay through the timed device program.

        The uncompiled comparison mode (PR 4 behaviour, selected by
        ``trace_cache_compiled_noise=False``) and the fallback for
        noisy non-dense backends: re-applies the recorded operation
        stream at its original issue times through the same state /
        noise-channel / idle-decay / crosstalk-window sequence
        :class:`SimulatedQPU` performs, drawing both rngs positionally
        — minus the event kernel, operation logging, topology
        validation and telemetry.
        """
        state = qpu.state
        noise = qpu.noise
        busy = qpu._busy_until
        ctx = _ReplayContext(self.config)
        delivered = ctx.delivered
        outcomes = ctx.outcomes
        while True:
            self._touch(node)
            ctx.skip_ops += node.devops
            for step in node.device_program(qpu.profile):
                code = step[0]
                # The noise/decay/window hooks below run
                # unconditionally, mirroring SimulatedQPU exactly:
                # gating them behind channel enumerations here would
                # fail open for channels added to the device layer
                # later (each hook is cheap when its channels are off).
                if code == _DV_GATE:
                    _c, time_ns, name, qubits, params, duration = step
                    qpu._decay_idle(time_ns, qubits)
                    for qubit in qubits:
                        busy[qubit] = time_ns + duration
                    state.apply_gate(name, qubits, params)
                    noise.after_gate(state, name, qubits)
                    qpu._note_window(time_ns, qubits, duration)
                elif code == _DV_MEAS:
                    _c, time_ns, qubit, duration = step
                    qpu._decay_idle(time_ns, (qubit,))
                    busy[qubit] = time_ns + duration
                    value = noise.corrupt_readout(state.measure(qubit),
                                                  qubit)
                    delivered[qubit] = value
                    outcomes.append(value)
                elif code == _DV_RESET:
                    _c, time_ns, qubit, duration = step
                    qpu._decay_idle(time_ns, (qubit,))
                    busy[qubit] = time_ns + duration
                    state.reset(qubit)
                elif code == _DV_CLS:
                    step[2](ctx.proc(step[1]))
                else:  # _DV_FMR
                    ctx.write_fmr(step[1], step[2], step[3])
            nxt = self._epilogue(node, ctx)
            if nxt is _HIT:
                return delivered, node.total_ns
            if nxt is None:
                # Device bookkeeping (busy map, drive windows) and
                # both rngs are live at the frontier.
                return self._resume_point(ctx)
            node = nxt

    def _replay_signs(self, node: TraceNode, qpu: SimulatedQPU
                      ) -> tuple[dict[int, int], int] | ResumePoint:
        """Replay via the compiled sign-trace (stabilizer backends).

        The whole quantum side of a segment reduces to integer bit
        operations on the packed sign column ``r``; only rng draws
        (measurement *and* positional noise), delivered outcomes and
        the classical facade remain dynamic.  On a miss, the frontier
        tableau is materialized into the live backend — x/z from the
        node's compile-time exit model, signs from ``r`` — so the
        resumed cycle-accurate run continues from the checkpoint.
        """
        state: StabilizerState = qpu.state
        noise = qpu.noise
        corrupt = noise.corrupt_readout
        nrng = noise.rng
        rng = state.rng.random
        ctx = _ReplayContext(self.config)
        delivered = ctx.delivered
        outcomes = ctx.outcomes
        r = 0
        parent: TraceNode | None = None
        while True:
            self._touch(node)
            ctx.skip_ops += node.devops
            for op in node.sign_program(state, parent, noise):
                code = op[0]
                if code == _S_XOR:
                    r ^= op[1]
                elif code == _S_MEAS_D:
                    raw = ((r & op[2]).bit_count() + op[3]) & 1
                    rng()
                    value = corrupt(raw, op[1])
                    delivered[op[1]] = value
                    outcomes.append(value)
                elif code == _S_MEAS_R:
                    _c, qubit, pivot, pm, tmask, gmask = op
                    raw = 1 if rng() < 0.5 else 0
                    if (r >> pivot) & 1:
                        r ^= gmask ^ tmask
                        r |= 1 << pm
                    else:
                        r ^= gmask
                        r &= ~(1 << pm)
                    if raw:
                        r |= 1 << pivot
                    else:
                        r &= ~(1 << pivot)
                    value = corrupt(raw, qubit)
                    delivered[qubit] = value
                    outcomes.append(value)
                elif code == _S_NOISE:
                    _c, dep_p, masks, pauli_cum = op
                    if dep_p is not None:
                        for qubit_masks in masks:
                            if nrng.random() < dep_p:
                                r ^= qubit_masks[
                                    nrng.choice(_PAULI_INDICES)]
                    if pauli_cum is not None:
                        cx, cxy, cxyz = pauli_cum
                        for qubit_masks in masks:
                            draw = nrng.random()
                            if draw < cx:
                                r ^= qubit_masks[0]
                            elif draw < cxy:
                                r ^= qubit_masks[1]
                            elif draw < cxyz:
                                r ^= qubit_masks[2]
                elif code == _S_RESET_R:
                    _c, pivot, pm, tmask, gmask, zmask = op
                    outcome = 1 if rng() < 0.5 else 0
                    if (r >> pivot) & 1:
                        r ^= gmask ^ tmask
                        r |= 1 << pm
                    else:
                        r ^= gmask
                        r &= ~(1 << pm)
                    if outcome:
                        # Collapsed to |1>: the X correction flips the
                        # sign of every row with a Z on the qubit,
                        # the fresh +Z_qubit pivot row included.
                        r |= 1 << pivot
                        r ^= zmask
                    else:
                        r &= ~(1 << pivot)
                elif code == _S_RESET_D:
                    outcome = ((r & op[1]).bit_count() + op[2]) & 1
                    rng()
                    if outcome:
                        r ^= op[3]
                elif code == _S_CLS:
                    op[2](ctx.proc(op[1]))
                else:  # _S_FMR
                    ctx.write_fmr(op[1], op[2], op[3])
            nxt = self._epilogue(node, ctx)
            if nxt is _HIT:
                return delivered, node.total_ns
            if nxt is None:
                # Materialize the frontier tableau: x/z from the last
                # executed node's exit model, signs from the packed
                # column.  Both rngs are already at their frontier
                # positions.
                exit_x, exit_z = node._exit_xz
                state.restore((exit_x, exit_z,
                               _unpack_signs(r, exit_x.shape[0])))
                return self._resume_point(ctx)
            parent = node
            node = nxt

    # -- batched (wavefront) replay ----------------------------------------

    def replay_batch(self, qpu: SimulatedQPU, seeds: list
                     ) -> "list | None":
        """Replay a cohort of shot seeds through the trie at once.

        The trie is traversed as a **wavefront**: every compiled
        segment executes once for all live shots — bit-plane XORs on
        stabilizer substrates, batch GEMMs on dense ones — and each
        decision is drawn per shot from its own seeded rngs (the exact
        streams ``qpu.restart(seed)`` would produce), partitioning the
        cohort across child edges.  Returns a list aligned with
        ``seeds``: ``(last result per qubit, total ns)`` for each shot
        a wavefront completed at a recorded leaf — bit-identical per
        shot-seed to :meth:`replay` — and ``None`` for shots that left
        the cached trie or hit an unbatchable segment; the caller runs
        those through the serial per-shot path, which records new
        paths as usual.  Returns ``None`` (no list) when this
        substrate/noise/config combination has no batch kernel at all,
        so the caller can stop attempting batches.  The live QPU's
        state and rngs are never touched — cohorts carry their own —
        but its per-shot logs are cleared, as any serial replay would.
        """
        results: list = [None] * len(seeds)
        node = self.root
        if node is None or node.items is None:
            return results
        state = qpu.state
        noise = qpu.noise
        if isinstance(state, StabilizerState) and noise.is_pauli_only:
            self._tick += 1
            # Per-shot device logs describe the *last* simulated shot;
            # a batched pass supersedes it just like a serial replay
            # (which clears them before restarting), so stale entries
            # must not survive the cohort.
            qpu.operation_log.clear()
            qpu.timing_violations.clear()
            return self._replay_batch_signs(node, qpu, seeds, results)
        if isinstance(state, StateVector) and (
                noise.is_ideal
                or (self.config.trace_cache_compiled_noise
                    and noise.is_dense_compilable
                    and noise.is_batch_compilable)):
            # is_batch_compilable fails closed like is_dense_compilable:
            # state-reading channels (idle decay) and unknown channels
            # keep the serial loop, which is always correct.
            self._tick += 1
            qpu.operation_log.clear()
            qpu.timing_violations.clear()
            return self._replay_batch_dense(node, qpu, seeds, results)
        return None

    def _epilogue_batch(self, node: TraceNode, slots: list, ctxs: list,
                        results: list, measured: tuple | None = None
                        ) -> dict:
        """The shared decide/hit/fallback tail of the batched modes.

        Runs the serial :meth:`_epilogue` once per live shot — same
        compiled micro-op re-run, same delivered-bit lookup, same
        child selection and hit counting — and partitions the cohort
        by the resulting edge.  Completed shots write their result
        into ``results`` (counted in ``batched_shots``); shots whose
        decisions leave the cached trie are left as ``None`` for the
        serial fallback (counted in ``serial_fallbacks``); a cohort
        that divides across continuations counts ``wavefront_splits``.
        ``measured`` is the sign mode's path measurement manifest:
        when given, each completed shot's delivered map is
        materialized from the cohort outcome words
        (:meth:`_BitPlaneDelivered.snapshot`); when ``None`` (dense
        mode) the per-shot context already owns a real dict.  Returns
        ``{id(child): (child, rows)}`` for the surviving
        sub-wavefronts (``rows`` index into ``slots``/``ctxs``).
        """
        groups: dict[int, tuple[TraceNode, list[int]]] = {}
        fallback = 0
        completed = 0
        for row, slot in enumerate(slots):
            nxt = self._epilogue(node, ctxs[row])
            if nxt is _HIT:
                # Per-shot contexts are never reused, so the delivered
                # map can be handed out without a copy.
                delivered = ctxs[row].delivered
                if measured is not None:
                    delivered = delivered.snapshot(measured)
                results[slot] = (delivered, node.total_ns)
                self.batched_shots += 1
                completed += 1
            elif nxt is None:
                fallback += 1
            else:
                entry = groups.get(id(nxt))
                if entry is None:
                    entry = groups[id(nxt)] = (nxt, [])
                entry[1].append(row)
        self.serial_fallbacks += fallback
        parts = (len(groups) + (1 if fallback else 0)
                 + (1 if completed else 0))
        if parts > 1:
            self.wavefront_splits += parts - 1
        return groups

    def _replay_batch_signs(self, root: TraceNode, qpu: SimulatedQPU,
                            seeds: list, results: list) -> list:
        """Wavefront sign-trace replay over bit-plane sign columns.

        The cohort's sign columns live in a :class:`SignBitPlanes`
        (bit ``b`` of a row's plane word is shot ``b``'s sign bit), so
        one compiled ``_S_XOR`` advances every live shot with a single
        vectorised XOR and deterministic measurements reduce to one
        bit-plane parity per cohort.  Random-pivot measurements,
        resets and noise sites draw each shot's own seeded rngs in
        serial order (shot-inner loops), keeping every shot
        bit-identical to its serial replay; sub-cohorts that split at
        a decision keep sharing the plane array through disjoint
        cohort masks.

        Two wavefront fast paths keep the per-shot Python work off
        the common QEC shape (measure, MRCE-reset, repeat): a leaf
        completes its whole cohort in one pass over the delivered
        words, and an MRCE decision whose outcome word is uniform
        across the cohort (all 0 or all 1 — no split) resolves the
        edge once via the shared epilogue instead of once per shot.
        Per-shot classical contexts are created lazily — a path with
        no classical ops and no split decisions never builds one.
        """
        state: StabilizerState = qpu.state
        noise = qpu.noise
        readout = noise.readout
        width = len(seeds)
        words = (width + 63) >> 6
        planes = SignBitPlanes(2 * state.n_qubits + 1, width)
        srngs = [random.Random(seed) for seed in seeds]
        # The noise rng is only ever drawn by channel sites and readout
        # corruption; on an ideal substrate skipping its (expensive)
        # Mersenne seeding halves the per-shot rng cost.
        nrngs = ([random.Random(seed ^ NOISE_SEED_SALT)
                  for seed in seeds]
                 if readout is not None or not noise.is_ideal else None)
        # Measurement outcomes live in one arbitrary-precision integer
        # per qubit (bit b = shot b's latest outcome); per-shot
        # contexts read them through a shift-and-mask view instead of
        # paying a dict write per shot per measurement.
        delivered_words: dict[int, int] = {}
        all_ctxs: list = [None] * width
        config = self.config

        def ctx_for(slot: int) -> _ReplayContext:
            ctx = all_ctxs[slot]
            if ctx is None:
                ctx = all_ctxs[slot] = _ReplayContext(config)
                ctx.delivered = _BitPlaneDelivered(delivered_words,
                                                   slot)
            return ctx

        stack: list[tuple] = [(root, None, list(range(width)), (),
                               None, 0)]
        while stack:
            node, parent, slots, measured, cmask, cmask_int = stack.pop()
            self._touch(node)
            if cmask is None:
                # Only freshly partitioned sub-cohorts repack; an
                # unsplit wavefront carries its mask down the path.
                cmask = pack_shot_mask(slots, width)
                cmask_int = _word_int(cmask)
            ops, node_measured = node.batch_sign_program(state, parent,
                                                         noise)
            for qubit in node_measured:
                if qubit not in measured:
                    measured = measured + (qubit,)
            for op in ops:
                code = op[0]
                if code == _S_XOR:
                    planes.xor_rows(op[1], cmask)
                elif code == _S_MEAS_D:
                    _c, qubit, rows_idx, ghalf = op
                    raw_bits = planes.parity(rows_idx)
                    if ghalf:
                        raw_bits = raw_bits ^ cmask
                    raw_int = _word_int(raw_bits)
                    for slot in slots:
                        srngs[slot].random()
                    if readout is None:
                        out_int = raw_int & cmask_int
                    else:
                        # Per-qubit readout calibration resolves at
                        # the measurement site (identity on the
                        # uniform channel).
                        site = readout.for_qubit(qubit)
                        p0_given_1 = site.p0_given_1
                        p1_given_0 = site.p1_given_0
                        out_int = 0
                        for slot in slots:
                            bit = (raw_int >> slot) & 1
                            flip = p0_given_1 if bit else p1_given_0
                            if nrngs[slot].random() < flip:
                                bit ^= 1
                            out_int |= bit << slot
                    delivered_words[qubit] = (
                        (delivered_words.get(qubit, 0) & ~cmask_int)
                        | out_int)
                elif code == _S_MEAS_R:
                    _c, qubit, pivot, pm, t_idx, g_idx = op
                    raw_words = [0] * words
                    for slot in slots:
                        if srngs[slot].random() < 0.5:
                            raw_words[slot >> 6] |= 1 << (slot & 63)
                    raw_bits = np.array(raw_words, dtype=np.uint64)
                    raw_int = _word_int(raw_words)
                    pivot_bits = planes.row(pivot)
                    planes.xor_rows(g_idx, cmask)
                    planes.xor_rows(t_idx, pivot_bits & cmask)
                    planes.assign_row(pm, pivot_bits, cmask)
                    planes.assign_row(pivot, raw_bits, cmask)
                    if readout is None:
                        out_int = raw_int
                    else:
                        site = readout.for_qubit(qubit)
                        p0_given_1 = site.p0_given_1
                        p1_given_0 = site.p1_given_0
                        out_int = 0
                        for slot in slots:
                            bit = (raw_int >> slot) & 1
                            flip = p0_given_1 if bit else p1_given_0
                            if nrngs[slot].random() < flip:
                                bit ^= 1
                            out_int |= bit << slot
                    delivered_words[qubit] = (
                        (delivered_words.get(qubit, 0) & ~cmask_int)
                        | out_int)
                elif code == _S_NOISE:
                    _c, dep_p, qubit_rows, pauli_cum = op
                    if dep_p is not None:
                        for triplet in qubit_rows:
                            fired = [0, 0, 0]
                            for slot in slots:
                                nrng = nrngs[slot]
                                if nrng.random() < dep_p:
                                    index = nrng.choice(_PAULI_INDICES)
                                    fired[index] |= 1 << slot
                            for index in range(3):
                                if fired[index]:
                                    planes.xor_rows(
                                        triplet[index],
                                        _int_words(fired[index],
                                                   words))
                    if pauli_cum is not None:
                        cx, cxy, cxyz = pauli_cum
                        for triplet in qubit_rows:
                            fired = [0, 0, 0]
                            for slot in slots:
                                draw = nrngs[slot].random()
                                if draw < cx:
                                    index = 0
                                elif draw < cxy:
                                    index = 1
                                elif draw < cxyz:
                                    index = 2
                                else:
                                    continue
                                fired[index] |= 1 << slot
                            for index in range(3):
                                if fired[index]:
                                    planes.xor_rows(
                                        triplet[index],
                                        _int_words(fired[index],
                                                   words))
                elif code == _S_RESET_R:
                    _c, pivot, pm, t_idx, g_idx, z_idx = op
                    out_words = [0] * words
                    for slot in slots:
                        if srngs[slot].random() < 0.5:
                            out_words[slot >> 6] |= 1 << (slot & 63)
                    out_bits = np.array(out_words, dtype=np.uint64)
                    pivot_bits = planes.row(pivot)
                    planes.xor_rows(g_idx, cmask)
                    planes.xor_rows(t_idx, pivot_bits & cmask)
                    planes.assign_row(pm, pivot_bits, cmask)
                    planes.assign_row(pivot, out_bits, cmask)
                    # The X correction on a |1> collapse flips every
                    # zmask row — out_bits only carries live lanes.
                    planes.xor_rows(z_idx, out_bits)
                elif code == _S_RESET_D:
                    _c, rows_idx, ghalf, z_idx = op
                    out_bits = planes.parity(rows_idx)
                    if ghalf:
                        out_bits = out_bits ^ cmask
                    for slot in slots:
                        srngs[slot].random()
                    planes.xor_rows(z_idx, out_bits & cmask)
                elif code == _S_CLS:
                    for slot in slots:
                        op[2](ctx_for(slot).proc(op[1]))
                else:  # _S_FMR
                    for slot in slots:
                        ctx_for(slot).write_fmr(op[1], op[2], op[3])
            decision = node.decision
            if decision is None:
                # Leaf fast path: the whole cohort completes here —
                # materialize each shot's delivered map straight from
                # the outcome words (the vectorised equivalent of the
                # epilogue's per-shot hit tail).  Shots with the same
                # outcome pattern share one result tuple: the patterns
                # are transposed to per-shot byte keys in one numpy
                # pass and the delivered map is built once per
                # *distinct* outcome, not once per shot — histograms
                # concentrate, so distinct outcomes are few.
                total_ns = node.total_ns
                live = len(slots)
                if not measured:
                    entry = ({}, total_ns)
                    for slot in slots:
                        results[slot] = entry
                elif live > 3:
                    rows = np.empty((len(measured), words),
                                    dtype=np.uint64)
                    for index, qubit in enumerate(measured):
                        rows[index] = _int_words(
                            delivered_words[qubit], words)
                    bits = np.unpackbits(
                        rows.astype("<u8").view(np.uint8), axis=1,
                        bitorder="little", count=width)
                    packed = np.packbits(bits, axis=0)
                    key_bytes = packed.T.copy().tobytes()
                    stride = packed.shape[0]
                    memo: dict = {}
                    for slot in slots:
                        key = key_bytes[slot * stride:
                                        (slot + 1) * stride]
                        entry = memo.get(key)
                        if entry is None:
                            entry = memo[key] = (
                                {qubit:
                                 (delivered_words[qubit] >> slot) & 1
                                 for qubit in measured}, total_ns)
                        results[slot] = entry
                else:
                    for slot in slots:
                        results[slot] = (
                            {qubit:
                             (delivered_words[qubit] >> slot) & 1
                             for qubit in measured}, total_ns)
                self.hits += live
                self.batched_shots += live
                continue
            if decision[0] == _D_MRCE:
                word = delivered_words[decision[1]] & cmask_int
                if word == 0 or word == cmask_int:
                    # Uniform MRCE outcome: no split — resolve the
                    # edge once through the shared epilogue and carry
                    # the whole cohort (or drop it all to the serial
                    # fallback at an unexplored edge).
                    nxt = self._epilogue(node, ctx_for(slots[0]))
                    if nxt is None:
                        self.serial_fallbacks += len(slots)
                    else:
                        stack.append((nxt, node, slots, measured,
                                      cmask, cmask_int))
                    continue
            ctxs = [ctx_for(slot) for slot in slots]
            groups = self._epilogue_batch(node, slots, ctxs, results,
                                          measured)
            for child, rows_idx in groups.values():
                if len(rows_idx) == len(slots):
                    stack.append((child, node, slots, measured,
                                  cmask, cmask_int))
                else:
                    stack.append((child, node,
                                  [slots[r] for r in rows_idx],
                                  measured, None, 0))
        return results

    def _replay_batch_dense(self, root: TraceNode, qpu: SimulatedQPU,
                            seeds: list, results: list) -> "list | None":
        """Wavefront dense replay over a stacked amplitude matrix.

        The cohort is a ``(width, 2^n)`` :class:`BatchStateVector`;
        compiled segments push block operators through it as batch
        GEMMs and measurements reduce to one per-qubit probability
        reduction over the whole matrix, while outcomes, channel
        firings and readout flips are drawn from each shot's own
        seeded rngs in serial order.  Decision splits gather-copy the
        partitioned amplitude rows into child cohorts.  Nodes whose
        segments the batch compiler cannot model drop their cohort to
        the serial fallback (fail closed).
        """
        batch = qpu.state.make_batch_state(len(seeds))
        if batch is None:
            return None
        fuse = self.config.trace_cache_dense_fusion
        width = self.config.fuse_max_qubits
        cohort = _BatchCohort(
            batch, list(range(len(seeds))),
            [_ReplayContext(self.config) for _ in seeds],
            [random.Random(seed) for seed in seeds],
            # Channel firings and readout flips are the only noise-rng
            # consumers; an ideal substrate never draws them, so skip
            # the per-shot Mersenne seeding entirely.
            None if qpu.noise.is_ideal else
            [random.Random(seed ^ NOISE_SEED_SALT) for seed in seeds])
        stack: list[tuple] = [(root, None, cohort)]
        while stack:
            node, parent, cohort = stack.pop()
            self._touch(node)
            try:
                program = node.batch_dense_program(qpu, parent, fuse,
                                                   max_qubits=width)
            except _UnbatchableNode:
                self.serial_fallbacks += len(cohort.slots)
                continue
            for step in program:
                step(cohort)
            groups = self._epilogue_batch(node, cohort.slots,
                                          cohort.ctxs, results)
            for child, rows in groups.values():
                stack.append((child, node, cohort.take(rows)))
        return results

    # -- recording ---------------------------------------------------------

    def record(self, recorded: list, total_ns: int) -> None:
        """Insert one cycle-accurately executed shot into the trie.

        For a resumed shot the stream covers the whole shot (the
        control stack re-issued the prefix through the checkpoint
        proxy), so the walk passes through the existing prefix nodes —
        verifying their decisions — and extends the trie at the new
        edge.  When an LRU bound is configured and the insertion
        pushed the node count past it, the least-recently-used
        subtrees are evicted.
        """
        self._tick += 1
        if self.root is None:
            self.root = TraceNode()
            self.nodes += 1
        node = self.root
        self._touch(node)
        items: list = []
        ops: list = []
        times: list = []

        def flush_ops() -> None:
            if ops:
                items.append((_I_OPS, tuple(ops), tuple(times)))
                ops.clear()
                times.clear()

        def close_node(decision: tuple | None, outcome: int | None):
            nonlocal node, items
            flush_ops()
            if node.items is None:
                node.items = tuple(items)
                node.decision = decision
                node.devops = sum(
                    len(item[1]) if item[0] == _I_OPS else 1
                    for item in node.items
                    if item[0] == _I_OPS or item[0] == _I_MEAS)
            elif not _same_decision(node.decision, decision):
                raise TraceDivergenceError(
                    f"shot reached decision {decision!r} where the trie "
                    f"recorded {node.decision!r}; execution is not "
                    "decision-deterministic")
            items = []
            if decision is None:
                return None
            child = node.children.get(outcome)
            if child is None:
                child = TraceNode()
                child.parent = node
                child.edge = outcome
                node.children[outcome] = child
                self.nodes += 1
            self._touch(child)
            return child

        for entry in recorded:
            tag = entry[0]
            if tag == REC_GATE or tag == REC_RESET:
                ops.append(entry[:4])
                times.append(entry[4])
            elif tag == REC_MEAS:
                flush_ops()
                items.append((_I_MEAS, entry[1], entry[2]))
            elif tag == REC_CLS:
                flush_ops()
                items.append((_I_CLS, entry[1], entry[2]))
            elif tag == REC_FMR:
                flush_ops()
                items.append((_I_FMR, entry[1], entry[2], entry[3]))
            elif tag == REC_DEC:
                node = close_node((_D_BRANCH, entry[1], entry[2]),
                                  entry[3])
            else:  # REC_MDEC
                node = close_node((_D_MRCE, entry[1]), entry[2])
        leaf = close_node(None, None)
        assert leaf is None
        if node.total_ns == 0:
            node.total_ns = total_ns
        if self.max_nodes is not None and self.nodes > self.max_nodes:
            self._evict()

    # -- LRU eviction ------------------------------------------------------

    def _evict(self) -> None:
        """Drop least-recently-used subtrees until the trie fits.

        Amortized: nodes sit on an intrusive recency list, so this
        pass pops the coldest node, detaches its whole subtree, and
        repeats — no full-trie scoring scan.  Touches always run
        root-to-leaf along one path, so a parent is never colder than
        a descendant; the tail node therefore carries the global
        minimum stamp and is the *top* of a maximally cold subtree
        (its descendants share that minimum stamp — they sit on the
        head side of it, since each touch pushes the child after its
        parent, and are unlinked with it), and detaching at it
        removes exactly what the old full-scan pass would have
        evicted first.  The path the current shot just used
        carries the newest tick and is never evicted — the bound is
        best-effort when that path alone exceeds it.  Total eviction
        work is O(1) per node over its lifetime.
        """
        tail = self._lru_tail
        while self.nodes > self.max_nodes:
            node = tail.lru_prev
            if node is self._lru_head or node.last_used >= self._tick:
                break  # only the current shot's path remains
            del node.parent.children[node.edge]
            removed = self._unlink_subtree(node)
            self.nodes -= removed
            self.evictions += removed

    def _unlink_subtree(self, node: TraceNode) -> int:
        """Unlink a detached subtree from the recency list; its size."""
        removed = 0
        stack = [node]
        while stack:
            current = stack.pop()
            prev = current.lru_prev
            if prev is not None:
                nxt = current.lru_next
                prev.lru_next = nxt
                nxt.lru_prev = prev
                current.lru_prev = current.lru_next = None
            current.parent = None
            removed += 1
            stack.extend(current.children.values())
        return removed


def _same_decision(left: tuple | None, right: tuple | None) -> bool:
    """Structural equality of decision points.

    Branch decisions compare by (kind, processor) — the compiled
    micro-op closure differs per decode but refers to the same static
    instruction when the path is deterministic — and MRCE decisions by
    (kind, result qubit).
    """
    if left is None or right is None:
        return left is None and right is None
    return left[0] == right[0] and left[1] == right[1]
