"""Decision-keyed trace cache: replay shots without the event kernel.

The paper's central observation — control flow is deterministic between
measurement results — makes shot execution cacheable: with an ideal
(noiseless) substrate and a fixed program, everything a shot does is a
pure function of the *control-flow decisions* taken so far, and every
decision is itself a pure function of the measurement outcomes the
classical code has consumed.  Two shots that resolve the same decision
sequence execute identical control-stack behaviour: the same quantum
operations reach the QPU in the same order at the same simulated
times, however their individual measurement outcomes differ.

That last point is what makes the cache effective on QEC workloads: a
Shor-syndrome shot draws dozens of random readout bits, but folds them
into parities whose *votes* are identical shot after shot — so all
those shots share one decision path and replay from a trie that stays
a handful of nodes deep.

:class:`TraceCache` stores executed shots in a trie keyed by the
decision sequence.  A node holds the *segment* of work between two
decisions, in chronological (kernel-event) order:

* device-level backend operations (gates/resets) — replayed through
  compiled batched closures
  (:meth:`~repro.qpu.backend.SimulationBackend.compile_ops`);
* measurements — executed **live** against the backend so each shot
  draws its own outcomes (one rng draw per measurement/reset keeps the
  replay draw-for-draw aligned with the recording simulation);
* the executed classical micro-ops (register/shared-memory writes) and
  measurement-result fetches — replayed against a lightweight
  register-file facade, because the next decision must be *computed*
  from this shot's own outcomes, not assumed from the recording.

Edges leave a node at its recorded decision point: a data-dependent
branch (keyed by taken/not-taken, evaluated by re-running the compiled
branch micro-op on the facade) or an MRCE resolution (keyed by the
consumed result bit).  Leaves record the shot's completion time, which
is equally decision-determined.

* The **first** shot down any decision path runs the full
  cycle-accurate simulation (kernel events, processor cycles,
  scheduler, emitter) with a :class:`RecordingQPU` proxy and processor
  recording hooks capturing the chronological stream, then extends the
  trie.
* **Every subsequent** shot re-computes its decisions during replay; a
  decision with no matching edge is a *miss*: the shot restarts from
  scratch on the cycle-accurate path (same seed, so the rng replays
  the identical outcome sequence) and records the new branch.

Not cacheable (the shot engine falls back to cycle-accurate execution):

* custom ``qpu_factory`` devices — the cache cannot see inside them;
* noisy substrates — noise draws break decision-determinism (the rng
  is consumed outside measurement/reset) and readout corruption
  decouples the delivered bit from the collapsed state.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.circuit.gates import lookup_gate
from repro.qcp.config import QCPConfig
from repro.qcp.registers import RegisterFile, SharedRegisters
from repro.qpu.backend import SimulationBackend
from repro.qpu.device import SimulatedQPU
from repro.qpu.stabilizer import (StabilizerState,
                                  _CLIFFORD_DECOMPOSITIONS,
                                  _TWO_QUBIT_DECOMPOSITIONS)

# Chronological-stream entry tags (recording side).
REC_GATE = "gate"
REC_RESET = "reset"
REC_MEAS = "meas"
REC_CLS = "cls"
REC_FMR = "fmr"
REC_DEC = "dec"
REC_MDEC = "mdec"

# Compiled node-program item codes (replay side).
_I_OPS = 0     # (_I_OPS, compiled_backend_closure)
_I_MEAS = 1    # (_I_MEAS, qubit)
_I_CLS = 2     # (_I_CLS, proc_id, run)
_I_FMR = 3     # (_I_FMR, proc_id, rd, qubit)

# Decision kinds.
_D_BRANCH = 0  # (_D_BRANCH, proc_id, run)
_D_MRCE = 1    # (_D_MRCE, result_qubit)

# Compiled *sign-trace* op codes (stabilizer backend only, see
# _compile_sign_node): the replay state is a single arbitrary-precision
# integer holding the tableau's sign column, one bit per row.
_S_XOR = 0      # (_S_XOR, mask)                      r ^= mask
_S_MEAS_R = 1   # (_S_MEAS_R, qubit, pivot, pm, tmask, gmask)
_S_MEAS_D = 2   # (_S_MEAS_D, qubit, rowsmask, ghalf)
_S_RESET_R = 3  # (_S_RESET_R, pivot, pm, tmask, gmask, zmask)
_S_RESET_D = 4  # (_S_RESET_D, rowsmask, ghalf, zmask)
_S_CLS = 5      # (_S_CLS, proc_id, run)
_S_FMR = 6      # (_S_FMR, proc_id, rd, qubit)


class TraceDivergenceError(RuntimeError):
    """A recorded shot contradicted the trie.

    Control flow stopped being a pure function of the decision history
    — e.g. a noisy or externally mutated substrate slipped past the
    cacheability gate.
    """


class _ReplayProcessor:
    """Register-level facade a compiled classical micro-op runs against.

    Presents exactly the attributes the micro-ops touch: the register
    file, the shared registers, the config (branch penalties) and a
    throwaway ``pc`` for branch targets.
    """

    __slots__ = ("registers", "shared", "config", "pc")

    def __init__(self, shared: SharedRegisters, config: QCPConfig) -> None:
        self.registers = RegisterFile()
        self.shared = shared
        self.config = config
        self.pc = 0


class TraceNode:
    """One trie node: the work segment up to the next decision point.

    ``items is None`` marks an unexplored node (created as a child edge
    but not yet recorded).  A recorded node is *interior* when
    ``decision`` is set and a *leaf* (shot end) when it is ``None``;
    leaves carry the shot's ``total_ns``.
    """

    __slots__ = ("items", "decision", "children", "total_ns",
                 "_program", "_program_state", "_exit_xz")

    def __init__(self) -> None:
        self.items: tuple | None = None
        self.decision: tuple | None = None
        self.children: dict[int, TraceNode] = {}
        self.total_ns = 0
        self._program: list | None = None
        self._program_state: SimulationBackend | None = None
        #: Stabilizer sign-trace compilation: model (x, z) bit matrices
        #: at node exit, the entry state for compiling child nodes.
        self._exit_xz: tuple[np.ndarray, np.ndarray] | None = None

    def program(self, state: SimulationBackend) -> list:
        """This node's generic replay program, compiled for ``state``."""
        if self._program is None or self._program_state is not state:
            program = []
            for item in self.items:
                if item[0] == _I_OPS:
                    program.append((_I_OPS, state.compile_ops(item[1])))
                else:
                    program.append(item)
            self._program = program
            self._program_state = state
        return self._program

    def sign_program(self, state: StabilizerState,
                     parent: "TraceNode | None") -> list:
        """This node's compiled sign-trace (stabilizer backends).

        Along a fixed decision path, the tableau's x/z bit matrices are
        *shot-invariant*: gates and measurement collapses never read
        the sign column, so only the signs differ between shots.  The
        node's segment therefore compiles to a handful of integer
        bit operations on the packed sign column (see
        :func:`_compile_sign_node`); the compile-time model tableau is
        chained from the parent node's exit snapshot.
        """
        if self._program is None or self._program_state is not state:
            if parent is None:
                n = state.n_qubits
                rows = 2 * n + 1
                x = np.zeros((rows, n), dtype=np.uint8)
                z = np.zeros((rows, n), dtype=np.uint8)
                idx = np.arange(n)
                x[idx, idx] = 1
                z[n + idx, idx] = 1
            else:
                x = parent._exit_xz[0].copy()
                z = parent._exit_xz[1].copy()
            self._program = _compile_sign_node(self.items,
                                               state.n_qubits, x, z)
            self._exit_xz = (x, z)
            self._program_state = state
        return self._program


def _bitmask(rows: np.ndarray | list) -> int:
    """Pack row indices (or a 0/1 row vector) into an integer mask."""
    mask = 0
    for index in np.nonzero(rows)[0]:
        mask |= 1 << int(index)
    return mask


def _index_mask(indices) -> int:
    mask = 0
    for index in indices:
        mask |= 1 << int(index)
    return mask


def _flip_h(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    flip = x[:, a] & z[:, a]
    x[:, a], z[:, a] = z[:, a].copy(), x[:, a].copy()
    return flip


def _flip_s(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    flip = x[:, a] & z[:, a]
    z[:, a] ^= x[:, a]
    return flip


def _flip_x(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    return z[:, a]


def _flip_z(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    return x[:, a]


def _flip_y(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    return x[:, a] ^ z[:, a]


_FLIP_ONE_QUBIT = {"h": _flip_h, "s": _flip_s, "x": _flip_x,
                   "z": _flip_z, "y": _flip_y}


def _flip_cnot(x: np.ndarray, z: np.ndarray, a: int, b: int) -> np.ndarray:
    flip = x[:, a] & z[:, b] & (x[:, b] ^ z[:, a] ^ 1)
    x[:, b] ^= x[:, a]
    z[:, a] ^= z[:, b]
    return flip


def _compile_sign_measure(x: np.ndarray, z: np.ndarray, n: int,
                          qubit: int, reset: bool) -> tuple:
    """Compile one measurement (or reset) against the model tableau.

    Mirrors :meth:`StabilizerState.measure` with the sign column
    abstracted out: the pivot/target/row selections and the CHP ``g``
    phase contributions depend only on x/z, so they become constants;
    what remains at replay time is sign parity and the rng draw.
    """
    column = x[n:2 * n, qubit]
    first = int(column.argmax())
    if column[first]:
        pivot = n + first
        targets = np.nonzero(x[:, qubit])[0]
        targets = targets[targets != pivot]
        tmask = _index_mask(targets)
        gmask = 0
        if targets.size:
            x1 = x[pivot].astype(np.int16)
            z1 = z[pivot].astype(np.int16)
            x2 = x[targets].astype(np.int16)
            z2 = z[targets].astype(np.int16)
            g = StabilizerState._g_terms(x1, z1, x2, z2).sum(
                axis=1, dtype=np.int64) % 4 // 2
            gmask = _index_mask(targets[g.astype(bool)])
            # The batch rowsum multiplies the pivot into every target
            # row's Pauli part as well.
            x[targets] ^= x[pivot]
            z[targets] ^= z[pivot]
        # Model collapse: the pivot's destabilizer inherits the old
        # stabilizer; the pivot row becomes +/- Z_qubit.
        x[pivot - n] = x[pivot]
        z[pivot - n] = z[pivot]
        x[pivot] = 0
        z[pivot] = 0
        z[pivot, qubit] = 1
        if reset:
            return (_S_RESET_R, pivot, pivot - n, tmask, gmask,
                    _bitmask(z[:, qubit]))
        return (_S_MEAS_R, qubit, pivot, pivot - n, tmask, gmask)
    hits = np.nonzero(x[:n, qubit])[0]
    ghalf = 0
    rowsmask = 0
    if hits.size:
        rows = hits + n
        rowsmask = _index_mask(rows)
        x1 = x[rows].astype(np.int16)
        z1 = z[rows].astype(np.int16)
        x2 = np.zeros_like(x1)
        z2 = np.zeros_like(z1)
        np.bitwise_xor.accumulate(x1[:-1], axis=0, out=x2[1:])
        np.bitwise_xor.accumulate(z1[:-1], axis=0, out=z2[1:])
        g = int(StabilizerState._g_terms(x1, z1, x2, z2).sum(
            dtype=np.int64))
        ghalf = (g % 4) // 2
    if reset:
        return (_S_RESET_D, rowsmask, ghalf, _bitmask(z[:, qubit]))
    return (_S_MEAS_D, qubit, rowsmask, ghalf)


def _compile_sign_node(items: tuple, n: int, x: np.ndarray,
                       z: np.ndarray) -> list:
    """Compile a node's segment into sign-column operations.

    ``x``/``z`` is the model tableau at node entry; it is advanced in
    place to the node's exit state.  Consecutive gates fold into a
    single XOR mask — an entire gate run costs one integer XOR at
    replay time.
    """
    program: list = []
    pending = 0

    def flush() -> None:
        nonlocal pending
        if pending:
            program.append((_S_XOR, pending))
            pending = 0

    for item in items:
        code = item[0]
        if code == _I_OPS:
            for kind, name, qubits, _params in item[1]:
                if kind == "reset":
                    flush()
                    program.append(_compile_sign_measure(
                        x, z, n, qubits[0], reset=True))
                elif name in _CLIFFORD_DECOMPOSITIONS:
                    for primitive in _CLIFFORD_DECOMPOSITIONS[name]:
                        pending ^= _bitmask(
                            _FLIP_ONE_QUBIT[primitive](x, z, qubits[0]))
                else:
                    for primitive, a, b in \
                            _TWO_QUBIT_DECOMPOSITIONS[name]:
                        if primitive == "cnot":
                            pending ^= _bitmask(
                                _flip_cnot(x, z, qubits[a], qubits[b]))
                        else:
                            pending ^= _bitmask(
                                _FLIP_ONE_QUBIT[primitive](x, z,
                                                           qubits[a]))
        elif code == _I_MEAS:
            flush()
            program.append(_compile_sign_measure(x, z, n, item[1],
                                                 reset=False))
        elif code == _I_CLS:
            flush()
            program.append((_S_CLS, item[1], item[2]))
        else:  # _I_FMR
            flush()
            program.append((_S_FMR, item[1], item[2], item[3]))
    flush()
    return program


class RecordingQPU:
    """Device proxy capturing the backend-op stream of one shot.

    Wraps a :class:`~repro.qpu.device.SimulatedQPU`; every attribute
    not intercepted here delegates to it, so the control stack drives
    the proxy exactly like the real device.  Backend operations and
    measurement samples are appended to the shared chronological
    ``recorded`` stream, interleaved with the classical entries the
    processor recording hooks contribute.
    """

    def __init__(self, inner: SimulatedQPU, recorded: list) -> None:
        self._inner = inner
        self.recorded = recorded

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def apply_gate(self, time_ns: int, gate: str, qubits: tuple[int, ...],
                   params: tuple[float, ...] = ()) -> None:
        self._inner.apply_gate(time_ns, gate, qubits, params)
        definition = lookup_gate(gate)
        if definition.is_reset:
            self.recorded.append((REC_RESET, "reset", (qubits[0],), ()))
        else:
            self.recorded.append((REC_GATE, definition.name,
                                  tuple(qubits), tuple(params)))

    def measure(self, time_ns: int, qubit: int) -> int:
        outcome = self._inner.measure(time_ns, qubit)
        self.recorded.append((REC_MEAS, qubit))
        return outcome

    def reset(self, time_ns: int, qubit: int) -> None:
        self.apply_gate(time_ns, "reset", (qubit,))


class TraceCache:
    """Trie of recorded shot traces keyed by control-flow decisions."""

    def __init__(self, config: QCPConfig) -> None:
        self.config = config
        self.root: TraceNode | None = None
        self.hits = 0
        self.misses = 0
        self.nodes = 0

    # -- replay ------------------------------------------------------------

    def replay(self, qpu: SimulatedQPU,
               seed: int) -> tuple[dict[int, int], int] | None:
        """Replay one shot through the trie.

        Resets/reseeds ``qpu`` and walks the trie: backend segments are
        applied through compiled closures, measurements execute live,
        classical micro-ops run against a register facade, and each
        decision is re-computed from this shot's own outcomes to pick
        the next edge.  Returns ``(last result per qubit, total ns)``
        on a full hit, or ``None`` on a miss — the caller then runs the
        cycle-accurate simulation with the *same seed*, which
        reproduces the identical outcome sequence and extends the trie.
        """
        node = self.root
        if node is None or node.items is None:
            self.misses += 1
            return None
        qpu.restart(seed=seed)
        state = qpu.state
        if isinstance(state, StabilizerState):
            return self._replay_signs(node, state)
        measure = state.measure
        delivered: dict[int, int] = {}
        shared = SharedRegisters()
        procs: dict[int, _ReplayProcessor] = {}
        while True:
            for item in node.program(state):
                code = item[0]
                if code == _I_OPS:
                    item[1]()
                elif code == _I_MEAS:
                    delivered[item[1]] = measure(item[1])
                elif code == _I_CLS:
                    proc = procs.get(item[1])
                    if proc is None:
                        proc = procs[item[1]] = _ReplayProcessor(
                            shared, self.config)
                    item[2](proc)
                else:  # _I_FMR
                    proc = procs.get(item[1])
                    if proc is None:
                        proc = procs[item[1]] = _ReplayProcessor(
                            shared, self.config)
                    proc.registers.write(item[2], delivered[item[3]])
            outcome = self._decide(node, delivered, procs, shared)
            if outcome is None:
                self.hits += 1
                return delivered, node.total_ns
            node = node.children.get(outcome)
            if node is None or node.items is None:
                self.misses += 1
                return None

    def _decide(self, node: TraceNode, delivered: dict[int, int],
                procs: dict, shared: SharedRegisters) -> int | None:
        """Re-compute the node's decision; ``None`` marks a leaf."""
        decision = node.decision
        if decision is None:
            return None
        if decision[0] == _D_BRANCH:
            proc = procs.get(decision[1])
            if proc is None:
                proc = procs[decision[1]] = _ReplayProcessor(
                    shared, self.config)
            return 1 if decision[2](proc)[0] == "taken" else 0
        return delivered[decision[1]]

    def _replay_signs(self, node: TraceNode, state: StabilizerState
                      ) -> tuple[dict[int, int], int] | None:
        """Replay via the compiled sign-trace (stabilizer backends).

        The whole quantum side of a segment reduces to integer bit
        operations on the packed sign column ``r``; only rng draws,
        delivered outcomes and the classical facade remain dynamic.
        """
        rng = state.rng.random
        delivered: dict[int, int] = {}
        shared = SharedRegisters()
        procs: dict[int, _ReplayProcessor] = {}
        r = 0
        parent: TraceNode | None = None
        while True:
            for op in node.sign_program(state, parent):
                code = op[0]
                if code == _S_XOR:
                    r ^= op[1]
                elif code == _S_MEAS_D:
                    outcome = ((r & op[2]).bit_count() + op[3]) & 1
                    rng()
                    delivered[op[1]] = outcome
                elif code == _S_MEAS_R:
                    _c, qubit, pivot, pm, tmask, gmask = op
                    outcome = 1 if rng() < 0.5 else 0
                    if (r >> pivot) & 1:
                        r ^= gmask ^ tmask
                        r |= 1 << pm
                    else:
                        r ^= gmask
                        r &= ~(1 << pm)
                    if outcome:
                        r |= 1 << pivot
                    else:
                        r &= ~(1 << pivot)
                    delivered[qubit] = outcome
                elif code == _S_RESET_R:
                    _c, pivot, pm, tmask, gmask, zmask = op
                    outcome = 1 if rng() < 0.5 else 0
                    if (r >> pivot) & 1:
                        r ^= gmask ^ tmask
                        r |= 1 << pm
                    else:
                        r ^= gmask
                        r &= ~(1 << pm)
                    if outcome:
                        # Collapsed to |1>: the X correction flips the
                        # sign of every row with a Z on the qubit,
                        # the fresh +Z_qubit pivot row included.
                        r |= 1 << pivot
                        r ^= zmask
                    else:
                        r &= ~(1 << pivot)
                elif code == _S_RESET_D:
                    outcome = ((r & op[1]).bit_count() + op[2]) & 1
                    rng()
                    if outcome:
                        r ^= op[3]
                elif code == _S_CLS:
                    proc = procs.get(op[1])
                    if proc is None:
                        proc = procs[op[1]] = _ReplayProcessor(
                            shared, self.config)
                    op[2](proc)
                else:  # _S_FMR
                    proc = procs.get(op[1])
                    if proc is None:
                        proc = procs[op[1]] = _ReplayProcessor(
                            shared, self.config)
                    proc.registers.write(op[2], delivered[op[3]])
            outcome = self._decide(node, delivered, procs, shared)
            if outcome is None:
                self.hits += 1
                return delivered, node.total_ns
            parent = node
            node = node.children.get(outcome)
            if node is None or node.items is None:
                self.misses += 1
                return None

    # -- recording ---------------------------------------------------------

    def record(self, recorded: list, total_ns: int) -> None:
        """Insert one cycle-accurately executed shot into the trie."""
        if self.root is None:
            self.root = TraceNode()
            self.nodes += 1
        node = self.root
        items: list = []
        ops: list = []

        def flush_ops() -> None:
            if ops:
                items.append((_I_OPS, tuple(ops)))
                ops.clear()

        def close_node(decision: tuple | None, outcome: int | None):
            nonlocal node, items
            flush_ops()
            if node.items is None:
                node.items = tuple(items)
                node.decision = decision
            elif not _same_decision(node.decision, decision):
                raise TraceDivergenceError(
                    f"shot reached decision {decision!r} where the trie "
                    f"recorded {node.decision!r}; execution is not "
                    "decision-deterministic")
            items = []
            if decision is None:
                return None
            child = node.children.get(outcome)
            if child is None:
                child = TraceNode()
                node.children[outcome] = child
                self.nodes += 1
            return child

        for entry in recorded:
            tag = entry[0]
            if tag == REC_GATE or tag == REC_RESET:
                ops.append(entry)
            elif tag == REC_MEAS:
                flush_ops()
                items.append((_I_MEAS, entry[1]))
            elif tag == REC_CLS:
                flush_ops()
                items.append((_I_CLS, entry[1], entry[2]))
            elif tag == REC_FMR:
                flush_ops()
                items.append((_I_FMR, entry[1], entry[2], entry[3]))
            elif tag == REC_DEC:
                node = close_node((_D_BRANCH, entry[1], entry[2]),
                                  entry[3])
            else:  # REC_MDEC
                node = close_node((_D_MRCE, entry[1]), entry[2])
        leaf = close_node(None, None)
        assert leaf is None
        if node.total_ns == 0:
            node.total_ns = total_ns


def _same_decision(left: tuple | None, right: tuple | None) -> bool:
    """Structural equality of decision points.

    Branch decisions compare by (kind, processor) — the compiled
    micro-op closure differs per decode but refers to the same static
    instruction when the path is deterministic — and MRCE decisions by
    (kind, result qubit).
    """
    if left is None or right is None:
        return left is None and right is None
    return left[0] == right[0] and left[1] == right[1]
