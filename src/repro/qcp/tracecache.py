"""Decision-keyed trace cache: replay shots without the event kernel.

The paper's central observation — control flow is deterministic between
measurement results — makes shot execution cacheable: for a fixed
program, everything a shot does is a pure function of the *control-flow
decisions* taken so far, and every decision is itself a pure function
of the measurement outcomes the classical code has consumed.  Two
shots that resolve the same decision sequence execute identical
control-stack behaviour: the same quantum operations reach the QPU in
the same order at the same simulated times, however their individual
measurement outcomes differ.

That last point is what makes the cache effective on QEC workloads: a
Shor-syndrome shot draws dozens of random readout bits, but folds them
into parities whose *votes* are identical shot after shot — so all
those shots share one decision path and replay from a trie that stays
a handful of nodes deep.

:class:`TraceCache` stores executed shots in a trie keyed by the
decision sequence.  A node holds the *segment* of work between two
decisions, in chronological (kernel-event) order:

* device-level backend operations (gates/resets) with their issue
  times — replayed through compiled batched closures
  (:meth:`~repro.qpu.backend.SimulationBackend.compile_ops`) on ideal
  substrates, or through a timed device-level program on noisy ones;
* measurements — executed **live** against the backend so each shot
  draws its own outcomes (one rng draw per measurement/reset keeps the
  replay draw-for-draw aligned with the recording simulation);
* the executed classical micro-ops (register/shared-memory writes) and
  measurement-result fetches — replayed against a lightweight
  register-file facade, because the next decision must be *computed*
  from this shot's own outcomes, not assumed from the recording.

Edges leave a node at its recorded decision point: a data-dependent
branch (keyed by taken/not-taken, evaluated by re-running the compiled
branch micro-op on the facade) or an MRCE resolution (keyed by the
consumed result bit).  Leaves record the shot's completion time, which
is equally decision-determined.

* The **first** shot down any decision path runs the full
  cycle-accurate simulation (kernel events, processor cycles,
  scheduler, emitter) with a :class:`RecordingQPU` proxy and processor
  recording hooks capturing the chronological stream, then extends the
  trie.
* **Every subsequent** shot re-computes its decisions during replay; a
  decision with no matching edge is a *miss* handled by
  **checkpoint-resume at the divergence frontier** (below).

Noise-aware replay
==================

Noisy :class:`~repro.qpu.device.SimulatedQPU` substrates are cacheable
because :meth:`~repro.qpu.device.SimulatedQPU.restart` reseeds the
noise rng per shot (see :mod:`repro.qpu.noise`): the noise trajectory
is then a pure function of the shot seed, and a replay reproduces it
by consuming the noise rng *positionally* — drawing at exactly the
sites the cycle-accurate simulation would:

* On the **stabilizer** backend with Pauli-only noise (depolarizing /
  Pauli channels plus classical readout flips — everything the tableau
  can represent, :attr:`~repro.qpu.noise.NoiseModel.is_pauli_only`),
  noise folds into the compiled sign-trace: a Pauli injection never
  touches the tableau's x/z bits, so the x/z evolution along a
  decision path stays shot-invariant and each potential injection site
  compiles to pre-computed sign masks (``_S_NOISE``).  Readout flips
  are drawn live at each compiled measurement.
* On the **dense** backend (or any other), a noisy replay runs the
  node's *timed device program*: the recorded operation stream is
  re-applied with its original issue times through the same state /
  noise-channel / idle-decay / crosstalk-window sequence the device
  layer performs, minus the event kernel, logging and validation.

Readout corruption is drawn exactly as the device draws it, so the
*delivered* bit (which the control stack keys decisions on) and the
*collapsed* state (which stays uncorrupted) both match the
cycle-accurate path bit for bit.

Checkpoint-resume at the divergence frontier
============================================

A replay that reaches a decision with no recorded edge has already
done real work: the backend state, the rng positions (measurement and
noise) and the delivered-outcome history are all exactly at the last
shared trie node.  Instead of discarding that and re-simulating the
whole shot, the cache returns a :class:`ResumePoint` and the shot
engine re-runs the cycle-accurate simulation behind a
:class:`CheckpointQPU` proxy: the first ``skip_ops`` device operations
(the shared prefix the control stack re-issues) are *skipped* — the
state already includes them — and prefix measurements return the
recorded delivered bits.  Only the divergent suffix is simulated
against the live backend, after which the newly discovered path is
recorded into the trie as usual.  The sign-trace replay materializes
the frontier tableau first (its compile-time x/z model plus the live
packed sign column) through
:meth:`~repro.qpu.backend.SimulationBackend.restore`.

LRU bound
=========

High-path-entropy workloads (RUS loops driven by fair coins) record a
new path per novel decision sequence and would grow the trie without
bound.  ``QCPConfig.trace_cache_max_nodes`` caps the node count:
after each recording that exceeds the bound, the least-recently-used
subtrees (by last replay/record visit) are evicted until the trie
fits.  The path touched by the current shot is never evicted, so the
bound is best-effort when a single path is longer than the cap.

Not cacheable (the shot engine falls back to cycle-accurate
execution): custom ``qpu_factory`` devices — the cache cannot see
inside them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.gates import lookup_gate
from repro.qcp.config import QCPConfig
from repro.qcp.registers import RegisterFile, SharedRegisters
from repro.qpu.backend import SimulationBackend
from repro.qpu.device import SimulatedQPU
from repro.qpu.noise import NoiseModel
from repro.qpu.stabilizer import (StabilizerState,
                                  _CLIFFORD_DECOMPOSITIONS,
                                  _TWO_QUBIT_DECOMPOSITIONS)

# Chronological-stream entry tags (recording side).  REC_GATE/REC_RESET
# double as the BackendOp kind strings, so a recorded entry's first
# four fields are a ready-made BackendOp.
REC_GATE = "gate"   # (REC_GATE, name, qubits, params, time_ns)
REC_RESET = "reset"  # (REC_RESET, "reset", (qubit,), (), time_ns)
REC_MEAS = "meas"   # (REC_MEAS, qubit, time_ns)
REC_CLS = "cls"     # (REC_CLS, proc_id, run)
REC_FMR = "fmr"     # (REC_FMR, proc_id, rd, qubit)
REC_DEC = "dec"     # (REC_DEC, proc_id, run, taken)
REC_MDEC = "mdec"   # (REC_MDEC, result_qubit, value)

# Compiled node-program item codes (replay side).
_I_OPS = 0     # (_I_OPS, backend_ops, issue_times)
_I_MEAS = 1    # (_I_MEAS, qubit, time_ns)
_I_CLS = 2     # (_I_CLS, proc_id, run)
_I_FMR = 3     # (_I_FMR, proc_id, rd, qubit)

# Decision kinds.
_D_BRANCH = 0  # (_D_BRANCH, proc_id, run)
_D_MRCE = 1    # (_D_MRCE, result_qubit)

# Compiled *sign-trace* op codes (stabilizer backend only, see
# _compile_sign_node): the replay state is a single arbitrary-precision
# integer holding the tableau's sign column, one bit per row.
_S_XOR = 0      # (_S_XOR, mask)                      r ^= mask
_S_MEAS_R = 1   # (_S_MEAS_R, qubit, pivot, pm, tmask, gmask)
_S_MEAS_D = 2   # (_S_MEAS_D, qubit, rowsmask, ghalf)
_S_RESET_R = 3  # (_S_RESET_R, pivot, pm, tmask, gmask, zmask)
_S_RESET_D = 4  # (_S_RESET_D, rowsmask, ghalf, zmask)
_S_CLS = 5      # (_S_CLS, proc_id, run)
_S_FMR = 6      # (_S_FMR, proc_id, rd, qubit)
_S_NOISE = 7    # (_S_NOISE, dep_p, per_qubit_masks, pauli_cumulative)

# Timed device-program step codes (noisy dense replay, see
# TraceNode.device_program).
_DV_GATE = 0    # (_DV_GATE, time_ns, name, qubits, params, duration)
_DV_RESET = 1   # (_DV_RESET, time_ns, qubit, duration)
_DV_MEAS = 2    # (_DV_MEAS, time_ns, qubit, duration)
_DV_CLS = 3     # (_DV_CLS, proc_id, run)
_DV_FMR = 4     # (_DV_FMR, proc_id, rd, qubit)

#: Index alias for ``random.Random.choice`` at noise sites: consuming
#: the rng through ``choice`` on a length-3 sequence is draw-for-draw
#: identical to ``DepolarizingNoise``'s ``rng.choice(("x","y","z"))``,
#: and the returned index selects the matching sign mask directly.
_PAULI_INDICES = (0, 1, 2)


class TraceDivergenceError(RuntimeError):
    """A recorded shot contradicted the trie.

    Control flow stopped being a pure function of the decision history
    — e.g. an externally mutated substrate or a non-positional rng
    consumer slipped past the cacheability gate.
    """


@dataclass
class ResumePoint:
    """Where a replay stopped: the divergence frontier of a trie miss.

    The backend state, rng positions and (for noisy substrates) the
    device's busy/window bookkeeping are live at the frontier when
    this is returned; the shot engine wraps the QPU in a
    :class:`CheckpointQPU` built from this point so the cycle-accurate
    re-run skips the shared prefix.
    """

    #: Device-level operations (gates + resets + measurements) the
    #: replay already applied; the re-run skips this many.
    skip_ops: int = 0
    #: Delivered measurement bits of the prefix, in call order —
    #: served to the control stack instead of re-measuring.
    outcomes: list[int] = field(default_factory=list)


class _ReplayProcessor:
    """Register-level facade a compiled classical micro-op runs against.

    Presents exactly the attributes the micro-ops touch: the register
    file, the shared registers, the config (branch penalties) and a
    throwaway ``pc`` for branch targets.
    """

    __slots__ = ("registers", "shared", "config", "pc")

    def __init__(self, shared: SharedRegisters, config: QCPConfig) -> None:
        self.registers = RegisterFile()
        self.shared = shared
        self.config = config
        self.pc = 0


class TraceNode:
    """One trie node: the work segment up to the next decision point.

    ``items is None`` marks an unexplored node (created as a child edge
    but not yet recorded).  A recorded node is *interior* when
    ``decision`` is set and a *leaf* (shot end) when it is ``None``;
    leaves carry the shot's ``total_ns``.  ``devops`` counts the
    device-level operations (gates, resets, measurements) in the
    segment — the prefix length a checkpoint-resume must skip —
    and ``last_used`` is the LRU stamp of the latest shot that
    replayed or recorded through this node.
    """

    __slots__ = ("items", "decision", "children", "total_ns", "devops",
                 "last_used", "_program", "_program_state", "_exit_xz",
                 "_device_program")

    def __init__(self) -> None:
        self.items: tuple | None = None
        self.decision: tuple | None = None
        self.children: dict[int, TraceNode] = {}
        self.total_ns = 0
        self.devops = 0
        self.last_used = 0
        self._program: list | None = None
        self._program_state: SimulationBackend | None = None
        #: Stabilizer sign-trace compilation: model (x, z) bit matrices
        #: at node exit, the entry state for compiling child nodes and
        #: the tableau half of a divergence-frontier checkpoint.
        self._exit_xz: tuple[np.ndarray, np.ndarray] | None = None
        self._device_program: list | None = None

    def program(self, state: SimulationBackend) -> list:
        """This node's generic replay program, compiled for ``state``."""
        if self._program is None or self._program_state is not state:
            program = []
            for item in self.items:
                if item[0] == _I_OPS:
                    program.append((_I_OPS, state.compile_ops(item[1])))
                else:
                    program.append(item)
            self._program = program
            self._program_state = state
        return self._program

    def sign_program(self, state: StabilizerState,
                     parent: "TraceNode | None",
                     noise: NoiseModel) -> list:
        """This node's compiled sign-trace (stabilizer backends).

        Along a fixed decision path, the tableau's x/z bit matrices are
        *shot-invariant*: gates and measurement collapses never read
        the sign column, and Pauli-only noise injections never write
        the x/z bits — so only the signs differ between shots.  The
        node's segment therefore compiles to a handful of integer
        bit operations on the packed sign column (see
        :func:`_compile_sign_node`), with one ``_S_NOISE`` site per
        noisy gate; the compile-time model tableau is chained from the
        parent node's exit snapshot.
        """
        if self._program is None or self._program_state is not state:
            if parent is None:
                n = state.n_qubits
                rows = 2 * n + 1
                x = np.zeros((rows, n), dtype=np.uint8)
                z = np.zeros((rows, n), dtype=np.uint8)
                idx = np.arange(n)
                x[idx, idx] = 1
                z[n + idx, idx] = 1
            else:
                x = parent._exit_xz[0].copy()
                z = parent._exit_xz[1].copy()
            self._program = _compile_sign_node(self.items,
                                               state.n_qubits, x, z,
                                               noise)
            self._exit_xz = (x, z)
            self._program_state = state
        return self._program

    def device_program(self) -> list:
        """This node's timed device-level replay program.

        Used for noisy substrates the sign-trace cannot model: each
        step re-applies one recorded operation at its original issue
        time through the same state/noise sequence the device layer
        performs — gate-name resolution and duration lookups are done
        once here instead of per replay.  The compiled steps depend
        only on the recorded items (and the global gate registry), so
        they are device-independent.
        """
        if self._device_program is None:
            steps: list[tuple] = []
            meas_duration = lookup_gate("measure").duration_ns
            for item in self.items:
                code = item[0]
                if code == _I_OPS:
                    for (kind, name, qubits, params), time_ns in \
                            zip(item[1], item[2]):
                        duration = lookup_gate(name).duration_ns
                        if kind == "reset":
                            steps.append((_DV_RESET, time_ns, qubits[0],
                                          duration))
                        else:
                            steps.append((_DV_GATE, time_ns, name,
                                          qubits, params, duration))
                elif code == _I_MEAS:
                    steps.append((_DV_MEAS, item[2], item[1],
                                  meas_duration))
                elif code == _I_CLS:
                    steps.append((_DV_CLS, item[1], item[2]))
                else:  # _I_FMR
                    steps.append((_DV_FMR, item[1], item[2], item[3]))
            self._device_program = steps
        return self._device_program


def _bitmask(rows: np.ndarray | list) -> int:
    """Pack row indices (or a 0/1 row vector) into an integer mask."""
    mask = 0
    for index in np.nonzero(rows)[0]:
        mask |= 1 << int(index)
    return mask


def _index_mask(indices) -> int:
    mask = 0
    for index in indices:
        mask |= 1 << int(index)
    return mask


def _unpack_signs(r: int, rows: int) -> np.ndarray:
    """The packed sign column as a uint8 vector of ``rows`` bits."""
    raw = np.frombuffer(r.to_bytes((rows + 7) // 8, "little"),
                        dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:rows].copy()


def _flip_h(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    flip = x[:, a] & z[:, a]
    x[:, a], z[:, a] = z[:, a].copy(), x[:, a].copy()
    return flip


def _flip_s(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    flip = x[:, a] & z[:, a]
    z[:, a] ^= x[:, a]
    return flip


def _flip_x(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    return z[:, a]


def _flip_z(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    return x[:, a]


def _flip_y(x: np.ndarray, z: np.ndarray, a: int) -> np.ndarray:
    return x[:, a] ^ z[:, a]


_FLIP_ONE_QUBIT = {"h": _flip_h, "s": _flip_s, "x": _flip_x,
                   "z": _flip_z, "y": _flip_y}


def _flip_cnot(x: np.ndarray, z: np.ndarray, a: int, b: int) -> np.ndarray:
    flip = x[:, a] & z[:, b] & (x[:, b] ^ z[:, a] ^ 1)
    x[:, b] ^= x[:, a]
    z[:, a] ^= z[:, b]
    return flip


def _compile_sign_measure(x: np.ndarray, z: np.ndarray, n: int,
                          qubit: int, reset: bool) -> tuple:
    """Compile one measurement (or reset) against the model tableau.

    Mirrors :meth:`StabilizerState.measure` with the sign column
    abstracted out: the pivot/target/row selections and the CHP ``g``
    phase contributions depend only on x/z, so they become constants;
    what remains at replay time is sign parity and the rng draw.
    """
    column = x[n:2 * n, qubit]
    first = int(column.argmax())
    if column[first]:
        pivot = n + first
        targets = np.nonzero(x[:, qubit])[0]
        targets = targets[targets != pivot]
        tmask = _index_mask(targets)
        gmask = 0
        if targets.size:
            x1 = x[pivot].astype(np.int16)
            z1 = z[pivot].astype(np.int16)
            x2 = x[targets].astype(np.int16)
            z2 = z[targets].astype(np.int16)
            g = StabilizerState._g_terms(x1, z1, x2, z2).sum(
                axis=1, dtype=np.int64) % 4 // 2
            gmask = _index_mask(targets[g.astype(bool)])
            # The batch rowsum multiplies the pivot into every target
            # row's Pauli part as well.
            x[targets] ^= x[pivot]
            z[targets] ^= z[pivot]
        # Model collapse: the pivot's destabilizer inherits the old
        # stabilizer; the pivot row becomes +/- Z_qubit.
        x[pivot - n] = x[pivot]
        z[pivot - n] = z[pivot]
        x[pivot] = 0
        z[pivot] = 0
        z[pivot, qubit] = 1
        if reset:
            return (_S_RESET_R, pivot, pivot - n, tmask, gmask,
                    _bitmask(z[:, qubit]))
        return (_S_MEAS_R, qubit, pivot, pivot - n, tmask, gmask)
    hits = np.nonzero(x[:n, qubit])[0]
    ghalf = 0
    rowsmask = 0
    if hits.size:
        rows = hits + n
        rowsmask = _index_mask(rows)
        x1 = x[rows].astype(np.int16)
        z1 = z[rows].astype(np.int16)
        x2 = np.zeros_like(x1)
        z2 = np.zeros_like(z1)
        np.bitwise_xor.accumulate(x1[:-1], axis=0, out=x2[1:])
        np.bitwise_xor.accumulate(z1[:-1], axis=0, out=z2[1:])
        g = int(StabilizerState._g_terms(x1, z1, x2, z2).sum(
            dtype=np.int64))
        ghalf = (g % 4) // 2
    if reset:
        return (_S_RESET_D, rowsmask, ghalf, _bitmask(z[:, qubit]))
    return (_S_MEAS_D, qubit, rowsmask, ghalf)


def _compile_sign_node(items: tuple, n: int, x: np.ndarray,
                       z: np.ndarray, noise: NoiseModel) -> list:
    """Compile a node's segment into sign-column operations.

    ``x``/``z`` is the model tableau at node entry; it is advanced in
    place to the node's exit state.  Consecutive gates fold into a
    single XOR mask — an entire gate run costs one integer XOR at
    replay time.

    When ``noise`` carries gate channels (depolarizing / Pauli), every
    unitary gate additionally compiles a ``_S_NOISE`` site holding the
    (X, Y, Z) sign masks of each touched qubit *after* the gate's
    conjugation: a Pauli injection is sign-only, so the masks are
    shot-invariant constants and the replay merely draws the channel
    rng positionally and XORs the selected mask.  Reset operations get
    no site — the device layer applies no gate noise after a reset.
    """
    depolarizing = noise.depolarizing
    two_qubit = noise.two_qubit_depolarizing
    pauli = noise.pauli
    pauli_cum = None
    if pauli is not None:
        pauli_cum = (pauli.px, pauli.px + pauli.py,
                     pauli.px + pauli.py + pauli.pz)
    has_gate_noise = (depolarizing is not None or two_qubit is not None
                      or pauli is not None)
    program: list = []
    pending = 0

    def flush() -> None:
        nonlocal pending
        if pending:
            program.append((_S_XOR, pending))
            pending = 0

    def noise_site(qubits: tuple[int, ...]) -> None:
        """One post-gate injection site: masks + channel constants."""
        channel = depolarizing
        if len(qubits) == 2 and two_qubit is not None:
            channel = two_qubit
        dep_p = channel.p if channel is not None else None
        if dep_p is None and pauli_cum is None:
            return
        masks = []
        for q in qubits:
            x_flips = _bitmask(z[:, q])
            z_flips = _bitmask(x[:, q])
            masks.append((x_flips, x_flips ^ z_flips, z_flips))
        masks = tuple(masks)
        program.append((_S_NOISE, dep_p, masks, pauli_cum))

    for item in items:
        code = item[0]
        if code == _I_OPS:
            for kind, name, qubits, _params in item[1]:
                if kind == "reset":
                    flush()
                    program.append(_compile_sign_measure(
                        x, z, n, qubits[0], reset=True))
                    continue
                if name in _CLIFFORD_DECOMPOSITIONS:
                    for primitive in _CLIFFORD_DECOMPOSITIONS[name]:
                        pending ^= _bitmask(
                            _FLIP_ONE_QUBIT[primitive](x, z, qubits[0]))
                else:
                    for primitive, a, b in \
                            _TWO_QUBIT_DECOMPOSITIONS[name]:
                        if primitive == "cnot":
                            pending ^= _bitmask(
                                _flip_cnot(x, z, qubits[a], qubits[b]))
                        else:
                            pending ^= _bitmask(
                                _FLIP_ONE_QUBIT[primitive](x, z,
                                                           qubits[a]))
                if has_gate_noise:
                    # Sign XORs commute, so the pending gate flips need
                    # no flush — the site only draws the noise rng and
                    # XORs masks of its own.
                    noise_site(qubits)
        elif code == _I_MEAS:
            flush()
            program.append(_compile_sign_measure(x, z, n, item[1],
                                                 reset=False))
        elif code == _I_CLS:
            flush()
            program.append((_S_CLS, item[1], item[2]))
        else:  # _I_FMR
            flush()
            program.append((_S_FMR, item[1], item[2], item[3]))
    flush()
    return program


class RecordingQPU:
    """Device proxy capturing the backend-op stream of one shot.

    Wraps a :class:`~repro.qpu.device.SimulatedQPU` (or a
    :class:`CheckpointQPU` around one); every attribute not intercepted
    here delegates to it, so the control stack drives the proxy
    exactly like the real device.  Backend operations and measurement
    samples are appended — with their issue times, which the noisy
    device replay needs — to the shared chronological ``recorded``
    stream, interleaved with the classical entries the processor
    recording hooks contribute.
    """

    def __init__(self, inner, recorded: list) -> None:
        self._inner = inner
        self.recorded = recorded

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def apply_gate(self, time_ns: int, gate: str, qubits: tuple[int, ...],
                   params: tuple[float, ...] = ()) -> None:
        self._inner.apply_gate(time_ns, gate, qubits, params)
        definition = lookup_gate(gate)
        if definition.is_reset:
            self.recorded.append((REC_RESET, "reset", (qubits[0],), (),
                                  time_ns))
        else:
            self.recorded.append((REC_GATE, definition.name,
                                  tuple(qubits), tuple(params), time_ns))

    def measure(self, time_ns: int, qubit: int) -> int:
        outcome = self._inner.measure(time_ns, qubit)
        self.recorded.append((REC_MEAS, qubit, time_ns))
        return outcome

    def reset(self, time_ns: int, qubit: int) -> None:
        self.apply_gate(time_ns, "reset", (qubit,))


class CheckpointQPU:
    """Prefix-skipping device proxy for divergence-frontier resume.

    Built from a :class:`ResumePoint`: the wrapped QPU's state, rng
    positions and bookkeeping are already at the frontier, so the
    first ``skip_ops`` device operations the re-running control stack
    issues are dropped (their effects are live) and prefix
    measurements return the recorded delivered bits.  Once the prefix
    is exhausted every call passes through, simulating only the
    divergent suffix.
    """

    def __init__(self, inner: SimulatedQPU, resume: ResumePoint) -> None:
        self._inner = inner
        self._skip = resume.skip_ops
        self._outcomes = resume.outcomes
        self._next_outcome = 0

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def apply_gate(self, time_ns: int, gate: str, qubits: tuple[int, ...],
                   params: tuple[float, ...] = ()) -> None:
        if self._skip:
            self._skip -= 1
            return
        self._inner.apply_gate(time_ns, gate, qubits, params)

    def measure(self, time_ns: int, qubit: int) -> int:
        if self._skip:
            self._skip -= 1
            value = self._outcomes[self._next_outcome]
            self._next_outcome += 1
            return value
        return self._inner.measure(time_ns, qubit)

    def reset(self, time_ns: int, qubit: int) -> None:
        self.apply_gate(time_ns, "reset", (qubit,))


class TraceCache:
    """Trie of recorded shot traces keyed by control-flow decisions.

    Public counters: ``hits`` (full trie replays), ``misses`` (shots
    that needed the cycle-accurate simulator, cold or resumed),
    ``resumes`` (the subset of misses that restarted from the
    divergence frontier instead of from scratch), ``nodes`` (live trie
    nodes) and ``evictions`` (nodes dropped by the LRU bound).
    """

    def __init__(self, config: QCPConfig) -> None:
        self.config = config
        self.root: TraceNode | None = None
        self.max_nodes = config.trace_cache_max_nodes
        self.hits = 0
        self.misses = 0
        self.resumes = 0
        self.nodes = 0
        self.evictions = 0
        self._tick = 0

    # -- replay ------------------------------------------------------------

    def replay(self, qpu: SimulatedQPU, seed: int
               ) -> tuple[dict[int, int], int] | ResumePoint | None:
        """Replay one shot through the trie.

        Clears the per-shot device logs, restarts/reseeds ``qpu``
        (measurement *and* noise rng) and walks the trie: backend
        segments are applied through compiled closures (or the timed
        device program on noisy dense substrates), measurements
        execute live so each shot draws its own outcomes, classical
        micro-ops run against a register facade, and each decision is
        re-computed from this shot's own delivered bits to pick the
        next edge.

        Returns ``(last result per qubit, total ns)`` on a full hit; a
        :class:`ResumePoint` on a divergence-frontier miss (the caller
        re-runs the cycle-accurate simulation behind a
        :class:`CheckpointQPU` and records the new branch); or
        ``None`` when the trie is cold (first shot ever) — the caller
        then restarts the QPU itself and simulates from scratch.
        """
        node = self.root
        if node is None or node.items is None:
            self.misses += 1
            return None
        self._tick += 1
        qpu.operation_log.clear()
        qpu.timing_violations.clear()
        qpu.restart(seed=seed)
        state = qpu.state
        if isinstance(state, StabilizerState) and qpu.noise.is_pauli_only:
            return self._replay_signs(node, qpu)
        if qpu.noise.is_ideal:
            return self._replay_generic(node, qpu)
        return self._replay_device(node, qpu)

    def _resume_point(self, skip_ops: int, outcomes: list[int]
                      ) -> ResumePoint:
        self.misses += 1
        self.resumes += 1
        return ResumePoint(skip_ops=skip_ops, outcomes=outcomes)

    def _replay_generic(self, node: TraceNode, qpu: SimulatedQPU
                        ) -> tuple[dict[int, int], int] | ResumePoint:
        """Ideal-substrate replay through compiled backend closures."""
        state = qpu.state
        measure = state.measure
        delivered: dict[int, int] = {}
        outcomes: list[int] = []
        skip_ops = 0
        shared = SharedRegisters()
        procs: dict[int, _ReplayProcessor] = {}
        while True:
            node.last_used = self._tick
            skip_ops += node.devops
            for item in node.program(state):
                code = item[0]
                if code == _I_OPS:
                    item[1]()
                elif code == _I_MEAS:
                    value = measure(item[1])
                    delivered[item[1]] = value
                    outcomes.append(value)
                elif code == _I_CLS:
                    proc = procs.get(item[1])
                    if proc is None:
                        proc = procs[item[1]] = _ReplayProcessor(
                            shared, self.config)
                    item[2](proc)
                else:  # _I_FMR
                    proc = procs.get(item[1])
                    if proc is None:
                        proc = procs[item[1]] = _ReplayProcessor(
                            shared, self.config)
                    proc.registers.write(item[2], delivered[item[3]])
            outcome = self._decide(node, delivered, procs, shared)
            if outcome is None:
                self.hits += 1
                return delivered, node.total_ns
            node = node.children.get(outcome)
            if node is None or node.items is None:
                # The live backend state *is* the frontier checkpoint.
                return self._resume_point(skip_ops, outcomes)

    def _replay_device(self, node: TraceNode, qpu: SimulatedQPU
                       ) -> tuple[dict[int, int], int] | ResumePoint:
        """Noisy-substrate replay through the timed device program.

        Re-applies the recorded operation stream at its original issue
        times through the same state / noise-channel / idle-decay /
        crosstalk-window sequence :class:`SimulatedQPU` performs,
        drawing both rngs positionally — minus the event kernel,
        operation logging, topology validation and telemetry.
        """
        state = qpu.state
        noise = qpu.noise
        busy = qpu._busy_until
        delivered: dict[int, int] = {}
        outcomes: list[int] = []
        skip_ops = 0
        shared = SharedRegisters()
        procs: dict[int, _ReplayProcessor] = {}
        while True:
            node.last_used = self._tick
            skip_ops += node.devops
            for step in node.device_program():
                code = step[0]
                # The noise/decay/window hooks below run
                # unconditionally, mirroring SimulatedQPU exactly:
                # gating them behind channel enumerations here would
                # fail open for channels added to the device layer
                # later (each hook is cheap when its channels are off).
                if code == _DV_GATE:
                    _c, time_ns, name, qubits, params, duration = step
                    qpu._decay_idle(time_ns, qubits)
                    for qubit in qubits:
                        busy[qubit] = time_ns + duration
                    state.apply_gate(name, qubits, params)
                    noise.after_gate(state, name, qubits)
                    qpu._note_window(time_ns, qubits, duration)
                elif code == _DV_MEAS:
                    _c, time_ns, qubit, duration = step
                    qpu._decay_idle(time_ns, (qubit,))
                    busy[qubit] = time_ns + duration
                    value = noise.corrupt_readout(state.measure(qubit))
                    delivered[qubit] = value
                    outcomes.append(value)
                elif code == _DV_RESET:
                    _c, time_ns, qubit, duration = step
                    qpu._decay_idle(time_ns, (qubit,))
                    busy[qubit] = time_ns + duration
                    state.reset(qubit)
                elif code == _DV_CLS:
                    proc = procs.get(step[1])
                    if proc is None:
                        proc = procs[step[1]] = _ReplayProcessor(
                            shared, self.config)
                    step[2](proc)
                else:  # _DV_FMR
                    proc = procs.get(step[1])
                    if proc is None:
                        proc = procs[step[1]] = _ReplayProcessor(
                            shared, self.config)
                    proc.registers.write(step[2], delivered[step[3]])
            outcome = self._decide(node, delivered, procs, shared)
            if outcome is None:
                self.hits += 1
                return delivered, node.total_ns
            node = node.children.get(outcome)
            if node is None or node.items is None:
                # Device bookkeeping (busy map, drive windows) and
                # both rngs are live at the frontier.
                return self._resume_point(skip_ops, outcomes)

    def _decide(self, node: TraceNode, delivered: dict[int, int],
                procs: dict, shared: SharedRegisters) -> int | None:
        """Re-compute the node's decision; ``None`` marks a leaf."""
        decision = node.decision
        if decision is None:
            return None
        if decision[0] == _D_BRANCH:
            proc = procs.get(decision[1])
            if proc is None:
                proc = procs[decision[1]] = _ReplayProcessor(
                    shared, self.config)
            return 1 if decision[2](proc)[0] == "taken" else 0
        return delivered[decision[1]]

    def _replay_signs(self, node: TraceNode, qpu: SimulatedQPU
                      ) -> tuple[dict[int, int], int] | ResumePoint:
        """Replay via the compiled sign-trace (stabilizer backends).

        The whole quantum side of a segment reduces to integer bit
        operations on the packed sign column ``r``; only rng draws
        (measurement *and* positional noise), delivered outcomes and
        the classical facade remain dynamic.  On a miss, the frontier
        tableau is materialized into the live backend — x/z from the
        node's compile-time exit model, signs from ``r`` — so the
        resumed cycle-accurate run continues from the checkpoint.
        """
        state: StabilizerState = qpu.state
        noise = qpu.noise
        corrupt = noise.corrupt_readout
        nrng = noise.rng
        rng = state.rng.random
        delivered: dict[int, int] = {}
        outcomes: list[int] = []
        skip_ops = 0
        shared = SharedRegisters()
        procs: dict[int, _ReplayProcessor] = {}
        r = 0
        parent: TraceNode | None = None
        while True:
            node.last_used = self._tick
            skip_ops += node.devops
            for op in node.sign_program(state, parent, noise):
                code = op[0]
                if code == _S_XOR:
                    r ^= op[1]
                elif code == _S_MEAS_D:
                    raw = ((r & op[2]).bit_count() + op[3]) & 1
                    rng()
                    value = corrupt(raw)
                    delivered[op[1]] = value
                    outcomes.append(value)
                elif code == _S_MEAS_R:
                    _c, qubit, pivot, pm, tmask, gmask = op
                    raw = 1 if rng() < 0.5 else 0
                    if (r >> pivot) & 1:
                        r ^= gmask ^ tmask
                        r |= 1 << pm
                    else:
                        r ^= gmask
                        r &= ~(1 << pm)
                    if raw:
                        r |= 1 << pivot
                    else:
                        r &= ~(1 << pivot)
                    value = corrupt(raw)
                    delivered[qubit] = value
                    outcomes.append(value)
                elif code == _S_NOISE:
                    _c, dep_p, masks, pauli_cum = op
                    if dep_p is not None:
                        for qubit_masks in masks:
                            if nrng.random() < dep_p:
                                r ^= qubit_masks[
                                    nrng.choice(_PAULI_INDICES)]
                    if pauli_cum is not None:
                        cx, cxy, cxyz = pauli_cum
                        for qubit_masks in masks:
                            draw = nrng.random()
                            if draw < cx:
                                r ^= qubit_masks[0]
                            elif draw < cxy:
                                r ^= qubit_masks[1]
                            elif draw < cxyz:
                                r ^= qubit_masks[2]
                elif code == _S_RESET_R:
                    _c, pivot, pm, tmask, gmask, zmask = op
                    outcome = 1 if rng() < 0.5 else 0
                    if (r >> pivot) & 1:
                        r ^= gmask ^ tmask
                        r |= 1 << pm
                    else:
                        r ^= gmask
                        r &= ~(1 << pm)
                    if outcome:
                        # Collapsed to |1>: the X correction flips the
                        # sign of every row with a Z on the qubit,
                        # the fresh +Z_qubit pivot row included.
                        r |= 1 << pivot
                        r ^= zmask
                    else:
                        r &= ~(1 << pivot)
                elif code == _S_RESET_D:
                    outcome = ((r & op[1]).bit_count() + op[2]) & 1
                    rng()
                    if outcome:
                        r ^= op[3]
                elif code == _S_CLS:
                    proc = procs.get(op[1])
                    if proc is None:
                        proc = procs[op[1]] = _ReplayProcessor(
                            shared, self.config)
                    op[2](proc)
                else:  # _S_FMR
                    proc = procs.get(op[1])
                    if proc is None:
                        proc = procs[op[1]] = _ReplayProcessor(
                            shared, self.config)
                    proc.registers.write(op[2], delivered[op[3]])
            outcome = self._decide(node, delivered, procs, shared)
            if outcome is None:
                self.hits += 1
                return delivered, node.total_ns
            parent = node
            node = node.children.get(outcome)
            if node is None or node.items is None:
                # Materialize the frontier tableau: x/z from the last
                # executed node's exit model, signs from the packed
                # column.  Both rngs are already at their frontier
                # positions.
                exit_x, exit_z = parent._exit_xz
                state.restore((exit_x, exit_z,
                               _unpack_signs(r, exit_x.shape[0])))
                return self._resume_point(skip_ops, outcomes)

    # -- recording ---------------------------------------------------------

    def record(self, recorded: list, total_ns: int) -> None:
        """Insert one cycle-accurately executed shot into the trie.

        For a resumed shot the stream covers the whole shot (the
        control stack re-issued the prefix through the checkpoint
        proxy), so the walk passes through the existing prefix nodes —
        verifying their decisions — and extends the trie at the new
        edge.  When an LRU bound is configured and the insertion
        pushed the node count past it, the least-recently-used
        subtrees are evicted.
        """
        self._tick += 1
        if self.root is None:
            self.root = TraceNode()
            self.nodes += 1
        node = self.root
        node.last_used = self._tick
        items: list = []
        ops: list = []
        times: list = []

        def flush_ops() -> None:
            if ops:
                items.append((_I_OPS, tuple(ops), tuple(times)))
                ops.clear()
                times.clear()

        def close_node(decision: tuple | None, outcome: int | None):
            nonlocal node, items
            flush_ops()
            if node.items is None:
                node.items = tuple(items)
                node.decision = decision
                node.devops = sum(
                    len(item[1]) if item[0] == _I_OPS else 1
                    for item in node.items
                    if item[0] == _I_OPS or item[0] == _I_MEAS)
            elif not _same_decision(node.decision, decision):
                raise TraceDivergenceError(
                    f"shot reached decision {decision!r} where the trie "
                    f"recorded {node.decision!r}; execution is not "
                    "decision-deterministic")
            items = []
            if decision is None:
                return None
            child = node.children.get(outcome)
            if child is None:
                child = TraceNode()
                node.children[outcome] = child
                self.nodes += 1
            child.last_used = self._tick
            return child

        for entry in recorded:
            tag = entry[0]
            if tag == REC_GATE or tag == REC_RESET:
                ops.append(entry[:4])
                times.append(entry[4])
            elif tag == REC_MEAS:
                flush_ops()
                items.append((_I_MEAS, entry[1], entry[2]))
            elif tag == REC_CLS:
                flush_ops()
                items.append((_I_CLS, entry[1], entry[2]))
            elif tag == REC_FMR:
                flush_ops()
                items.append((_I_FMR, entry[1], entry[2], entry[3]))
            elif tag == REC_DEC:
                node = close_node((_D_BRANCH, entry[1], entry[2]),
                                  entry[3])
            else:  # REC_MDEC
                node = close_node((_D_MRCE, entry[1]), entry[2])
        leaf = close_node(None, None)
        assert leaf is None
        if node.total_ns == 0:
            node.total_ns = total_ns
        if self.max_nodes is not None and self.nodes > self.max_nodes:
            self._evict()

    # -- LRU eviction ------------------------------------------------------

    def _evict(self) -> None:
        """Drop least-recently-used subtrees until the trie fits.

        One DFS scores every subtree by the newest ``last_used`` stamp
        it contains (and its size); candidates are then detached
        coldest-first (smallest on ties) only until the bound is met,
        so eviction stops as soon as the excess is reclaimed.  The
        path the current shot just used carries the newest stamp and
        is never evicted — the bound is best-effort when that path
        alone exceeds it.
        """
        newest: dict[int, int] = {}
        sizes: dict[int, int] = {}
        parent_of: dict[int, TraceNode | None] = {id(self.root): None}
        candidates: list[tuple] = []  # ((stamp, size), node, parent, key)
        stack: list[tuple] = [(self.root, None, None, False)]
        while stack:
            node, parent, key, done = stack.pop()
            if not done:
                parent_of[id(node)] = parent
                stack.append((node, parent, key, True))
                for edge, child in node.children.items():
                    stack.append((child, node, edge, False))
                continue
            stamp = node.last_used
            size = 1
            for child in node.children.values():
                child_stamp = newest[id(child)]
                if child_stamp > stamp:
                    stamp = child_stamp
                size += sizes[id(child)]
            newest[id(node)] = stamp
            sizes[id(node)] = size
            if parent is not None and stamp < self._tick:
                candidates.append(((stamp, size), node, parent, key))
        candidates.sort(key=lambda entry: entry[0])
        detached: set[int] = set()
        # Nodes already removed underneath each surviving ancestor, so
        # a later-detached ancestor does not double-count a descendant
        # subtree that went first.
        removed_under: dict[int, int] = {}
        for _score, node, parent, key in candidates:
            if self.nodes <= self.max_nodes:
                break
            ancestor = parent
            gone = False
            while ancestor is not None:
                if id(ancestor) in detached:
                    gone = True
                    break
                ancestor = parent_of[id(ancestor)]
            if gone:
                continue
            removed = sizes[id(node)] - removed_under.get(id(node), 0)
            del parent.children[key]
            detached.add(id(node))
            self.nodes -= removed
            self.evictions += removed
            ancestor = parent
            while ancestor is not None:
                removed_under[id(ancestor)] = \
                    removed_under.get(id(ancestor), 0) + removed
                ancestor = parent_of[id(ancestor)]


def _same_decision(left: tuple | None, right: tuple | None) -> bool:
    """Structural equality of decision points.

    Branch decisions compare by (kind, processor) — the compiled
    micro-op closure differs per decode but refers to the same static
    instruction when the path is deterministic — and MRCE decisions by
    (kind, result qubit).
    """
    if left is None or right is None:
        return left is None and right is None
    return left[0] == right[0] and left[1] == right[1]
