"""Execution traces: what happened, when, on which processor.

The trace is the ground truth consumed by metrics, benchmarks and tests:
issued operations (with lateness relative to their scheduled timing
point), block scheduling events and processor-level dispatch counts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


@dataclass(frozen=True)
class IssueRecord:
    """One quantum operation issued to the QPU."""

    time_ns: int
    gate: str
    qubits: tuple[int, ...]
    params: tuple[float, ...]
    processor: int
    block: str | None
    step_id: int | None
    late_ns: int  # 0 when issued exactly at its scheduled timing point


class BlockEventKind(enum.Enum):
    PREFETCH_START = "prefetch_start"
    PREFETCH_DONE = "prefetch_done"
    ALLOC_START = "alloc_start"
    ALLOC_DONE = "alloc_done"
    SWITCH = "switch"
    EXEC_START = "exec_start"
    EXEC_DONE = "exec_done"


@dataclass(frozen=True)
class BlockEvent:
    """One scheduler/block lifecycle event."""

    time_ns: int
    kind: BlockEventKind
    block: str
    processor: int | None = None


@dataclass
class Trace:
    """Accumulates every observable event of one system run."""

    issues: list[IssueRecord] = field(default_factory=list)
    block_events: list[BlockEvent] = field(default_factory=list)
    instructions_executed: int = 0
    context_switches: int = 0

    def record_issue(self, record: IssueRecord) -> None:
        self.issues.append(record)

    def record_block_event(self, event: BlockEvent) -> None:
        self.block_events.append(event)

    @property
    def late_issues(self) -> list[IssueRecord]:
        """Operations that missed their scheduled timing point."""
        return [record for record in self.issues if record.late_ns > 0]

    @property
    def total_late_ns(self) -> int:
        """Accumulated delay across all late issues (decoherence proxy)."""
        return sum(record.late_ns for record in self.issues)

    def issues_on_qubit(self, qubit: int) -> list[IssueRecord]:
        return [record for record in self.issues if qubit in record.qubits]

    def events_for_block(self, block: str) -> list[BlockEvent]:
        return [event for event in self.block_events
                if event.block == block]

    def simultaneous_groups(self) -> dict[int, list[IssueRecord]]:
        """Issued operations grouped by identical issue time."""
        groups: dict[int, list[IssueRecord]] = {}
        for record in self.issues:
            groups.setdefault(record.time_ns, []).append(record)
        return groups
