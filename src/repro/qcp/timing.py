"""Timing queue and timing controller (Sections 5.2.4, 5.3.2).

Executed quantum instructions do not act immediately: they enter the
timing queue together with their timing label, and the timing controller
issues each operation when its point on the processor's timeline is
reached.  The timeline is built from the labels: operation *k* is
scheduled ``label_k`` clock cycles after the issue of operation *k-1*
(label 0 = simultaneous).

If the processor falls behind — it executes an instruction *after* its
scheduled timing point — the operation issues late and the timeline
slips by the same amount.  Lateness is recorded per operation: it is the
"additional accumulated quantum error" the paper's whole design works to
avoid, and the quantity that the TR <= 1 requirement bounds.

Exactly one timing controller exists per processor (Section 5.3.2),
shared by all of its quantum pipelines, "otherwise the timing control of
different quantum instructions cannot be guaranteed".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.qcp.emitter import Emitter, QuantumOp
from repro.sim.kernel import SimKernel


@dataclass
class PendingOp:
    """A queue entry awaiting its timing point."""

    op: QuantumOp
    scheduled_ns: int
    actual_ns: int


class TimingController:
    """Owns one processor's timeline and drives the emitter."""

    def __init__(self, kernel: SimKernel, emitter: Emitter,
                 clock_period_ns: int, processor_id: int = 0) -> None:
        self.kernel = kernel
        self.emitter = emitter
        self.clock_period_ns = clock_period_ns
        self.processor_id = processor_id
        self._last_issue_ns: int | None = None
        self.queue_depth_high_water = 0
        self._in_flight = 0

    def reset_timeline(self) -> None:
        """Start a fresh timeline (new program block)."""
        self._last_issue_ns = None

    @property
    def last_issue_ns(self) -> int | None:
        return self._last_issue_ns

    def enqueue(self, op: QuantumOp, timing_label: int,
                exec_time_ns: int) -> PendingOp:
        """Accept an executed quantum instruction for timed issue.

        ``exec_time_ns`` is when the processor finished executing the
        instruction; the operation can never issue before that.
        """
        if self._last_issue_ns is None:
            scheduled = exec_time_ns
        else:
            scheduled = (self._last_issue_ns
                         + timing_label * self.clock_period_ns)
        actual = max(scheduled, exec_time_ns)
        self._last_issue_ns = actual
        pending = PendingOp(op=op, scheduled_ns=scheduled, actual_ns=actual)
        self._in_flight += 1
        self.queue_depth_high_water = max(self.queue_depth_high_water,
                                          self._in_flight)
        self.kernel.schedule_at(actual, self._fire, pending)
        return pending

    def enqueue_immediate(self, op: QuantumOp, time_ns: int) -> PendingOp:
        """Issue a feedback-determined operation as soon as possible.

        Used for the operation selected by an MRCE: it has no
        pre-scheduled timing point (the measurement latency is
        non-deterministic), so it issues at ``time_ns`` and the timeline
        continues from there.
        """
        actual = max(time_ns, self._last_issue_ns or 0)
        self._last_issue_ns = actual
        pending = PendingOp(op=op, scheduled_ns=actual, actual_ns=actual)
        self._in_flight += 1
        self.kernel.schedule_at(actual, self._fire, pending)
        return pending

    def _fire(self, pending: PendingOp) -> None:
        self._in_flight -= 1
        late_ns = pending.actual_ns - pending.scheduled_ns
        self.emitter.issue(pending.op, self.processor_id, late_ns)
