"""Emitter: the last execution-unit stage (Section 5.2.4).

Converts each quantum operation into codewords distributed to the analog
channels (microwave and flux operations of the same qubit go to
different channels) and hands measurement operations to the readout
path.  Two back-ends exist:

* an *analog* back-end driving AWG/DAQ board models (full-stack runs),
* a *direct* back-end applying operations straight to a QPU device and
  modelling the readout path as a fixed stage-I+II latency — this is the
  "QCP board only" setup the paper uses for its microarchitecture
  benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analog.awg import AWG
from repro.analog.channels import ChannelMap
from repro.analog.codeword import Codeword, WaveformTable
from repro.analog.daq import DAQ
from repro.qcp.registers import MeasurementResultRegisters
from repro.qcp.trace import IssueRecord, Trace
from repro.qpu.device import QPUBase
from repro.sim.kernel import SimKernel


@dataclass(frozen=True)
class QuantumOp:
    """One quantum operation travelling from pipeline to emitter."""

    gate: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = ()
    block: str | None = None
    step_id: int | None = None

    @property
    def is_measurement(self) -> bool:
        return self.gate == "measure"


@dataclass
class Emitter:
    """Shared issue stage: operations -> codewords -> QPU/readout."""

    kernel: SimKernel
    qpu: QPUBase
    results: MeasurementResultRegisters
    trace: Trace
    channel_map: ChannelMap | None = None
    awg: AWG | None = None
    daq: DAQ | None = None
    #: Stage I+II latency for the direct (no-DAQ) readout path.
    result_latency_ns: int = 400
    waveforms: WaveformTable = field(default_factory=WaveformTable)

    def __post_init__(self) -> None:
        if self.channel_map is None:
            self.channel_map = ChannelMap.default(self.qpu.n_qubits)

    def issue(self, op: QuantumOp, processor_id: int,
              late_ns: int = 0) -> None:
        """Issue ``op`` to the QPU *now* (called by the timing controller)."""
        now = self.kernel.now
        self.trace.record_issue(IssueRecord(
            time_ns=now, gate=op.gate, qubits=op.qubits, params=op.params,
            processor=processor_id, block=op.block, step_id=op.step_id,
            late_ns=late_ns))
        if op.is_measurement:
            self._issue_measurement(op)
        else:
            self._issue_gate(op)

    # -- gates ----------------------------------------------------------------

    def _issue_gate(self, op: QuantumOp) -> None:
        if self.awg is not None:
            channels = self.channel_map.channels_for(op.gate, op.qubits)
            for index, channel in enumerate(channels):
                self.awg.trigger(Codeword(
                    channel=channel,
                    waveform_id=self.waveforms.waveform_id(op.gate,
                                                           op.params),
                    issue_time_ns=self.kernel.now,
                    gate=op.gate, qubits=op.qubits, params=op.params,
                    primary=(index == 0)))
        else:
            self.qpu.apply_gate(self.kernel.now, op.gate, op.qubits,
                                op.params)

    # -- measurements -----------------------------------------------------------

    def _issue_measurement(self, op: QuantumOp) -> None:
        qubit = op.qubits[0]
        self.results.invalidate(qubit)
        if self.daq is not None:
            self.daq.begin_measurement(qubit, self.kernel.now)
        else:
            # Direct path: sample the QPU outcome at pulse end and
            # deliver it after the fixed stage I+II latency.
            self.kernel.schedule(self.result_latency_ns,
                                 self._deliver_direct, qubit)

    def _deliver_direct(self, qubit: int) -> None:
        outcome = self.qpu.measure(self.kernel.now, qubit)
        self.results.deliver(qubit, outcome, self.kernel.now)
