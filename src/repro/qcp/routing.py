"""Automatic QPU-backend routing (``qpu_backend="auto"``).

The two simulation substrates have complementary envelopes: the
stabilizer tableau runs Clifford-only programs in polynomial time
(hundreds of qubits) but cannot represent a single T gate, while the
dense statevector is exact for every gate in the library but
exponential in the register size.  ``"auto"`` closes the gap: the shot
engine hands the program here once, before any shot runs, and
:func:`route_backend` picks the cheapest substrate that is *exact* for
the workload —

* ``"stabilizer"`` when every issued gate (including both arms of each
  MRCE) is Clifford and parameter-free **and** the noise model is
  Pauli-compatible (:attr:`~repro.qpu.noise.NoiseModel.is_pauli_only`);
* ``"statevector"`` otherwise.

A calibrated :class:`~repro.qpu.profile.DeviceProfile` may pin a
backend (``"backend"`` key in the profile JSON); the pin wins over the
program analysis, because a calibration is measured against one
physical modality.  On dense registers small enough that one fused
GEMM beats several narrow ones (``3 < n_qubits <= 6``), routing also
widens the trace-cache fusion block to the register size — the
adaptive ``fuse_max_qubits`` the decision carries.

Routing is a pure function of (program, noise, profile, register
size): the decision is computed once per engine, stored on it, carried
in service engine identity and surfaced through ``/stats`` and the CLI
so operators can see *why* a backend was chosen.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.circuit.gates import GATE_ALIASES
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.qpu.stabilizer import (_CLIFFORD_DECOMPOSITIONS,
                                  _TWO_QUBIT_DECOMPOSITIONS)

#: Register size above which adaptive fusion stops widening blocks: an
#: n-qubit fused operator is a 2^n x 2^n GEMM per application, so past
#: a handful of qubits wider blocks cost more than they save.
ADAPTIVE_FUSION_LIMIT = 6

#: Canonical names the stabilizer tableau represents exactly.
CLIFFORD_GATES = (frozenset(_CLIFFORD_DECOMPOSITIONS)
                  | frozenset(_TWO_QUBIT_DECOMPOSITIONS))

#: Non-unitary operations every substrate supports.
_STRUCTURAL = frozenset({"measure", "reset"})


@dataclass(frozen=True)
class RoutingDecision:
    """Why ``"auto"`` picked what it picked.

    ``backend`` is the routed substrate name (never ``"auto"``);
    ``reason`` is a one-line human-readable justification;
    ``clifford_only`` is the program analysis result independent of
    what was ultimately chosen; ``fuse_max_qubits`` is the adaptive
    fusion width, or ``None`` when the default cap applies; ``forced``
    is set when a device profile pinned the backend and the program
    analysis was overridden.
    """

    backend: str
    reason: str
    clifford_only: bool
    n_qubits: int
    fuse_max_qubits: int | None = None
    forced: bool = False

    def as_dict(self) -> dict:
        """JSON-ready rendering (service payloads, ``/stats``)."""
        return asdict(self)


def _canonical_gate(name: str) -> str:
    key = name.lower()
    return GATE_ALIASES.get(key, key)


def is_clifford_program(program: Program) -> bool:
    """True iff every issued operation is Clifford and parameter-free.

    Scans the instruction stream once: ``QOP`` gates (any parametric
    gate — even a Clifford angle spelled as a rotation — routes
    dense), both arms of every ``MRCE``, and the structural
    measure/reset operations.  Classical instructions never touch the
    substrate and are ignored.
    """
    for instr in program.instructions:
        if instr.opcode == Opcode.QOP:
            gate = _canonical_gate(instr.gate)
            if gate in _STRUCTURAL:
                continue
            if gate not in CLIFFORD_GATES or instr.params:
                return False
        elif instr.opcode == Opcode.MRCE:
            for arm in (instr.op_if_zero, instr.op_if_one):
                gate = _canonical_gate(arm)
                if gate not in CLIFFORD_GATES \
                        and gate not in _STRUCTURAL:
                    return False
    return True


def _adaptive_fuse_width(backend: str, n_qubits: int) -> int | None:
    if backend == "statevector" and 3 < n_qubits <= ADAPTIVE_FUSION_LIMIT:
        return n_qubits
    return None


def route_backend(program: Program, n_qubits: int,
                  noise=None, profile=None) -> RoutingDecision:
    """Pick the substrate for ``backend="auto"`` (see module docstring).

    ``noise`` is the noise model the engine will run (may be ``None``
    = ideal); ``profile`` an optional
    :class:`~repro.qpu.profile.DeviceProfile` whose ``backend`` pin,
    when present, wins over the program analysis.
    """
    clifford = is_clifford_program(program)
    if profile is not None and profile.backend is not None:
        backend = profile.backend
        return RoutingDecision(
            backend=backend,
            reason=f"device profile {profile.name or '<unnamed>'!s} "
                   f"pins {backend!r}",
            clifford_only=clifford, n_qubits=n_qubits,
            fuse_max_qubits=_adaptive_fuse_width(backend, n_qubits),
            forced=True)
    if clifford and (noise is None or noise.is_pauli_only):
        return RoutingDecision(
            backend="stabilizer",
            reason="Clifford-only program under Pauli-compatible "
                   "noise: polynomial tableau is exact",
            clifford_only=True, n_qubits=n_qubits)
    if clifford:
        reason = ("Clifford-only program, but the noise model needs "
                  "amplitudes: dense statevector")
    else:
        reason = "non-Clifford gates present: dense statevector"
    return RoutingDecision(
        backend="statevector", reason=reason,
        clifford_only=clifford, n_qubits=n_qubits,
        fuse_max_qubits=_adaptive_fuse_width("statevector", n_qubits))
