"""Command-line interface: ``python -m repro <command>``.

Commands
========

``run FILE``
    Execute a timed-QASM assembly file (``.qasm`` files are treated as
    OpenQASM 2.0 circuits and compiled first) on a QuAPE system and
    print the issue trace, the ASCII timeline and the TR metrics.
    ``--qpu`` selects the substrate (``prng`` readouts, or a functional
    simulation on the ``statevector``/``stabilizer`` backend);
    ``--shots N`` switches to compile-once shot execution and prints
    the outcome histogram instead of the single-run trace.

``asm FILE``
    Assemble a timed-QASM file and print the listing, the binary word
    count and the block information table.

``bench [NAME]``
    List the evaluation benchmarks, or compile one and report its
    schedule profile and scalar/superscalar TR.

``serve``
    Run the long-running shot-sweep job service
    (:mod:`repro.service`): an asyncio newline-JSON front-end sharding
    sweeps across a pool of worker processes with bit-identical
    merging, job dedup, streaming partial histograms, backpressure and
    crash retry.  See ``docs/service.md``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.analysis import (format_table, lateness_summary,
                            render_timeline)
from repro.circuit.openqasm import from_openqasm
from repro.compiler import compile_circuit
from repro.isa import (BlockInfoTable, DependencyMode, Program,
                       encode_program, parse_asm)
from repro.qcp import QuAPESystem, scalar_config, superscalar_config


def _load_program(path: pathlib.Path) -> Program:
    text = path.read_text()
    if path.suffix == ".qasm" or text.lstrip().upper().startswith(
            "OPENQASM"):
        circuit = from_openqasm(text, name=path.stem)
        return compile_circuit(circuit, name=path.stem).program
    return parse_asm(text, name=path.stem)


def _config_from_args(args: argparse.Namespace):
    if args.width > 1:
        config = superscalar_config(args.width)
    else:
        config = scalar_config(
            fast_context_switch=args.fast_context_switch)
    if getattr(args, "no_trace_cache", False):
        config = config.with_(trace_cache=False)
    max_nodes = getattr(args, "trace_cache_max_nodes", None)
    if max_nodes is not None:
        config = config.with_(trace_cache_max_nodes=max_nodes)
    if getattr(args, "no_dense_fusion", False):
        config = config.with_(trace_cache_dense_fusion=False)
    if getattr(args, "no_compiled_noise", False):
        config = config.with_(trace_cache_compiled_noise=False)
    if getattr(args, "no_batch_shots", False):
        config = config.with_(trace_cache_batch=False)
    batch_width = getattr(args, "batch_shots", None)
    if batch_width is not None:
        config = config.with_(trace_cache_batch_width=batch_width)
    artifact_dir = getattr(args, "artifact_cache", None)
    if artifact_dir is not None and \
            not getattr(args, "no_artifact_cache", False):
        config = config.with_(artifact_cache_dir=artifact_dir)
    artifact_max = getattr(args, "artifact_cache_max_bytes", None)
    if artifact_max is not None:
        config = config.with_(artifact_cache_max_bytes=artifact_max)
    profile_path = getattr(args, "device_profile", None)
    if profile_path is not None:
        config = config.with_(device_profile=profile_path)
    return config


def command_run(args: argparse.Namespace) -> int:
    program = _load_program(pathlib.Path(args.file))
    if args.shots:
        return _run_shots(program, args)
    config = _config_from_args(args)
    if args.qpu == "prng":
        _warn_prng_profile(args)
        config = config.with_(device_profile=None)
    system = QuAPESystem(program=program,
                         config=config,
                         n_processors=args.processors,
                         qpu_backend=None if args.qpu == "prng"
                         else args.qpu)
    result = system.run()
    system.kernel.run()
    print(f"program: {program.name} ({len(program)} instructions, "
          f"{len(program.blocks)} blocks)")
    print(f"executed in {result.total_ns} ns "
          f"({result.total_cycles} cycles at 100 MHz) on "
          f"{args.processors} processor(s), width {args.width}")
    print(f"timing: {lateness_summary(result.trace)}")
    report = result.tr_report()
    if report.per_step:
        print(f"TR: average {report.average:.2f}, maximum "
              f"{report.maximum:.2f}, deadline met: "
              f"{report.meets_deadline}")
    print("\ntimeline (10 ns per column):")
    print(render_timeline(result.trace))
    if system.results.history:
        print("\nmeasurement results:")
        for delivery in system.results.history:
            print(f"  t={delivery.time_ns:6d} ns  q{delivery.qubit} "
                  f"-> {delivery.value}")
    return 0


_CACHE_FLAGS = (
    ("no_trace_cache", "--no-trace-cache"),
    ("trace_cache_max_nodes", "--trace-cache-max-nodes"),
    ("no_dense_fusion", "--no-dense-fusion"),
    ("no_compiled_noise", "--no-compiled-noise"),
    ("batch_shots", "--batch-shots"),
    ("no_batch_shots", "--no-batch-shots"),
    ("artifact_cache", "--artifact-cache"),
    ("artifact_cache_max_bytes", "--artifact-cache-max-bytes"),
    ("no_artifact_cache", "--no-artifact-cache"),
)


def _warn_uncacheable_flags(args: argparse.Namespace) -> None:
    given = [flag for attr, flag in _CACHE_FLAGS
             if getattr(args, attr, None) not in (None, False)]
    if given:
        print(f"warning: {', '.join(given)} ignored: the prng substrate "
              f"is uncacheable (per-shot qpu_factory disables the trace "
              f"cache); use --qpu statevector or --qpu stabilizer",
              file=sys.stderr)


def _warn_prng_profile(args: argparse.Namespace) -> None:
    if getattr(args, "device_profile", None) is not None:
        print("warning: --device-profile ignored: the prng substrate "
              "samples readouts without a noise model; use --qpu "
              "statevector, stabilizer or auto", file=sys.stderr)


def _run_shots(program, args: argparse.Namespace) -> int:
    from repro.qcp.shots import ShotEngine

    qpu_factory = None
    config = _config_from_args(args)
    if args.qpu == "prng":
        from repro.qcp.system import infer_qubit_count
        from repro.qpu import PRNGQPU, PRNGReadout

        _warn_uncacheable_flags(args)
        _warn_prng_profile(args)
        config = config.with_(device_profile=None)
        qubits = infer_qubit_count(program)

        def qpu_factory(seed: int):
            return PRNGQPU(qubits, PRNGReadout(seed=seed))

    engine = ShotEngine(program, config=config,
                        n_processors=args.processors,
                        backend=None if args.qpu == "prng" else args.qpu,
                        qpu_factory=qpu_factory)
    result = engine.run(args.shots)
    print(f"program: {program.name} ({len(program)} instructions, "
          f"{len(program.blocks)} blocks)")
    substrate = (args.qpu if args.qpu != "auto"
                 else f"auto->{engine.backend}")
    print(f"{result.shots} shots on the {substrate} substrate, "
          f"{engine.qubit_count} qubits, {result.total_ns} ns total")
    if engine.routing is not None:
        line = f"routing: {engine.routing.reason}"
        if engine.routing.fuse_max_qubits is not None:
            line += (f"; fusion widened to "
                     f"{engine.routing.fuse_max_qubits} qubits")
        print(line)
    if engine.profile is not None:
        profile = engine.profile
        print(f"device profile: {profile.name or '<unnamed>'} "
              f"({len(profile.qubits)} calibrated qubit(s), "
              f"{len(profile.couplings)} coupling(s), "
              f"fingerprint {profile.fingerprint()[:12]})")
    cache = engine.trace_cache
    if cache is not None:
        line = (f"trace cache: {cache.hits} replayed, {cache.misses} "
                f"simulated ({cache.resumes} resumed at the divergence "
                f"frontier), {cache.nodes} trie nodes")
        if cache.evictions:
            line += f", {cache.evictions} evicted"
        print(line)
        if cache.batched_shots:
            line = (f"batched replay: {cache.batched_shots} shots in "
                    f"lockstep cohorts, {cache.wavefront_splits} "
                    f"wavefront splits")
            if cache.serial_fallbacks:
                line += (f", {cache.serial_fallbacks} serial "
                         f"fallbacks")
            print(line)
        artifacts = engine.artifacts
        if artifacts is not None:
            stats = artifacts.stats()
            line = (f"artifact cache: {stats['warm_loads']} warm "
                    f"load(s), {stats['cold_compiles']} cold, "
                    f"{stats['saves']} save(s), "
                    f"{stats['bytes_on_disk']} bytes on disk")
            if stats["invalidations"]:
                line += f", {stats['invalidations']} invalidated"
            if stats["evicted_files"]:
                line += f", {stats['evicted_files']} file(s) evicted"
            print(line)
    if result.measured_qubits:
        print(f"measured qubits: "
              f"{' '.join(f'q{q}' for q in result.measured_qubits)}")
    else:
        print("measured qubits: none (program never measured)")
    for bits, count in sorted(result.counts.items(),
                              key=lambda item: -item[1]):
        bar = "#" * round(40 * count / result.shots)
        label = bits if bits else "(empty outcome)"
        print(f"  {label}  {count:6d}  {bar}")
    return 0


def command_asm(args: argparse.Namespace) -> int:
    program = _load_program(pathlib.Path(args.file))
    print(program.listing())
    words = encode_program(program.instructions)
    print(f"\n{len(program)} instructions, {len(words)} words "
          f"({4 * len(words)} bytes)")
    table = BlockInfoTable(program, mode=DependencyMode.PRIORITY)
    rows = [[block.name, block.start, block.end - 1, block.priority,
             ",".join(block.deps) or "-"]
            for block in program.blocks]
    print("\n" + format_table(
        ["block", "pc start", "pc end", "priority", "deps"], rows,
        title=f"block information table ({len(table)} entries)"))
    return 0


def command_bench(args: argparse.Namespace) -> int:
    from repro.benchlib import SUITE, get_benchmark
    from repro.circuit import schedule_asap

    if not args.name:
        rows = []
        for spec in SUITE:
            circuit = spec.circuit()
            schedule = schedule_asap(circuit)
            rows.append([spec.name, spec.source, circuit.n_qubits,
                         circuit.gate_count,
                         round(schedule.mean_parallelism, 2)])
        print(format_table(
            ["benchmark", "source", "qubits", "gates",
             "mean QICES"], rows, title="evaluation suite"))
        return 0
    spec = get_benchmark(args.name)
    compiled = compile_circuit(spec.circuit())
    rows = []
    for label, config in (("scalar", scalar_config()),
                          ("8-way superscalar", superscalar_config(8))):
        system = QuAPESystem(program=compiled.program, config=config)
        report = system.run().tr_report()
        rows.append([label, round(report.average, 2),
                     round(report.maximum, 2),
                     "yes" if report.meets_deadline else "no"])
    print(format_table(
        ["design", "avg TR", "max TR", "TR <= 1"], rows,
        title=f"{spec.name} ({spec.source})"))
    return 0


def command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.server import serve

    print(f"shot-sweep service on {args.host}:{args.port} "
          f"({args.workers} worker(s), queue size {args.queue_size}, "
          f"max retries {args.max_retries})", file=sys.stderr)
    if args.artifact_cache is not None:
        print(f"artifact cache: {args.artifact_cache}", file=sys.stderr)
    try:
        asyncio.run(serve(host=args.host, port=args.port,
                          n_workers=args.workers,
                          queue_size=args.queue_size,
                          max_retries=args.max_retries,
                          engine_lru_capacity=args.engine_cache,
                          artifact_cache_dir=args.artifact_cache))
    except KeyboardInterrupt:
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="QuAPE quantum control microarchitecture tools")
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="execute a timed-QASM or OpenQASM file")
    run_parser.add_argument("file")
    run_parser.add_argument("--processors", type=int, default=1)
    run_parser.add_argument("--width", type=int, default=8,
                            help="superscalar width (1 = scalar)")
    run_parser.add_argument("--fast-context-switch", action="store_true")
    run_parser.add_argument(
        "--qpu", choices=("prng", "statevector", "stabilizer", "auto"),
        default="prng",
        help="quantum substrate: PRNG readouts (paper's FPGA "
             "methodology), dense statevector, Clifford stabilizer "
             "tableau, or auto (stabilizer for Clifford-only "
             "programs, statevector otherwise)")
    run_parser.add_argument(
        "--device-profile", metavar="JSON", default=None,
        help="calibrated device-profile JSON: per-qubit T1/T2 and "
             "readout fidelities, per-gate-per-qubit durations, "
             "coupling-pair ZZ strengths (see docs/device_profiles.md); "
             "composed over the substrate's noise model and folded "
             "into the engine/artifact identity")
    run_parser.add_argument(
        "--shots", type=int, default=0,
        help="run N compile-once shots and print the histogram "
             "(0 = single traced run)")
    run_parser.add_argument(
        "--no-trace-cache", action="store_true",
        help="force every shot through the cycle-accurate simulation "
             "instead of replaying cached traces (results are "
             "bit-identical either way)")
    run_parser.add_argument(
        "--trace-cache-max-nodes", type=int, default=None, metavar="N",
        help="LRU bound on trace-cache trie nodes: evict the least-"
             "recently-used decision paths once the trie exceeds N "
             "nodes (default: unbounded; useful for high-path-entropy "
             "workloads such as fair-coin RUS loops)")
    run_parser.add_argument(
        "--no-dense-fusion", action="store_true",
        help="replay dense (statevector) trace-cache segments gate by "
             "gate instead of through GEMM-fused block operators; "
             "fusion perturbs amplitudes in the last ulp, so outcome "
             "identity with the cycle-accurate path is almost-sure "
             "(~2^-50 per measurement) rather than exact — use this "
             "flag when exactness must be structural")
    run_parser.add_argument(
        "--no-compiled-noise", action="store_true",
        help="use the per-op timed device-level loop for noisy dense "
             "trace-cache replay instead of the compiled noise-site "
             "program (identical rng draw streams; amplitudes also "
             "bit-identical when --no-dense-fusion is given)")
    run_parser.add_argument(
        "--batch-shots", type=int, default=None, metavar="N",
        help="cohort width for shot-batched trace-cache replay: "
             "advance N shots in lockstep per cached pass (bit-plane "
             "sign columns on the stabilizer backend, batch GEMMs on "
             "the statevector backend; default: auto-sized from the "
             "qubit count)")
    run_parser.add_argument(
        "--no-batch-shots", action="store_true",
        help="replay cached shots one at a time instead of in "
             "lockstep cohorts (results are bit-identical either way)")
    run_parser.add_argument(
        "--artifact-cache", metavar="DIR", default=None,
        help="persistent compiled-trace artifact cache: load the "
             "compiled trie for this program/config/noise identity "
             "from DIR if present (warm start) and save it back after "
             "the run; safe to share between processes, results are "
             "bit-identical either way")
    run_parser.add_argument(
        "--no-artifact-cache", action="store_true",
        help="ignore --artifact-cache: always compile cold and never "
             "write artifacts")
    run_parser.add_argument(
        "--artifact-cache-max-bytes", type=int, default=None,
        metavar="BYTES",
        help="size bound on the artifact directory; after each save, "
             "oldest-stamped artifacts are evicted until the total "
             "fits (the newest artifact always survives)")
    run_parser.set_defaults(entry=command_run)

    asm_parser = commands.add_parser(
        "asm", help="assemble and inspect a program")
    asm_parser.add_argument("file")
    asm_parser.set_defaults(entry=command_asm)

    bench_parser = commands.add_parser(
        "bench", help="list or profile the evaluation benchmarks")
    bench_parser.add_argument("name", nargs="?")
    bench_parser.set_defaults(entry=command_bench)

    serve_parser = commands.add_parser(
        "serve", help="run the shot-sweep job service")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=7781)
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes, each owning compile-once shot engines")
    serve_parser.add_argument(
        "--queue-size", type=int, default=16,
        help="bounded backpressure: submits beyond this many active "
             "jobs are rejected")
    serve_parser.add_argument(
        "--max-retries", type=int, default=2,
        help="pool rebuilds tolerated per job after worker crashes")
    serve_parser.add_argument(
        "--engine-cache", type=int, default=None, metavar="N",
        help="per-worker engine LRU capacity: each worker process "
             "keeps up to N compiled shot engines alive (default 8)")
    serve_parser.add_argument(
        "--artifact-cache", metavar="DIR", default=None,
        help="shared compiled-trace artifact directory: workers load "
             "compiled tries from DIR before compiling and publish "
             "their own back, so restarted pools (and fresh workers "
             "after a crash rebuild) start warm")
    serve_parser.set_defaults(entry=command_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.entry(args)


if __name__ == "__main__":
    sys.exit(main())
