"""Dynamic-circuit builder: qubits, conditionals and loops over timed-QASM.

:class:`SdkBuilder` is the high-level authoring layer above
:class:`~repro.isa.builder.ProgramBuilder`.  Gates are methods on
:class:`Qubit` handles, ``q.measure()`` returns a
:class:`~repro.sdk.futures.Future`, and feed-forward control flow is
written as ``with`` blocks that compile down to the ISA's
branch/``fmr``/``mrce`` instructions::

    sdk = SdkBuilder("teleport")
    a, b, c = sdk.qubits(3)
    b.h(); b.cnot(c)
    a.cnot(b); a.h()
    m_b = b.measure()
    m_a = a.measure()
    with sdk.if_(m_b == 1):
        c.x()
    with sdk.if_(m_a == 1):
        c.z()
    program = sdk.build()

``build()`` returns an ordinary :class:`~repro.isa.program.Program` that
round-trips through :meth:`~repro.isa.program.Program.to_asm`, so SDK
programs can be submitted to the shot-sweep service as text.

A single-gate ``if_`` body (and a single-gate-per-arm ``if_else``) is
peephole-lowered to one ``mrce`` instruction when ``lower_mrce`` is on
(the default): the branch, the ``fmr`` and the gate collapse into the
ISA's measurement-result-conditional-execution form, which the fast
context switch of Section 5.4 executes without stalling the pipeline.
"""

from __future__ import annotations

import contextlib
from collections.abc import Iterator, Sequence

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import NUM_REGISTERS, Qop
from repro.isa.program import Program
from repro.sdk.futures import BitCondition, Condition, Future, SdkError

#: Default timing labels (clock cycles since the previous quantum op),
#: matching the benchlib convention: fast 1q gates, slower 2q gates, and
#: a long measurement window.
DEFAULT_T1 = 2
DEFAULT_T2 = 4
DEFAULT_TM = 30

_ONE_QUBIT_GATES = ("i", "x", "y", "z", "h", "s", "sdg",
                    "x90", "xm90", "y90", "ym90")
_TWO_QUBIT_GATES = ("cnot", "cz", "swap", "iswap")
_PARAMETRIC_GATES = ("rx", "ry", "rz")


class Qubit:
    """Handle to one qubit of an :class:`SdkBuilder` program.

    Clifford gates (``h``, ``s``, ``cnot``, ...) run on both the
    statevector and the stabilizer backend; the parametric rotations
    (``rx``/``ry``/``rz``) are statevector-only.
    """

    def __init__(self, sdk: "SdkBuilder", index: int) -> None:
        self._sdk = sdk
        self.index = index

    def __repr__(self) -> str:
        return f"Qubit({self.index})"

    def measure(self, timing: int | None = None) -> Future:
        """Measure this qubit; returns the outcome as a :class:`Future`."""
        return self._sdk.measure(self, timing=timing)

    def measure_and_reset(self, timing: int | None = None) -> Future:
        """Measure, then actively reset to |0> with an ``mrce`` flip.

        This is the syndrome-extraction idiom: the returned future is
        the syndrome bit, and the qubit is ready for the next round
        regardless of the outcome.
        """
        future = self.measure(timing=timing)
        self._sdk._b.mrce(self.index, self.index, "i", "x")
        return future

    def _two_qubit(self, gate: str, other: "Qubit",
                   timing: int | None) -> None:
        if not isinstance(other, Qubit) or other._sdk is not self._sdk:
            raise SdkError(f"{gate} partner must be a qubit of the same "
                           f"builder")
        self._sdk.gate(gate, self, other, timing=timing)


def _make_one_qubit_method(gate: str):
    def method(self: Qubit, timing: int | None = None) -> None:
        self._sdk.gate(gate, self, timing=timing)
    method.__name__ = gate
    method.__doc__ = f"Apply the ``{gate}`` gate to this qubit."
    return method


def _make_two_qubit_method(gate: str):
    def method(self: Qubit, other: Qubit,
               timing: int | None = None) -> None:
        self._two_qubit(gate, other, timing)
    method.__name__ = gate
    method.__doc__ = (f"Apply ``{gate}`` with this qubit as the first "
                      f"operand.")
    return method


def _make_parametric_method(gate: str):
    def method(self: Qubit, theta: float,
               timing: int | None = None) -> None:
        self._sdk.gate(gate, self, timing=timing, params=(theta,))
    method.__name__ = gate
    method.__doc__ = (f"Apply ``{gate}(theta)`` (statevector backend "
                      f"only).")
    return method


for _gate in _ONE_QUBIT_GATES:
    setattr(Qubit, _gate if _gate != "i" else "identity",
            _make_one_qubit_method(_gate))
for _gate in _TWO_QUBIT_GATES:
    setattr(Qubit, _gate, _make_two_qubit_method(_gate))
for _gate in _PARAMETRIC_GATES:
    setattr(Qubit, _gate, _make_parametric_method(_gate))
del _gate


class _IfElseBlock:
    """Yielded by :meth:`SdkBuilder.if_else`; holds the two arms."""

    def __init__(self, sdk: "SdkBuilder", cond: Condition,
                 else_label: str, end_label: str,
                 pc_enter: int, pc_body: int) -> None:
        self._sdk = sdk
        self._cond = cond
        self._else_label = else_label
        self._end_label = end_label
        self._pc_enter = pc_enter
        self._pc_body = pc_body
        self._state = "start"
        self._then_range: tuple[int, int] | None = None
        self._else_range: tuple[int, int] | None = None

    @contextlib.contextmanager
    def then(self) -> Iterator[None]:
        if self._state != "start":
            raise SdkError("then() must come first and only once in an "
                           "if_else block")
        self._state = "in_then"
        scope = self._sdk._push_scope("then")
        try:
            yield
        finally:
            self._sdk._pop_scope(scope)
        then_end = self._sdk._b.pc
        self._then_range = (self._pc_body, then_end)
        self._sdk._b.jmp(self._end_label)
        self._sdk._b.label(self._else_label)
        self._state = "then_done"

    @contextlib.contextmanager
    def otherwise(self) -> Iterator[None]:
        if self._state != "then_done":
            raise SdkError("otherwise() must follow then() exactly once")
        self._state = "in_else"
        else_start = self._sdk._b.pc
        scope = self._sdk._push_scope("else")
        try:
            yield
        finally:
            self._sdk._pop_scope(scope)
        self._else_range = (else_start, self._sdk._b.pc)
        self._sdk._b.label(self._end_label)
        self._state = "done"


class _LoopBlock:
    """Yielded by :meth:`SdkBuilder.loop_until`."""

    def __init__(self, sdk: "SdkBuilder", start_label: str,
                 done_label: str, counter: int | None,
                 bound: int | None) -> None:
        self._sdk = sdk
        self._start_label = start_label
        self._done_label = done_label
        self._counter = counter
        self._bound = bound
        self._closed = False
        self._pc_after: int | None = None

    def until(self, cond: Condition) -> None:
        """Close the loop: repeat the body until ``cond`` holds.

        Must be the last statement of the loop body.  With
        ``max_attempts`` the loop also exits (without the condition
        holding) after that many iterations.
        """
        if self._closed:
            raise SdkError("until() called twice in one loop_until block")
        self._sdk._check_condition(cond)
        self._closed = True
        builder = self._sdk._b
        if self._counter is not None:
            cond.branch_if_true(self._done_label)
            builder.addi(self._counter, self._counter, 1)
            builder.blt(self._counter, self._bound, self._start_label)
            builder.label(self._done_label)
        else:
            cond.branch_if_false(self._start_label)
        self._pc_after = builder.pc


class SdkBuilder:
    """Author dynamic circuits; compile them with :meth:`build`."""

    def __init__(self, name: str = "sdk_program", *,
                 t1: int = DEFAULT_T1, t2: int = DEFAULT_T2,
                 tm: int = DEFAULT_TM, lower_mrce: bool = True) -> None:
        self._b = ProgramBuilder(name)
        self._t1 = t1
        self._t2 = t2
        self._tm = tm
        self._lower_mrce = lower_mrce
        self._n_qubits = 0
        self._free_regs = list(range(NUM_REGISTERS - 1, 0, -1))
        self._measure_generation: dict[int, int] = {}
        self._latest_future: dict[int, Future] = {}
        self._scope_stack: list[tuple[int, str]] = []
        self._scope_counter = 0
        self._label_counter = 0

    # -- resources ----------------------------------------------------------

    @property
    def n_qubits(self) -> int:
        """Number of qubits allocated so far."""
        return self._n_qubits

    def qubit(self) -> Qubit:
        """Allocate one fresh qubit."""
        handle = Qubit(self, self._n_qubits)
        self._n_qubits += 1
        return handle

    def qubits(self, count: int) -> list[Qubit]:
        """Allocate ``count`` fresh qubits."""
        return [self.qubit() for _ in range(count)]

    def _alloc_register(self) -> int:
        if not self._free_regs:
            raise SdkError(
                f"out of classical registers ({NUM_REGISTERS - 1} "
                f"available); fewer live futures/loops needed")
        return self._free_regs.pop()

    def _free_register(self, reg: int) -> None:
        self._free_regs.append(reg)

    def _fresh_label(self, stem: str) -> str:
        label = f"__{stem}_{self._label_counter}"
        self._label_counter += 1
        return label

    # -- scopes -------------------------------------------------------------

    def _push_scope(self, kind: str) -> tuple[int, str]:
        scope = (self._scope_counter, kind)
        self._scope_counter += 1
        self._scope_stack.append(scope)
        return scope

    def _pop_scope(self, scope: tuple[int, str]) -> None:
        if not self._scope_stack or self._scope_stack[-1] != scope:
            raise SdkError("conditional blocks closed out of order")
        self._scope_stack.pop()

    def _open_conditional_scope_ids(self) -> set[int]:
        return {sid for sid, kind in self._scope_stack
                if kind in ("if", "then", "else")}

    def _conditional_scopes(self) -> tuple[int, ...]:
        return tuple(sid for sid, kind in self._scope_stack
                     if kind in ("if", "then", "else"))

    # -- gates and measurement ---------------------------------------------

    def gate(self, name: str, *qubits: Qubit, timing: int | None = None,
             params: Sequence[float] = ()) -> None:
        """Issue ``name`` on ``qubits`` (handles from this builder)."""
        indices = []
        for q in qubits:
            if not isinstance(q, Qubit) or q._sdk is not self:
                raise SdkError("gates take qubit handles from this builder")
            indices.append(q.index)
        if timing is None:
            timing = self._t1 if len(indices) == 1 else self._t2
        self._b.qop(name.lower(), indices, timing=timing,
                    params=tuple(params))

    def measure(self, qubit: Qubit, timing: int | None = None) -> Future:
        """Measure ``qubit``; the outcome is returned as a future."""
        if not isinstance(qubit, Qubit) or qubit._sdk is not self:
            raise SdkError("measure takes a qubit handle from this builder")
        index = qubit.index
        self._b.qmeas(index, timing=self._tm if timing is None else timing)
        generation = self._measure_generation.get(index, 0) + 1
        self._measure_generation[index] = generation
        stale = self._latest_future.get(index)
        if stale is not None and stale._register is not None:
            # The superseded future can never be read again; recycle
            # its result register.
            self._free_register(stale._register)
            stale._register = None
        future = Future(self, index, generation,
                        self._conditional_scopes())
        self._latest_future[index] = future
        return future

    # -- control flow -------------------------------------------------------

    @contextlib.contextmanager
    def if_(self, cond: Condition) -> Iterator[None]:
        """Run the body only when ``cond`` holds.

        A body consisting of exactly one parameterless single-qubit gate
        is lowered to a single ``mrce`` instruction instead of an
        ``fmr``/branch pair (when the builder's ``lower_mrce`` is on and
        the condition is a plain ``future == 0/1`` test).
        """
        self._check_condition(cond)
        end_label = self._fresh_label("if_end")
        pc_enter = self._b.pc
        cond.branch_if_false(end_label)
        pc_body = self._b.pc
        scope = self._push_scope("if")
        try:
            yield
        finally:
            self._pop_scope(scope)
        if not self._lower_if(cond, pc_enter, pc_body):
            self._b.label(end_label)

    @contextlib.contextmanager
    def if_else(self, cond: Condition) -> Iterator[_IfElseBlock]:
        """Two-armed conditional.

        Usage::

            with sdk.if_else(m == 1) as branch:
                with branch.then():
                    q.x()
                with branch.otherwise():
                    q.z()

        Arms are mandatory and ordered (``then`` before ``otherwise``).
        When both arms are a single parameterless gate on the same
        qubit with the same timing label, the whole construct lowers to
        one ``mrce``.
        """
        self._check_condition(cond)
        else_label = self._fresh_label("if_else")
        end_label = self._fresh_label("if_end")
        pc_enter = self._b.pc
        cond.branch_if_false(else_label)
        pc_body = self._b.pc
        block = _IfElseBlock(self, cond, else_label, end_label,
                             pc_enter, pc_body)
        yield block
        if block._state != "done":
            raise SdkError("if_else needs exactly one then() and one "
                           "otherwise(), in that order")
        self._lower_if_else(cond, block)

    @contextlib.contextmanager
    def loop_until(self, max_attempts: int | None = None
                   ) -> Iterator[_LoopBlock]:
        """Repeat-until-success loop with do-while semantics.

        The body always executes at least once; ``loop.until(cond)``
        closes it.  With ``max_attempts`` the loop gives up after that
        many iterations (the RUS-with-cutoff idiom); without it the
        loop retries until the condition holds.
        """
        counter = bound = None
        start_label = self._fresh_label("loop")
        done_label = self._fresh_label("loop_done")
        if max_attempts is not None:
            if max_attempts < 1:
                raise SdkError("loop_until needs max_attempts >= 1")
            counter = self._alloc_register()
            bound = self._alloc_register()
            self._b.ldi(counter, 0)
            self._b.ldi(bound, max_attempts)
        self._b.label(start_label)
        block = _LoopBlock(self, start_label, done_label, counter, bound)
        scope = self._push_scope("loop")
        try:
            yield block
        finally:
            self._pop_scope(scope)
        if not block._closed:
            raise SdkError("loop_until body must end with "
                           "loop.until(cond)")
        if self._b.pc != block._pc_after:
            raise SdkError("until() must be the last statement of the "
                           "loop body")
        if counter is not None:
            self._free_register(counter)
            self._free_register(bound)

    def _check_condition(self, cond: object) -> None:
        if not isinstance(cond, Condition):
            raise SdkError(
                f"expected a condition (e.g. 'future == 1'), got "
                f"{cond!r}")
        if cond._sdk is not self:
            raise SdkError("condition belongs to a different builder")

    # -- mrce peephole lowering --------------------------------------------

    @staticmethod
    def _single_plain_gate(body: list) -> Qop | None:
        if len(body) == 1 and isinstance(body[0], Qop) \
                and len(body[0].qubits) == 1 and not body[0].params:
            return body[0]
        return None

    def _pop_condition_eval(self, cond: BitCondition, pc_enter: int,
                            pc_body: int) -> None:
        """Drop the emitted fmr/branch pair and un-materialise the future."""
        instrs = self._b._instructions
        if pc_body - pc_enter == 2:
            # The fmr at pc_enter was this condition's materialisation;
            # give the register back so the future stays lazy.
            future = cond.future
            self._free_register(future._register)
            future._register = None
        del instrs[pc_enter:]

    def _lower_if(self, cond: Condition, pc_enter: int,
                  pc_body: int) -> bool:
        if not (self._lower_mrce and isinstance(cond, BitCondition)):
            return False
        instrs = self._b._instructions
        qop = self._single_plain_gate(instrs[pc_body:])
        if qop is None:
            return False
        self._pop_condition_eval(cond, pc_enter, pc_body)
        if cond.want:
            op_if_zero, op_if_one = "i", qop.gate
        else:
            op_if_zero, op_if_one = qop.gate, "i"
        self._b.mrce(cond.future.qubit, qop.qubits[0],
                     op_if_zero, op_if_one, timing=qop.timing)
        return True

    def _lower_if_else(self, cond: Condition,
                       block: _IfElseBlock) -> bool:
        if not (self._lower_mrce and isinstance(cond, BitCondition)):
            return False
        instrs = self._b._instructions
        if self._b.pc != block._else_range[1]:
            return False
        then_qop = self._single_plain_gate(
            instrs[block._then_range[0]:block._then_range[1]])
        else_qop = self._single_plain_gate(
            instrs[block._else_range[0]:block._else_range[1]])
        if then_qop is None or else_qop is None:
            return False
        if then_qop.qubits != else_qop.qubits \
                or then_qop.timing != else_qop.timing:
            return False
        # Undo the labels the arms defined; the mrce replaces the whole
        # branch diamond.
        del self._b._labels[block._else_label]
        del self._b._labels[block._end_label]
        self._pop_condition_eval(cond, block._pc_enter, block._pc_body)
        if cond.want:
            op_if_zero, op_if_one = else_qop.gate, then_qop.gate
        else:
            op_if_zero, op_if_one = then_qop.gate, else_qop.gate
        self._b.mrce(cond.future.qubit, then_qop.qubits[0],
                     op_if_zero, op_if_one, timing=then_qop.timing)
        return True

    # -- blocks and finalisation -------------------------------------------

    @contextlib.contextmanager
    def block(self, name: str, priority: int = 0,
              deps: Sequence[str] = ()) -> Iterator[None]:
        """Open a program block (for the superscalar block scheduler).

        A ``halt`` terminator is appended automatically so the block
        satisfies :meth:`Program.ensure_block_terminators`.
        """
        with self._b.block(name, priority=priority, deps=deps):
            yield
            self._ensure_halt()

    def _ensure_halt(self) -> None:
        from repro.isa.instructions import Halt, Jmp
        instrs = self._b._instructions
        if not instrs or not isinstance(instrs[-1], (Halt, Jmp)):
            self._b.halt()

    def build(self, validate: bool = True) -> Program:
        """Compile to a :class:`Program` (labels resolved, validated)."""
        if self._scope_stack:
            raise SdkError("cannot build inside an open conditional/loop")
        if not self._b._blocks:
            self._ensure_halt()
        return self._b.build(validate=validate)
