"""Dynamic-circuit builder SDK (NetQASM-style futures + conditionals).

High-level authoring layer for feed-forward programs: measurement
outcomes are :class:`~repro.sdk.futures.Future` objects, conditionals
are ``with`` blocks, and :meth:`~repro.sdk.builder.SdkBuilder.build`
emits an ordinary :class:`~repro.isa.program.Program` that round-trips
through ``to_asm()`` — service-submittable as-is.  See ``docs/sdk.md``.
"""

from repro.sdk.builder import (
    DEFAULT_T1, DEFAULT_T2, DEFAULT_TM, Qubit, SdkBuilder,
)
from repro.sdk.futures import (
    BitCondition, CompoundCondition, Condition, Future, SdkError,
)

__all__ = [
    "SdkBuilder",
    "Qubit",
    "Future",
    "Condition",
    "BitCondition",
    "CompoundCondition",
    "SdkError",
    "DEFAULT_T1",
    "DEFAULT_T2",
    "DEFAULT_TM",
]
