"""Measurement futures and branch conditions for the dynamic-circuit SDK.

A :class:`Future` is the value a measurement *will* produce: calling
``q.measure()`` emits the ``qmeas`` immediately but defers the ``fmr``
that retrieves the result until the future is first *used* — comparing it
(``f == 1``) or reading it into a register.  This mirrors the NetQASM
programming model (Dahlberg et al., 2022) where measurement outcomes are
futures and conditionals are ``with`` blocks, lowered here onto the
timed-QASM ``fmr``/branch/``mrce`` instructions.

Comparisons produce :class:`Condition` objects that know how to emit the
branch (or evaluate themselves into a register, for ``&``/``|``
combinations) when a ``with sdk.if_(...)`` block compiles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.isa.instructions import ZERO_REG
from repro.isa.program import ProgramError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sdk.builder import SdkBuilder


class SdkError(ProgramError):
    """Raised for invalid SDK programs (stale futures, malformed blocks)."""


class Future:
    """The eventual result (0 or 1) of one ``qmeas`` on one qubit.

    The future is *lazy*: no ``fmr`` exists until the first use, so a
    measurement whose outcome never feeds back costs no classical
    instructions.  Two safety rules are enforced at build time:

    * **staleness** — once the qubit is measured again, this future can
      no longer be used (its result register would be overwritten);
    * **scope** — a future created inside a conditional arm may only be
      used while that arm is still open (otherwise the ``fmr`` could
      execute on a path where the ``qmeas`` never ran and stall forever).
      Loop bodies are exempt: ``loop_until`` has do-while semantics, so
      the body — and any ``qmeas`` in it — executes at least once.
    """

    def __init__(self, sdk: "SdkBuilder", qubit: int,
                 generation: int, scopes: tuple[int, ...]) -> None:
        self._sdk = sdk
        self.qubit = qubit
        self._generation = generation
        self._scopes = scopes
        self._register: int | None = None

    def _check_usable(self) -> None:
        sdk = self._sdk
        if sdk._measure_generation.get(self.qubit) != self._generation:
            raise SdkError(
                f"future of q{self.qubit} is stale: the qubit was "
                f"measured again after this future was created")
        open_ids = sdk._open_conditional_scope_ids()
        for scope in self._scopes:
            if scope not in open_ids:
                raise SdkError(
                    f"future of q{self.qubit} escaped the conditional "
                    f"block it was created in; its measurement may never "
                    f"execute on the path that reads it")

    def read(self) -> int:
        """Materialise the result into a register and return its index.

        Emits the ``fmr`` at the current program position on first call;
        later calls reuse the same register.
        """
        self._check_usable()
        if self._register is None:
            self._register = self._sdk._alloc_register()
            self._sdk._b.fmr(self._register, self.qubit)
        return self._register

    # -- comparisons --------------------------------------------------------

    def __eq__(self, other: object) -> "BitCondition":  # type: ignore[override]
        return self._compare(other, invert=False)

    def __ne__(self, other: object) -> "BitCondition":  # type: ignore[override]
        return self._compare(other, invert=True)

    __hash__ = object.__hash__

    def _compare(self, other: object, invert: bool) -> "BitCondition":
        if isinstance(other, bool):
            other = int(other)
        if not isinstance(other, int) or other not in (0, 1):
            raise SdkError(
                f"futures hold measurement bits; compare against 0 or 1, "
                f"not {other!r}")
        want = other if not invert else 1 - other
        return BitCondition(self, want)


class Condition:
    """Something a conditional block can branch on."""

    _sdk: "SdkBuilder"

    def branch_if_false(self, target: str) -> None:
        raise NotImplementedError

    def branch_if_true(self, target: str) -> None:
        raise NotImplementedError

    def value_into(self, rd: int) -> None:
        """Emit code leaving 1 in ``rd`` when true, 0 when false."""
        raise NotImplementedError

    def __and__(self, other: "Condition") -> "CompoundCondition":
        return CompoundCondition("and", self, other)

    def __or__(self, other: "Condition") -> "CompoundCondition":
        return CompoundCondition("or", self, other)

    def __bool__(self) -> bool:
        raise SdkError(
            "conditions compile to branch instructions; use "
            "'with sdk.if_(cond):', not Python 'if cond:'")


class BitCondition(Condition):
    """``future == want`` for a single measurement bit."""

    def __init__(self, future: Future, want: int) -> None:
        self.future = future
        self.want = want
        self._sdk = future._sdk

    def __invert__(self) -> "BitCondition":
        return BitCondition(self.future, 1 - self.want)

    def branch_if_false(self, target: str) -> None:
        reg = self.future.read()
        if self.want:
            # want result == 1; false when the bit is zero.
            self._sdk._b.beq(reg, ZERO_REG, target)
        else:
            self._sdk._b.bne(reg, ZERO_REG, target)

    def branch_if_true(self, target: str) -> None:
        reg = self.future.read()
        if self.want:
            self._sdk._b.bne(reg, ZERO_REG, target)
        else:
            self._sdk._b.beq(reg, ZERO_REG, target)

    def value_into(self, rd: int) -> None:
        reg = self.future.read()
        if self.want:
            self._sdk._b.mov(rd, reg)
        else:
            self._sdk._b.not_(rd, reg)


class CompoundCondition(Condition):
    """``left & right`` / ``left | right`` over bit-valued conditions."""

    def __init__(self, op: str, left: Condition, right: Condition) -> None:
        if left._sdk is not right._sdk:
            raise SdkError("cannot combine conditions from different "
                           "builders")
        self.op = op
        self.left = left
        self.right = right
        self._sdk = left._sdk

    def __invert__(self) -> "CompoundCondition":
        flipped = "or" if self.op == "and" else "and"
        return CompoundCondition(flipped, ~self.left, ~self.right)

    def value_into(self, rd: int) -> None:
        sdk = self._sdk
        scratch = sdk._alloc_register()
        try:
            self.left.value_into(rd)
            self.right.value_into(scratch)
            if self.op == "and":
                sdk._b.and_(rd, rd, scratch)
            else:
                sdk._b.or_(rd, rd, scratch)
        finally:
            sdk._free_register(scratch)

    def branch_if_false(self, target: str) -> None:
        sdk = self._sdk
        scratch = sdk._alloc_register()
        try:
            self.value_into(scratch)
            sdk._b.beq(scratch, ZERO_REG, target)
        finally:
            sdk._free_register(scratch)

    def branch_if_true(self, target: str) -> None:
        sdk = self._sdk
        scratch = sdk._alloc_register()
        try:
            self.value_into(scratch)
            sdk._b.bne(scratch, ZERO_REG, target)
        finally:
            sdk._free_register(scratch)
