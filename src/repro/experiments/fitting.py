"""Exponential-decay fitting for randomized benchmarking.

The standard RB model: the survival probability after ``m`` random
Cliffords follows ``f(m) = A * p**m + B``.  The average Clifford
fidelity is ``F = 1 - (1 - p)/2`` (single qubit, d=2), and the per-gate
fidelity rescales the error by the average number of native pulses per
Clifford.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize


@dataclass(frozen=True)
class DecayFit:
    """Fitted RB decay parameters and derived fidelities."""

    amplitude: float       # A
    decay: float           # p
    offset: float          # B
    gates_per_clifford: float

    @property
    def clifford_fidelity(self) -> float:
        """Average fidelity per Clifford: 1 - (1 - p)/2."""
        return 1.0 - (1.0 - self.decay) / 2.0

    @property
    def gate_fidelity(self) -> float:
        """Average fidelity per native gate (error split per pulse)."""
        error = (1.0 - self.decay) / 2.0
        if self.gates_per_clifford <= 0:
            return self.clifford_fidelity
        return 1.0 - error / self.gates_per_clifford

    def survival(self, m: np.ndarray | float) -> np.ndarray | float:
        """Model prediction f(m) = A p^m + B."""
        return self.amplitude * self.decay ** m + self.offset


def fit_rb_decay(lengths: list[int], survival: list[float],
                 gates_per_clifford: float = 1.875) -> DecayFit:
    """Least-squares fit of the RB decay model."""
    if len(lengths) != len(survival):
        raise ValueError("lengths and survival must have equal size")
    if len(lengths) < 3:
        raise ValueError("need at least three sequence lengths to fit")
    x = np.asarray(lengths, dtype=float)
    y = np.asarray(survival, dtype=float)

    def model(m, amplitude, decay, offset):
        return amplitude * decay ** m + offset

    # Sensible starting point: half-amplitude decay toward 0.5.
    p0 = (max(y[0] - 0.5, 0.1), 0.99, 0.5)
    bounds = ([0.0, 0.0, 0.0], [1.0, 1.0, 1.0])
    import warnings
    with warnings.catch_warnings():
        # Perfectly clean synthetic data makes the covariance singular;
        # only the parameter estimates matter here.
        warnings.simplefilter("ignore", optimize.OptimizeWarning)
        params, _cov = optimize.curve_fit(model, x, y, p0=p0,
                                          bounds=bounds, maxfev=20_000)
    amplitude, decay, offset = params
    return DecayFit(amplitude=float(amplitude), decay=float(decay),
                    offset=float(offset),
                    gates_per_clifford=gates_per_clifford)
