"""Randomized benchmarking executed through the full control stack.

Reproduces the Figure 14 methodology: RB sequences are generated as
circuits, compiled by the preliminary compiler, executed by a QuAPE
system (8-way superscalar by default — simultaneous RB *requires* the
parallel-issue capability the paper validates), and applied to a noisy
state-vector QPU.  Survival probabilities are the pre-collapse ground
state populations recorded at measurement time, averaged over
randomisations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.compiler.compiler import compile_circuit
from repro.experiments.clifford import (average_gates_per_clifford,
                                        clifford_table,
                                        inverse_of_sequence)
from repro.experiments.fitting import DecayFit, fit_rb_decay
from repro.qcp.config import QCPConfig, superscalar_config
from repro.qcp.system import QuAPESystem
from repro.qpu.device import SimulatedQPU
from repro.qpu.noise import NoiseModel
from repro.qpu.topology import linear_topology


def rb_circuit(n_qubits: int, driven: tuple[int, ...], length: int,
               rng: random.Random) -> QuantumCircuit:
    """One RB sequence: ``length`` random Cliffords plus recovery.

    Each driven qubit gets an *independent* Clifford sequence; Clifford
    boundaries are aligned with barriers so simultaneous RB drives the
    qubits concurrently (the regime where ZZ crosstalk acts).
    """
    table = clifford_table()
    circuit = QuantumCircuit(n_qubits, f"rb_m{length}")
    sequences = {q: [rng.randrange(len(table)) for _ in range(length)]
                 for q in driven}
    for position in range(length):
        for qubit in driven:
            for gate in table[sequences[qubit][position]].gates:
                circuit.append(gate, qubit)
        circuit.barrier(*driven)
    for qubit in driven:
        recovery = inverse_of_sequence(sequences[qubit])
        for gate in table[recovery].gates:
            circuit.append(gate, qubit)
    circuit.barrier(*driven)
    for qubit in driven:
        circuit.measure(qubit)
    return circuit


@dataclass
class RBResult:
    """Survival curves and fits of one RB experiment."""

    lengths: list[int]
    driven: tuple[int, ...]
    simultaneous: bool
    survival: dict[int, list[float]] = field(default_factory=dict)
    fits: dict[int, DecayFit] = field(default_factory=dict)

    def fit(self) -> None:
        """Fit the decay model for every driven qubit."""
        gpc = average_gates_per_clifford()
        for qubit in self.driven:
            self.fits[qubit] = fit_rb_decay(self.lengths,
                                            self.survival[qubit],
                                            gates_per_clifford=gpc)

    def gate_fidelity(self, qubit: int) -> float:
        return self.fits[qubit].gate_fidelity


def _run_circuit_on_stack(circuit: QuantumCircuit, noise: NoiseModel,
                          config: QCPConfig, seed: int,
                          qpu_backend: str = "statevector"
                          ) -> dict[int, float]:
    """Execute one sequence; returns ground-state probability per qubit."""
    compiled = compile_circuit(circuit)
    qpu = SimulatedQPU(linear_topology(circuit.n_qubits), noise=noise,
                       seed=seed, backend=qpu_backend)
    system = QuAPESystem(program=compiled.program, config=config,
                         qpu=qpu, n_qubits=circuit.n_qubits)
    system.run()
    return dict(qpu.measure_ground_probabilities)


def _run_circuit_direct(circuit: QuantumCircuit, noise: NoiseModel,
                        seed: int, qpu_backend: str = "statevector"
                        ) -> dict[int, float]:
    """Fast path: apply the circuit to the QPU without the control stack.

    Used by unit tests and calibration sweeps; gate timing follows the
    ASAP schedule so the ZZ-overlap windows match the full-stack path.
    """
    from repro.circuit.steps import schedule_asap

    qpu = SimulatedQPU(linear_topology(circuit.n_qubits), noise=noise,
                       seed=seed, backend=qpu_backend)
    schedule = schedule_asap(circuit)
    probabilities: dict[int, float] = {}
    for step in schedule.steps:
        for operation in step.operations:
            if operation.is_measurement:
                qubit = operation.qubits[0]
                probabilities[qubit] = 1.0 - qpu.state.probability_of_one(
                    qubit)
                qpu.measure(step.start_ns, qubit)
            else:
                qpu.apply_gate(step.start_ns, operation.gate,
                               operation.qubits, operation.params)
    return probabilities


def _run_circuit_exact(circuit: QuantumCircuit,
                       noise: NoiseModel) -> dict[int, float]:
    """Infinite-shot limit: exact density-matrix channel evolution.

    Applies the same channels as the Monte-Carlo paths (depolarizing
    after each gate, ZZ conditional phase for simultaneous-drive steps)
    as exact CPTP maps, eliminating trajectory sampling noise.
    """
    from repro.circuit.steps import schedule_asap
    from repro.qpu.density import DensityMatrix

    state = DensityMatrix(circuit.n_qubits)
    schedule = schedule_asap(circuit)
    probabilities: dict[int, float] = {}
    for step in schedule.steps:
        driven: set[int] = set()
        for operation in step.operations:
            if operation.is_measurement:
                qubit = operation.qubits[0]
                probabilities[qubit] = state.ground_probability(qubit)
                continue
            state.apply_gate(operation.gate, operation.qubits,
                             operation.params)
            channel = noise.depolarizing
            if (len(operation.qubits) == 2
                    and noise.two_qubit_depolarizing is not None):
                channel = noise.two_qubit_depolarizing
            if channel is not None:
                for qubit in operation.qubits:
                    state.depolarize(qubit, channel.p)
            driven.update(operation.qubits)
        if noise.zz is not None and len(driven) >= 2:
            phi = noise.zz.conditional_phase(step.duration_ns)
            if phi:
                import numpy as np
                matrix = np.diag([1.0, 1.0, 1.0,
                                  np.exp(1j * phi)]).astype(complex)
                for left, right in noise.zz.pairs:
                    if left in driven and right in driven:
                        state.apply_unitary(matrix, (left, right))
    return probabilities


def run_rb(noise_factory, driven: tuple[int, ...],
           lengths: list[int] | None = None, samples: int = 12,
           n_qubits: int = 2, seed: int = 0,
           config: QCPConfig | None = None,
           backend: str = "quape",
           qpu_backend: str = "statevector") -> RBResult:
    """Run an RB experiment.

    ``noise_factory`` is a zero-argument callable returning a fresh
    :class:`NoiseModel` (each randomisation needs independent noise
    draws).  ``driven`` selects the qubits being benchmarked: one qubit
    = individual RB, several = simultaneous RB.  ``backend`` is
    ``"quape"`` (full control stack, Monte-Carlo noise), ``"direct"``
    (no control stack, Monte-Carlo noise) or ``"exact"`` (no control
    stack, exact channel evolution — the infinite-shot limit).
    ``qpu_backend`` selects the quantum-state representation for the
    Monte-Carlo paths ("statevector" or "stabilizer"; RB sequences are
    pure Clifford, so the tableau backend works whenever the noise
    model is Clifford too — i.e. without ZZ crosstalk/decoherence).
    """
    if backend not in ("quape", "direct", "exact"):
        raise ValueError(f"unknown backend {backend!r}")
    lengths = lengths or [1, 3, 6, 10, 15, 21, 28, 36, 45, 55]
    config = config or superscalar_config()
    rng = random.Random(seed)
    result = RBResult(lengths=list(lengths), driven=tuple(driven),
                      simultaneous=len(driven) > 1)
    for qubit in driven:
        result.survival[qubit] = []
    for length in lengths:
        sums = {qubit: 0.0 for qubit in driven}
        for sample in range(samples):
            circuit = rb_circuit(n_qubits, tuple(driven), length, rng)
            noise = noise_factory()
            run_seed = rng.randrange(1 << 30)
            if backend == "quape":
                probabilities = _run_circuit_on_stack(
                    circuit, noise, config, run_seed,
                    qpu_backend=qpu_backend)
            elif backend == "exact":
                probabilities = _run_circuit_exact(circuit, noise)
            else:
                probabilities = _run_circuit_direct(
                    circuit, noise, run_seed, qpu_backend=qpu_backend)
            for qubit in driven:
                sums[qubit] += probabilities[qubit]
        for qubit in driven:
            result.survival[qubit].append(sums[qubit] / samples)
    result.fit()
    return result
