"""The single-qubit Clifford group as native pulse sequences.

Randomized benchmarking composes uniformly random Clifford group
elements.  On superconducting hardware each Clifford is realised as a
short sequence of calibrated pulses; we use the generator set
{X90, Y90, -X90, -Y90, X, Y} and find, by breadth-first search, the
shortest pulse sequence for each of the 24 group elements (at most three
pulses).  The average decomposition length over the group is the usual
~1.875 primitive gates per Clifford.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.circuit.gates import lookup_gate

#: Native pulse set used to synthesise Clifford elements.
GENERATORS: tuple[str, ...] = ("x90", "y90", "xm90", "ym90", "x", "y")

CLIFFORD_GROUP_ORDER = 24


@dataclass(frozen=True)
class Clifford:
    """One group element: its unitary and a native pulse realisation."""

    index: int
    gates: tuple[str, ...]
    matrix: np.ndarray

    def __len__(self) -> int:
        return len(self.gates)


def _canonical(matrix: np.ndarray) -> bytes:
    """Phase-invariant fingerprint of a single-qubit unitary."""
    # Fix global phase: rotate so the first nonzero element is real
    # positive, then round to kill float noise.
    flat = matrix.reshape(-1)
    pivot = next(x for x in flat if abs(x) > 1e-6)
    normalised = matrix * (abs(pivot) / pivot)
    # Clifford entries are separated by >= 1/2 - 1/sqrt(2) ~ 0.2 in any
    # coordinate, so rounding to 6 decimals merges float noise from
    # different pulse paths without colliding distinct elements.  The
    # "+ 0" turns IEEE negative zeros into positive zeros so they hash
    # identically.
    return (np.round(normalised, 6) + (0.0 + 0.0j)).tobytes()


@lru_cache(maxsize=1)
def clifford_table() -> tuple[Clifford, ...]:
    """Enumerate all 24 single-qubit Cliffords with shortest sequences."""
    identity = np.eye(2, dtype=complex)
    found: dict[bytes, tuple[tuple[str, ...], np.ndarray]] = {
        _canonical(identity): ((), identity)}
    frontier = [((), identity)]
    while frontier and len(found) < CLIFFORD_GROUP_ORDER:
        next_frontier = []
        for gates, matrix in frontier:
            for gate in GENERATORS:
                candidate = lookup_gate(gate).unitary() @ matrix
                key = _canonical(candidate)
                if key not in found:
                    sequence = gates + (gate,)
                    found[key] = (sequence, candidate)
                    next_frontier.append((sequence, candidate))
        frontier = next_frontier
    if len(found) != CLIFFORD_GROUP_ORDER:
        raise RuntimeError(
            f"Clifford enumeration found {len(found)} elements, "
            f"expected {CLIFFORD_GROUP_ORDER}")
    elements = sorted(found.values(), key=lambda item: (len(item[0]),
                                                        item[0]))
    return tuple(Clifford(index=i, gates=gates, matrix=matrix)
                 for i, (gates, matrix) in enumerate(elements))


@lru_cache(maxsize=1)
def _index_by_key() -> dict[bytes, int]:
    return {_canonical(c.matrix): c.index for c in clifford_table()}


def compose(indices: list[int] | tuple[int, ...]) -> np.ndarray:
    """Unitary of the Clifford sequence applied left-to-right."""
    table = clifford_table()
    matrix = np.eye(2, dtype=complex)
    for index in indices:
        matrix = table[index].matrix @ matrix
    return matrix


def lookup(matrix: np.ndarray) -> int:
    """Index of the group element equal to ``matrix`` up to phase."""
    key = _canonical(matrix)
    try:
        return _index_by_key()[key]
    except KeyError:
        raise ValueError("matrix is not a Clifford group element") from None


def inverse_of_sequence(indices: list[int] | tuple[int, ...]) -> int:
    """The recovery Clifford mapping the composed sequence to identity."""
    matrix = compose(indices)
    return lookup(matrix.conj().T)


def average_gates_per_clifford() -> float:
    """Mean native-pulse count over the group (identity included)."""
    table = clifford_table()
    return sum(len(c) for c in table) / len(table)
