"""The Figure 14 experiment: individual RB vs simultaneous RB.

On the paper's 10-qubit chip, individual RB on q0/q1 yields single-qubit
gate fidelities of ~99.5 %/99.4 %; running both sequences simultaneously
drops them to ~98.7 %/99.1 % because of the always-on ZZ interaction.
This module orchestrates the four curves (RB q0, RB q1, simRB q0,
simRB q1) through the full QuAPE stack and fits each decay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.rb import RBResult, run_rb
from repro.qcp.config import QCPConfig
from repro.qpu.noise import NoiseModel, paper_noise_model


@dataclass
class SimRBStudy:
    """All four Figure 14 curves plus their fits."""

    individual: dict[int, RBResult]
    simultaneous: RBResult

    def individual_fidelity(self, qubit: int) -> float:
        return self.individual[qubit].gate_fidelity(qubit)

    def simultaneous_fidelity(self, qubit: int) -> float:
        return self.simultaneous.gate_fidelity(qubit)

    def fidelity_drop(self, qubit: int) -> float:
        """Fidelity lost when driving both qubits at once (ZZ cost)."""
        return (self.individual_fidelity(qubit)
                - self.simultaneous_fidelity(qubit))

    def summary_rows(self) -> list[tuple[str, int, float]]:
        rows = []
        for qubit in sorted(self.individual):
            rows.append(("RB", qubit, self.individual_fidelity(qubit)))
        for qubit in self.simultaneous.driven:
            rows.append(("simRB", qubit,
                         self.simultaneous_fidelity(qubit)))
        return rows


def run_simrb_study(qubits: tuple[int, int] = (0, 1),
                    lengths: list[int] | None = None, samples: int = 12,
                    seed: int = 0, config: QCPConfig | None = None,
                    noise_factory=None,
                    backend: str = "quape",
                    qpu_backend: str = "statevector") -> SimRBStudy:
    """Run individual RB on each qubit, then simultaneous RB on both.

    ``noise_factory(seed)`` must return a fresh noise model; the default
    is the paper-calibrated :func:`~repro.qpu.noise.paper_noise_model`
    with the ZZ pair set to ``qubits``.  ``qpu_backend`` picks the
    simulation backend for the Monte-Carlo execution paths (the default
    ZZ noise needs "statevector"; Clifford-only noise models can use
    "stabilizer").
    """
    if noise_factory is None:
        def noise_factory(noise_seed: int) -> NoiseModel:
            return paper_noise_model(seed=noise_seed,
                                     pairs=(tuple(qubits),))
    seeds = iter(range(seed, seed + 10_000))

    def fresh_noise() -> NoiseModel:
        return noise_factory(next(seeds))

    individual = {}
    for qubit in qubits:
        individual[qubit] = run_rb(fresh_noise, driven=(qubit,),
                                   lengths=lengths, samples=samples,
                                   n_qubits=max(qubits) + 1, seed=seed,
                                   config=config, backend=backend,
                                   qpu_backend=qpu_backend)
    simultaneous = run_rb(fresh_noise, driven=tuple(qubits),
                          lengths=lengths, samples=samples,
                          n_qubits=max(qubits) + 1, seed=seed + 1,
                          config=config, backend=backend,
                          qpu_backend=qpu_backend)
    return SimRBStudy(individual=individual, simultaneous=simultaneous)
