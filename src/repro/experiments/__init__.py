"""Quantum-characterisation experiments: RB and simultaneous RB."""

from repro.experiments.clifford import (CLIFFORD_GROUP_ORDER, Clifford,
                                        average_gates_per_clifford,
                                        clifford_table, compose,
                                        inverse_of_sequence, lookup)
from repro.experiments.fitting import DecayFit, fit_rb_decay
from repro.experiments.rb import RBResult, rb_circuit, run_rb
from repro.experiments.simrb import SimRBStudy, run_simrb_study

__all__ = [
    "CLIFFORD_GROUP_ORDER", "Clifford", "DecayFit", "RBResult",
    "SimRBStudy", "average_gates_per_clifford", "clifford_table",
    "compose", "fit_rb_decay", "inverse_of_sequence", "lookup",
    "rb_circuit", "run_rb", "run_simrb_study",
]
