"""Qubit connectivity of the target QPU.

The paper's experimental chip is a 10-qubit one-dimensional array
(Section 8); the Shor-syndrome benchmark assumes all required two-qubit
connections exist (Section 7).  Both are expressible here.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Topology:
    """An undirected coupling graph over ``n_qubits`` qubits."""

    n_qubits: int
    couplings: frozenset[tuple[int, int]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.n_qubits <= 0:
            raise ValueError("topology needs at least one qubit")
        normalised = set()
        for a, b in self.couplings:
            if not (0 <= a < self.n_qubits and 0 <= b < self.n_qubits):
                raise ValueError(f"coupling ({a}, {b}) out of range")
            if a == b:
                raise ValueError(f"self-coupling on qubit {a}")
            normalised.add((min(a, b), max(a, b)))
        object.__setattr__(self, "couplings", frozenset(normalised))

    def are_coupled(self, a: int, b: int) -> bool:
        """True if a two-qubit gate between ``a`` and ``b`` is legal."""
        return (min(a, b), max(a, b)) in self.couplings

    def neighbors(self, qubit: int) -> set[int]:
        """Qubits directly coupled to ``qubit``."""
        result = set()
        for a, b in self.couplings:
            if a == qubit:
                result.add(b)
            elif b == qubit:
                result.add(a)
        return result

    def validate_gate(self, qubits: tuple[int, ...]) -> None:
        """Raise if a multi-qubit gate violates the coupling graph."""
        for qubit in qubits:
            if not 0 <= qubit < self.n_qubits:
                raise ValueError(f"qubit q{qubit} out of range")
        if len(qubits) == 2 and not self.are_coupled(*qubits):
            raise ValueError(
                f"qubits q{qubits[0]} and q{qubits[1]} are not coupled")


def linear_topology(n_qubits: int) -> Topology:
    """Nearest-neighbour chain, like the paper's 10-qubit 1-D chip."""
    couplings = frozenset((i, i + 1) for i in range(n_qubits - 1))
    return Topology(n_qubits=n_qubits, couplings=couplings)


def full_topology(n_qubits: int) -> Topology:
    """All-to-all coupling — the Section 7 benchmark assumption."""
    couplings = frozenset((i, j) for i in range(n_qubits)
                          for j in range(i + 1, n_qubits))
    return Topology(n_qubits=n_qubits, couplings=couplings)
