"""Dense state-vector simulator.

This is the functional QPU substrate standing in for the paper's
superconducting chip.  It supports arbitrary one- and two-qubit
unitaries, projective measurement with collapse, and active reset —
enough to execute every operation the control processor can issue.

It is the ``"statevector"`` entry of the simulation-backend registry
(see :mod:`repro.qpu.backend`): exact for any circuit, exponential in
the qubit count, hard-capped at 24 qubits.  Single-qubit gates take a
fused strided path (one pass over the amplitudes) instead of the
generic moveaxis/reshape round-trip used for larger unitaries.

Qubit 0 is the least significant bit of the computational-basis index.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Sequence

import numpy as np

from repro.circuit.gates import lookup_gate
from repro.qpu.backend import (BackendOp, SimulationBackend,
                               register_backend)

#: Hard cap on the dense representation (2^24 amplitudes = 256 MiB).
DENSE_QUBIT_LIMIT = 24

#: Single-qubit gate matrices keyed by ``(name, params)``.  Gate
#: matrices are pure functions of name and parameters, so every
#: application of e.g. ``("h", ())`` can share one immutable array
#: instead of rebuilding it; entries are 2x2, so even parametric
#: sweeps keep the cache tiny.
_UNITARY_CACHE: dict[tuple[str, tuple[float, ...]], np.ndarray] = {}


def cached_unitary(name: str,
                   params: tuple[float, ...] = ()) -> np.ndarray:
    """The (immutable) single-qubit matrix of a library gate."""
    key = (name, params)
    matrix = _UNITARY_CACHE.get(key)
    if matrix is None:
        # Copy before freezing: constant gates share one module-level
        # array that other code must stay free to read-write.
        matrix = np.array(lookup_gate(name).unitary(params),
                          dtype=complex)
        matrix.setflags(write=False)
        _UNITARY_CACHE[key] = matrix
    return matrix


@register_backend
class StateVector(SimulationBackend):
    """An ``n_qubits`` pure state with in-place gate application."""

    backend_name = "statevector"

    def __init__(self, n_qubits: int,
                 rng: random.Random | None = None) -> None:
        if n_qubits <= 0:
            raise ValueError("need at least one qubit")
        if n_qubits > DENSE_QUBIT_LIMIT:
            raise ValueError(
                f"{n_qubits} qubits exceeds the dense simulator limit "
                f"({DENSE_QUBIT_LIMIT}); Clifford circuits can use the "
                f"'stabilizer' backend instead")
        self.n_qubits = n_qubits
        self.rng = rng or random.Random()
        self._amplitudes = np.zeros(1 << n_qubits, dtype=complex)
        self._amplitudes[0] = 1.0

    @property
    def amplitudes(self) -> np.ndarray:
        """The raw amplitude vector (do not mutate)."""
        return self._amplitudes

    def copy(self) -> "StateVector":
        clone = StateVector.__new__(StateVector)
        clone.n_qubits = self.n_qubits
        clone.rng = self.rng
        clone._amplitudes = self._amplitudes.copy()
        return clone

    def reinitialize(self) -> None:
        """Return to |0...0> in place (object identity preserved)."""
        self._amplitudes.fill(0.0)
        self._amplitudes[0] = 1.0

    def snapshot(self) -> np.ndarray:
        """Checkpoint: a defensive copy of the amplitude vector."""
        return self._amplitudes.copy()

    def restore(self, snap: np.ndarray) -> None:
        """Overwrite the state in place from a :meth:`snapshot`."""
        if snap.shape != self._amplitudes.shape:
            raise ValueError(
                f"snapshot shape {snap.shape} does not match the "
                f"{self.n_qubits}-qubit state")
        self._amplitudes[:] = snap

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.n_qubits:
            raise ValueError(f"qubit q{qubit} out of range")

    # -- unitaries -----------------------------------------------------------

    def apply_unitary(self, matrix: np.ndarray,
                      qubits: tuple[int, ...]) -> None:
        """Apply ``matrix`` (2^k x 2^k) to ``qubits``.

        ``qubits[0]`` is the *most significant* bit of the matrix's
        index convention — the textbook ordering where e.g. the CNOT
        matrix ``[[I, 0], [0, X]]`` has ``qubits[0]`` as the control.
        """
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match "
                f"{k} qubit(s)")
        for qubit in qubits:
            self._check_qubit(qubit)
        if len(set(qubits)) != k:
            raise ValueError(f"duplicate qubits: {qubits}")
        if k == 1:
            self._apply_single_qubit(matrix, qubits[0])
            return
        n = self.n_qubits
        # Move the target axes to the front via tensor reshape.  numpy's
        # reshape order puts qubit 0 as the *last* axis, so axis of qubit
        # q is (n - 1 - q).  After the move, qubits[0] is the slowest
        # axis of the block — the matrix's most significant bit, as
        # required by the convention above.
        tensor = self._amplitudes.reshape([2] * n)
        axes = [n - 1 - q for q in qubits]
        tensor = np.moveaxis(tensor, axes, range(k))
        shape = tensor.shape
        tensor = tensor.reshape(1 << k, -1)
        tensor = matrix @ tensor
        tensor = tensor.reshape(shape)
        tensor = np.moveaxis(tensor, range(k), axes)
        self._amplitudes = np.ascontiguousarray(tensor.reshape(-1))

    #: Below this qubit index the batched-matmul inner blocks are too
    #: small for BLAS; the kron formulation wins there (measured
    #: crossover at 2^4-element blocks).
    _KRON_THRESHOLD = 4

    def _apply_single_qubit(self, matrix: np.ndarray, qubit: int) -> None:
        """Fused fast path for 2x2 unitaries.

        The vector viewed as (high bits, target bit, low bits) turns
        the update into one batched GEMM, skipping the generic path's
        moveaxis round-trip and its two full-state copies.  For low
        qubit indices the inner blocks are too small for BLAS, so the
        target bit is instead folded into a (2*2^q x 2*2^q) kron
        operator applied across rows — both shapes stay a single
        matmul over contiguous memory.
        """
        inner = 1 << qubit
        if qubit < self._KRON_THRESHOLD:
            operator = np.kron(matrix, np.eye(inner, dtype=complex))
            rows = self._amplitudes.reshape(-1, 2 * inner)
            self._amplitudes = np.matmul(rows, operator.T).reshape(-1)
        else:
            blocks = self._amplitudes.reshape(-1, 2, inner)
            self._amplitudes = np.matmul(matrix, blocks).reshape(-1)

    def apply_gate(self, gate: str, qubits: tuple[int, ...],
                   params: tuple[float, ...] = ()) -> None:
        """Apply a library gate by name."""
        definition = lookup_gate(gate)
        if not definition.is_unitary:
            raise ValueError(
                f"gate {gate!r} is not unitary; use measure()/reset()")
        qubits = tuple(qubits)
        if len(qubits) == 1:
            # Cached matrix: gate matrices only depend on (name, params).
            self.apply_unitary(cached_unitary(definition.name,
                                              tuple(params)), qubits)
            return
        self.apply_unitary(definition.unitary(tuple(params)), qubits)

    def compile_ops(self,
                    ops: Sequence[BackendOp]) -> Callable[[], None]:
        """Compile an op stream into one closure over cached matrices.

        Name/parameter resolution, qubit-count dispatch and matrix
        construction all happen once here instead of per replay; the
        closure is a flat list of pre-bound applications.  Matrices are
        deliberately *not* pre-multiplied across gates: ``(U2 @ U1) v``
        rounds differently than ``U2 (U1 v)``, and the compiled-replay
        contract is bit-for-bit equivalence with sequential
        :meth:`apply_gate` execution.
        """
        steps: list[tuple[Callable, tuple]] = []
        for kind, name, qubits, params in ops:
            if kind == "reset":
                steps.append((self.reset, (qubits[0],)))
            elif len(qubits) == 1:
                steps.append((self._apply_single_qubit,
                              (cached_unitary(name, params), qubits[0])))
            else:
                matrix = lookup_gate(name).unitary(params)
                steps.append((self.apply_unitary, (matrix, qubits)))

        def replay() -> None:
            for apply, args in steps:
                apply(*args)

        return replay

    # -- non-unitary operations ------------------------------------------------

    def probability_of_one(self, qubit: int) -> float:
        """Probability of measuring ``qubit`` as 1."""
        self._check_qubit(qubit)
        ones = self._amplitudes.reshape(-1, 2, 1 << qubit)[:, 1, :]
        return float(np.sum(np.abs(ones) ** 2))

    def measure(self, qubit: int) -> int:
        """Projectively measure ``qubit`` and collapse the state."""
        p_one = self.probability_of_one(qubit)
        outcome = 1 if self.rng.random() < p_one else 0
        self._project(qubit, outcome, p_one)
        return outcome

    def _project(self, qubit: int, outcome: int, p_one: float) -> None:
        norm = math.sqrt(p_one if outcome else 1.0 - p_one)
        if norm == 0.0:
            raise RuntimeError("projection onto zero-probability outcome")
        view = self._amplitudes.reshape(-1, 2, 1 << qubit)
        view[:, 1 - outcome, :] = 0.0
        self._amplitudes /= norm

    def reset(self, qubit: int) -> None:
        """Unconditionally reset ``qubit`` to |0> (measure + flip)."""
        outcome = self.measure(qubit)
        if outcome:
            self.apply_gate("x", (qubit,))

    def apply_amplitude_damping(self, qubit: int, gamma: float) -> None:
        """One quantum-trajectory step of T1 decay.

        With probability ``gamma * P(|1>)`` the excitation decays (jump
        operator); otherwise the no-jump back-action slightly rotates
        amplitude toward |0>.  Averaged over trajectories this is the
        amplitude-damping channel with decay probability ``gamma``.
        """
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma out of range: {gamma}")
        if gamma == 0.0:
            return
        p_one = self.probability_of_one(qubit)
        if self.rng.random() < gamma * p_one:
            # Jump: the photon is emitted, the qubit lands in |0>.
            self._project(qubit, 1, p_one)
            self.apply_gate("x", (qubit,))
            return
        # No jump: K0 = diag(1, sqrt(1-gamma)), then renormalise.
        k0 = np.array([[1.0, 0.0],
                       [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
        self.apply_kraus(k0, qubit)

    def apply_kraus(self, matrix: np.ndarray, qubit: int) -> None:
        """Apply a single-qubit Kraus operator and renormalise.

        ``apply_unitary`` performs no unitarity check, so it doubles as
        the raw operator application for trajectory noise channels.
        """
        self.apply_unitary(matrix, (qubit,))
        norm = self.norm()
        if norm == 0.0:
            raise RuntimeError("state annihilated by Kraus operator")
        self._amplitudes = self._amplitudes / norm

    # -- queries ---------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Probability of every computational-basis state."""
        return np.abs(self._amplitudes) ** 2

    def fidelity_with(self, other: "StateVector") -> float:
        """|<self|other>|^2."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("qubit-count mismatch")
        return float(abs(np.vdot(self._amplitudes, other._amplitudes)) ** 2)

    def norm(self) -> float:
        """State norm (should stay 1 up to rounding)."""
        return float(np.linalg.norm(self._amplitudes))


