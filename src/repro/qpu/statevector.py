"""Dense state-vector simulator.

This is the functional QPU substrate standing in for the paper's
superconducting chip.  It supports arbitrary one- and two-qubit
unitaries, projective measurement with collapse, and active reset —
enough to execute every operation the control processor can issue.

It is the ``"statevector"`` entry of the simulation-backend registry
(see :mod:`repro.qpu.backend`): exact for any circuit, exponential in
the qubit count, hard-capped at 24 qubits.  Single-qubit gates take a
fused strided path (one pass over the amplitudes) instead of the
generic moveaxis/reshape round-trip used for larger unitaries.

Qubit 0 is the least significant bit of the computational-basis index.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Sequence

import numpy as np

from repro.circuit.gates import lookup_gate
from repro.qpu.backend import (BackendOp, SimulationBackend,
                               register_backend)

#: Hard cap on the dense representation (2^24 amplitudes = 256 MiB).
DENSE_QUBIT_LIMIT = 24

#: Single-qubit gate matrices keyed by ``(name, params)``.  Gate
#: matrices are pure functions of name and parameters, so every
#: application of e.g. ``("h", ())`` can share one immutable array
#: instead of rebuilding it; entries are 2x2, so even parametric
#: sweeps keep the cache tiny.
_UNITARY_CACHE: dict[tuple[str, tuple[float, ...]], np.ndarray] = {}


def cached_unitary(name: str,
                   params: tuple[float, ...] = ()) -> np.ndarray:
    """The (immutable) single-qubit matrix of a library gate."""
    key = (name, params)
    matrix = _UNITARY_CACHE.get(key)
    if matrix is None:
        # Copy before freezing: constant gates share one module-level
        # array that other code must stay free to read-write.
        matrix = np.array(lookup_gate(name).unitary(params),
                          dtype=complex)
        matrix.setflags(write=False)
        _UNITARY_CACHE[key] = matrix
    return matrix


#: Largest joint support (in qubits) a fused block operator may cover.
#: 2^3 x 2^3 blocks keep composition cheap while still folding the
#: common gate idioms (single-qubit runs, 1q-into-2q, CNOT ladders
#: sharing a qubit) into one pass over the amplitudes.
FUSE_MAX_QUBITS = 3

#: Register size up to which :meth:`StateVector.block_applier` uses
#: precomputed gather/scatter index arrays (2 * 8 * 2^n bytes per
#: distinct permutation, shared through :data:`_GATHER_CACHE`); above
#: this the indices would rival the statevector itself, so appliers
#: fall back to precomputed-permutation transposes.
_GATHER_QUBIT_LIMIT = 14

#: (n_qubits, axis permutation) -> (gather, scatter) index arrays.
#: The permutation depends only on the qubit tuple, so every block,
#: node and backend instance touching the same qubits shares one
#: pair instead of retaining its own 2^n arrays.
_GATHER_CACHE: dict[tuple[int, tuple[int, ...]],
                    tuple[np.ndarray, np.ndarray]] = {}


def _gather_indices(n: int, perm: tuple[int, ...]
                    ) -> tuple[np.ndarray, np.ndarray]:
    key = (n, perm)
    cached = _GATHER_CACHE.get(key)
    if cached is None:
        gather = np.arange(1 << n).reshape((2,) * n).transpose(
            perm).ravel()
        cached = _GATHER_CACHE[key] = (gather, np.argsort(gather))
    return cached


def _lift(matrix: np.ndarray, gate_qubits: tuple[int, ...],
          support: tuple[int, ...]) -> np.ndarray:
    """Expand ``matrix`` (acting on ``gate_qubits``) onto ``support``.

    Both qubit tuples use the :meth:`StateVector.apply_unitary`
    convention: position 0 is the most significant bit of the matrix
    index.  ``support`` must contain every gate qubit.
    """
    extra = tuple(q for q in support if q not in gate_qubits)
    order = tuple(gate_qubits) + extra
    k = len(support)
    full = np.kron(matrix, np.eye(1 << len(extra), dtype=complex))
    if order == tuple(support):
        return full
    tensor = full.reshape((2,) * (2 * k))
    axes = [order.index(q) for q in support]
    tensor = tensor.transpose(axes + [k + axis for axis in axes])
    return np.ascontiguousarray(tensor.reshape(1 << k, 1 << k))


def fuse_into(matrix: np.ndarray, support: tuple[int, ...],
              gate_matrix: np.ndarray, qubits: tuple[int, ...],
              max_qubits: int = FUSE_MAX_QUBITS
              ) -> tuple[np.ndarray, tuple[int, ...]] | None:
    """Fold one unitary into an open fusion block.

    Returns the grown ``(matrix, support)`` pair, or ``None`` when
    the support union would exceed ``max_qubits`` (the caller then
    flushes the block and opens a new one).  This is the one greedy
    accumulation kernel every fusion consumer shares — the plain op
    stream (:func:`fuse_ops`) and the trace cache's noise-site
    compiler, which interleaves deferred channel sites.
    """
    union = tuple(sorted(set(support) | set(qubits)))
    if len(union) > max_qubits:
        return None
    return (_lift(gate_matrix, tuple(qubits), union)
            @ _lift(matrix, support, union), union)


def fuse_ops(ops: Sequence[BackendOp],
             max_qubits: int = FUSE_MAX_QUBITS) -> list[tuple]:
    """Greedily precompose consecutive unitaries into block operators.

    Walks the stream keeping one open block (a matrix and its qubit
    support); each unitary whose support union stays within
    ``max_qubits`` is lifted onto the union and multiplied in
    (:func:`fuse_into`), so an entire gate run costs one pass over
    the amplitudes at replay time.  Resets are non-unitary and flush
    the block (they also consume an rng draw, which composition must
    never absorb).

    Returns steps ``("gate", matrix, qubits)`` / ``("reset", qubit)``.
    Numerically this trades last-ulp amplitude identity (matrix
    products round differently than sequential application) for fewer
    GEMMs; the rng draw *sequence* is unchanged, so a measurement
    outcome can differ from unfused replay only when a draw lands
    inside the few-ulp window the perturbed probability opens —
    see :meth:`SimulationBackend.compile_fused_ops` for the precise
    contract.
    """
    steps: list[tuple] = []
    support: tuple[int, ...] = ()
    matrix: np.ndarray | None = None

    def flush() -> None:
        nonlocal support, matrix
        if matrix is not None:
            steps.append(("gate", matrix, support))
            support, matrix = (), None

    for kind, name, qubits, params in ops:
        if kind == "reset":
            flush()
            steps.append(("reset", qubits[0]))
            continue
        gate_matrix = (cached_unitary(name, params) if len(qubits) == 1
                       else lookup_gate(name).unitary(tuple(params)))
        if matrix is None:
            support, matrix = tuple(qubits), gate_matrix
            continue
        fused = fuse_into(matrix, support, gate_matrix, tuple(qubits),
                          max_qubits)
        if fused is not None:
            matrix, support = fused
        else:
            flush()
            support, matrix = tuple(qubits), gate_matrix
    flush()
    return steps


@register_backend
class StateVector(SimulationBackend):
    """An ``n_qubits`` pure state with in-place gate application."""

    backend_name = "statevector"

    def __init__(self, n_qubits: int,
                 rng: random.Random | None = None) -> None:
        if n_qubits <= 0:
            raise ValueError("need at least one qubit")
        if n_qubits > DENSE_QUBIT_LIMIT:
            raise ValueError(
                f"{n_qubits} qubits exceeds the dense simulator limit "
                f"({DENSE_QUBIT_LIMIT}); Clifford circuits can use the "
                f"'stabilizer' backend instead")
        self.n_qubits = n_qubits
        self.rng = rng or random.Random()
        self._amplitudes = np.zeros(1 << n_qubits, dtype=complex)
        self._amplitudes[0] = 1.0

    @property
    def amplitudes(self) -> np.ndarray:
        """The raw amplitude vector (do not mutate)."""
        return self._amplitudes

    def copy(self) -> "StateVector":
        clone = StateVector.__new__(StateVector)
        clone.n_qubits = self.n_qubits
        clone.rng = self.rng
        clone._amplitudes = self._amplitudes.copy()
        return clone

    def reinitialize(self) -> None:
        """Return to |0...0> in place (object identity preserved)."""
        self._amplitudes.fill(0.0)
        self._amplitudes[0] = 1.0

    def snapshot(self) -> np.ndarray:
        """Checkpoint: a defensive copy of the amplitude vector."""
        return self._amplitudes.copy()

    def restore(self, snap: np.ndarray) -> None:
        """Overwrite the state in place from a :meth:`snapshot`."""
        if snap.shape != self._amplitudes.shape:
            raise ValueError(
                f"snapshot shape {snap.shape} does not match the "
                f"{self.n_qubits}-qubit state")
        self._amplitudes[:] = snap

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.n_qubits:
            raise ValueError(f"qubit q{qubit} out of range")

    # -- unitaries -----------------------------------------------------------

    def apply_unitary(self, matrix: np.ndarray,
                      qubits: tuple[int, ...]) -> None:
        """Apply ``matrix`` (2^k x 2^k) to ``qubits``.

        ``qubits[0]`` is the *most significant* bit of the matrix's
        index convention — the textbook ordering where e.g. the CNOT
        matrix ``[[I, 0], [0, X]]`` has ``qubits[0]`` as the control.
        """
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match "
                f"{k} qubit(s)")
        for qubit in qubits:
            self._check_qubit(qubit)
        if len(set(qubits)) != k:
            raise ValueError(f"duplicate qubits: {qubits}")
        if k == 1:
            self._apply_single_qubit(matrix, qubits[0])
            return
        n = self.n_qubits
        # Move the target axes to the front via tensor reshape.  numpy's
        # reshape order puts qubit 0 as the *last* axis, so axis of qubit
        # q is (n - 1 - q).  After the move, qubits[0] is the slowest
        # axis of the block — the matrix's most significant bit, as
        # required by the convention above.
        tensor = self._amplitudes.reshape([2] * n)
        axes = [n - 1 - q for q in qubits]
        tensor = np.moveaxis(tensor, axes, range(k))
        shape = tensor.shape
        tensor = tensor.reshape(1 << k, -1)
        tensor = matrix @ tensor
        tensor = tensor.reshape(shape)
        tensor = np.moveaxis(tensor, range(k), axes)
        self._amplitudes = np.ascontiguousarray(tensor.reshape(-1))

    #: Below this qubit index the batched-matmul inner blocks are too
    #: small for BLAS; the kron formulation wins there (measured
    #: crossover at 2^4-element blocks).
    _KRON_THRESHOLD = 4

    def _apply_single_qubit(self, matrix: np.ndarray, qubit: int) -> None:
        """Fused fast path for 2x2 unitaries.

        The vector viewed as (high bits, target bit, low bits) turns
        the update into one batched GEMM, skipping the generic path's
        moveaxis round-trip and its two full-state copies.  For low
        qubit indices the inner blocks are too small for BLAS, so the
        target bit is instead folded into a (2*2^q x 2*2^q) kron
        operator applied across rows — both shapes stay a single
        matmul over contiguous memory.
        """
        inner = 1 << qubit
        if qubit < self._KRON_THRESHOLD:
            operator = np.kron(matrix, np.eye(inner, dtype=complex))
            rows = self._amplitudes.reshape(-1, 2 * inner)
            self._amplitudes = np.matmul(rows, operator.T).reshape(-1)
        else:
            blocks = self._amplitudes.reshape(-1, 2, inner)
            self._amplitudes = np.matmul(matrix, blocks).reshape(-1)

    def apply_gate(self, gate: str, qubits: tuple[int, ...],
                   params: tuple[float, ...] = ()) -> None:
        """Apply a library gate by name."""
        definition = lookup_gate(gate)
        if not definition.is_unitary:
            raise ValueError(
                f"gate {gate!r} is not unitary; use measure()/reset()")
        qubits = tuple(qubits)
        if len(qubits) == 1:
            # Cached matrix: gate matrices only depend on (name, params).
            self.apply_unitary(cached_unitary(definition.name,
                                              tuple(params)), qubits)
            return
        self.apply_unitary(definition.unitary(tuple(params)), qubits)

    def compile_ops(self,
                    ops: Sequence[BackendOp]) -> Callable[[], None]:
        """Compile an op stream into one closure over cached matrices.

        Name/parameter resolution, qubit-count dispatch and matrix
        construction all happen once here instead of per replay; the
        closure is a flat list of pre-bound applications.  Matrices are
        deliberately *not* pre-multiplied across gates: ``(U2 @ U1) v``
        rounds differently than ``U2 (U1 v)``, and the compiled-replay
        contract is bit-for-bit equivalence with sequential
        :meth:`apply_gate` execution.
        """
        steps: list[tuple[Callable, tuple]] = []
        for kind, name, qubits, params in ops:
            if kind == "reset":
                steps.append((self.reset, (qubits[0],)))
            elif len(qubits) == 1:
                steps.append((self._apply_single_qubit,
                              (cached_unitary(name, params), qubits[0])))
            else:
                matrix = lookup_gate(name).unitary(params)
                steps.append((self.apply_unitary, (matrix, qubits)))

        def replay() -> None:
            for apply, args in steps:
                apply(*args)

        return replay

    def block_applier(self, matrix: np.ndarray,
                      qubits: tuple[int, ...]) -> Callable[[], None]:
        """Precompile one k-qubit operator application for replay.

        :meth:`apply_unitary` re-derives the axis permutation, inverse
        permutation and block shape on every call (the ``moveaxis``
        round trip); for a compiled replay those are constants.  The
        k >= 2 closure gathers the amplitudes through a precomputed
        index permutation (element-for-element the same contiguous
        copy the ``moveaxis``/``reshape`` round trip produces), runs
        the same GEMM, and scatters back through the inverse indices —
        so the arithmetic, and with it every amplitude, is bit-for-bit
        identical to :meth:`apply_unitary`.  The single-qubit closure
        precomputes what :meth:`_apply_single_qubit` rebuilds per call
        (the kron operator below the BLAS crossover) and performs the
        identical matmul.
        """
        k = len(qubits)
        if k == 1:
            qubit = qubits[0]
            inner = 1 << qubit
            if qubit < self._KRON_THRESHOLD:
                operator_t = np.kron(matrix,
                                     np.eye(inner, dtype=complex)).T

                def apply() -> None:
                    rows = self._amplitudes.reshape(-1, 2 * inner)
                    self._amplitudes = np.matmul(rows,
                                                 operator_t).reshape(-1)
            else:

                def apply() -> None:
                    blocks = self._amplitudes.reshape(-1, 2, inner)
                    self._amplitudes = np.matmul(matrix,
                                                 blocks).reshape(-1)

            return apply
        n = self.n_qubits
        axes = [n - 1 - q for q in qubits]
        rest = [axis for axis in range(n) if axis not in axes]
        perm = tuple(axes + rest)
        rows = 1 << k
        if n <= _GATHER_QUBIT_LIMIT:
            gather, scatter = _gather_indices(n, perm)

            def apply() -> None:
                out = matrix @ self._amplitudes[gather].reshape(rows,
                                                                -1)
                self._amplitudes = out.ravel()[scatter]

            return apply
        # Large registers: index arrays would rival the state itself,
        # so fall back to precomputed-permutation transposes — same
        # contiguous copies, same GEMM, still bit-identical.
        inverse = tuple(int(i) for i in np.argsort(perm))
        tensor_shape = (2,) * n

        def apply() -> None:
            tensor = self._amplitudes.reshape(tensor_shape)
            tensor = matrix @ tensor.transpose(perm).reshape(rows, -1)
            self._amplitudes = np.ascontiguousarray(
                tensor.reshape(tensor_shape).transpose(inverse)
            ).reshape(-1)

        return apply

    def compile_fused_ops(self, ops: Sequence[BackendOp],
                          max_qubits: int | None = None
                          ) -> Callable[[], None]:
        """Compile an op stream with GEMM fusion (:func:`fuse_ops`).

        Consecutive unitaries within the stream are precomposed into
        block operators, so a decision-free gate run replays as a
        handful of batched matmuls (through precompiled
        :meth:`block_applier` closures) instead of one dispatch per
        gate.  ``max_qubits`` caps the fused block width (default
        :data:`FUSE_MAX_QUBITS`; the backend router widens it for
        small registers).  Fusion never consumes rng draws, but
        amplitudes may differ from :meth:`compile_ops` in the last
        ulp — outcome identity is almost-sure, not structural; see the
        base-class contract for the precise statement.
        """
        if max_qubits is None:
            max_qubits = FUSE_MAX_QUBITS
        steps: list[Callable[[], None]] = []
        for step in fuse_ops(ops, max_qubits=max_qubits):
            if step[0] == "reset":
                qubit = step[1]
                steps.append(lambda q=qubit: self.reset(q))
            else:
                steps.append(self.block_applier(step[1], step[2]))

        def replay() -> None:
            for apply in steps:
                apply()

        return replay

    # -- non-unitary operations ------------------------------------------------

    def probability_of_one(self, qubit: int) -> float:
        """Probability of measuring ``qubit`` as 1."""
        self._check_qubit(qubit)
        ones = self._amplitudes.reshape(-1, 2, 1 << qubit)[:, 1, :]
        # np.add.reduce is np.sum minus the dispatch wrapper — same
        # pairwise reduction, bit-identical result, and this is the
        # hottest scalar on the measurement path.
        return float(np.add.reduce(np.abs(ones) ** 2, axis=None))

    def measure(self, qubit: int) -> int:
        """Projectively measure ``qubit`` and collapse the state.

        Shares one (-1, 2, 2^qubit) view between the probability
        reduction and the collapse write; numerically identical to
        ``probability_of_one`` + ``_project``.
        """
        self._check_qubit(qubit)
        view = self._amplitudes.reshape(-1, 2, 1 << qubit)
        p_one = float(np.add.reduce(np.abs(view[:, 1, :]) ** 2,
                                    axis=None))
        outcome = 1 if self.rng.random() < p_one else 0
        norm = math.sqrt(p_one if outcome else 1.0 - p_one)
        if norm == 0.0:
            raise RuntimeError("projection onto zero-probability outcome")
        view[:, 1 - outcome, :] = 0.0
        self._amplitudes /= norm
        return outcome

    def _project(self, qubit: int, outcome: int, p_one: float) -> None:
        norm = math.sqrt(p_one if outcome else 1.0 - p_one)
        if norm == 0.0:
            raise RuntimeError("projection onto zero-probability outcome")
        view = self._amplitudes.reshape(-1, 2, 1 << qubit)
        view[:, 1 - outcome, :] = 0.0
        self._amplitudes /= norm

    def reset(self, qubit: int) -> None:
        """Unconditionally reset ``qubit`` to |0> (measure + flip)."""
        outcome = self.measure(qubit)
        if outcome:
            self.apply_gate("x", (qubit,))

    def apply_amplitude_damping(self, qubit: int, gamma: float) -> None:
        """One quantum-trajectory step of T1 decay.

        With probability ``gamma * P(|1>)`` the excitation decays (jump
        operator); otherwise the no-jump back-action slightly rotates
        amplitude toward |0>.  Averaged over trajectories this is the
        amplitude-damping channel with decay probability ``gamma``.
        """
        if not 0.0 <= gamma <= 1.0:
            raise ValueError(f"gamma out of range: {gamma}")
        if gamma == 0.0:
            return
        p_one = self.probability_of_one(qubit)
        if self.rng.random() < gamma * p_one:
            # Jump: the photon is emitted, the qubit lands in |0>.
            self._project(qubit, 1, p_one)
            self.apply_gate("x", (qubit,))
            return
        # No jump: K0 = diag(1, sqrt(1-gamma)), then renormalise.
        k0 = np.array([[1.0, 0.0],
                       [0.0, math.sqrt(1.0 - gamma)]], dtype=complex)
        self.apply_kraus(k0, qubit)

    def apply_kraus(self, matrix: np.ndarray, qubit: int) -> None:
        """Apply a single-qubit Kraus operator and renormalise.

        ``apply_unitary`` performs no unitarity check, so it doubles as
        the raw operator application for trajectory noise channels.
        """
        self.apply_unitary(matrix, (qubit,))
        norm = self.norm()
        if norm == 0.0:
            raise RuntimeError("state annihilated by Kraus operator")
        self._amplitudes = self._amplitudes / norm

    # -- batched shots ---------------------------------------------------------

    def make_batch_state(self, width: int) -> "BatchStateVector":
        """A ``(width, 2^n)`` lockstep cohort for batched replay."""
        return BatchStateVector(self.n_qubits, width)

    # -- queries ---------------------------------------------------------------

    def probabilities(self) -> np.ndarray:
        """Probability of every computational-basis state."""
        return np.abs(self._amplitudes) ** 2

    def fidelity_with(self, other: "StateVector") -> float:
        """|<self|other>|^2."""
        if other.n_qubits != self.n_qubits:
            raise ValueError("qubit-count mismatch")
        return float(abs(np.vdot(self._amplitudes, other._amplitudes)) ** 2)

    def norm(self) -> float:
        """State norm (should stay 1 up to rounding)."""
        return float(np.linalg.norm(self._amplitudes))


# -- shot-batched cohorts ------------------------------------------------------


def batch_block_applier(n_qubits: int, matrix: np.ndarray,
                        qubits: tuple[int, ...]) -> Callable:
    """Precompile one k-qubit operator for a whole shot cohort.

    The batched analogue of :meth:`StateVector.block_applier`: the
    returned closure ``apply(batch, rows=None)`` pushes ``matrix``
    through every live state of a :class:`BatchStateVector` as one
    batch GEMM (``rows`` restricts the application to a sub-cohort,
    which is how per-shot stochastic channel corrections and reset
    flips hit only the shots whose draws fired).  Each per-shot slice
    runs the same matmul shapes the serial closure runs, so the
    arithmetic per shot matches the serial replay path.
    """
    k = len(qubits)
    if k == 1:
        qubit = qubits[0]
        inner = 1 << qubit
        if qubit < StateVector._KRON_THRESHOLD:
            operator_t = np.kron(matrix, np.eye(inner, dtype=complex)).T

            def apply(batch: "BatchStateVector", rows=None) -> None:
                psi = batch._psi if rows is None else batch._psi[rows]
                out = np.matmul(psi.reshape(-1, 2 * inner),
                                operator_t).reshape(psi.shape)
                if rows is None:
                    batch._psi = out
                else:
                    batch._psi[rows] = out

            return apply

        def apply(batch: "BatchStateVector", rows=None) -> None:
            psi = batch._psi if rows is None else batch._psi[rows]
            out = np.matmul(matrix,
                            psi.reshape(-1, 2, inner)).reshape(psi.shape)
            if rows is None:
                batch._psi = out
            else:
                batch._psi[rows] = out

        return apply
    axes = [n_qubits - 1 - q for q in qubits]
    rest = [axis for axis in range(n_qubits) if axis not in axes]
    perm = tuple(axes + rest)
    block_rows = 1 << k
    if n_qubits <= _GATHER_QUBIT_LIMIT:
        gather, scatter = _gather_indices(n_qubits, perm)

        def apply(batch: "BatchStateVector", rows=None) -> None:
            psi = batch._psi if rows is None else batch._psi[rows]
            cohort = psi.shape[0]
            out = np.matmul(
                matrix, psi[:, gather].reshape(cohort, block_rows, -1))
            out = out.reshape(cohort, -1)[:, scatter]
            if rows is None:
                batch._psi = out
            else:
                batch._psi[rows] = out

        return apply
    # Large registers: per-shot transposes, the same fallback (and the
    # same arithmetic) as the serial block applier.
    inverse = tuple(int(i) for i in np.argsort(perm))
    tensor_shape = (2,) * n_qubits

    def apply(batch: "BatchStateVector", rows=None) -> None:
        indices = range(batch.width) if rows is None else rows
        for index in indices:
            tensor = batch._psi[index].reshape(tensor_shape)
            tensor = matrix @ tensor.transpose(perm).reshape(block_rows,
                                                             -1)
            batch._psi[index] = np.ascontiguousarray(
                tensor.reshape(tensor_shape).transpose(inverse)
            ).reshape(-1)

    return apply


class BatchStateVector:
    """A ``(width, 2^n)`` stack of pure states advanced in lockstep.

    The dense cohort representation of batched trace-cache replay: row
    ``b`` is shot ``b``'s full amplitude vector, every compiled segment
    applies to all rows at once (:func:`batch_block_applier`), and the
    per-qubit measurement reduction collapses to **one**
    ``np.add.reduce`` over the whole matrix per measured qubit.  The
    per-shot *draws* (measurement outcomes, channel firings) stay
    outside this class — they belong to each shot's own seeded rngs, in
    serial order, which is what keeps batched replay bit-identical per
    shot-seed.
    """

    def __init__(self, n_qubits: int, width: int) -> None:
        if n_qubits <= 0:
            raise ValueError("need at least one qubit")
        if n_qubits > DENSE_QUBIT_LIMIT:
            raise ValueError(
                f"{n_qubits} qubits exceeds the dense simulator limit "
                f"({DENSE_QUBIT_LIMIT})")
        if width < 1:
            raise ValueError("cohort width must be positive")
        self.n_qubits = n_qubits
        self.width = width
        self._psi = np.zeros((width, 1 << n_qubits), dtype=complex)
        self._psi[:, 0] = 1.0

    @property
    def amplitudes(self) -> np.ndarray:
        """The raw ``(width, 2^n)`` amplitude matrix (do not mutate)."""
        return self._psi

    def take(self, rows: Sequence[int]) -> "BatchStateVector":
        """An independent sub-cohort of the given shot rows.

        This is the wavefront partition primitive: when a decision
        splits the cohort across trie edges, each child wavefront
        carries a gather-copy of its shots' amplitude rows.
        """
        index = np.asarray(rows, dtype=np.intp)
        clone = BatchStateVector.__new__(BatchStateVector)
        clone.n_qubits = self.n_qubits
        clone.width = int(index.shape[0])
        clone._psi = self._psi[index]
        return clone

    def apply_matrix(self, matrix: np.ndarray, qubits: tuple[int, ...],
                     rows=None) -> None:
        """Apply a k-qubit operator (uncompiled convenience path)."""
        batch_block_applier(self.n_qubits, matrix,
                            tuple(qubits))(self, rows)

    def probability_of_one(self, qubit: int) -> np.ndarray:
        """Per-shot P(1) of ``qubit``: one reduce for the cohort.

        The batched-measurement reduction: a single
        ``np.add.reduce`` over the ``(width, 2^n)`` matrix replaces
        ``width`` scalar reductions of the serial path.
        """
        view = self._psi.reshape(self.width, -1, 2, 1 << qubit)
        return np.add.reduce(np.abs(view[:, :, 1, :]) ** 2, axis=(1, 2))

    def collapse(self, qubit: int, outcomes: np.ndarray,
                 p_one: np.ndarray) -> None:
        """Project every shot onto its drawn outcome and renormalise.

        ``outcomes`` holds each shot's (already drawn) measurement
        result; the complementary branch of each row is zeroed by
        boolean groups and all rows are renormalised in one division.
        """
        ones = np.asarray(outcomes, dtype=bool)
        norms = np.sqrt(np.where(ones, p_one, 1.0 - p_one))
        if np.any(norms == 0.0):
            raise RuntimeError("projection onto zero-probability outcome")
        view = self._psi.reshape(self.width, -1, 2, 1 << qubit)
        view[ones, :, 0, :] = 0.0
        view[~ones, :, 1, :] = 0.0
        self._psi /= norms[:, None]


