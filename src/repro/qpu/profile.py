"""Calibration-style device profiles: per-qubit timing and noise.

Real control stacks are programmed against a *calibration database*:
each qubit has its own coherence times, readout fidelities and pulse
durations, and each coupler its own residual ZZ strength.  A
:class:`DeviceProfile` is this reproduction's equivalent — a JSON
document loaded once and threaded through the whole stack:

* ``qpu/device.py`` reads per-qubit **gate durations** from it, so the
  busy/violation bookkeeping and drive-window (ZZ) accounting follow
  the calibrated pulse lengths instead of the library defaults;
* ``qpu/noise.py`` channels are built from it
  (:class:`~repro.qpu.noise.QubitReadoutError`,
  :class:`~repro.qpu.noise.QubitDecoherenceNoise`,
  :class:`~repro.qpu.noise.PairZZCrosstalk`), giving every qubit its
  own T1/T2 and readout flip probabilities and every coupling pair its
  own ZZ coefficient;
* the trace cache compiles durations and channel parameters from the
  profile at compile time, so cached/batched/artifact-warm replay
  stays bit-identical to the cycle-accurate simulation;
* :func:`~repro.qcp.artifacts.artifact_fingerprint` and the service's
  engine keys include :meth:`DeviceProfile.fingerprint`, making the
  profile part of compile identity (content-addressed: renaming the
  file changes nothing, editing one T1 invalidates everything).

Parsing fails **closed**: an unknown key anywhere in the document
raises :class:`ValueError` naming the offending key, in the same
spirit as the :class:`~repro.qpu.noise.NoiseModel` allow-lists — a
typo'd calibration field must never be silently ignored.

JSON schema (see ``docs/device_profiles.md``)::

    {
      "name": "paper_37q",
      "backend": "statevector",          # optional routing override
      "defaults": {
        "t1_us": 80.0, "t2_us": 60.0,
        "readout": {"p0_given_1": 0.02, "p1_given_0": 0.01},
        "gates": {"x90": 18, "measure": 320}
      },
      "qubits": {
        "0": {"t1_us": 72.5, "gates": {"x90": 22}},
        "1": {"readout": {"p0_given_1": 0.035}}
      },
      "couplings": [
        {"pair": [0, 1], "zz_khz": 2400.0}
      ]
    }

Every section is optional; per-qubit entries override ``defaults``
field by field, and anything neither specifies falls back to the gate
library durations / :class:`~repro.qpu.noise.DecoherenceNoise` class
defaults.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from dataclasses import dataclass, field

from repro.circuit.gates import GATE_ALIASES, GATE_LIBRARY, lookup_gate
from repro.qpu.noise import (NoiseModel, PairZZCrosstalk,
                             QubitDecoherenceNoise, QubitReadoutError)

_TOP_KEYS = ("name", "backend", "defaults", "qubits", "couplings")
_QUBIT_KEYS = ("t1_us", "t2_us", "readout", "gates")
_READOUT_KEYS = ("p0_given_1", "p1_given_0")
_COUPLING_KEYS = ("pair", "zz_khz")


def _unknown(kind: str, key: object, allowed: tuple[str, ...]) -> ValueError:
    return ValueError(
        f"unknown device-profile {kind} field {key!r} "
        f"(allowed: {', '.join(allowed)})")


def _canonical_gate(name: object, where: str) -> str:
    if not isinstance(name, str):
        raise ValueError(f"device-profile {where}: gate name must be a "
                         f"string, got {name!r}")
    key = name.lower()
    key = GATE_ALIASES.get(key, key)
    if key not in GATE_LIBRARY:
        raise ValueError(f"device-profile {where}: unknown gate {name!r}")
    return key


def _check_time(value: object, key: str, where: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or value <= 0:
        raise ValueError(f"device-profile {where}: {key} must be a "
                         f"positive number, got {value!r}")
    return float(value)


def _check_probability(value: object, key: str, where: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool) \
            or not 0.0 <= value <= 1.0:
        raise ValueError(f"device-profile {where}: {key} must be a "
                         f"probability in [0, 1], got {value!r}")
    return float(value)


@dataclass(frozen=True)
class QubitCalibration:
    """Calibration data for one qubit (or the ``defaults`` section).

    ``None`` fields are *unspecified*: resolution falls through to the
    profile defaults and then to the library/class defaults, field by
    field.  ``gate_ns`` holds per-gate duration overrides keyed by
    canonical gate name.
    """

    t1_us: float | None = None
    t2_us: float | None = None
    p0_given_1: float | None = None
    p1_given_0: float | None = None
    gate_ns: tuple[tuple[str, int], ...] = ()

    @classmethod
    def from_dict(cls, data: dict, where: str) -> "QubitCalibration":
        if not isinstance(data, dict):
            raise ValueError(f"device-profile {where}: expected an "
                             f"object, got {data!r}")
        for key in data:
            if key not in _QUBIT_KEYS:
                raise _unknown(f"{where}", key, _QUBIT_KEYS)
        t1 = t2 = None
        if data.get("t1_us") is not None:
            t1 = _check_time(data["t1_us"], "t1_us", where)
        if data.get("t2_us") is not None:
            t2 = _check_time(data["t2_us"], "t2_us", where)
        p0 = p1 = None
        readout = data.get("readout")
        if readout is not None:
            if not isinstance(readout, dict):
                raise ValueError(f"device-profile {where}: readout must "
                                 f"be an object, got {readout!r}")
            for key in readout:
                if key not in _READOUT_KEYS:
                    raise _unknown(f"{where} readout", key, _READOUT_KEYS)
            if readout.get("p0_given_1") is not None:
                p0 = _check_probability(readout["p0_given_1"],
                                        "p0_given_1", where)
            if readout.get("p1_given_0") is not None:
                p1 = _check_probability(readout["p1_given_0"],
                                        "p1_given_0", where)
        gate_ns = []
        gates = data.get("gates")
        if gates is not None:
            if not isinstance(gates, dict):
                raise ValueError(f"device-profile {where}: gates must be "
                                 f"an object, got {gates!r}")
            for name, duration in gates.items():
                canonical = _canonical_gate(name, where)
                if not isinstance(duration, int) \
                        or isinstance(duration, bool) or duration < 1:
                    raise ValueError(
                        f"device-profile {where}: duration of "
                        f"{name!r} must be a positive integer number "
                        f"of ns, got {duration!r}")
                gate_ns.append((canonical, duration))
        return cls(t1_us=t1, t2_us=t2, p0_given_1=p0, p1_given_0=p1,
                   gate_ns=tuple(sorted(gate_ns)))

    def canonical(self) -> dict:
        entry: dict = {}
        if self.t1_us is not None:
            entry["t1_us"] = self.t1_us
        if self.t2_us is not None:
            entry["t2_us"] = self.t2_us
        readout = {}
        if self.p0_given_1 is not None:
            readout["p0_given_1"] = self.p0_given_1
        if self.p1_given_0 is not None:
            readout["p1_given_0"] = self.p1_given_0
        if readout:
            entry["readout"] = readout
        if self.gate_ns:
            entry["gates"] = dict(self.gate_ns)
        return entry

    @property
    def has_decoherence(self) -> bool:
        return self.t1_us is not None or self.t2_us is not None

    @property
    def has_readout(self) -> bool:
        return self.p0_given_1 is not None or self.p1_given_0 is not None


@dataclass(frozen=True)
class DeviceProfile:
    """A loaded calibration document (see the module docstring).

    Instances are immutable and content-addressed:
    :meth:`fingerprint` hashes :meth:`canonical`, which depends only on
    the calibration *content* — never on the file path it was loaded
    from.
    """

    name: str = ""
    backend: str | None = None
    defaults: QubitCalibration = field(default_factory=QubitCalibration)
    qubits: tuple[tuple[int, QubitCalibration], ...] = ()
    couplings: tuple[tuple[int, int, float], ...] = ()  # (a, b, zz_hz)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_by_qubit", dict(self.qubits))
        object.__setattr__(self, "_default_gate_ns",
                           dict(self.defaults.gate_ns))
        object.__setattr__(
            self, "_gate_ns",
            {qubit: dict(calibration.gate_ns)
             for qubit, calibration in self.qubits})

    # -- construction -----------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceProfile":
        """Parse a calibration document; fails closed on unknown keys."""
        if not isinstance(data, dict):
            raise ValueError(
                f"device profile must be a JSON object, got {data!r}")
        for key in data:
            if key not in _TOP_KEYS:
                raise _unknown("", key, _TOP_KEYS)
        name = data.get("name", "")
        if not isinstance(name, str):
            raise ValueError(f"device-profile name must be a string, "
                             f"got {name!r}")
        backend = data.get("backend")
        if backend is not None:
            from repro.qpu.backend import backend_names
            if backend not in backend_names():
                raise ValueError(
                    f"device-profile backend {backend!r} is not a "
                    f"registered simulation backend (available: "
                    f"{', '.join(backend_names())})")
        defaults = QubitCalibration.from_dict(data.get("defaults", {}),
                                              "defaults")
        qubits = []
        for label, entry in (data.get("qubits") or {}).items():
            try:
                index = int(label)
            except (TypeError, ValueError):
                raise ValueError(f"device-profile qubit key {label!r} "
                                 f"is not a qubit index") from None
            if index < 0:
                raise ValueError(f"device-profile qubit key {label!r} "
                                 f"is not a qubit index")
            qubits.append((index, QubitCalibration.from_dict(
                entry, f"qubit {index}")))
        couplings = []
        for entry in data.get("couplings") or ():
            if not isinstance(entry, dict):
                raise ValueError(f"device-profile coupling must be an "
                                 f"object, got {entry!r}")
            for key in entry:
                if key not in _COUPLING_KEYS:
                    raise _unknown("coupling", key, _COUPLING_KEYS)
            pair = entry.get("pair")
            if (not isinstance(pair, (list, tuple)) or len(pair) != 2
                    or not all(isinstance(q, int)
                               and not isinstance(q, bool)
                               and q >= 0 for q in pair)
                    or pair[0] == pair[1]):
                raise ValueError(f"device-profile coupling pair must be "
                                 f"two distinct qubit indices, got "
                                 f"{pair!r}")
            zz_khz = entry.get("zz_khz")
            if not isinstance(zz_khz, (int, float)) \
                    or isinstance(zz_khz, bool):
                raise ValueError(f"device-profile coupling zz_khz must "
                                 f"be a number, got {zz_khz!r}")
            left, right = sorted(pair)
            couplings.append((left, right, float(zz_khz) * 1e3))
        return cls(name=name, backend=backend, defaults=defaults,
                   qubits=tuple(sorted(qubits)),
                   couplings=tuple(sorted(couplings)))

    # -- identity ---------------------------------------------------------

    def canonical(self) -> dict:
        """Round-trippable, content-only JSON form (sorted, path-free)."""
        return {
            "name": self.name,
            "backend": self.backend,
            "defaults": self.defaults.canonical(),
            "qubits": {str(qubit): calibration.canonical()
                       for qubit, calibration in self.qubits},
            "couplings": [{"pair": [left, right], "zz_khz": zz_hz / 1e3}
                          for left, right, zz_hz in self.couplings],
        }

    def fingerprint(self) -> str:
        """SHA-256 over the canonical content; the compile-identity key."""
        rendered = json.dumps(self.canonical(), sort_keys=True,
                              separators=(",", ":"))
        return hashlib.sha256(rendered.encode()).hexdigest()

    # -- resolution -------------------------------------------------------

    def gate_duration_ns(self, gate: str, qubits: tuple[int, ...]) -> int:
        """Calibrated duration of ``gate`` driven on ``qubits``.

        Per-qubit override, else the ``defaults`` section, else the
        gate library.  Multi-qubit gates take the slowest involved
        qubit's duration — the pulse ends when the last channel does.
        """
        key = gate.lower()
        key = GATE_ALIASES.get(key, key)
        duration = 0
        for qubit in qubits:
            per_qubit = self._gate_ns.get(qubit)
            value = None if per_qubit is None else per_qubit.get(key)
            if value is None:
                value = self._default_gate_ns.get(key)
            if value is None:
                value = lookup_gate(key).duration_ns
            duration = max(duration, value)
        return duration if qubits else lookup_gate(key).duration_ns

    def calibration_for(self, qubit: int) -> QubitCalibration:
        return self._by_qubit.get(qubit, QubitCalibration())

    @property
    def has_readout(self) -> bool:
        return self.defaults.has_readout or any(
            calibration.has_readout for _, calibration in self.qubits)

    @property
    def has_decoherence(self) -> bool:
        return self.defaults.has_decoherence or any(
            calibration.has_decoherence for _, calibration in self.qubits)

    @property
    def has_channels(self) -> bool:
        return (self.has_readout or self.has_decoherence
                or bool(self.couplings))

    # -- noise composition ------------------------------------------------

    def noise_model(self, base: NoiseModel | None = None,
                    seed: int | None = None) -> NoiseModel | None:
        """Compose the profile's channels over an optional base model.

        Gate channels (depolarizing/Pauli) come from ``base``
        untouched; readout, decoherence and ZZ are *replaced* by the
        profile's per-qubit/per-pair channels when the profile defines
        them, and inherited from ``base`` otherwise.  With no base and
        no profile channels the result is ``None`` (ideal).
        """
        if base is None and not self.has_channels:
            return None
        readout = base.readout if base is not None else None
        decoherence = base.decoherence if base is not None else None
        zz = base.zz if base is not None else None
        if self.has_readout:
            default_p0 = self.defaults.p0_given_1 or 0.0
            default_p1 = self.defaults.p1_given_0 or 0.0
            per_qubit = []
            for qubit, calibration in self.qubits:
                if not calibration.has_readout:
                    continue
                p0 = calibration.p0_given_1
                p1 = calibration.p1_given_0
                per_qubit.append((qubit,
                                  default_p0 if p0 is None else p0,
                                  default_p1 if p1 is None else p1))
            readout = QubitReadoutError(p0_given_1=default_p0,
                                        p1_given_0=default_p1,
                                        per_qubit=tuple(per_qubit))
        if self.has_decoherence:
            default_t1 = self.defaults.t1_us or 75.0
            default_t2 = self.defaults.t2_us or 60.0
            per_qubit = []
            for qubit, calibration in self.qubits:
                if not calibration.has_decoherence:
                    continue
                t1 = calibration.t1_us
                t2 = calibration.t2_us
                per_qubit.append((qubit,
                                  default_t1 if t1 is None else t1,
                                  default_t2 if t2 is None else t2))
            decoherence = QubitDecoherenceNoise(
                t1_us=default_t1, t2_us=default_t2,
                per_qubit=tuple(per_qubit))
        if self.couplings:
            zz = PairZZCrosstalk(
                zeta_hz=0.0,
                pairs=tuple((left, right)
                            for left, right, _ in self.couplings),
                pair_zeta_hz=self.couplings)
        if base is not None:
            return NoiseModel(
                depolarizing=base.depolarizing,
                two_qubit_depolarizing=base.two_qubit_depolarizing,
                pauli=base.pauli, zz=zz, readout=readout,
                decoherence=decoherence,
                seed=base.seed if seed is None else seed)
        return NoiseModel(zz=zz, readout=readout,
                          decoherence=decoherence, seed=seed)


def load_device_profile(path: str | pathlib.Path) -> DeviceProfile:
    """Load and validate a calibration JSON file (fail closed)."""
    text = pathlib.Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"device profile {str(path)!r} is not valid JSON: {exc}"
        ) from None
    return DeviceProfile.from_dict(data)
