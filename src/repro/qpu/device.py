"""QPU device models receiving timed operations from the control stack.

Two flavours share one interface:

* :class:`SimulatedQPU` — a functional simulator with a noise model,
  parameterized by a :mod:`simulation backend <repro.qpu.backend>`:
  the dense ``"statevector"`` (exact, <= 24 qubits; the default — the
  :class:`StateVectorQPU` alias pins it) or the polynomial
  ``"stabilizer"`` tableau (Clifford-only, hundreds of qubits).  It
  tracks simultaneous-drive windows so the ZZ crosstalk channel can
  act exactly when two coupled qubits are driven at once.
* :class:`PRNGQPU` — no quantum state; measurement outcomes come from a
  pseudo-random (or scripted) source, reproducing the paper's FPGA
  methodology for the 37-qubit microarchitecture benchmarks.

Both record an *operation log* with issue timestamps so tests and
metrics can check timing behaviour (deterministic operation supply,
Section 4.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuit.gates import lookup_gate
from repro.qpu.backend import SimulationBackend, make_backend
from repro.qpu.noise import NoiseModel, ideal_noise_model
from repro.qpu.readout import DeterministicReadout, PRNGReadout
from repro.qpu.topology import Topology, full_topology


@dataclass(frozen=True)
class AppliedOperation:
    """One operation as received by the QPU, with its issue time."""

    time_ns: int
    gate: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = ()


class QPUBase:
    """Shared bookkeeping: operation log and timing checks.

    ``profile`` is an optional calibrated
    :class:`~repro.qpu.profile.DeviceProfile`; when set, every duration
    the bookkeeping uses — busy intervals, timing-violation checks,
    drive windows — comes from :meth:`gate_duration_ns`'s per-qubit
    resolution instead of the uniform gate library.
    """

    def __init__(self, topology: Topology, profile=None) -> None:
        self.topology = topology
        self.profile = profile
        self.operation_log: list[AppliedOperation] = []
        self._busy_until: dict[int, int] = {}
        self.timing_violations: list[AppliedOperation] = []

    @property
    def n_qubits(self) -> int:
        return self.topology.n_qubits

    def gate_duration_ns(self, gate: str, qubits: tuple[int, ...]) -> int:
        """Duration of ``gate`` on ``qubits`` (profile-calibrated)."""
        if self.profile is not None:
            return self.profile.gate_duration_ns(gate, qubits)
        return lookup_gate(gate).duration_ns

    def _record(self, time_ns: int, gate: str, qubits: tuple[int, ...],
                params: tuple[float, ...] = ()) -> AppliedOperation:
        operation = AppliedOperation(time_ns, gate, tuple(qubits),
                                     tuple(params))
        self.operation_log.append(operation)
        duration = self.gate_duration_ns(gate, operation.qubits)
        for qubit in operation.qubits:
            if self._busy_until.get(qubit, 0) > time_ns:
                # An operation arrived while the qubit was still
                # executing the previous one: a timing violation the
                # microarchitecture is supposed to prevent.
                self.timing_violations.append(operation)
            self._busy_until[qubit] = time_ns + duration
        return operation

    def apply_gate(self, time_ns: int, gate: str, qubits: tuple[int, ...],
                   params: tuple[float, ...] = ()) -> None:
        raise NotImplementedError

    def measure(self, time_ns: int, qubit: int) -> int:
        raise NotImplementedError

    def reset(self, time_ns: int, qubit: int) -> None:
        raise NotImplementedError


class SimulatedQPU(QPUBase):
    """Functional QPU: every issued operation acts on a backend state.

    ``backend`` selects the state representation by registry name
    (``"statevector"`` or ``"stabilizer"``); the live state object is
    exposed as :attr:`state`.  Noise channels that need amplitudes
    (raw unitaries, amplitude damping) only work on the dense backend;
    the stabilizer backend raises
    :class:`~repro.qpu.backend.NonCliffordGateError` for them and for
    any non-Clifford gate.
    """

    def __init__(self, topology: Topology | int,
                 noise: NoiseModel | None = None,
                 seed: int | None = None,
                 backend: str = "statevector",
                 profile=None) -> None:
        if isinstance(topology, int):
            topology = full_topology(topology)
        if profile is not None:
            # Compose calibrated per-qubit/per-pair channels over the
            # supplied model (see DeviceProfile.noise_model) once, at
            # construction — restart() reseeds the composed model.
            noise = profile.noise_model(base=noise, seed=seed)
        super().__init__(topology, profile=profile)
        self.noise = noise or ideal_noise_model()
        self.backend_name = backend
        self._rng = random.Random(seed)
        self.state: SimulationBackend = make_backend(
            backend, topology.n_qubits, rng=self._rng)
        # Active drive windows for ZZ accounting: qubit -> (start, end).
        self._windows: dict[int, tuple[int, int]] = {}
        # Pre-collapse ground-state probability at each qubit's last
        # measurement (what an averaged readout would estimate).
        self.measure_ground_probabilities: dict[int, float] = {}

    def restart(self, seed: int | None = None) -> None:
        """Fresh |0...0> state; the operation log carries on.

        ``seed`` reseeds the measurement RNG **and** the noise model's
        channel RNG (with a salted derivation, see
        :meth:`~repro.qpu.noise.NoiseModel.reseed`), making the new
        state's outcome stream *and* its noise trajectory reproducible
        — what a shot engine needs to make per-shot seeds meaningful
        on a reused QPU, and what lets the trace cache replay noisy
        shots bit-identically.  The state object is reinitialized *in
        place* so its identity is stable across shots — compiled
        replay closures bound to it (trace cache) survive a restart.
        """
        if seed is not None:
            self._rng.seed(seed)
            self.noise.reseed(seed)
        self.state.reinitialize()
        self._windows.clear()
        self._busy_until.clear()
        self.measure_ground_probabilities.clear()

    def _note_window(self, time_ns: int, qubits: tuple[int, ...],
                     duration: int) -> None:
        """Record drive windows and apply per-pair ZZ for overlaps.

        A window whose drive stopped at or before ``time_ns`` can
        never overlap this or any later gate (issue times are
        monotone per qubit), so it is pruned first — the dict holds
        only open windows, not every qubit ever driven.

        Each coupled pair touching the gate accumulates its *own*
        overlap's conditional phase (``ZZCrosstalk.window_events`` is
        the single shared implementation), never one collapsed
        ``max``-overlap event for the whole driven set.
        """
        windows = self._windows
        expired = [qubit for qubit, (_, stop) in windows.items()
                   if stop <= time_ns]
        for qubit in expired:
            del windows[qubit]
        end = time_ns + duration
        events = self.noise.zz_window_events(windows, time_ns, end,
                                             qubits)
        for qubit in qubits:
            windows[qubit] = (time_ns, end)
        if events:
            self.noise.apply_zz_events(self.state, events)

    def _decay_idle(self, time_ns: int, qubits: tuple[int, ...]) -> None:
        """T1/T2 decay for the idle gap since each qubit's last op.

        The longer the control processor delays an operation, the
        longer its qubits idle and the more they decay — the error
        mechanism the paper's TR <= 1 requirement exists to bound.
        """
        if self.noise.decoherence is None:
            return
        for qubit in qubits:
            idle = time_ns - self._busy_until.get(qubit, 0)
            if idle > 0:
                self.noise.idle_decay(self.state, qubit, idle)

    def apply_gate(self, time_ns: int, gate: str, qubits: tuple[int, ...],
                   params: tuple[float, ...] = ()) -> None:
        qubits = tuple(qubits)
        definition = lookup_gate(gate)
        self.topology.validate_gate(qubits)
        self._decay_idle(time_ns, qubits)
        self._record(time_ns, gate, qubits, params)
        if definition.is_reset:
            self.state.reset(qubits[0])
            return
        if definition.is_measurement:
            raise ValueError("use measure() for measurement operations")
        self.state.apply_gate(gate, qubits, tuple(params))
        self.noise.after_gate(self.state, gate, qubits)
        self._note_window(time_ns, qubits,
                          self.gate_duration_ns(gate, qubits))

    def measure(self, time_ns: int, qubit: int) -> int:
        self._decay_idle(time_ns, (qubit,))
        self._record(time_ns, "measure", (qubit,))
        self.measure_ground_probabilities[qubit] = (
            1.0 - self.state.probability_of_one(qubit))
        outcome = self.state.measure(qubit)
        return self.noise.corrupt_readout(outcome, qubit)

    def reset(self, time_ns: int, qubit: int) -> None:
        self.apply_gate(time_ns, "reset", (qubit,))


class StateVectorQPU(SimulatedQPU):
    """A :class:`SimulatedQPU` pinned to the dense statevector backend."""

    def __init__(self, topology: Topology | int,
                 noise: NoiseModel | None = None,
                 seed: int | None = None,
                 profile=None) -> None:
        super().__init__(topology, noise=noise, seed=seed,
                         backend="statevector", profile=profile)


class StabilizerQPU(SimulatedQPU):
    """A :class:`SimulatedQPU` pinned to the Clifford tableau backend."""

    def __init__(self, topology: Topology | int,
                 noise: NoiseModel | None = None,
                 seed: int | None = None,
                 profile=None) -> None:
        super().__init__(topology, noise=noise, seed=seed,
                         backend="stabilizer", profile=profile)


class PRNGQPU(QPUBase):
    """Architecture-benchmark QPU: logs operations, samples outcomes."""

    def __init__(self, topology: Topology | int,
                 readout: PRNGReadout | DeterministicReadout | None = None
                 ) -> None:
        if isinstance(topology, int):
            topology = full_topology(topology)
        super().__init__(topology)
        self.readout = readout or PRNGReadout()

    def apply_gate(self, time_ns: int, gate: str, qubits: tuple[int, ...],
                   params: tuple[float, ...] = ()) -> None:
        qubits = tuple(qubits)
        self.topology.validate_gate(qubits)
        self._record(time_ns, gate, qubits, params)

    def measure(self, time_ns: int, qubit: int) -> int:
        self._record(time_ns, "measure", (qubit,))
        return self.readout.sample(qubit)

    def reset(self, time_ns: int, qubit: int) -> None:
        self._record(time_ns, "reset", (qubit,))
