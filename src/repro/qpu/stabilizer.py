"""Stabilizer-tableau simulator (Aaronson–Gottesman, the CHP scheme).

Clifford circuits — the regime of randomized benchmarking and of every
stabilizer QEC workload in the benchlib — never leave the stabilizer
group, so an n-qubit state is fully described by 2n Pauli strings
(n destabilizers + n stabilizers) plus sign bits: O(n^2) memory and
O(n) per gate instead of the dense simulator's O(2^n).  That is what
lets the control stack drive 50+ qubit repetition codes and the
37-qubit Steane syndrome benchmark with a real quantum substrate.

Tableau layout (Aaronson & Gottesman, "Improved simulation of
stabilizer circuits", PRA 70, 052328):

* rows ``0..n-1``  — destabilizers (row i starts as X_i),
* rows ``n..2n-1`` — stabilizers  (row n+i starts as Z_i),
* row  ``2n``      — scratch row for deterministic measurements.

``x[i, j]``/``z[i, j]`` are the X/Z bits of row i on qubit j and
``r[i]`` its sign bit.  Gates conjugate every row; measurement follows
the textbook random/deterministic split.

Non-Clifford gates (t, rx(theta), ...) raise
:class:`~repro.qpu.backend.NonCliffordGateError` — use the
``"statevector"`` backend for those circuits.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

import numpy as np

from repro.qpu.backend import (BackendOp, NonCliffordGateError,
                               SimulationBackend, register_backend)

#: Gates the tableau can conjugate by, with their decomposition into
#: the primitive conjugations implemented below.  Order matters: the
#: entries are applied left to right as a circuit.
_CLIFFORD_DECOMPOSITIONS: dict[str, tuple[str, ...]] = {
    "i": (),
    "x": ("x",),
    "y": ("y",),
    "z": ("z",),
    "h": ("h",),
    "s": ("s",),
    "sdg": ("z", "s"),          # S† = S·Z  (up to global phase)
    "x90": ("h", "s", "h"),     # sqrt(X)  = H·S·H
    "xm90": ("h", "z", "s", "h"),
    "y90": ("z", "h"),          # Ry(+90°) = H·Z
    "ym90": ("h", "z"),         # Ry(-90°) = Z·H
}

_TWO_QUBIT_DECOMPOSITIONS: dict[str, tuple[tuple[str, int, int], ...]] = {
    # (primitive, qubit-slot a, qubit-slot b); slots index into the
    # gate's (control, target) pair.
    "cnot": (("cnot", 0, 1),),
    "cz": (("h", 1, 1), ("cnot", 0, 1), ("h", 1, 1)),
    "swap": (("cnot", 0, 1), ("cnot", 1, 0), ("cnot", 0, 1)),
    # iSWAP = SWAP · CZ · (S ⊗ S)
    "iswap": (("s", 0, 0), ("s", 1, 1),
              ("h", 1, 1), ("cnot", 0, 1), ("h", 1, 1),
              ("cnot", 0, 1), ("cnot", 1, 0), ("cnot", 0, 1)),
}


@register_backend
class StabilizerState(SimulationBackend):
    """An ``n_qubits`` stabilizer state with in-place conjugation."""

    backend_name = "stabilizer"

    def __init__(self, n_qubits: int,
                 rng: random.Random | None = None) -> None:
        if n_qubits <= 0:
            raise ValueError("need at least one qubit")
        self.n_qubits = n_qubits
        self.rng = rng or random.Random()
        rows = 2 * n_qubits + 1
        self.x = np.zeros((rows, n_qubits), dtype=np.uint8)
        self.z = np.zeros((rows, n_qubits), dtype=np.uint8)
        self.r = np.zeros(rows, dtype=np.uint8)
        idx = np.arange(n_qubits)
        self.x[idx, idx] = 1                 # destabilizer i = X_i
        self.z[n_qubits + idx, idx] = 1      # stabilizer  i = Z_i

    def copy(self) -> "StabilizerState":
        clone = StabilizerState.__new__(StabilizerState)
        clone.n_qubits = self.n_qubits
        clone.rng = self.rng
        clone.x = self.x.copy()
        clone.z = self.z.copy()
        clone.r = self.r.copy()
        return clone

    def reinitialize(self) -> None:
        """Return to |0...0> in place (object identity preserved)."""
        self.x.fill(0)
        self.z.fill(0)
        self.r.fill(0)
        idx = np.arange(self.n_qubits)
        self.x[idx, idx] = 1
        self.z[self.n_qubits + idx, idx] = 1

    def snapshot(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Checkpoint: defensive copies of the (x, z, r) tableau."""
        return self.x.copy(), self.z.copy(), self.r.copy()

    def restore(self,
                snap: tuple[np.ndarray, np.ndarray, np.ndarray]) -> None:
        """Overwrite the tableau in place from a :meth:`snapshot`.

        Also accepts a *constructed* snapshot — the trace cache
        materializes the divergence frontier from a trie node's
        compile-time x/z model plus the live packed sign column, which
        is exactly an (x, z, r) triple.
        """
        x, z, r = snap
        if x.shape != self.x.shape or z.shape != self.z.shape \
                or r.shape != self.r.shape:
            raise ValueError(
                f"snapshot shapes {(x.shape, z.shape, r.shape)} do not "
                f"match the {self.n_qubits}-qubit tableau")
        self.x[:, :] = x
        self.z[:, :] = z
        self.r[:] = r

    # -- primitive conjugations (vectorised over all rows) -----------------

    def _h(self, a: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, a]
        self.x[:, a], self.z[:, a] = (self.z[:, a].copy(),
                                      self.x[:, a].copy())

    def _s(self, a: int) -> None:
        self.r ^= self.x[:, a] & self.z[:, a]
        self.z[:, a] ^= self.x[:, a]

    def _x(self, a: int) -> None:
        self.r ^= self.z[:, a]

    def _z(self, a: int) -> None:
        self.r ^= self.x[:, a]

    def _y(self, a: int) -> None:
        self.r ^= self.x[:, a] ^ self.z[:, a]

    def _cnot(self, a: int, b: int) -> None:
        self.r ^= (self.x[:, a] & self.z[:, b]
                   & (self.x[:, b] ^ self.z[:, a] ^ 1))
        self.x[:, b] ^= self.x[:, a]
        self.z[:, a] ^= self.z[:, b]

    _ONE_QUBIT = {"h": _h, "s": _s, "x": _x, "z": _z, "y": _y}

    # -- gate interface ----------------------------------------------------

    def apply_gate(self, gate: str, qubits: tuple[int, ...],
                   params: tuple[float, ...] = ()) -> None:
        """Apply a library gate by name (Clifford gates only)."""
        from repro.circuit.gates import lookup_gate

        name = lookup_gate(gate).name
        qubits = tuple(qubits)
        for qubit in qubits:
            self._check_qubit(qubit)
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"duplicate qubits: {qubits}")
        if name == "reset":
            self.reset(qubits[0])
            return
        if name == "measure":
            raise ValueError(
                f"gate {gate!r} is not unitary; use measure()/reset()")
        if params:
            raise NonCliffordGateError(
                f"parametric gate {gate!r} is not Clifford; use the "
                f"'statevector' backend for this circuit")
        if name in _CLIFFORD_DECOMPOSITIONS:
            for primitive in _CLIFFORD_DECOMPOSITIONS[name]:
                self._ONE_QUBIT[primitive](self, qubits[0])
            return
        if name in _TWO_QUBIT_DECOMPOSITIONS:
            for primitive, a, b in _TWO_QUBIT_DECOMPOSITIONS[name]:
                if primitive == "cnot":
                    self._cnot(qubits[a], qubits[b])
                else:
                    self._ONE_QUBIT[primitive](self, qubits[a])
            return
        raise NonCliffordGateError(
            f"gate {gate!r} is not Clifford; the stabilizer backend "
            f"supports {sorted(_CLIFFORD_DECOMPOSITIONS)} and "
            f"{sorted(_TWO_QUBIT_DECOMPOSITIONS)} — use the "
            f"'statevector' backend for this circuit")

    def compile_ops(self,
                    ops: Sequence[BackendOp]) -> Callable[[], None]:
        """Flatten an op stream into primitive tableau conjugations.

        Name resolution, qubit validation and the Clifford
        decomposition all happen once here; a replay is then a tight
        loop over pre-bound primitive updates (``_h``/``_s``/``_x``/
        ``_y``/``_z``/``_cnot``) with no per-gate lookups left.
        """
        from repro.circuit.gates import lookup_gate

        steps: list[tuple[Callable, tuple]] = []
        one_qubit = self._ONE_QUBIT
        for kind, name, qubits, params in ops:
            qubits = tuple(qubits)
            for qubit in qubits:
                self._check_qubit(qubit)
            if kind == "reset":
                steps.append((self.reset, (qubits[0],)))
                continue
            canonical = lookup_gate(name).name
            if params:
                raise NonCliffordGateError(
                    f"parametric gate {name!r} is not Clifford; use the "
                    f"'statevector' backend for this circuit")
            if canonical in _CLIFFORD_DECOMPOSITIONS:
                for primitive in _CLIFFORD_DECOMPOSITIONS[canonical]:
                    steps.append((one_qubit[primitive],
                                  (self, qubits[0])))
            elif canonical in _TWO_QUBIT_DECOMPOSITIONS:
                for primitive, a, b in _TWO_QUBIT_DECOMPOSITIONS[canonical]:
                    if primitive == "cnot":
                        steps.append((StabilizerState._cnot,
                                      (self, qubits[a], qubits[b])))
                    else:
                        steps.append((one_qubit[primitive],
                                      (self, qubits[a])))
            else:
                raise NonCliffordGateError(
                    f"gate {name!r} is not Clifford; the stabilizer "
                    f"backend cannot compile it")

        def replay() -> None:
            for conjugate, args in steps:
                conjugate(*args)

        return replay

    def apply_unitary(self, matrix: np.ndarray,
                      qubits: tuple[int, ...]) -> None:
        """Raw matrices cannot be conjugated through a tableau."""
        raise NonCliffordGateError(
            "the stabilizer backend cannot apply raw unitaries "
            "(needed e.g. by the ZZ-crosstalk channel); use the "
            "'statevector' backend")

    def apply_amplitude_damping(self, qubit: int, gamma: float) -> None:
        """Amplitude damping is not a stabilizer channel."""
        if gamma == 0.0:
            return
        raise NonCliffordGateError(
            "the stabilizer backend cannot apply amplitude damping; "
            "use the 'statevector' backend for decoherence noise")

    # -- measurement -------------------------------------------------------

    def _rowsum(self, h: int, i: int) -> None:
        """Multiply row ``i`` into row ``h``, tracking the sign."""
        x1 = self.x[i].astype(bool)
        z1 = self.z[i].astype(bool)
        x2 = self.x[h].astype(np.int64)
        z2 = self.z[h].astype(np.int64)
        # Exponent of the i^k phase picked up multiplying the Paulis
        # column by column (the g function of the CHP paper).
        g = np.zeros(self.n_qubits, dtype=np.int64)
        is_y = x1 & z1
        g[is_y] = z2[is_y] - x2[is_y]
        is_x = x1 & ~z1
        g[is_x] = z2[is_x] * (2 * x2[is_x] - 1)
        is_z = ~x1 & z1
        g[is_z] = x2[is_z] * (1 - 2 * z2[is_z])
        phase = (2 * int(self.r[h]) + 2 * int(self.r[i])
                 + int(g.sum())) % 4
        self.r[h] = phase // 2
        self.x[h] ^= self.x[i]
        self.z[h] ^= self.z[i]

    @staticmethod
    def _g_terms(x1: np.ndarray, z1: np.ndarray, x2: np.ndarray,
                 z2: np.ndarray) -> np.ndarray:
        """Branchless CHP ``g`` exponents, broadcast over rows.

        Integer-exact equivalent of the masked per-column assignments
        in :meth:`_rowsum`: Y columns contribute ``z2 - x2``, X columns
        ``z2 * (2*x2 - 1)``, Z columns ``x2 * (1 - 2*z2)`` and identity
        columns zero.
        """
        return (x1 * z1 * (z2 - x2)
                + x1 * (1 - z1) * z2 * (2 * x2 - 1)
                + (1 - x1) * z1 * x2 * (1 - 2 * z2))

    def _rowsum_batch(self, targets: np.ndarray, i: int) -> None:
        """Multiply row ``i`` into every row in ``targets`` at once.

        Each target row is independent (the multiplier row is fixed),
        so the per-row :meth:`_rowsum` loop collapses to one 2-D
        integer computation.  All arithmetic is exact, making the
        result bit-identical to the sequential loop.
        """
        x1 = self.x[i].astype(np.int16)
        z1 = self.z[i].astype(np.int16)
        x2 = self.x[targets].astype(np.int16)
        z2 = self.z[targets].astype(np.int16)
        g = self._g_terms(x1, z1, x2, z2).sum(axis=1, dtype=np.int64)
        phase = (2 * self.r[targets].astype(np.int64)
                 + 2 * int(self.r[i]) + g) % 4
        self.r[targets] = (phase // 2).astype(np.uint8)
        self.x[targets] ^= self.x[i]
        self.z[targets] ^= self.z[i]

    def _random_pivot(self, qubit: int) -> int | None:
        """Stabilizer row with an X on ``qubit``, if any.

        Such a row anticommutes with Z_qubit, making the measurement
        outcome a fair coin; no such row makes it deterministic.
        """
        n = self.n_qubits
        column = self.x[n:2 * n, qubit]
        first = int(column.argmax())
        if not column[first]:
            return None
        return n + first

    def _deterministic_outcome(self, qubit: int) -> int:
        """Outcome when Z_qubit is in the stabilizer group (no collapse).

        The scratch row accumulates the product of the stabilizer rows
        whose destabilizer partners carry an X on ``qubit``.  The
        accumulator before step ``j`` is the XOR-prefix of the earlier
        multiplier rows, so every ``g`` term is computed from prefix
        arrays in one vectorised pass.  Every intermediate product is a
        stabilizer-group element with a real sign (phase exponent even
        at every step), which is what lets the per-step ``%4``/halving
        of :meth:`_rowsum` commute with summing all terms first.
        """
        n = self.n_qubits
        hits = np.nonzero(self.x[:n, qubit])[0]
        if hits.size == 0:
            return 0
        rows = hits + n
        x1 = self.x[rows].astype(np.int16)
        z1 = self.z[rows].astype(np.int16)
        # Accumulator (scratch-row) value before each multiplication.
        x2 = np.zeros_like(x1)
        z2 = np.zeros_like(z1)
        np.bitwise_xor.accumulate(x1[:-1], axis=0, out=x2[1:])
        np.bitwise_xor.accumulate(z1[:-1], axis=0, out=z2[1:])
        g = int(self._g_terms(x1, z1, x2, z2).sum(dtype=np.int64))
        total = 2 * int(self.r[rows].sum(dtype=np.int64)) + g
        return (total % 4) // 2

    def probability_of_one(self, qubit: int) -> float:
        """Pre-collapse P(1): always 0, 1/2 or 1 for stabilizer states."""
        self._check_qubit(qubit)
        if self._random_pivot(qubit) is not None:
            return 0.5
        return float(self._deterministic_outcome(qubit))

    def measure(self, qubit: int) -> int:
        """Projectively measure ``qubit`` and collapse the state.

        Consumes exactly one rng draw (compared against the
        pre-collapse probability), matching the dense backend's
        consumption so identically seeded backends agree shot for shot.
        """
        self._check_qubit(qubit)
        pivot = self._random_pivot(qubit)
        if pivot is None:
            outcome = self._deterministic_outcome(qubit)
            self.rng.random()  # parity with the dense backend's draw
            return outcome
        outcome = 1 if self.rng.random() < 0.5 else 0
        n = self.n_qubits
        targets = np.nonzero(self.x[:, qubit])[0]
        targets = targets[targets != pivot]
        if targets.size:
            self._rowsum_batch(targets, pivot)
        # The pivot's destabilizer becomes the old stabilizer; the
        # pivot row collapses to +/- Z_qubit with the drawn sign.
        self.x[pivot - n] = self.x[pivot]
        self.z[pivot - n] = self.z[pivot]
        self.r[pivot - n] = self.r[pivot]
        self.x[pivot] = 0
        self.z[pivot] = 0
        self.z[pivot, qubit] = 1
        self.r[pivot] = outcome
        return outcome

    def reset(self, qubit: int) -> None:
        """Unconditionally reset ``qubit`` to |0> (measure + flip)."""
        if self.measure(qubit):
            self._x(qubit)

    # -- queries -----------------------------------------------------------

    def stabilizer_strings(self) -> list[str]:
        """The n stabilizer generators as signed Pauli strings."""
        n = self.n_qubits
        labels = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}
        strings = []
        for row in range(n, 2 * n):
            sign = "-" if self.r[row] else "+"
            paulis = "".join(
                labels[(int(self.x[row, q]), int(self.z[row, q]))]
                for q in range(n))
            strings.append(sign + paulis)
        return strings


# -- shot-batched sign columns -------------------------------------------------
#
# The trace cache's sign-trace replay reduces a whole decision-free
# stabilizer segment to XORs on a per-shot sign column (one bit per
# tableau row).  Packing those columns *bit-plane* style — plane[row]
# holds shot b's sign bit for that row in bit b of little-endian uint64
# words — turns one compiled XOR into a replay step for up to 64 shots
# per machine word: exactly the CHP bit-packing trick, widened along
# the shot axis instead of the qubit axis.  All arithmetic is integer
# bitwise, so batched replay is bit-identical to the serial column.


def pack_shot_bits(bits: Sequence[int]) -> np.ndarray:
    """Pack one bit per shot into little-endian uint64 words.

    Shot ``b``'s bit lands in bit ``b % 64`` of word ``b // 64`` —
    the bit-plane convention of :class:`SignBitPlanes`.
    """
    words = [0] * ((len(bits) + 63) >> 6)
    for index, bit in enumerate(bits):
        if bit:
            words[index >> 6] |= 1 << (index & 63)
    return np.array(words, dtype=np.uint64)


def pack_shot_mask(slots: Sequence[int], width: int) -> np.ndarray:
    """Cohort mask: the bit-plane words with the given shot slots set."""
    words = [0] * ((width + 63) >> 6)
    for slot in slots:
        words[slot >> 6] |= 1 << (slot & 63)
    return np.array(words, dtype=np.uint64)


def unpack_shot_bit(words: np.ndarray, slot: int) -> int:
    """Shot ``slot``'s bit from packed bit-plane words."""
    return (int(words[slot >> 6]) >> (slot & 63)) & 1


class SignBitPlanes:
    """Bit-plane-packed sign columns for a cohort of sign-trace shots.

    ``planes[row]`` is a ``(words,)`` uint64 array holding every
    shot's sign bit for that tableau row.  Mutations take a *cohort
    mask* (``pack_shot_mask`` of the live shot slots) so wavefronts
    that partitioned the cohort across trie edges keep sharing one
    plane array — each sub-cohort's XORs touch only its own bit lanes.
    """

    __slots__ = ("rows", "width", "words", "planes")

    def __init__(self, rows: int, width: int) -> None:
        if rows < 1 or width < 1:
            raise ValueError("need at least one row and one shot")
        self.rows = rows
        self.width = width
        self.words = (width + 63) >> 6
        self.planes = np.zeros((rows, self.words), dtype=np.uint64)

    def xor_rows(self, row_indices: np.ndarray,
                 cohort_mask: np.ndarray) -> None:
        """Flip the cohort's sign bits of every row in ``row_indices``.

        This is the whole-batch replay step: one vectorised XOR
        advances up to ``width`` shots through a compiled sign flip.
        """
        self.planes[row_indices] ^= cohort_mask

    def parity(self, row_indices: np.ndarray) -> np.ndarray:
        """Per-shot XOR of the rows' sign bits (vectorised popcount
        fodder: bit b of the result is shot b's parity)."""
        if len(row_indices) == 0:
            return np.zeros(self.words, dtype=np.uint64)
        return np.bitwise_xor.reduce(self.planes[row_indices], axis=0)

    def row(self, row: int) -> np.ndarray:
        """A defensive copy of one row's packed sign bits."""
        return self.planes[row].copy()

    def assign_row(self, row: int, bits: np.ndarray,
                   cohort_mask: np.ndarray) -> None:
        """Overwrite the cohort's lanes of ``row`` with ``bits``."""
        self.planes[row] = ((self.planes[row] & ~cohort_mask)
                            | (bits & cohort_mask))

    def xor_row(self, row: int, bits: np.ndarray) -> None:
        """XOR pre-masked ``bits`` into one row."""
        self.planes[row] ^= bits
