"""Pluggable simulation backends for the QPU substrate.

The control stack issues the same operation stream regardless of how
the quantum state is represented.  :class:`SimulationBackend` is the
contract between the device layer and a state representation: apply a
named gate, ask for a pre-collapse excited-state probability, measure
with collapse, reset, and fork an independent copy.

Two implementations ship with the reproduction:

* ``"statevector"`` — :class:`~repro.qpu.statevector.StateVector`, a
  dense 2^n amplitude vector.  Supports every gate in the library but
  is hard-capped at 24 qubits.
* ``"stabilizer"`` — :class:`~repro.qpu.stabilizer.StabilizerState`, an
  Aaronson–Gottesman CHP tableau.  Polynomial in the qubit count
  (hundreds of qubits are fine) but restricted to Clifford gates; a
  non-Clifford gate raises :class:`NonCliffordGateError`.

Backends register themselves in a name registry so configuration
(:class:`~repro.qcp.config.QCPConfig.qpu_backend`), the shot engine and
the CLI can select one by string.
"""

from __future__ import annotations

import abc
import random
from typing import Callable, Sequence

#: One pre-resolved backend operation: ``(kind, name, qubits, params)``
#: where ``kind`` is ``"gate"`` (unitary) or ``"reset"``.  The name is
#: already canonical (aliases resolved), so batched appliers can key
#: caches on it directly.
BackendOp = tuple[str, str, tuple[int, ...], tuple[float, ...]]


class NonCliffordGateError(ValueError):
    """A gate outside the backend's supported group was requested."""


class SimulationBackend(abc.ABC):
    """Contract between the QPU device layer and a state representation.

    Implementations own an ``n_qubits`` attribute and an ``rng``
    (``random.Random``) used for measurement draws.  Measurement must
    consume exactly **one** ``rng.random()`` draw per call (compare the
    draw against :meth:`probability_of_one`), so that different
    backends seeded identically produce identical outcome streams on
    circuits both can represent.
    """

    #: Registry name; subclasses override.
    backend_name: str = ""

    n_qubits: int
    rng: random.Random

    @abc.abstractmethod
    def apply_gate(self, gate: str, qubits: tuple[int, ...],
                   params: tuple[float, ...] = ()) -> None:
        """Apply a library gate by name."""

    @abc.abstractmethod
    def probability_of_one(self, qubit: int) -> float:
        """Pre-collapse probability of measuring ``qubit`` as 1."""

    @abc.abstractmethod
    def measure(self, qubit: int) -> int:
        """Projectively measure ``qubit`` and collapse the state."""

    @abc.abstractmethod
    def reset(self, qubit: int) -> None:
        """Force ``qubit`` to |0> (measure, flip on 1)."""

    @abc.abstractmethod
    def copy(self) -> "SimulationBackend":
        """Independent deep copy of the state (shares the rng)."""

    @abc.abstractmethod
    def reinitialize(self) -> None:
        """Return the state to |0...0> **in place**.

        Unlike building a fresh backend this keeps the object identity
        (and the rng reference) stable, so compiled operation closures
        bound to this instance stay valid across shots.
        """

    # -- checkpointing (the divergence-frontier resume path) ---------------

    @abc.abstractmethod
    def snapshot(self) -> object:
        """An opaque, immutable-by-convention copy of the state data.

        Cheaper than :meth:`copy` (no new backend object, no rng
        plumbing); the contract is that ``restore(snapshot())`` is an
        exact round trip.
        """

    @abc.abstractmethod
    def restore(self, snap: object) -> None:
        """Overwrite the state **in place** from a :meth:`snapshot`.

        Object identity (and the rng reference) is preserved, so
        compiled closures bound to this instance stay valid — same
        contract as :meth:`reinitialize`.  The rng is deliberately
        *not* part of the snapshot: a caller checkpointing mid-shot
        wants the rng at its live position.

        The trace cache's divergence-frontier resume usually needs no
        explicit checkpoint — the live state after a replayed prefix
        *is* the frontier — but its stabilizer sign-trace replay never
        touches the real tableau, so on a miss it materializes the
        frontier by calling ``restore`` with a *constructed* snapshot
        (the trie node's x/z model plus the live sign column).
        """

    # -- batched shots (the shot-batched trace-cache replay path) ----------

    def make_batch_state(self, width: int) -> object | None:
        """A lockstep batch representation of ``width`` fresh |0...0>
        states, or ``None`` when the backend has no batch kernel.

        Batched trace-cache replay advances a whole cohort of shots
        per compiled step; a backend that can represent the cohort as
        one stacked object (e.g. a ``(width, 2^n)`` amplitude matrix)
        returns it here.  The default is ``None`` — fail closed: the
        replay engine then keeps the serial per-shot loop, which is
        always correct.  (The stabilizer substrate is batched without
        this hook: its sign-trace replay never touches the tableau, so
        the cohort lives in bit-planes owned by the trace cache.)
        """
        return None

    # -- batched application (the trace-cache replay path) -----------------

    def apply_ops(self, ops: Sequence[BackendOp]) -> None:
        """Apply a pre-resolved operation stream in order.

        The stream never contains measurements — those are the branch
        points of a trace and are performed by the caller via
        :meth:`measure` so it can observe the outcome.  Resets consume
        exactly one rng draw each (measure + conditional flip), so a
        batched replay stays draw-for-draw aligned with the
        cycle-accurate simulation that recorded the stream.
        """
        for kind, name, qubits, params in ops:
            if kind == "reset":
                self.reset(qubits[0])
            else:
                self.apply_gate(name, qubits, params)

    def compile_ops(self,
                    ops: Sequence[BackendOp]) -> Callable[[], None]:
        """Compile an operation stream into a replayable closure.

        The returned thunk applies the stream to *this* backend
        instance.  Subclasses specialise it (cached unitaries, fused
        single-qubit runs, flattened tableau primitives); the default
        simply loops over :meth:`apply_ops`.  Compiled closures must be
        draw-for-draw and bit-for-bit equivalent to :meth:`apply_ops`.
        """
        frozen = tuple(ops)
        return lambda: self.apply_ops(frozen)

    def compile_fused_ops(self, ops: Sequence[BackendOp],
                          max_qubits: int | None = None
                          ) -> Callable[[], None]:
        """Compile an operation stream, fusing gates where profitable.

        Like :meth:`compile_ops` but with a *relaxed numeric contract*:
        a backend may precompose consecutive unitaries into batched
        operators (GEMM fusion), trading last-ulp amplitude identity
        for fewer passes over the state.  The rng draw *sequence* is
        strictly identical (fusion never consumes draws; resets still
        draw exactly one each), so a measurement outcome — a threshold
        comparison of a draw against the excited-state probability —
        can differ from :meth:`apply_ops` only when a draw lands
        inside the few-ulp window the perturbed probability opens:
        per-measurement probability on the order of 2^-50,
        astronomically unlikely but not structurally impossible.
        Callers that need *exact* amplitude or outcome identity (e.g.
        amplitude-level comparisons against the cycle-accurate
        simulator) must use :meth:`compile_ops`.  Backends with no
        fusion opportunity simply delegate to :meth:`compile_ops`
        (the stabilizer tableau already flattens to primitive
        conjugations; fusing further would not change the operation
        count).
        """
        return self.compile_ops(ops)

    def _check_qubit(self, qubit: int) -> None:
        if not 0 <= qubit < self.n_qubits:
            raise ValueError(f"qubit q{qubit} out of range")


_REGISTRY: dict[str, type] = {}


def register_backend(cls: type) -> type:
    """Class decorator adding a backend to the name registry."""
    if not cls.backend_name:
        raise ValueError(f"{cls.__name__} declares no backend_name")
    _REGISTRY[cls.backend_name] = cls
    return cls


def _ensure_registered() -> None:
    # The built-in backends self-register on import; importing here
    # (rather than at module top) avoids an import cycle with
    # statevector.py, which subclasses SimulationBackend.
    import repro.qpu.stabilizer  # noqa: F401
    import repro.qpu.statevector  # noqa: F401


def backend_names() -> tuple[str, ...]:
    """Names of all registered simulation backends."""
    _ensure_registered()
    return tuple(sorted(_REGISTRY))


def make_backend(name: str, n_qubits: int,
                 rng: random.Random | None = None) -> SimulationBackend:
    """Instantiate the named backend for ``n_qubits`` qubits."""
    _ensure_registered()
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown simulation backend {name!r}; available: "
            f"{', '.join(backend_names())}") from None
    return cls(n_qubits, rng=rng)
