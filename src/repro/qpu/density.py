"""Exact density-matrix simulator.

Complements the Monte-Carlo state-vector path: noise channels are
applied as exact CPTP maps, so expectation values carry no trajectory
sampling noise.  Used by the randomized-benchmarking harness to produce
smooth decay curves (the paper averages many hardware shots; the exact
channel average is the infinite-shot limit).

Practical up to ~8 qubits (the density matrix is 4^n complex numbers).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.gates import lookup_gate


class DensityMatrix:
    """An ``n_qubits`` mixed state with in-place channel application."""

    def __init__(self, n_qubits: int) -> None:
        if n_qubits <= 0:
            raise ValueError("need at least one qubit")
        if n_qubits > 8:
            raise ValueError(
                f"{n_qubits} qubits exceeds the density-matrix limit (8)")
        self.n_qubits = n_qubits
        dim = 1 << n_qubits
        self.rho = np.zeros((dim, dim), dtype=complex)
        self.rho[0, 0] = 1.0

    def _expand(self, matrix: np.ndarray,
                qubits: tuple[int, ...]) -> np.ndarray:
        """Embed a k-qubit operator into the full Hilbert space."""
        k = len(qubits)
        if matrix.shape != (1 << k, 1 << k):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match {k} qubits")
        for qubit in qubits:
            if not 0 <= qubit < self.n_qubits:
                raise ValueError(f"qubit q{qubit} out of range")
        if len(set(qubits)) != k:
            raise ValueError(f"duplicate qubits: {qubits}")
        n = self.n_qubits
        # Start from the operator on [targets..., rest...] with
        # qubits[0] as the slowest axis (the matrix convention: the
        # first qubit is the most significant bit), then permute axes
        # into standard ordering.
        rest = [q for q in range(n) if q not in qubits]
        full = np.kron(matrix, np.eye(1 << len(rest), dtype=complex))
        # ``full`` currently treats qubits as [targets..., rest...] with
        # the first target as the slowest axis; permute to standard
        # ordering (qubit n-1 slowest ... qubit 0 fastest).
        axis_sources = list(qubits) + rest
        perm = [0] * n
        for position, qubit in enumerate(axis_sources):
            # position 0 is the slowest axis of ``full``.
            perm[n - 1 - qubit] = position
        tensor = full.reshape([2] * (2 * n))
        tensor = np.transpose(tensor, perm + [n + p for p in perm])
        return tensor.reshape(1 << n, 1 << n)

    def apply_unitary(self, matrix: np.ndarray,
                      qubits: tuple[int, ...]) -> None:
        """rho <- U rho U^dagger."""
        full = self._expand(matrix, tuple(qubits))
        self.rho = full @ self.rho @ full.conj().T

    def apply_gate(self, gate: str, qubits: tuple[int, ...],
                   params: tuple[float, ...] = ()) -> None:
        definition = lookup_gate(gate)
        if not definition.is_unitary:
            raise ValueError(f"gate {gate!r} is not unitary")
        self.apply_unitary(definition.unitary(tuple(params)),
                           tuple(qubits))

    def depolarize(self, qubit: int, p: float) -> None:
        """Uniform-Pauli depolarizing channel of strength ``p``.

        Matches the Monte-Carlo channel: with probability ``p`` one of
        X, Y, Z (uniform) is injected.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"depolarizing probability out of range: {p}")
        if p == 0.0:
            return
        mixed = (1.0 - p) * self.rho
        for pauli in ("x", "y", "z"):
            full = self._expand(lookup_gate(pauli).unitary(), (qubit,))
            mixed += (p / 3.0) * (full @ self.rho @ full.conj().T)
        self.rho = mixed

    def ground_probability(self, qubit: int) -> float:
        """P(measuring ``qubit`` as 0)."""
        dim = 1 << self.n_qubits
        mask = 1 << qubit
        indices = [i for i in range(dim) if not i & mask]
        return float(np.real(np.sum(self.rho[indices, indices])))

    def purity(self) -> float:
        """Tr(rho^2); 1 for pure states."""
        return float(np.real(np.trace(self.rho @ self.rho)))

    def trace(self) -> float:
        """Tr(rho); should remain 1."""
        return float(np.real(np.trace(self.rho)))
