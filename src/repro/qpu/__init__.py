"""QPU substrate: state-vector simulator, noise, readout and devices."""

from repro.qpu.density import DensityMatrix
from repro.qpu.device import (AppliedOperation, PRNGQPU, QPUBase,
                              StateVectorQPU)
from repro.qpu.noise import (DecoherenceNoise, DepolarizingNoise,
                             NoiseModel, PauliChannel, ReadoutError,
                             ZZCrosstalk, ideal_noise_model,
                             paper_noise_model)
from repro.qpu.readout import DeterministicReadout, PRNGReadout
from repro.qpu.statevector import StateVector
from repro.qpu.topology import Topology, full_topology, linear_topology

__all__ = [
    "AppliedOperation", "DensityMatrix", "DepolarizingNoise",
    "DeterministicReadout",
    "DecoherenceNoise", "NoiseModel", "PauliChannel", "PRNGQPU",
    "PRNGReadout", "QPUBase", "ReadoutError",
    "StateVector", "StateVectorQPU", "Topology", "ZZCrosstalk",
    "full_topology", "ideal_noise_model", "linear_topology",
    "paper_noise_model",
]
