"""QPU substrate: pluggable simulation backends, noise, readout, devices.

Simulation backends
===================

The functional QPU (:class:`SimulatedQPU`) is parameterized by a
:class:`SimulationBackend` — the contract ``apply_gate`` /
``probability_of_one`` / ``measure`` / ``reset`` / ``copy`` between the
device layer and a quantum-state representation.  Two implementations
are registered:

``"statevector"`` (:class:`StateVector`)
    Dense 2^n amplitudes.  Exact for every gate in the library,
    exponential in the qubit count, hard-capped at 24 qubits.  The
    default everywhere, and what :class:`StateVectorQPU` pins.

``"stabilizer"`` (:class:`StabilizerState`)
    Aaronson–Gottesman CHP tableau.  O(n) per gate and O(n^2) memory,
    so 50+ qubit QEC workloads run end-to-end — but only Clifford
    gates (i, x, y, z, h, s, sdg, x90/xm90/y90/ym90, cnot, cz, swap,
    iswap) are representable; anything else raises
    :class:`NonCliffordGateError`.  :class:`StabilizerQPU` pins it.

Selection is threaded by name through the stack: set
``QCPConfig(qpu_backend="stabilizer")``, pass ``backend=`` to
:class:`~repro.qcp.shots.ShotEngine` / :func:`~repro.qcp.shots.run_shots`
or to :class:`SimulatedQPU` directly, or use ``--qpu stabilizer`` on the
CLI.  :func:`make_backend` instantiates a backend by registry name.
"""

from repro.qpu.backend import (NonCliffordGateError, SimulationBackend,
                               backend_names, make_backend,
                               register_backend)
from repro.qpu.density import DensityMatrix
from repro.qpu.device import (AppliedOperation, PRNGQPU, QPUBase,
                              SimulatedQPU, StabilizerQPU,
                              StateVectorQPU)
from repro.qpu.noise import (DecoherenceNoise, DepolarizingNoise,
                             NoiseModel, PairZZCrosstalk, PauliChannel,
                             QubitDecoherenceNoise, QubitReadoutError,
                             ReadoutError, ZZCrosstalk,
                             ideal_noise_model, paper_noise_model)
from repro.qpu.profile import (DeviceProfile, QubitCalibration,
                               load_device_profile)
from repro.qpu.readout import DeterministicReadout, PRNGReadout
from repro.qpu.stabilizer import StabilizerState
from repro.qpu.statevector import DENSE_QUBIT_LIMIT, StateVector
from repro.qpu.topology import Topology, full_topology, linear_topology

__all__ = [
    "AppliedOperation", "DENSE_QUBIT_LIMIT", "DensityMatrix",
    "DepolarizingNoise", "DeterministicReadout", "DeviceProfile",
    "DecoherenceNoise", "NoiseModel", "NonCliffordGateError",
    "PairZZCrosstalk", "PauliChannel", "PRNGQPU",
    "PRNGReadout", "QPUBase", "QubitCalibration",
    "QubitDecoherenceNoise", "QubitReadoutError", "ReadoutError",
    "SimulatedQPU", "SimulationBackend", "StabilizerQPU",
    "StabilizerState", "StateVector", "StateVectorQPU", "Topology",
    "ZZCrosstalk", "backend_names", "full_topology",
    "ideal_noise_model", "linear_topology", "load_device_profile",
    "make_backend", "paper_noise_model", "register_backend",
]
