"""Monte-Carlo noise channels for the QPU simulator.

The RB/simRB experiment of Figure 14 needs two error mechanisms:

* a per-gate *depolarizing* channel setting the individual-RB fidelity
  (~99.5 % per single-qubit gate in the paper), and
* an always-on *ZZ interaction* between neighbouring qubits that only
  matters while both qubits are being driven simultaneously — the paper
  attributes the simRB fidelity drop (99.5 % -> 98.7 %) to "the
  inevitable ZZ interaction between the qubits".

Channels are applied as stochastic Pauli/phase insertions on the pure
state (quantum-trajectory style), so repeated runs average to the CPTP
channel.

Seeding and reproducibility
===========================

Every :class:`NoiseModel` owns a dedicated ``random.Random`` — the
*noise rng* — that is **separate** from the measurement rng of the
simulation backend.  Channel draws therefore never perturb measurement
outcomes on an otherwise identical circuit, and vice versa.

:meth:`NoiseModel.reseed` restarts the noise rng from a per-shot seed
(the device's :meth:`~repro.qpu.device.SimulatedQPU.restart` calls it
with a salted derivation of the shot seed).  That makes the entire
noisy trajectory of a shot — which Paulis were injected where, which
readouts were flipped — a pure function of ``(program, shot seed)``,
which is what lets the trace cache (:mod:`repro.qcp.tracecache`)
replay noisy shots bit-identically: a replay consumes the noise rng
*positionally*, drawing at exactly the sites the cycle-accurate
simulation would, so both paths see the same stream.  See
``docs/noise.md`` for the full reproducibility contract.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, fields

import numpy as np

from repro.qpu.statevector import StateVector

_PAULIS = ("x", "y", "z")

#: Salt XORed into the shot seed when deriving the noise-rng seed, so
#: the noise stream never coincides with the measurement stream of the
#: identically seeded backend rng (see :meth:`NoiseModel.reseed`).
NOISE_SEED_SALT = 0x6E6F6973  # "nois"


@dataclass
class DepolarizingNoise:
    """Depolarizing channel of strength ``p`` per gate.

    With probability ``p`` a uniformly random Pauli (X, Y or Z) is
    injected on each qubit the gate touched.  The average gate fidelity
    of this channel on one qubit is ``1 - 2p/3`` (it equals a textbook
    depolarizing channel of strength ``4p/3``).
    """

    p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"depolarizing probability out of range: {self.p}")

    @property
    def average_gate_infidelity(self) -> float:
        """1 - F_avg for a single-qubit gate followed by this channel."""
        return 2.0 * self.p / 3.0

    def apply(self, state: StateVector, qubits: tuple[int, ...],
              rng: random.Random) -> None:
        for qubit in qubits:
            if rng.random() < self.p:
                state.apply_gate(rng.choice(_PAULIS), (qubit,))


@dataclass
class PauliChannel:
    """Independent X/Y/Z injection with separate probabilities.

    Generalises :class:`DepolarizingNoise`; e.g. ``PauliChannel(px=p)``
    is a pure bit-flip channel — the error model a repetition code is
    designed to correct.
    """

    px: float = 0.0
    py: float = 0.0
    pz: float = 0.0

    def __post_init__(self) -> None:
        for name in ("px", "py", "pz"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of range: {value}")
        if self.px + self.py + self.pz > 1.0:
            raise ValueError("Pauli probabilities exceed 1")

    def apply(self, state: StateVector, qubits: tuple[int, ...],
              rng: random.Random) -> None:
        for qubit in qubits:
            draw = rng.random()
            if draw < self.px:
                state.apply_gate("x", (qubit,))
            elif draw < self.px + self.py:
                state.apply_gate("y", (qubit,))
            elif draw < self.px + self.py + self.pz:
                state.apply_gate("z", (qubit,))


@dataclass
class ZZCrosstalk:
    """Always-on ZZ coupling between qubit pairs.

    ``zeta_hz`` is the ZZ coefficient (Hz): during a window of ``t``
    seconds in which *both* qubits of a coupled pair are simultaneously
    driven, the pair accumulates a conditional phase
    ``phi = 2 pi * zeta * t`` applied as ``diag(1, 1, 1, e^{i phi})``.

    When only one qubit is driven the echo of the individual-RB pulse
    train largely cancels the coupling, which is why individual RB does
    not see this error; simultaneous RB does (Section 8).
    """

    zeta_hz: float
    pairs: tuple[tuple[int, int], ...] = ()

    def conditional_phase(self, duration_ns: float) -> float:
        """Phase (radians) accumulated over ``duration_ns``."""
        return 2.0 * math.pi * self.zeta_hz * duration_ns * 1e-9

    def zeta_for(self, left: int, right: int) -> float:
        """ZZ coefficient (Hz) of one coupling pair.

        The uniform channel ignores the pair;
        :class:`PairZZCrosstalk` overrides this with calibrated
        per-pair strengths.
        """
        return self.zeta_hz

    def pair_unitary(self, left: int, right: int,
                     duration_ns: float) -> "np.ndarray | None":
        """``diag(1, 1, 1, e^{i phi})`` for one pair's overlap window.

        ``None`` when the accumulated phase is exactly zero (the event
        can be elided entirely, which keeps compiled replay free of
        no-op unitaries).
        """
        phi = 2.0 * math.pi * self.zeta_for(left, right) \
            * duration_ns * 1e-9
        if phi == 0.0:
            return None
        return np.diag([1.0, 1.0, 1.0,
                        np.exp(1j * phi)]).astype(complex)

    def apply_pair(self, state: StateVector, left: int, right: int,
                   duration_ns: float) -> None:
        """Apply one pair's conditional phase for an overlap window."""
        matrix = self.pair_unitary(left, right, duration_ns)
        if matrix is not None:
            state.apply_unitary(matrix, (left, right))

    def window_events(self, windows: dict, time_ns: int, end: int,
                      gate_qubits: tuple[int, ...]) -> list:
        """Per-pair ``(left, right, overlap_ns)`` events for one drive.

        ``windows`` maps qubit -> ``(start, stop)`` of its still-open
        drive window; the gate being issued drives ``gate_qubits``
        over ``[time_ns, end)``.  A coupled pair accumulates
        conditional phase when one of its qubits is in the gate while
        the other's window overlaps the gate's — each pair with its
        *own* overlap duration, never a collapsed maximum over the
        whole driven set.  Pairs internal to one gate are skipped (a
        calibrated two-qubit gate already includes its static ZZ), and
        pairs not touching the current gate are skipped too: their
        interaction was accounted when *their* later-driven qubit was
        issued.  Events are emitted in the channel's declared pair
        order so every execution path — cycle-accurate, compiled
        dense, batched — applies the unitaries identically.

        This is the single implementation all paths share; see
        ``SimulatedQPU._note_window`` and the trace-cache dense
        compilers.
        """
        events = []
        for left, right in self.pairs:
            if left in gate_qubits:
                if right in gate_qubits:
                    continue
                other = right
            elif right in gate_qubits:
                other = left
            else:
                continue
            window = windows.get(other)
            if window is None:
                continue
            overlap = min(end, window[1]) - max(time_ns, window[0])
            if overlap > 0:
                events.append((left, right, overlap))
        return events

    def apply_simultaneous(self, state: StateVector,
                           driven: set[int], duration_ns: float) -> None:
        """Apply the conditional phase for a simultaneous-drive window."""
        phi = self.conditional_phase(duration_ns)
        if phi == 0.0:
            return
        matrix = np.diag([1.0, 1.0, 1.0, np.exp(1j * phi)]).astype(complex)
        for left, right in self.pairs:
            if left in driven and right in driven:
                state.apply_unitary(matrix, (left, right))


@dataclass
class PairZZCrosstalk(ZZCrosstalk):
    """ZZ crosstalk with calibrated per-pair coefficients.

    ``pair_zeta_hz`` holds ``(left, right, zeta_hz)`` triples from a
    :class:`~repro.qpu.profile.DeviceProfile`; pairs not listed fall
    back to the uniform ``zeta_hz``.  Declared as a *subclass* so the
    name-based :class:`NoiseModel` allow-lists admit it unchanged, and
    so artifact fingerprints (which render the channel's class name
    and fields) change automatically when a profile swaps it in.
    """

    pair_zeta_hz: tuple[tuple[int, int, float], ...] = ()

    def __post_init__(self) -> None:
        table = {}
        for left, right, zeta in self.pair_zeta_hz:
            table[(left, right)] = zeta
            table[(right, left)] = zeta
        self._pair_table = table

    def zeta_for(self, left: int, right: int) -> float:
        return self._pair_table.get((left, right), self.zeta_hz)


@dataclass
class DecoherenceNoise:
    """T1 relaxation and T2 dephasing applied to *idle* qubits.

    This is the error source the paper's whole design fights: "any
    delay in quantum operations issued from the microarchitecture can
    result in additional accumulated quantum errors" (Section 1).  A
    control processor that issues operations late leaves qubits idle
    longer, and this channel converts that idle time into decay.

    ``t1_us``/``t2_us`` follow the paper's 50-100 us coherence range.
    Trajectory implementation: amplitude damping with
    ``gamma = 1 - exp(-t/T1)`` plus a stochastic Z with the pure
    dephasing probability derived from ``1/Tphi = 1/T2 - 1/(2 T1)``.
    """

    t1_us: float = 75.0
    t2_us: float = 60.0

    def __post_init__(self) -> None:
        if self.t1_us <= 0 or self.t2_us <= 0:
            raise ValueError("coherence times must be positive")
        if self.t2_us > 2 * self.t1_us:
            raise ValueError("T2 cannot exceed 2*T1")

    def gamma(self, duration_ns: float) -> float:
        """Amplitude-damping probability over ``duration_ns``."""
        t1_ns = self.t1_us * 1e3
        return 1.0 - math.exp(-duration_ns / t1_ns)

    def dephasing_probability(self, duration_ns: float) -> float:
        """Stochastic-Z probability over ``duration_ns``."""
        rate_phi_per_us = 1.0 / self.t2_us - 1.0 / (2.0 * self.t1_us)
        if rate_phi_per_us <= 0:
            return 0.0
        p_keep = math.exp(-duration_ns * 1e-3 * rate_phi_per_us)
        return (1.0 - p_keep) / 2.0

    def apply_idle(self, state: StateVector, qubit: int,
                   duration_ns: float, rng: random.Random) -> None:
        """Decay ``qubit`` for ``duration_ns`` of idle time."""
        if duration_ns <= 0:
            return
        state.apply_amplitude_damping(qubit, self.gamma(duration_ns))
        if rng.random() < self.dephasing_probability(duration_ns):
            state.apply_gate("z", (qubit,))

    def for_qubit(self, qubit: int) -> "DecoherenceNoise":
        """The channel governing ``qubit`` (uniform: always ``self``)."""
        return self


@dataclass
class QubitDecoherenceNoise(DecoherenceNoise):
    """T1/T2 decay with calibrated per-qubit coherence times.

    ``per_qubit`` holds ``(qubit, t1_us, t2_us)`` triples from a
    :class:`~repro.qpu.profile.DeviceProfile`; unlisted qubits use the
    inherited ``t1_us``/``t2_us`` defaults.  A subclass so the
    name-based allow-lists and fingerprints pick it up unchanged —
    note it stays excluded from batched replay exactly like its base
    (``is_batch_compilable`` gates on the *field*, not the class).
    """

    per_qubit: tuple[tuple[int, float, float], ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        self._table = {qubit: DecoherenceNoise(t1_us=t1, t2_us=t2)
                       for qubit, t1, t2 in self.per_qubit}

    def for_qubit(self, qubit: int) -> DecoherenceNoise:
        return self._table.get(qubit, self)

    def apply_idle(self, state: StateVector, qubit: int,
                   duration_ns: float, rng: random.Random) -> None:
        channel = self._table.get(qubit)
        if channel is None:
            super().apply_idle(state, qubit, duration_ns, rng)
        else:
            channel.apply_idle(state, qubit, duration_ns, rng)


@dataclass
class ReadoutError:
    """Classical bit-flip error on measurement outcomes."""

    p0_given_1: float = 0.0  # probability of reading 0 when the state was 1
    p1_given_0: float = 0.0  # probability of reading 1 when the state was 0

    def __post_init__(self) -> None:
        for name in ("p0_given_1", "p1_given_0"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} out of range: {value}")

    def corrupt(self, outcome: int, rng: random.Random) -> int:
        flip = self.p0_given_1 if outcome else self.p1_given_0
        if rng.random() < flip:
            return 1 - outcome
        return outcome

    def for_qubit(self, qubit: int | None) -> "ReadoutError":
        """The flip probabilities governing ``qubit``'s readout line.

        The uniform channel returns itself;
        :class:`QubitReadoutError` resolves the calibrated per-qubit
        entry.  Replays resolve this per measurement *site* (the qubit
        is known at compile/replay time), and every resolved channel
        draws exactly one ``rng.random()`` per measurement, keeping
        the positional noise-rng contract intact.
        """
        return self


@dataclass
class QubitReadoutError(ReadoutError):
    """Readout error with calibrated per-qubit flip probabilities.

    ``per_qubit`` holds ``(qubit, p0_given_1, p1_given_0)`` triples
    from a :class:`~repro.qpu.profile.DeviceProfile`; unlisted qubits
    use the inherited uniform probabilities.  A subclass, so the
    fail-closed allow-lists (``is_pauli_only`` keeps sign-trace replay
    available) and artifact fingerprints admit it without edits.
    """

    per_qubit: tuple[tuple[int, float, float], ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        self._table = {qubit: ReadoutError(p0_given_1=p0, p1_given_0=p1)
                       for qubit, p0, p1 in self.per_qubit}

    def for_qubit(self, qubit: int | None) -> ReadoutError:
        if qubit is None:
            return self
        return self._table.get(qubit, self)


@dataclass
class NoiseModel:
    """Bundle of all channels, applied by :class:`~repro.qpu.device.QPUDevice`."""

    depolarizing: DepolarizingNoise | None = None
    two_qubit_depolarizing: DepolarizingNoise | None = None
    pauli: PauliChannel | None = None
    zz: ZZCrosstalk | None = None
    readout: ReadoutError | None = None
    decoherence: DecoherenceNoise | None = None
    seed: int | None = None
    rng: random.Random = field(init=False)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    def reseed(self, seed: int | None) -> None:
        """Restart the noise rng for one shot.

        ``seed`` is the *shot* seed; the rng is seeded with a salted
        derivation (``seed ^ NOISE_SEED_SALT``) so the noise stream is
        decorrelated from the measurement stream even though both
        derive from the same shot seed.  ``None`` reseeds from system
        entropy (non-reproducible, matching ``random.Random(None)``).

        Per-shot reseeding is the property the trace cache relies on:
        it makes a shot's noise trajectory a function of its seed
        alone, so a replayed shot that consumes the rng positionally
        draws the identical stream the cycle-accurate simulation
        would, and a divergence-frontier resume can continue from the
        rng position the replay prefix left behind.
        """
        if seed is None:
            self.rng.seed(None)
        else:
            self.rng.seed(seed ^ NOISE_SEED_SALT)

    @property
    def is_ideal(self) -> bool:
        """True when every channel is disabled.

        Ideal noise never touches the state or the rng, which is what
        makes a shot's behaviour a pure function of its measurement
        outcomes — the property the trace cache
        (:mod:`repro.qcp.tracecache`) relies on.
        """
        return (self.depolarizing is None
                and self.two_qubit_depolarizing is None
                and self.pauli is None and self.zz is None
                and self.readout is None and self.decoherence is None)

    @property
    def is_pauli_only(self) -> bool:
        """True when every enabled channel is a Pauli injection or a
        classical readout flip.

        Such channels commute with the stabilizer formalism: a Pauli
        insertion only flips tableau *signs* (the x/z bit matrices are
        untouched), and a readout flip never touches the state at all.
        This is the condition under which the trace cache can keep its
        compiled sign-trace replay on noisy stabilizer substrates —
        ZZ crosstalk and amplitude damping are not Clifford channels
        and need the dense backend's device-level replay instead.

        Fails **closed**: the Pauli-compatible channels are an
        allow-list, so a channel field added to :class:`NoiseModel`
        later is non-cacheable until it is explicitly vetted here.
        """
        pauli_compatible = {"depolarizing", "two_qubit_depolarizing",
                            "pauli", "readout", "seed", "rng"}
        return all(getattr(self, spec.name) is None
                   for spec in fields(self)
                   if spec.name not in pauli_compatible)

    @property
    def is_dense_compilable(self) -> bool:
        """True when the compiled dense noise-site replay models every
        channel this model *could* carry.

        Fails **closed**, like :attr:`is_pauli_only`: the supported
        channel fields are an allow-list, so an *enabled* channel
        added to :class:`NoiseModel` later routes noisy dense replay
        back to the timed device-level loop (whose hooks run the live
        device code and therefore pick the new channel up
        automatically) until the compiler is explicitly taught about
        it.
        """
        compilable = {"depolarizing", "two_qubit_depolarizing",
                      "pauli", "zz", "readout", "decoherence",
                      "seed", "rng"}
        return all(getattr(self, spec.name) is None
                   for spec in fields(self)
                   if spec.name not in compilable)

    @property
    def is_batch_compilable(self) -> bool:
        """True when *batched* dense replay models every channel this
        model could carry.

        The batched dense engine replays noise sites as per-shot draws
        over a stacked amplitude matrix, which it can do for the purely
        positional channels (depolarizing, Pauli, ZZ windows, readout).
        Decoherence is excluded: its idle-decay trajectory reads the
        state (amplitude-damping jump probabilities depend on the
        current amplitudes), so shots sharing a cohort would need
        per-shot Kraus branches the batch compiler does not model —
        those models replay serially.  Fails **closed** like
        :attr:`is_dense_compilable`: an allow-list, so new channel
        fields route batched replay back to the serial loop until the
        batch compiler is explicitly taught about them.
        """
        batchable = {"depolarizing", "two_qubit_depolarizing",
                     "pauli", "zz", "readout", "seed", "rng"}
        return all(getattr(self, spec.name) is None
                   for spec in fields(self)
                   if spec.name not in batchable)

    def after_gate(self, state: StateVector, gate: str,
                   qubits: tuple[int, ...]) -> None:
        """Inject gate-dependent noise after a unitary.

        Iterates :meth:`gate_site_specs` so the channel selection has
        exactly one implementation shared with the compiled replays.
        """
        for _kind, channel in self.gate_site_specs(qubits):
            channel.apply(state, qubits, self.rng)

    def gate_site_specs(self, qubits: tuple[int, ...]) -> tuple:
        """Declarative form of :meth:`after_gate`'s channel sequence.

        Returns ``(kind, channel)`` pairs — ``("dep", channel)`` for
        the (qubit-count-selected) depolarizing channel, ``("pauli",
        channel)`` for the Pauli channel — in exactly the order
        :meth:`after_gate` applies them.  This is the single source
        of truth compiled replays derive their noise sites from, so
        the channel-selection logic cannot drift between the live
        device path and any compiled path.  Empty when no gate
        channel is enabled (the site can then be elided entirely,
        which is what lets GEMM fusion run through it).
        """
        specs = []
        channel = self.depolarizing
        if len(qubits) == 2 and self.two_qubit_depolarizing is not None:
            channel = self.two_qubit_depolarizing
        if channel is not None:
            specs.append(("dep", channel))
        if self.pauli is not None:
            specs.append(("pauli", self.pauli))
        return tuple(specs)

    def gate_site_appliers(self, qubits: tuple[int, ...]) -> tuple:
        """The channel applications :meth:`after_gate` would perform.

        The bound ``apply`` methods of :meth:`gate_site_specs`, for
        replays that re-run the channels verbatim: calling each as
        ``applier(state, qubits, rng)`` is draw-for-draw and
        bit-for-bit identical to ``after_gate(state, gate, qubits)``.
        """
        return tuple(channel.apply
                     for _kind, channel in self.gate_site_specs(qubits))

    def zz_window_events(self, windows: dict, time_ns: int, end: int,
                         gate_qubits: tuple[int, ...]) -> list:
        """Per-pair ZZ events for a gate driven over ``[time_ns, end)``.

        Delegates to :meth:`ZZCrosstalk.window_events` — the single
        shared implementation of the drive-window overlap accounting —
        so the cycle-accurate device loop and every compiled replay
        derive their events from identical logic.  Empty without a ZZ
        channel.
        """
        if self.zz is None:
            return []
        return self.zz.window_events(windows, time_ns, end, gate_qubits)

    def apply_zz_events(self, state: StateVector, events: list) -> None:
        """Apply per-pair conditional phases from :meth:`zz_window_events`."""
        zz = self.zz
        for left, right, overlap_ns in events:
            zz.apply_pair(state, left, right, overlap_ns)

    def corrupt_readout(self, outcome: int,
                        qubit: int | None = None) -> int:
        if self.readout is None:
            return outcome
        return self.readout.for_qubit(qubit).corrupt(outcome, self.rng)

    def idle_decay(self, state: StateVector, qubit: int,
                   duration_ns: float) -> None:
        """Apply T1/T2 decay for ``duration_ns`` of idle time."""
        if self.decoherence is not None:
            self.decoherence.apply_idle(state, qubit, duration_ns,
                                        self.rng)


def ideal_noise_model(seed: int | None = None) -> NoiseModel:
    """A noise model with every channel disabled."""
    return NoiseModel(seed=seed)


def paper_noise_model(seed: int | None = None,
                      pairs: tuple[tuple[int, int], ...] = ((0, 1),),
                      single_qubit_error: float = 5e-3,
                      zz_khz: float = 2500.0) -> NoiseModel:
    """Noise calibrated to the paper's Figure 14 QPU.

    ``single_qubit_error`` is the target average *per-gate* infidelity
    (~0.5 %, giving the paper's individual-RB fidelities of ~99.5 %);
    the uniform-Pauli injection probability is ``1.5x`` that value
    because the channel's infidelity is ``2p/3``.  ``zz_khz`` sets the
    additional simultaneous-drive error that pulls simRB down to
    ~98.7-99.1 %; it is an *effective* drive-frame coupling (the bare
    chip ZZ is partially echoed away in individual RB).
    """
    return NoiseModel(
        depolarizing=DepolarizingNoise(p=1.5 * single_qubit_error),
        two_qubit_depolarizing=DepolarizingNoise(p=3 * single_qubit_error),
        zz=ZZCrosstalk(zeta_hz=zz_khz * 1e3, pairs=pairs),
        readout=ReadoutError(p0_given_1=0.02, p1_given_0=0.01),
        seed=seed,
    )
