"""Measurement-outcome sources for architecture-level benchmarks.

For microarchitecture evaluation the paper does not use a live QPU: "a
pseudo random number generator is implemented in the FPGA to generate
measurement results for testing" with a configurable preparation
*failure rate* (Section 7).  :class:`PRNGReadout` reproduces exactly
that methodology, which also sidesteps the impossibility of
state-vector-simulating the 37-qubit Shor-syndrome circuit.

Not to be confused with
:class:`~repro.qpu.noise.ReadoutError`: that channel *corrupts* the
outcome a real simulated state produced (and is replayed draw-for-draw
by the trace cache), whereas the sources here *are* the outcome — no
quantum state exists behind them.  They attach to
:class:`~repro.qpu.device.PRNGQPU`, which shot engines only reach via
a custom ``qpu_factory`` and which is therefore never trace-cached.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class PRNGReadout:
    """Pseudo-random measurement outcomes.

    ``failure_rate`` is the probability of reading 1 (a verification
    "failure" in the RUS idiom).  ``per_qubit`` overrides the rate for
    individual qubits.  A fixed ``seed`` makes whole-system runs
    deterministic.
    """

    failure_rate: float = 0.0
    per_qubit: dict[int, float] = field(default_factory=dict)
    seed: int | None = None
    rng: random.Random = field(init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError(
                f"failure rate out of range: {self.failure_rate}")
        for qubit, rate in self.per_qubit.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"failure rate for q{qubit} out of range: {rate}")
        self.rng = random.Random(self.seed)

    def sample(self, qubit: int) -> int:
        """Draw the measurement outcome for ``qubit``."""
        rate = self.per_qubit.get(qubit, self.failure_rate)
        return 1 if self.rng.random() < rate else 0

    def reseed(self, seed: int | None) -> None:
        """Restart the generator (per-run determinism in sweeps)."""
        self.seed = seed
        self.rng = random.Random(seed)


@dataclass
class DeterministicReadout:
    """Scripted outcomes for unit tests: per-qubit FIFO of results.

    Falls back to ``default`` when a qubit's queue is exhausted.
    """

    outcomes: dict[int, list[int]] = field(default_factory=dict)
    default: int = 0

    def sample(self, qubit: int) -> int:
        queue = self.outcomes.get(qubit)
        if queue:
            return queue.pop(0)
        return self.default
