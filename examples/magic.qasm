OPENQASM 2.0;
include "qelib1.inc";
// T-state injection: the T gate takes this program off the Clifford
// set, so `--qpu auto` must route it to the dense statevector (the
// companion Clifford-only program.qasm routes to the tableau).
qreg q[2];
creg c[2];
h q[0];
t q[0];
h q[1];
cx q[1],q[0];
measure q[0] -> c[0];
measure q[1] -> c[1];
