#!/usr/bin/env python
"""Real-time quantum error correction on the QuAPE stack.

The paper motivates fast classical control with QEC: syndrome feedback
"needs to be completed within 1% of the coherence time" (Section 2.3).
This example runs a three-qubit repetition-code memory: stabilizer
measurements, majority-logic decoding in the QCP's ALU and feedback X
corrections — all inside the control processor, per round.

A deterministic bit-flip is injected on each data qubit in turn; the
decoder must identify and correct every one in real time.

Run with::

    python examples/error_correction.py
"""

from repro.analysis import format_table
from repro.benchlib import (build_repetition_memory_program,
                            decode_majority)
from repro.benchlib.repetition import ANCILLAS, DATA, N_QUBITS
from repro.qcp import QuAPESystem, scalar_config
from repro.qpu import StateVectorQPU, full_topology


def run_memory(inject_x=None, rounds=2, encode_one=False):
    program = build_repetition_memory_program(
        rounds=rounds, encode_one=encode_one, inject_x=inject_x)
    qpu = StateVectorQPU(full_topology(N_QUBITS), seed=7)
    system = QuAPESystem(
        program=program, qpu=qpu,
        config=scalar_config(fast_context_switch=True))
    result = system.run()
    system.kernel.run()
    last = {d.qubit: d.value for d in system.results.history}
    syndromes = [d.value for d in system.results.history
                 if d.qubit in ANCILLAS]
    corrections = [f"X on d{op.qubits[0]}"
                   for op in qpu.operation_log
                   if op.gate == "x" and op.qubits[0] in DATA]
    if inject_x is not None:
        corrections = corrections[1:]  # drop the injected error itself
    return {
        "syndrome_r1": f"({syndromes[0]},{syndromes[1]})",
        "corrections": ", ".join(corrections) or "none",
        "logical": decode_majority(last),
        "data": "".join(str(last[q]) for q in DATA),
        "time_us": result.total_ns / 1000.0,
    }


def main() -> None:
    print("Three-qubit repetition code, 2 correction rounds, logical "
          "|0>\n")
    rows = []
    for victim in [None] + list(DATA):
        outcome = run_memory(inject_x=victim)
        label = "none" if victim is None else f"X on d{victim}"
        rows.append([label, outcome["syndrome_r1"],
                     outcome["corrections"], outcome["data"],
                     outcome["logical"],
                     round(outcome["time_us"], 2)])
    print(format_table(
        ["injected error", "round-1 syndrome", "decoder action",
         "final data", "logical", "time (us)"], rows,
        title="Deterministic error injection sweep"))
    print("\nEvery single-qubit bit flip is identified by its syndrome "
          "pattern and\ncorrected in real time; the logical qubit "
          "always reads 0.")

    outcome = run_memory(encode_one=True, inject_x=1)
    print(f"\nLogical |1> with an injected flip on d1: final data "
          f"{outcome['data']}, logical {outcome['logical']}")


if __name__ == "__main__":
    main()
