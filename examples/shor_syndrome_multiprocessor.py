#!/usr/bin/env python
"""Circuit Level Parallelism: the Shor syndrome measurement benchmark.

Reproduces a compact version of the paper's Section 7 CLP experiment:
the fault-tolerant Steane-code syndrome measurement (37 qubits, 50
program blocks over 15 priorities, repeat-until-success cat-state
verification) executed on 1/2/4/6-processor QuAPE configurations.

Run with::

    python examples/shor_syndrome_multiprocessor.py
"""

import statistics

from repro import PRNGQPU, PRNGReadout, QuAPESystem, scalar_config
from repro.analysis import format_table
from repro.benchlib import (build_shor_syndrome_program,
                            verification_qubits)

FAILURE_RATE = 0.25
RUNS = 25


def mean_time(program, n_processors: int) -> float:
    times = []
    for seed in range(RUNS):
        readout = PRNGReadout(
            failure_rate=0.0,
            per_qubit={q: FAILURE_RATE for q in verification_qubits()},
            seed=seed)
        system = QuAPESystem(program=program, config=scalar_config(),
                             n_processors=n_processors,
                             qpu=PRNGQPU(37, readout), n_qubits=37)
        times.append(system.run().total_ns)
    return statistics.fmean(times)


def main() -> None:
    program = build_shor_syndrome_program()
    print(f"Benchmark program: {len(program.blocks)} blocks, "
          f"{len({b.priority for b in program.blocks})} priorities, "
          f"{program.quantum_instruction_count} quantum + "
          f"{program.classical_instruction_count} classical "
          "instructions")
    print(f"Cat-state verification failure rate: {FAILURE_RATE:.0%}, "
          f"{RUNS} runs per configuration\n")

    rows = []
    baseline = None
    for count in (1, 2, 4, 6):
        mean = mean_time(program, count)
        baseline = baseline or mean
        rows.append([count, round(mean / 1000.0, 2),
                     round(baseline / mean, 2)])
    print(format_table(
        ["processors", "mean execution time (us)", "speedup"], rows,
        title="Multiprocessor scaling (paper: 2.59x at 6 processors)"))


if __name__ == "__main__":
    main()
