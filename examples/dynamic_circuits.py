#!/usr/bin/env python
"""Dynamic quantum circuits: teleportation and phase estimation.

Section 2.4 of the paper lists the dynamic circuits that feedback
control enables.  This example runs two of them end to end on the QuAPE
control stack with a functional state-vector QPU:

* quantum teleportation — the X/Z corrections are measurement-
  conditioned MRCE instructions (simple feedback control);
* Kitaev-style iterative phase estimation — each measured bit feeds
  back into the next iteration's rotation via classical registers.

Run with::

    python examples/dynamic_circuits.py
"""

import math

from repro.analysis import render_timeline
from repro.benchlib import (estimated_phase,
                            iterative_phase_estimation_program,
                            teleportation_program)
from repro.qcp import QuAPESystem, scalar_config
from repro.qpu import StateVectorQPU, full_topology


def run(program, n_qubits, seed=0):
    qpu = StateVectorQPU(full_topology(n_qubits), seed=seed)
    system = QuAPESystem(
        program=program, qpu=qpu,
        config=scalar_config(fast_context_switch=True))
    result = system.run()
    system.kernel.run()  # drain trailing conditional issues
    return result, system, qpu


def teleport_demo() -> None:
    theta = 1.234
    print(f"=== Teleporting ry({theta})|0> from q0 to q2 ===")
    expected = math.sin(theta / 2) ** 2
    for seed in range(4):
        result, system, qpu = run(teleportation_program(theta), 3,
                                  seed=seed)
        bits = {d.qubit: d.value for d in system.results.history}
        p_one = qpu.state.probability_of_one(2)
        corrections = [f"{op.gate.upper()} on q2"
                       for op in qpu.operation_log
                       if op.gate in ("x", "z") and op.qubits == (2,)]
        print(f"  run {seed}: measured (m0={bits[0]}, m1={bits[1]}) "
              f"-> corrections: {corrections or ['none']}; "
              f"P(q2=1) = {p_one:.6f} (expected {expected:.6f})")
    result, _, _ = run(teleportation_program(theta), 3, seed=1)
    print("\nIssue timeline (10 ns per column):")
    print(render_timeline(result.trace, max_columns=70))


def ipe_demo() -> None:
    true_phase = 5 / 16
    print(f"\n=== Iterative phase estimation of phase {true_phase} ===")
    program = iterative_phase_estimation_program(true_phase, bits=4)
    result, system, _ = run(program, 2, seed=3)
    raw = system.shared.read(0)
    print(f"  measured bits (lsb first): {raw:04b}")
    print(f"  estimate: {estimated_phase(raw, 4)} "
          f"(true phase {true_phase})")
    print(f"  program: {len(program)} instructions, "
          f"{result.trace.instructions_executed} executed "
          f"(feedback loop), {result.total_ns / 1000:.2f} us")


if __name__ == "__main__":
    teleport_demo()
    ipe_demo()
