"""Scale demo: 51-qubit QEC workload on the stabilizer backend.

The dense statevector simulator is hard-capped at 24 qubits (2^24
amplitudes); the CHP tableau backend runs Clifford circuits in O(n)
per gate.  This example drives a 26-data-qubit repetition-code memory
(51 qubits total) through the *full* control stack — scheduler,
superscalar core, MRCE ancilla feedback — with compile-once shot
execution, then prints the decoded logical value.

Run with:  PYTHONPATH=src python examples/stabilizer_scale.py
"""

from repro.benchlib.repetition import (decode_chain_majority,
                                       run_repetition_memory)

N_DATA = 26
SHOTS = 25

result = run_repetition_memory(rounds=3, shots=SHOTS, n_data=N_DATA,
                               backend="stabilizer", encode_one=True,
                               inject_x=5)
print(f"{2 * N_DATA - 1} qubits, {SHOTS} shots, "
      f"{result.total_ns} ns of program time")
bits = result.most_frequent()
last = {q: int(bits[i]) for i, q in enumerate(result.measured_qubits)}
print(f"modal outcome decodes to logical "
      f"{decode_chain_majority(last, N_DATA)} (expected 1: the X on "
      f"one data qubit loses the majority vote)")
