#!/usr/bin/env python
"""Surface-code memory end to end through the shot-sweep service.

Builds the distance-3 rotated surface code with the dynamic-circuit
SDK (17 qubits, MRCE-reset syndrome ancillas), submits it to a real
2-worker sharded service as ``to_asm()`` text at the standard noise
point, decodes the merged histogram offline with the single-X-error
lookup decoder, and asserts the logical error count equals the seeded
golden value — the same number ``tests/benchlib/test_surface.py`` pins
for an in-process run.  A drifting count means the outcome stream
changed somewhere in the SDK -> text -> service -> shard -> merge
pipeline, which is exactly what this smoke test exists to catch.

Run with::

    python examples/qec_surface.py [--workers 2] [--shots 100]
"""

from __future__ import annotations

import argparse
import json

from repro.benchlib.surface import (build_surface_memory_program,
                                    decode_logical_z, surface_layout)
from repro.service.client import ServiceClient
from repro.service.server import ServiceHandle

DISTANCE = 3
ROUNDS = 2

#: surface_noise_model() as a wire spec (protocol.NOISE_CHANNELS).
NOISE_SPEC = {"pauli": {"px": 6e-3},
              "readout": {"p0_given_1": 0.01, "p1_given_0": 0.005}}

#: Seeded golden logical error count at 100 shots — must match
#: GOLDEN_D3_STAB_100 in tests/benchlib/test_surface.py.
GOLDEN_ERRORS_100 = 7


def decode_histogram(layout, result) -> int:
    """Logical error count of a merged service histogram."""
    position = {qubit: index for index, qubit
                in enumerate(result.measured_qubits)}
    errors = 0
    for key, count in result.counts.items():
        bits = {qubit: int(key[position[qubit]])
                for qubit in range(layout.n_data)}
        errors += count * decode_logical_z(layout, bits)
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--shots", type=int, default=100)
    parser.add_argument("--stats-out", default=None,
                        help="write the final /stats snapshot here")
    args = parser.parse_args()

    layout = surface_layout(DISTANCE)
    program = build_surface_memory_program(DISTANCE, rounds=ROUNDS)
    text = program.to_asm()
    print(f"surface d={DISTANCE}: {layout.n_qubits} qubits, "
          f"{len(layout.x_stabilizers) + len(layout.z_stabilizers)} "
          f"checks x {ROUNDS} rounds -> "
          f"{len(program)} instructions as text")

    with ServiceHandle.start(n_workers=args.workers) as handle:
        client = ServiceClient(handle.host, handle.port)
        print(f"service up on {handle.host}:{handle.port} "
              f"({args.workers} workers)")
        result, info = client.run_sweep(
            text, shots=args.shots, backend="stabilizer",
            noise=NOISE_SPEC,
            shard_shots=max(1, args.shots // (4 * args.workers)))
        print(f"sweep: {args.shots} shots in {info['shards']} shards, "
              f"{len(result.counts)} distinct outcomes, "
              f"{result.total_ns} ns total")

        errors = decode_histogram(layout, result)
        rate = errors / args.shots
        print(f"decoded logical error rate: {errors}/{args.shots} "
              f"= {rate:.3f}")
        if args.shots == 100:
            assert errors == GOLDEN_ERRORS_100, \
                f"golden drift: {errors} != {GOLDEN_ERRORS_100}"
            print(f"matches the seeded golden "
                  f"({GOLDEN_ERRORS_100}/100): OK")

        if args.stats_out:
            with open(args.stats_out, "w") as fh:
                json.dump(client.stats(), fh, indent=2)
            print(f"wrote {args.stats_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
