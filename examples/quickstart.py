#!/usr/bin/env python
"""Quickstart: compile a circuit, run it on the QuAPE control stack.

Builds a Bell-pair circuit, compiles it to timed-QASM, executes it on
the 8-way quantum superscalar with a functional state-vector QPU, and
prints the issued operation stream plus the CES/TR metrics from the
paper's Equations (1) and (2).

Run with::

    python examples/quickstart.py
"""

from repro import (QuantumCircuit, QuAPESystem, StateVectorQPU,
                   compile_circuit, superscalar_config)


def main() -> None:
    # 1. Describe the circuit.
    circuit = QuantumCircuit(2, "bell")
    circuit.h(0).cnot(0, 1).measure(0).measure(1)
    print("Circuit:")
    print(circuit)

    # 2. Compile: ASAP schedule -> circuit steps -> timed instructions.
    compiled = compile_circuit(circuit)
    print("\nTimed-QASM program:")
    print(compiled.program.listing())

    # 3. Execute on the control microarchitecture + QPU simulator.
    qpu = StateVectorQPU(2, seed=42)
    system = QuAPESystem(program=compiled.program,
                         config=superscalar_config(width=8), qpu=qpu)
    result = system.run()

    # 4. Inspect what the QPU received, with nanosecond timestamps.
    print("\nIssued operations:")
    for record in result.trace.issues:
        late = f"  (LATE by {record.late_ns} ns!)" if record.late_ns \
            else ""
        qubits = ", ".join(f"q{q}" for q in record.qubits)
        print(f"  t={record.time_ns:5d} ns  {record.gate:8s} "
              f"{qubits}{late}")

    print("\nMeasurement results:")
    for delivery in system.results.history:
        print(f"  q{delivery.qubit} -> {delivery.value} "
              f"(valid at t={delivery.time_ns} ns)")

    # 5. The paper's QOLP metrics.
    report = result.tr_report(compiled.step_durations_ns)
    print(f"\nExecution time: {result.total_ns} ns "
          f"({result.total_cycles} cycles at 100 MHz)")
    print(f"TR per circuit step: "
          f"{ {k: round(v, 2) for k, v in report.per_step.items()} }")
    print(f"TR <= 1 everywhere (deterministic operation supply): "
          f"{report.meets_deadline}")


if __name__ == "__main__":
    main()
