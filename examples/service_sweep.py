#!/usr/bin/env python
"""Shot-sweep service end to end: serve, submit, stream, verify.

Starts the service in-process (the same ``serve()`` the ``repro
serve`` CLI runs), submits a sweep of a branchy feedback program over
the newline-JSON socket protocol, streams partial histograms as shards
complete, and asserts the merged result is **bit-identical** to a
serial :func:`repro.qcp.run_shots` of the same sweep — the property
the whole service design rests on.  Finishes with the ``/stats``
snapshot (written to ``service_stats.json`` when ``--stats-out`` is
given), which CI uploads as an artifact.

Run with::

    python examples/service_sweep.py [--workers 2] [--shots 96]
"""

from __future__ import annotations

import argparse
import json

from repro.qcp import run_shots
from repro.service.client import ServiceClient
from repro.service.protocol import program_from_text
from repro.service.server import ServiceHandle

# The q0 readout steers a conditional X on q1: shots take different
# control paths, so shards see different outcome dictionaries — the
# interesting case for the commutative histogram merge.
PROGRAM = """
.block main prio=0
    qop 0, h, q0
    qmeas 2, q0
    fmr r1, q0
    beq r1, r0, skip
    qop 2, x, q1
    qmeas 2, q1
skip:
    qop 0, h, q2
    qmeas 2, q2
    qmeas 2, q0
    halt
.endblock
"""


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--shots", type=int, default=96)
    parser.add_argument("--stats-out", default=None,
                        help="write the final /stats snapshot here")
    args = parser.parse_args()

    with ServiceHandle.start(n_workers=args.workers) as handle:
        client = ServiceClient(handle.host, handle.port)
        print(f"service up on {handle.host}:{handle.port} "
              f"({args.workers} workers); "
              f"ping -> {client.ping()['event']}")

        partials = []

        def on_partial(event):
            partials.append(event["shots_done"])
            print(f"  partial: {event['shots_done']}/{event['shots']} "
                  f"shots, {event['shards_done']}/{event['shards']} "
                  f"shards")

        result, info = client.run_sweep(
            PROGRAM, shots=args.shots, backend="stabilizer",
            shard_shots=max(1, args.shots // (4 * args.workers)),
            on_partial=on_partial)
        print(f"result: {dict(result.counts)} in {result.total_ns} ns "
              f"({info['shards']} shards, {info['retries']} retries)")

        serial = run_shots(program_from_text(PROGRAM),
                           shots=args.shots, backend="stabilizer")
        assert result.counts == serial.counts, \
            f"service {result.counts} != serial {serial.counts}"
        assert result.total_ns == serial.total_ns
        assert result.measured_qubits == serial.measured_qubits
        print(f"bit-identical to serial run_shots: OK "
              f"({len(partials)} partial updates streamed)")

        stats = client.stats()
        print(f"stats: {stats['jobs']} | {stats['shots_done']} shots "
              f"at {stats['shots_per_s']} shots/s across "
              f"{len(stats['worker_cache'])} worker(s)")
        if args.stats_out:
            with open(args.stats_out, "w") as fh:
                json.dump(stats, fh, indent=2)
            print(f"wrote {args.stats_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
