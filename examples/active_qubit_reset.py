#!/usr/bin/env python
"""Simple feedback control: active qubit reset with fast context switch.

Active reset measures a qubit and applies X when it read |1> — the
canonical "simple feedback control" (Section 5.4).  This example runs
the same program on the baseline (blocking MRCE) and on QuAPE with the
fast context switch, showing that unrelated work on another qubit
proceeds during the ~400 ns measurement wait instead of stalling.

Run with::

    python examples/active_qubit_reset.py
"""

from repro import QuAPESystem, parse_asm
from repro.qcp import scalar_config
from repro.qpu import PRNGQPU
from repro.qpu.readout import DeterministicReadout

PROGRAM = """
; Active reset on q0; an independent pulse sequence on q1.
    qop 0, x, q0          ; put q0 into |1> so the reset has work to do
    qmeas 2, q0           ; readout (result arrives ~400 ns later)
    mrce q0, q0, i, x     ; reset: apply X iff the result is 1
    qop 0, x90, q1        ; unrelated work on q1 ...
    qop 2, y90, q1
    qop 2, xm90, q1
    qop 2, ym90, q1
    halt
"""


def run(label: str, fast_context_switch: bool) -> None:
    program = parse_asm(PROGRAM)
    qpu = PRNGQPU(2, DeterministicReadout(outcomes={0: [1]}))
    config = scalar_config(fast_context_switch=fast_context_switch)
    system = QuAPESystem(program=program, config=config, qpu=qpu,
                         n_qubits=2)
    result = system.run()
    print(f"\n{label}")
    print(f"  {'time (ns)':>10}  operation")
    for record in result.trace.issues:
        qubits = ", ".join(f"q{q}" for q in record.qubits)
        print(f"  {record.time_ns:>10}  {record.gate} {qubits}")
    print(f"  total: {result.total_ns} ns, "
          f"context switches: {result.trace.context_switches}")


def main() -> None:
    print("Active qubit reset (measurement outcome scripted to 1, so "
          "the conditional X fires).")
    run("Baseline - MRCE stalls the pipeline until the result returns:",
        fast_context_switch=False)
    run("QuAPE - fast context switch (3 cycles) lets q1's pulses "
        "proceed:", fast_context_switch=True)
    print("\nNote how the q1 pulses issue ~400 ns earlier with the "
          "fast context switch,\nwhile the conditional X still waits "
          "for its measurement result.")


if __name__ == "__main__":
    main()
