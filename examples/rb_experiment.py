#!/usr/bin/env python
"""Randomized benchmarking through the full control stack (Figure 14).

Runs individual RB on q0 and q1 and simultaneous RB on both, using the
paper-calibrated noise model (depolarizing ~0.5 % per gate + always-on
ZZ between the pair), fits the exponential decays, and prints the gate
fidelities next to the paper's values.

Run with::

    python examples/rb_experiment.py
"""

from repro.analysis import format_table
from repro.experiments import run_simrb_study

LENGTHS = [1, 4, 8, 14, 22, 32, 44]
SAMPLES = 10

PAPER_FIDELITY = {("RB", 0): 99.5, ("RB", 1): 99.4,
                  ("simRB", 0): 98.7, ("simRB", 1): 99.1}


def main() -> None:
    print("Running RB / simRB study (exact channel evolution)...")
    study = run_simrb_study(samples=SAMPLES, lengths=LENGTHS,
                            backend="exact", seed=17)

    rows = []
    for kind, qubit, fidelity in study.summary_rows():
        rows.append([kind, f"q{qubit}", round(fidelity * 100, 2),
                     PAPER_FIDELITY[(kind, qubit)]])
    print(format_table(
        ["experiment", "qubit", "measured F_gate (%)", "paper (%)"],
        rows, title="Figure 14 - gate fidelities"))

    print(f"\nSurvival curves over lengths {LENGTHS}:")
    for qubit in (0, 1):
        individual = study.individual[qubit].survival[qubit]
        simultaneous = study.simultaneous.survival[qubit]
        print(f"  RB    q{qubit}: "
              + " ".join(f"{s:.3f}" for s in individual))
        print(f"  simRB q{qubit}: "
              + " ".join(f"{s:.3f}" for s in simultaneous))

    for qubit in (0, 1):
        drop = study.fidelity_drop(qubit) * 100
        print(f"\nZZ-induced fidelity drop on q{qubit}: {drop:.2f} "
              "percentage points"
              " (the paper attributes this to the inevitable ZZ "
              "interaction)")


if __name__ == "__main__":
    main()
