#!/usr/bin/env python
"""Quantum Operation Level Parallelism: superscalar TR on the suite.

Compiles the seven evaluation benchmarks and compares the scalar
baseline against quantum superscalar designs of increasing width,
reporting the average Time Ratio (Equation 2, 10 ns clock / 20 ns gate
time).  TR <= 1 means the control processor keeps up with the QPU.

Run with::

    python examples/superscalar_tr.py
"""

from repro import QuAPESystem, compile_circuit
from repro.analysis import format_table
from repro.benchlib import SUITE
from repro.qcp import scalar_config, superscalar_config

WIDTHS = (2, 4, 8)


def average_tr(program, config) -> float:
    system = QuAPESystem(program=program, config=config)
    return system.run().tr_report().average


def main() -> None:
    rows = []
    for spec in SUITE:
        compiled = compile_circuit(spec.circuit())
        row = [spec.name, spec.source,
               round(average_tr(compiled.program, scalar_config()), 2)]
        for width in WIDTHS:
            row.append(round(average_tr(compiled.program,
                                        superscalar_config(width)), 2))
        rows.append(row)
    print(format_table(
        ["benchmark", "source", "scalar TR"]
        + [f"{w}-way TR" for w in WIDTHS], rows,
        title=("Average TR per benchmark (goal: TR <= 1; paper's "
               "design is the 8-way)")))
    print("\nReading: the scalar baseline misses the deadline on "
          "parallel workloads (TR > 1);\nwider superscalar dispatch "
          "drives TR below 1 everywhere, as in Figure 13.")


if __name__ == "__main__":
    main()
