"""Section 1 motivation: late operation issue accumulates quantum error.

The paper's core premise: "any delay in quantum operations issued from
the microarchitecture can result in additional accumulated quantum
errors".  This benchmark quantifies it end to end: a 12-qubit circuit
of parallel single-qubit layers is executed by the scalar baseline
(which issues label-0 partners one cycle apart, stretching every layer)
and by the 8-way superscalar (which issues them simultaneously), on a
QPU with T1/T2 idle decay.

Decoherence is accelerated (T1 = 2 us instead of the chip's 50-100 us)
so the mechanism is decisive at 12 qubits; on real hardware the same
effect appears at scale — per-layer control overhead grows with qubit
count while coherence does not (Section 3.2.2).
"""

from __future__ import annotations

import statistics

from repro.analysis import format_table
from repro.circuit import QuantumCircuit
from repro.compiler import compile_circuit
from repro.qcp import QuAPESystem, scalar_config, superscalar_config
from repro.qpu import NoiseModel, StateVectorQPU, full_topology
from repro.qpu.noise import DecoherenceNoise

N_QUBITS = 12
N_LAYERS = 12
SEEDS = 30
T1_US, T2_US = 2.0, 1.6


def layered_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(N_QUBITS, "parallel_layers")
    for _ in range(N_LAYERS):
        for qubit in range(N_QUBITS):
            circuit.h(qubit)
        circuit.barrier()
    return circuit


def run_config(config, program):
    fidelities = []
    late_total = 0
    for seed in range(SEEDS):
        noise = NoiseModel(
            decoherence=DecoherenceNoise(t1_us=T1_US, t2_us=T2_US),
            seed=seed)
        noisy = StateVectorQPU(full_topology(N_QUBITS), noise=noise,
                               seed=seed)
        result = QuAPESystem(program=program, config=config,
                             qpu=noisy).run()
        ideal = StateVectorQPU(full_topology(N_QUBITS), seed=seed)
        QuAPESystem(program=program, config=config, qpu=ideal).run()
        fidelities.append(noisy.state.fidelity_with(ideal.state))
        late_total += result.trace.total_late_ns
    return statistics.fmean(fidelities), late_total // SEEDS


def sweep():
    program = compile_circuit(layered_circuit()).program
    return {label: run_config(config, program)
            for label, config in (("scalar", scalar_config()),
                                  ("8-way", superscalar_config(8)))}


def test_motivation_decoherence_cost(benchmark, report):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[label, late, round(fidelity, 3)]
            for label, (fidelity, late) in results.items()]
    report("motivation_decoherence_cost", format_table(
        ["control design", "late-issue time per run (ns)",
         "mean state fidelity"], rows,
        title=(f"Decoherence cost of slow operation supply "
               f"({N_QUBITS}-qubit x {N_LAYERS}-layer circuit, "
               f"T1={T1_US} us stress setting)")))

    scalar_fidelity, scalar_late = results["scalar"]
    super_fidelity, super_late = results["8-way"]
    # The superscalar issues (almost) every operation on time; the
    # residual lateness is the 12-wide layer exceeding 8 pipelines by
    # one dispatch cycle — inherent to any finite-width design.
    assert super_late <= 2 * 10
    assert scalar_late > 50 * super_late
    # ...and on-time supply directly buys state fidelity.
    assert super_fidelity > scalar_fidelity + 0.1
    assert super_fidelity > 0.9
