"""Section 9: quantum superscalar vs. the QuMA_v2-style VLIW approach.

The paper prefers superscalar over VLIW for three reasons; two are
quantifiable and benchmarked here:

* **Program size** — QNOP padding: a VLIW bundle always occupies
  ``1 + width`` words, so sparse (serial) code pays for empty slots.
  Expected shape: large VLIW size overhead on serial benchmarks
  (rd84_143, sym9_148), little or none on maximally parallel ones.
* **Branch-latency absorption** — the superscalar dispatches classical
  instructions separately from quantum ones, so loop overhead hides
  inside gate gaps; a VLIW machine executes bundles and classical
  words serially.  Measured on a loop-heavy microbenchmark.

Both designs must issue identical operation streams (same semantics).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.benchlib import SUITE
from repro.compiler import bundle_program, compile_circuit
from repro.isa import ProgramBuilder, risc_word_count, vliw_word_count
from repro.qcp import QuAPESystem, scalar_config, superscalar_config

WIDTH = 8


def size_sweep():
    rows = []
    for spec in SUITE:
        compiled = compile_circuit(spec.circuit())
        vliw = bundle_program(compiled.program, width=WIDTH)
        risc_words = risc_word_count(compiled.program.instructions)
        vliw_words = vliw_word_count(vliw.instructions)
        rows.append((spec.name, risc_words, vliw_words,
                     vliw_words / risc_words))
    return rows


def loop_microbenchmark():
    """A tight loop: one 40 ns two-qubit step + counter + branch.

    Per iteration the budget is 4 cycles.  The superscalar needs 4 (the
    counter update dispatches alongside the quantum group); the VLIW
    machine needs 5 (bundle, counter, branch + flush) and falls one
    cycle behind its timeline every iteration.
    """
    builder = ProgramBuilder("loop_heavy")
    builder.ldi(1, 40)
    loop = builder.label("loop")
    builder.qop("x90", [0], timing=4)
    builder.qop("y90", [1], timing=0)
    builder.addi(1, 1, -1)
    builder.bne(1, 0, loop)
    builder.halt()
    program = builder.build()

    vliw = bundle_program(program, width=WIDTH)
    results = {}
    superscalar = QuAPESystem(program=program,
                              config=superscalar_config(WIDTH),
                              n_qubits=2).run()
    vliw_result = QuAPESystem(program=vliw, config=scalar_config(),
                              n_qubits=2).run()
    results["superscalar"] = superscalar
    results["vliw"] = vliw_result
    return results


def test_vliw_program_size(benchmark, report):
    rows = benchmark.pedantic(size_sweep, rounds=1, iterations=1)
    table_rows = [[name, risc, vliw, f"{ratio:.2f}x"]
                  for name, risc, vliw, ratio in rows]
    ratios = {name: ratio for name, _, _, ratio in rows}
    report("comparison_vliw_size", format_table(
        ["benchmark", "RISC words", f"VLIW-{WIDTH} words",
         "VLIW/RISC"], table_rows,
        title=("Section 9 - program size: fixed-length RISC vs VLIW "
               "bundles (QNOP padding)")))
    # Serial benchmarks pay heavily for empty slots...
    assert ratios["rd84_143"] >= 2.0
    assert ratios["sym9_148"] >= 2.0
    assert ratios["bv_n16"] >= 2.0
    # ...while the maximally parallel benchmark does not.
    assert ratios["hs16"] <= 1.2


def test_vliw_branch_absorption(benchmark, report):
    results = benchmark.pedantic(loop_microbenchmark, rounds=1,
                                 iterations=1)
    superscalar = results["superscalar"]
    vliw = results["vliw"]
    # Identical operation streams.
    assert sorted((r.gate, r.qubits) for r in superscalar.trace.issues) \
        == sorted((r.gate, r.qubits) for r in vliw.trace.issues)
    rows = [
        ["total execution (ns)", superscalar.total_ns, vliw.total_ns],
        ["late-issue time (ns)", superscalar.trace.total_late_ns,
         vliw.trace.total_late_ns],
    ]
    report("comparison_vliw_branch", format_table(
        ["quantity", f"superscalar-{WIDTH}", f"VLIW-{WIDTH}"], rows,
        title=("Section 9 - loop-heavy microbenchmark: separate "
               "classical dispatch absorbs branch latency")))
    # The superscalar hides the loop's classical overhead inside the
    # gate gaps (one warm-up cycle of lateness at most); the VLIW
    # machine executes classical words serially and falls one cycle
    # behind its timeline every iteration.
    assert superscalar.trace.total_late_ns <= 10
    assert vliw.trace.total_late_ns >= \
        20 * superscalar.trace.total_late_ns
    assert superscalar.total_ns < vliw.total_ns