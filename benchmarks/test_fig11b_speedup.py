"""Figure 11b: actual vs. ideal multiprocessor speedup.

The *actual* curve uses the full scheduler cost model; the *ideal*
curve assumes "all block scheduling and allocation can be completed
without taking any clock cycles" (the paper's theoretical speedup).
Paper landmark: 2.59x actual speedup at six processors; the gap to
ideal is attributed to scheduling response time and allocation time.
"""

from __future__ import annotations

import statistics

from repro.analysis import format_comparison, format_table
from repro.benchlib import (build_shor_syndrome_program,
                            verification_qubits)
from repro.qcp import QuAPESystem, scalar_config
from repro.qpu import PRNGQPU, PRNGReadout

PROCESSOR_COUNTS = (1, 2, 4, 6)
FAILURE_RATE = 0.25
RUNS_PER_POINT = 60
PAPER_SIX_CORE_SPEEDUP = 2.59


def run_once(program, n_processors: int, seed: int, ideal: bool) -> int:
    readout = PRNGReadout(
        failure_rate=0.0,
        per_qubit={q: FAILURE_RATE for q in verification_qubits()},
        seed=seed)
    system = QuAPESystem(program=program,
                         config=scalar_config(ideal_scheduler=ideal),
                         n_processors=n_processors,
                         qpu=PRNGQPU(37, readout), n_qubits=37)
    return system.run().total_ns


def sweep():
    program = build_shor_syndrome_program()
    speedups: dict[str, list[float]] = {"actual": [], "ideal": []}
    for label, ideal in (("actual", False), ("ideal", True)):
        base = None
        for count in PROCESSOR_COUNTS:
            mean = statistics.fmean(
                run_once(program, count, seed, ideal)
                for seed in range(RUNS_PER_POINT))
            base = base or mean
            speedups[label].append(base / mean)
    return speedups


def test_fig11b_speedup(benchmark, report):
    speedups = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[str(count), round(actual, 2), round(ideal, 2)]
            for count, actual, ideal in zip(
                PROCESSOR_COUNTS, speedups["actual"], speedups["ideal"])]
    measured = speedups["actual"][-1]
    comparison = format_comparison("6-processor speedup",
                                   PAPER_SIX_CORE_SPEEDUP, measured)
    report("fig11b_speedup", format_table(
        ["processors", "actual speedup", "ideal speedup"], rows,
        title="Figure 11b - actual vs ideal speedup") + "\n" + comparison)
    # Shape: both curves grow with processor count; ideal bounds actual;
    # the six-core actual speedup lands in the paper's band.
    assert speedups["actual"] == sorted(speedups["actual"])
    assert speedups["ideal"] == sorted(speedups["ideal"])
    for actual, ideal in zip(speedups["actual"], speedups["ideal"]):
        assert ideal >= actual - 0.05
    assert 2.2 <= measured <= 3.0
