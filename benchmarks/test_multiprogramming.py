"""Section 3.1.2: multiprogramming — independent tasks on one QPU.

Four cloud-style tasks (Bell pair, GHZ, rotation layers, parity check)
are merged onto disjoint qubit ranges of one 13-qubit QPU, one program
block per task at priority 0.  The multiprocessor runs as many tasks
concurrently as it has processors, improving QPU utilisation — the
scenario the paper cites from the multi-programming literature.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.benchlib import compile_multiprogram, standard_task_mix
from repro.qcp import BlockEventKind, QuAPESystem, scalar_config

PROCESSOR_COUNTS = (1, 2, 4)


def sweep():
    compiled = compile_multiprogram(standard_task_mix())
    results = {}
    for count in PROCESSOR_COUNTS:
        system = QuAPESystem(program=compiled.program,
                             config=scalar_config(),
                             n_processors=count, n_qubits=13)
        result = system.run()
        concurrency = _peak_concurrency(result)
        results[count] = (result.total_ns, concurrency)
    return compiled, results


def _peak_concurrency(result) -> int:
    """Maximum number of task blocks executing at the same instant."""
    active = 0
    peak = 0
    events = sorted(result.trace.block_events, key=lambda e: e.time_ns)
    for event in events:
        if event.kind is BlockEventKind.EXEC_START:
            active += 1
            peak = max(peak, active)
        elif event.kind is BlockEventKind.EXEC_DONE:
            active -= 1
    return peak


def test_multiprogramming(benchmark, report):
    compiled, results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[count, round(results[count][0] / 1000.0, 2),
             results[count][1]]
            for count in PROCESSOR_COUNTS]
    task_list = ", ".join(block.name for block in
                          compiled.program.blocks)
    report("multiprogramming", format_table(
        ["processors", "makespan (us)", "peak concurrent tasks"], rows,
        title=f"Multiprogramming four tasks ({task_list})"))

    times = [results[count][0] for count in PROCESSOR_COUNTS]
    # Makespan shrinks with processors; concurrency tracks the count.
    assert times == sorted(times, reverse=True)
    assert times[0] > times[-1] * 1.5
    assert results[1][1] == 1
    assert results[2][1] == 2
    assert results[4][1] >= 3
