"""Backend scaling: dense statevector vs stabilizer tableau.

The dense simulator pays O(2^n) per gate and stops dead at 24 qubits;
the CHP tableau pays O(n) per gate and O(n^2) memory.  This benchmark
quantifies the crossover on the repetition-code syndrome-extraction
workload (the Clifford shape of every QEC experiment in the benchlib):
shots/sec for both backends while the dense simulator can still play,
then the stabilizer backend alone at 51 and 101 qubits — scenario
sizes the dense representation cannot hold at all.

It also measures the compile-once :class:`~repro.qcp.shots.ShotEngine`
against the naive rebuild-the-world loop (a fresh QPU plus a fresh
``QuAPESystem`` — program decode, block-info table, channel map — per
shot) on the 37-qubit / 50-block Steane benchmark, reporting both the
per-shot setup overhead and the end-to-end rate.
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.benchlib.repetition import chain_layout
from repro.benchlib.steane import N_QUBITS as STEANE_QUBITS
from repro.benchlib.steane import build_shor_syndrome_program
from repro.qcp import QuAPESystem, ShotEngine, scalar_config
from repro.qpu import SimulatedQPU, make_backend

#: Chain sizes: (n_data, total qubits).  The dense backend runs the
#: first three; the stabilizer backend runs them all.
CHAIN_SIZES = ((5, 9), (7, 13), (9, 17))
STABILIZER_ONLY_SIZES = ((26, 51), (51, 101))
ROUNDS = 2
DENSE_SHOTS = 3
STABILIZER_SHOTS = 30
SETUP_REPEATS = 60
ENGINE_SHOTS = 12


def chain_ops(n_data: int,
              rounds: int) -> list[tuple[str, tuple[int, ...]]]:
    """The repetition-chain workload as a raw backend op stream."""
    data, ancillas = chain_layout(n_data)
    ops: list[tuple[str, tuple[int, ...]]] = [("x", (data[0],))]
    ops += [("cnot", (data[0], q)) for q in data[1:]]
    for _ in range(rounds):
        for index, ancilla in enumerate(ancillas):
            ops.append(("cnot", (data[index], ancilla)))
            ops.append(("cnot", (data[index + 1], ancilla)))
        ops += [("measure", (a,)) for a in ancillas]
        ops += [("reset", (a,)) for a in ancillas]
    ops += [("measure", (q,)) for q in data]
    return ops


def backend_shots_per_sec(name: str, n_qubits: int,
                          ops: list[tuple[str, tuple[int, ...]]],
                          shots: int) -> float:
    """Replay the op stream ``shots`` times on a fresh backend state."""
    start = time.perf_counter()
    for seed in range(shots):
        state = make_backend(name, n_qubits)
        state.rng.seed(seed)
        for gate, qubits in ops:
            if gate == "measure":
                state.measure(qubits[0])
            elif gate == "reset":
                state.reset(qubits[0])
            else:
                state.apply_gate(gate, qubits)
    return shots / (time.perf_counter() - start)


def measure_shot_engine() -> dict[str, float]:
    """Compile-once vs rebuild-the-world on the Steane benchmark."""
    program = build_shor_syndrome_program(rounds=3)
    config = scalar_config()
    engine = ShotEngine(program, config=config, backend="stabilizer",
                        n_qubits=STEANE_QUBITS)

    # Per-shot setup overhead alone (no execution): everything the
    # naive loop rebuilds vs everything the engine actually rebuilds.
    start = time.perf_counter()
    for _ in range(SETUP_REPEATS):
        qpu = SimulatedQPU(STEANE_QUBITS, backend="stabilizer")
        QuAPESystem(program=program, config=config, qpu=qpu,
                    n_qubits=STEANE_QUBITS)
    naive_setup = (time.perf_counter() - start) / SETUP_REPEATS

    shared_qpu = engine._qpu
    start = time.perf_counter()
    for _ in range(SETUP_REPEATS):
        shared_qpu.operation_log.clear()
        shared_qpu.restart()
        QuAPESystem(program=program, config=config, qpu=shared_qpu,
                    n_qubits=STEANE_QUBITS, memory=engine.memory,
                    table=engine.table, channel_map=engine.channel_map)
    engine_setup = (time.perf_counter() - start) / SETUP_REPEATS

    # End-to-end shot rates.
    start = time.perf_counter()
    for seed in range(ENGINE_SHOTS):
        qpu = SimulatedQPU(STEANE_QUBITS, seed=seed,
                           backend="stabilizer")
        system = QuAPESystem(program=program, config=config, qpu=qpu,
                             n_qubits=STEANE_QUBITS)
        system.run()
        system.kernel.run()
    naive_rate = ENGINE_SHOTS / (time.perf_counter() - start)

    start = time.perf_counter()
    engine.run(ENGINE_SHOTS)
    engine_rate = ENGINE_SHOTS / (time.perf_counter() - start)

    return {"naive_setup_us": naive_setup * 1e6,
            "engine_setup_us": engine_setup * 1e6,
            "naive_rate": naive_rate, "engine_rate": engine_rate}


def sweep():
    rates: dict[tuple[int, str], float | None] = {}
    for n_data, n_qubits in CHAIN_SIZES:
        ops = chain_ops(n_data, ROUNDS)
        rates[(n_qubits, "statevector")] = backend_shots_per_sec(
            "statevector", n_qubits, ops, DENSE_SHOTS)
        rates[(n_qubits, "stabilizer")] = backend_shots_per_sec(
            "stabilizer", n_qubits, ops, STABILIZER_SHOTS)
    for n_data, n_qubits in STABILIZER_ONLY_SIZES:
        ops = chain_ops(n_data, ROUNDS)
        rates[(n_qubits, "statevector")] = None  # beyond the 24-qubit cap
        rates[(n_qubits, "stabilizer")] = backend_shots_per_sec(
            "stabilizer", n_qubits, ops, STABILIZER_SHOTS)
    return rates, measure_shot_engine()


def test_backend_scaling(benchmark, report):
    rates, engine = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sizes = [q for _, q in CHAIN_SIZES + STABILIZER_ONLY_SIZES]
    rows = []
    for n_qubits in sizes:
        dense = rates[(n_qubits, "statevector")]
        stab = rates[(n_qubits, "stabilizer")]
        rows.append([
            n_qubits,
            f"{dense:.1f}" if dense else "cannot represent",
            f"{stab:.1f}",
            f"{stab / dense:.0f}x" if dense else "-"])
    engine_rows = [
        ["rebuild world", round(engine["naive_setup_us"]),
         f"{engine['naive_rate']:.1f}"],
        ["ShotEngine (compile once)", round(engine["engine_setup_us"]),
         f"{engine['engine_rate']:.1f}"]]
    report("backend_scaling", format_table(
        ["qubits", "dense shots/s", "stabilizer shots/s", "speedup"],
        rows,
        title=(f"Repetition-chain syndrome extraction, {ROUNDS} rounds "
               f"(dense 24-qubit cap vs CHP tableau)"))
        + "\n\n" + format_table(
        ["shot loop", "per-shot setup (us)", "shots/s"], engine_rows,
        title=("Compile-once ShotEngine vs per-shot rebuild "
               "(Steane Shor-syndrome, 37 qubits, 50 blocks)")))

    # The tableau is >= 10x faster than dense from 16 qubits on, and
    # the gap widens with size (polynomial vs exponential).
    assert rates[(17, "stabilizer")] >= 10 * rates[(17, "statevector")]
    assert (rates[(17, "stabilizer")] / rates[(17, "statevector")]
            > rates[(9, "stabilizer")] / rates[(9, "statevector")])
    # 50+ qubit Clifford workloads are routine on the tableau.
    assert rates[(101, "stabilizer")] > 1.0
    # Compile-once execution cuts the per-shot setup overhead hard
    # (measured ~10x; asserted loosely because CI runners are noisy)
    # and must not lose end to end beyond timing jitter.
    assert engine["naive_setup_us"] > 1.5 * engine["engine_setup_us"]
    assert engine["engine_rate"] > 0.7 * engine["naive_rate"]
