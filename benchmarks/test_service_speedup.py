"""Shot-sweep service throughput: sharded workers vs the serial engine.

The acceptance figure for the service PR: on a cycle-accurate-bound
workload (trace cache off, so every shot pays the full event-driven
simulation), a 4-worker service sweep must reach at least 2.5x the
serial engine's throughput — while staying **bit-identical**, which is
asserted before any rate is trusted.

Parallel speedup needs parallel hardware: the scaling assertion is
skipped on machines with fewer than 4 usable CPUs (the bit-identity
half runs everywhere).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis import format_table
from repro.benchlib.repetition import build_repetition_chain_program
from repro.qcp import ShotEngine, scalar_config
from repro.service.client import ServiceClient
from repro.service.server import ServiceHandle

CHAIN_DATA, CHAIN_QUBITS = 5, 9
SHOTS = 256
MIN_SPEEDUP = 2.5
WORKER_COUNTS = (1, 2, 4)


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def build_workload():
    program = build_repetition_chain_program(
        CHAIN_DATA, rounds=2, encode_one=True)
    return program, program.to_asm()


def serial_baseline(program):
    engine = ShotEngine(program,
                        config=scalar_config(trace_cache=False),
                        backend="stabilizer", n_qubits=CHAIN_QUBITS)
    start = time.perf_counter()
    result = engine.run(SHOTS)
    return SHOTS / (time.perf_counter() - start), result


def service_rate(text, n_workers: int):
    with ServiceHandle.start(n_workers=n_workers) as handle:
        client = ServiceClient(handle.host, handle.port)
        # Warm-up fans one-shot shards across the pool so every
        # worker compiles its engine before the measured job.
        client.run_sweep(text, shots=4 * n_workers, seed=SHOTS,
                         backend="stabilizer",
                         config={"trace_cache": False}, shard_shots=1)
        start = time.perf_counter()
        result, _ = client.run_sweep(text, shots=SHOTS,
                                     backend="stabilizer",
                                     config={"trace_cache": False})
        return SHOTS / (time.perf_counter() - start), result


def test_service_bit_identity_and_scaling(report):
    program, text = build_workload()
    serial_rate_, serial = serial_baseline(program)
    cpus = usable_cpus()
    rows = []
    speedups = {}
    for n_workers in WORKER_COUNTS:
        if n_workers > 1 and cpus < 2:
            # One measured multi-worker point suffices on a single
            # CPU: the extra worker counts only add pool spin-up.
            continue
        rate, result = service_rate(text, n_workers)
        assert result.counts == serial.counts
        assert result.total_ns == serial.total_ns
        assert result.measured_qubits == serial.measured_qubits
        speedups[n_workers] = rate / serial_rate_
        rows.append([f"{n_workers} worker(s)", round(rate, 1),
                     f"{rate / serial_rate_:.2f}x"])
    report("service_speedup", format_table(
        ["configuration", "shots/s", "vs serial"],
        [["serial engine", round(serial_rate_, 1), "1.00x"]] + rows,
        title=f"shot-sweep service, chain_{CHAIN_QUBITS}q x {SHOTS} "
              f"shots, trace cache off ({cpus} cpus)"))
    if cpus < 4:
        pytest.skip(f"scaling assertion needs >= 4 usable CPUs, "
                    f"have {cpus} (bit-identity asserted above)")
    assert speedups[4] >= MIN_SPEEDUP, (
        f"4-worker service reached only {speedups[4]:.2f}x serial "
        f"(need >= {MIN_SPEEDUP}x)")
    assert speedups[4] > speedups[1], "no scaling from 1 to 4 workers"
