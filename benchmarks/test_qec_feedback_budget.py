"""Section 2.3: the QEC feedback budget.

"The feedback control for quantum error correction needs to be
completed within 1% of this coherence time to achieve the
fault-tolerance" — with 50-100 us coherence, that is a 0.5-1 us budget
per correction round.  This benchmark measures one full round of the
repetition-code memory on the control stack and decomposes it into the
physics-bound readout latency (measurement pulse + acquisition, stage
I+II) and the *control* contribution (gates, decode branching, stage
III, ancilla reset) that the microarchitecture is responsible for.
The control contribution must fit comfortably inside the budget.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.benchlib import build_repetition_memory_program
from repro.benchlib.repetition import N_QUBITS
from repro.qcp import QuAPESystem, scalar_config
from repro.qpu import StateVectorQPU, full_topology

#: Coherence-time budget: 1 % of T2 = 50 us.
BUDGET_NS = 500
#: Stage I+II latency of the modelled readout chain.
READOUT_NS = 400


def round_time(base_rounds: int = 2) -> float:
    """Mean per-round latency, by differencing round counts."""
    times = {}
    for count in (base_rounds, base_rounds + 2):
        program = build_repetition_memory_program(rounds=count)
        qpu = StateVectorQPU(full_topology(N_QUBITS), seed=1)
        system = QuAPESystem(
            program=program, qpu=qpu,
            config=scalar_config(fast_context_switch=True))
        times[count] = system.run().total_ns
    return (times[base_rounds + 2] - times[base_rounds]) / 2.0


def test_qec_feedback_budget(benchmark, report):
    latency = benchmark.pedantic(round_time, rounds=1, iterations=1)
    control_ns = latency - READOUT_NS
    rows = [
        ["full correction round", round(latency)],
        ["readout (stage I+II, physics-bound)", READOUT_NS],
        ["control contribution (gates + decode + reset)",
         round(control_ns)],
        ["budget (1% of 50 us coherence)", BUDGET_NS],
    ]
    report("qec_feedback_budget", format_table(
        ["quantity", "ns"], rows,
        title=("QEC round latency vs the paper's 1%-of-coherence "
               "budget (repetition code)")))
    # The control microarchitecture's share of the round fits well
    # inside the fault-tolerance budget; the remainder is the readout
    # chain the paper treats as stage I+II.
    assert 0 < control_ns <= BUDGET_NS
    # And the full round stays within ~2% of coherence even with the
    # physics included.
    assert latency <= 2 * BUDGET_NS
