"""Persistent artifact cache: warm engine start vs cold compile.

The trace cache made shot N cheap but left shot *one* expensive: a
fresh process pays the cycle-accurate leader shot plus trie and sign
program compilation before replay kicks in.  The artifact cache
(``repro.qcp.artifacts``) moves that cost across process boundaries —
a compiled trie is serialized once and mmap-loaded by every later
engine with the same identity, so a warm process replays from its
very first shot.  This benchmark times "engine construction + the
first few shots" cold vs warm and asserts the warm side did zero
compile work while staying bit-identical.
"""

from __future__ import annotations

import pathlib
import tempfile
import time

from repro.analysis import format_table
from repro.benchlib.repetition import build_repetition_chain_program
from repro.qcp import ShotEngine, scalar_config

CHAIN_DATA, CHAIN_QUBITS = 26, 51
#: Shots in the timed window.  Small on purpose: the artifact cache
#: targets time-to-first-result, not steady-state throughput (the
#: trace-cache benchmarks already cover that).
FIRST_SHOTS = 5
IDENTITY_SHOTS = 25
#: Best-of-N samples per side to damp scheduler noise.
ROUNDS = 3


def time_to_first_shots(program, directory: pathlib.Path):
    """Construct an engine against ``directory`` and run FIRST_SHOTS.

    One number covers the whole warm-vs-cold difference: a cold engine
    spends the window on cycle-accurate leader shots plus compilation
    (and publishes the artifact on exit); a warm engine mmap-loads the
    compiled trie at construction and replays every shot.
    """
    config = scalar_config(trace_cache=True, trace_cache_batch=False,
                           artifact_cache_dir=str(directory))
    start = time.perf_counter()
    engine = ShotEngine(program, config=config, backend="stabilizer",
                        n_qubits=CHAIN_QUBITS)
    result = engine.run(FIRST_SHOTS)
    return time.perf_counter() - start, result, engine


def warm_start_sweep():
    program = build_repetition_chain_program(CHAIN_DATA, rounds=2,
                                             encode_one=True)
    with tempfile.TemporaryDirectory(prefix="qcp-artifact-bench-") as tmp:
        base = pathlib.Path(tmp)
        # Cold samples each get a fresh directory: nothing to load.
        cold_s = None
        for sample in range(ROUNDS):
            elapsed, cold_result, cold_engine = time_to_first_shots(
                program, base / f"cold{sample}")
            cold_s = elapsed if cold_s is None else min(cold_s, elapsed)
        # The last cold engine published into its directory; warm
        # samples all start from that artifact.
        shared = base / f"cold{ROUNDS - 1}"
        warm_s = None
        for _ in range(ROUNDS):
            elapsed, warm_result, warm_engine = time_to_first_shots(
                program, shared)
            warm_s = elapsed if warm_s is None else min(warm_s, elapsed)
    return {
        "cold_s": cold_s, "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "identical": (warm_result.counts == cold_result.counts
                      and warm_result.total_ns == cold_result.total_ns),
        "cold_engine": cold_engine, "warm_engine": warm_engine,
    }


def test_artifact_warm_start(benchmark, report):
    """A warm start must skip compile work entirely — and show it.

    The hard guarantees are behavioral: the warm engine loaded exactly
    one artifact, ran the whole window with zero trace-cache misses,
    and produced the cold engine's histogram and total_ns bit for bit.
    The timing floor is deliberately loose (measured ~4-8x on the
    51-qubit chain; asserted >= 1.5x for noisy CI runners) — the
    miss-count assertion is what actually pins the mechanism.
    """
    data = benchmark.pedantic(warm_start_sweep, rounds=1, iterations=1)
    cold = data["cold_engine"]
    warm = data["warm_engine"]
    report("artifact_cache", format_table(
        ["workload", "cold start s", "warm start s", "speedup",
         "warm loads", "warm misses", "bit-identical"],
        [[f"chain_{CHAIN_QUBITS}q first {FIRST_SHOTS} shots",
          f"{data['cold_s']:.4f}", f"{data['warm_s']:.4f}",
          f"{data['speedup']:.1f}x",
          str(warm.artifacts.warm_loads),
          str(warm.trace_cache.misses),
          "yes" if data["identical"] else "NO"]],
        title=("Persistent compiled-trace artifacts: engine "
               "construction + first shots, cold vs warm "
               "(stabilizer backend)")))
    assert data["identical"], "warm start diverged"
    assert cold.artifacts.warm_loads == 0
    assert cold.artifacts.saves >= 1, "cold engine never published"
    assert warm.artifacts.warm_loads == 1, "warm engine compiled cold"
    assert warm.artifacts.invalidations == 0
    # Zero misses is the mechanism: every shot of the warm window
    # replayed from the mmap-loaded trie.
    assert warm.trace_cache.misses == 0
    assert warm.trace_cache.hits == FIRST_SHOTS
    assert data["speedup"] >= 1.5, f"only {data['speedup']:.1f}x"
