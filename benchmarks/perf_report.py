"""Machine-readable shot-throughput baseline (``BENCH_shots.json``).

Runs the shot-throughput suite — repetition-chain syndrome memories
from 9 to 101 qubits plus the 37-qubit Steane Shor-syndrome benchmark —
through the compile-once :class:`~repro.qcp.shots.ShotEngine` twice:
once with the trace cache disabled (every shot cycle-accurate) and once
enabled (decision-trie replay).  The result is written as JSON so future
PRs have a comparable perf trajectory:

    PYTHONPATH=src python benchmarks/perf_report.py            # full suite
    PYTHONPATH=src python benchmarks/perf_report.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/perf_report.py -o out.json

``--quick`` runs one small workload with tiny shot counts: it exists so
CI can catch import/runtime regressions on the perf path without
asserting anything about timing on noisy runners.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

from repro.benchlib.repetition import build_repetition_chain_program
from repro.benchlib.steane import (N_QUBITS as STEANE_QUBITS,
                                   build_shor_syndrome_program)
from repro.qcp import ShotEngine, scalar_config

#: (n_data, total qubits) for the repetition-chain sweep.
CHAIN_SIZES = ((5, 9), (13, 25), (26, 51), (51, 101))
CHAIN_ROUNDS = 2

DEFAULT_OUTPUT = pathlib.Path(__file__).parent.parent / "BENCH_shots.json"


def _measure(program, n_qubits: int, trace_cache: bool,
             shots: int) -> tuple[float, ShotEngine]:
    config = scalar_config(trace_cache=trace_cache)
    engine = ShotEngine(program, config=config, backend="stabilizer",
                        n_qubits=n_qubits)
    start = time.perf_counter()
    engine.run(shots)
    elapsed = time.perf_counter() - start
    return shots / elapsed, engine


def measure_workload(name: str, program, n_qubits: int,
                     uncached_shots: int,
                     cached_shots: int) -> dict:
    uncached_rate, _ = _measure(program, n_qubits, False, uncached_shots)
    cached_rate, engine = _measure(program, n_qubits, True, cached_shots)
    cache = engine.trace_cache
    return {
        "qubits": n_qubits,
        "backend": "stabilizer",
        "uncached_shots_per_s": round(uncached_rate, 2),
        "uncached_us_per_shot": round(1e6 / uncached_rate, 1),
        "cached_shots_per_s": round(cached_rate, 2),
        "cached_us_per_shot": round(1e6 / cached_rate, 1),
        "speedup": round(cached_rate / uncached_rate, 1),
        "trace_cache": {"hits": cache.hits, "misses": cache.misses,
                        "nodes": cache.nodes},
    }


def run_suite(quick: bool = False) -> dict:
    workloads: dict[str, dict] = {}
    sizes = CHAIN_SIZES[:1] if quick else CHAIN_SIZES
    uncached_shots = 5 if quick else 20
    cached_shots = 50 if quick else 400
    for n_data, n_qubits in sizes:
        program = build_repetition_chain_program(
            n_data, rounds=CHAIN_ROUNDS, encode_one=True)
        workloads[f"repetition_chain_{n_qubits}q"] = measure_workload(
            f"repetition_chain_{n_qubits}q", program, n_qubits,
            uncached_shots, cached_shots)
    if not quick:
        program = build_shor_syndrome_program(rounds=3)
        workloads["steane_shor_37q"] = measure_workload(
            "steane_shor_37q", program, STEANE_QUBITS,
            uncached_shots, cached_shots)
    return {
        "schema": "bench-shots/v1",
        "description": ("Shot throughput of the compile-once ShotEngine "
                        "with the cycle-accurate simulator (uncached) vs "
                        "trace-cache replay (cached)."),
        "config": {"backend": "stabilizer",
                   "chain_rounds": CHAIN_ROUNDS,
                   "quick": quick,
                   "python": platform.python_version()},
        "workloads": workloads,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="one small workload, tiny shot counts "
                             "(CI smoke: exercises the perf path, "
                             "asserts nothing about timing)")
    parser.add_argument("-o", "--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT,
                        help=f"output path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    report = run_suite(quick=args.quick)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    header = f"{'workload':<24} {'uncached/s':>11} {'cached/s':>10} " \
             f"{'speedup':>8}"
    print(header)
    for name, data in report["workloads"].items():
        print(f"{name:<24} {data['uncached_shots_per_s']:>11} "
              f"{data['cached_shots_per_s']:>10} "
              f"{data['speedup']:>7}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
