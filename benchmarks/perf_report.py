"""Machine-readable shot-throughput baseline (``BENCH_shots.json``).

Runs the shot-throughput suite through the compile-once
:class:`~repro.qcp.shots.ShotEngine` three times — trace cache
disabled (every shot cycle-accurate), enabled with the serial per-shot
replay loop, and enabled with shot-batched cohort replay (bit-plane
sign columns / batch GEMMs, auto-sized cohorts) — and writes the rates
as JSON so future PRs have a comparable perf trajectory.  Workloads:

* repetition-chain syndrome memories from 9 to 101 qubits (ideal
  substrate);
* the same chains on a **noisy** substrate (bit-flip Pauli channel
  plus readout error) — the regime the noise-aware cache serves with
  positional noise replay compiled into the sign trace;
* the 37-qubit Steane Shor-syndrome benchmark;
* a fair-coin RUS loop with the LRU trie bound engaged — the
  high-path-entropy adversary, reported with node/eviction counts to
  show memory stays bounded while throughput holds;
* the SDK-authored dynamic workloads — 3-hop teleport chain with
  feed-forward corrections, the RUS distillation unit, the prioritized
  superscalar mix — and the surface-code d=3/d=5 memories at the
  standard noise point (with their seeded golden logical error counts);
* a **dense-replay sweep** on the statevector backend: the ideal
  chain with GEMM-fused replay (fused vs unfused compiled closures),
  and the noisy chain comparing the compiled noise-site program
  against the PR 4 timed device-level replay loop (the
  ``speedup_vs_device_replay`` figure the compiled pipeline is
  asserted against in ``benchmarks/test_trace_cache_speedup.py``).

Usage::

    PYTHONPATH=src python benchmarks/perf_report.py            # full suite
    PYTHONPATH=src python benchmarks/perf_report.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/perf_report.py -o out.json

``--quick`` runs two small workloads with tiny shot counts: it exists
so CI can catch import/runtime regressions on the perf path without
asserting anything about timing on noisy runners.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import platform
import tempfile
import time

from repro.benchlib.dynamic import (DISTILLATION_QUBITS,
                                    SUPERSCALAR_MIX_QUBITS,
                                    build_distillation_program,
                                    build_superscalar_mix_program,
                                    build_teleport_chain_program,
                                    teleport_chain_qubits)
from repro.benchlib.repetition import build_repetition_chain_program
from repro.benchlib.rus import build_rus_blocks
from repro.benchlib.steane import (N_QUBITS as STEANE_QUBITS,
                                   build_shor_syndrome_program)
from repro.benchlib.surface import (build_surface_memory_program,
                                    surface_layout,
                                    surface_logical_error_rate,
                                    surface_noise_model)
from repro.qcp import ShotEngine, scalar_config
from repro.qcp.tracecache import auto_batch_width
from repro.qpu.noise import NoiseModel, PauliChannel, ReadoutError
from repro.qpu.profile import DeviceProfile

#: (n_data, total qubits) for the repetition-chain sweep.
CHAIN_SIZES = ((5, 9), (13, 25), (26, 51), (51, 101))
CHAIN_ROUNDS = 2

#: Chain sizes for the noisy sweep (the cache's newest regime).
NOISY_CHAIN_SIZES = ((5, 9), (13, 25), (26, 51))

#: (n_data, qubits) for the dense (statevector) replay sweep.  Small
#: on purpose: this regime measures Python dispatch vs compiled
#: replay; past ~15 qubits the 2^n numpy kernels dominate both sides
#: and every strategy converges.
DENSE_CHAIN_SIZES = ((3, 5), (5, 9))

#: LRU bound used by the fair-coin RUS workload — deliberately smaller
#: than the trie the shot count would otherwise grow, so the baseline
#: actually exercises eviction (check the ``evictions`` count in
#: ``BENCH_shots.json``).
RUS_MAX_NODES = 40

DEFAULT_OUTPUT = pathlib.Path(__file__).parent.parent / "BENCH_shots.json"


def chain_noise_model() -> NoiseModel:
    """The noisy-sweep error model: bit-flip data errors + readout.

    A fresh instance per engine — noise models own their channel rng,
    so sharing one across engines would entangle their draw streams.
    """
    return NoiseModel(pauli=PauliChannel(px=1e-3),
                      readout=ReadoutError(p0_given_1=0.005,
                                           p1_given_0=0.002))


def _measure(program, n_qubits: int, trace_cache: bool, shots: int,
             noise_factory=None, max_nodes: int | None = None,
             backend: str = "stabilizer", batch: bool = False,
             profile: DeviceProfile | None = None,
             **config_changes) -> tuple[float, ShotEngine]:
    # Serial replay is the measured baseline: batching stays off
    # unless this call is the explicit batched measurement.
    config = scalar_config(trace_cache=trace_cache,
                           trace_cache_max_nodes=max_nodes,
                           trace_cache_batch=batch,
                           **config_changes)
    noise = noise_factory() if noise_factory is not None else None
    engine = ShotEngine(program, config=config, backend=backend,
                        n_qubits=n_qubits, noise=noise, profile=profile)
    start = time.perf_counter()
    engine.run(shots)
    elapsed = time.perf_counter() - start
    return shots / elapsed, engine


def _cache_stats(cache, batched: bool = False) -> dict:
    stats = {"hits": cache.hits, "misses": cache.misses,
             "resumes": cache.resumes, "nodes": cache.nodes,
             "evictions": cache.evictions}
    if batched:
        stats.update({"batched_shots": cache.batched_shots,
                      "wavefront_splits": cache.wavefront_splits,
                      "serial_fallbacks": cache.serial_fallbacks})
    return stats


def measure_workload(program, n_qubits: int,
                     uncached_shots: int, cached_shots: int,
                     noise_factory=None,
                     max_nodes: int | None = None) -> dict:
    uncached_rate, _ = _measure(program, n_qubits, False, uncached_shots,
                                noise_factory)
    cached_rate, engine = _measure(program, n_qubits, True, cached_shots,
                                   noise_factory, max_nodes)
    batched_rate, batched_engine = _measure(
        program, n_qubits, True, cached_shots, noise_factory, max_nodes,
        batch=True)
    cache = engine.trace_cache
    entry = {
        "qubits": n_qubits,
        "backend": "stabilizer",
        "noisy": noise_factory is not None,
        "uncached_shots_per_s": round(uncached_rate, 2),
        "uncached_us_per_shot": round(1e6 / uncached_rate, 1),
        "cached_shots_per_s": round(cached_rate, 2),
        "cached_us_per_shot": round(1e6 / cached_rate, 1),
        "speedup": round(cached_rate / uncached_rate, 1),
        "batched_shots_per_s": round(batched_rate, 2),
        "batch_width": auto_batch_width(batched_engine._qpu),
        "batch_speedup": round(batched_rate / cached_rate, 2),
        "trace_cache": _cache_stats(cache),
        "batched_trace_cache": _cache_stats(
            batched_engine.trace_cache, batched=True),
    }
    if max_nodes is not None:
        entry["trace_cache"]["max_nodes"] = max_nodes
    return entry


def chain_readout_profile(n_qubits: int) -> DeviceProfile:
    """Pauli-compatible calibration: per-qubit readout flips only.

    The auto router keeps the Clifford chain on the stabilizer
    tableau under this profile, and the sign-trace replay (serial and
    batched) stays fully engaged.
    """
    qubits = {str(qubit): {"readout":
                           {"p0_given_1": round(0.004 + 0.0004 * qubit,
                                                6)}}
              for qubit in range(n_qubits)}
    return DeviceProfile.from_dict({
        "name": f"bench-readout-{n_qubits}q",
        "defaults": {"readout": {"p0_given_1": 0.005,
                                 "p1_given_0": 0.002},
                     "gates": {"x90": 22, "measure": 340}},
        "qubits": qubits,
    })


def chain_dense_profile(n_qubits: int) -> DeviceProfile:
    """Amplitude-level calibration: per-qubit T1/T2 + per-pair ZZ.

    Non-Pauli channels, so the auto router sends even the Clifford
    chain to the dense statevector; decoherence reads live amplitudes,
    so the cohort path declines up front and batched runs replay
    serially (still bit-identical) — ``batched_shots`` stays 0 in the
    entry's ``batched_trace_cache``.
    """
    qubits = {str(qubit): {"t1_us": 60.0 + 5.0 * qubit, "t2_us": 45.0}
              for qubit in range(n_qubits)}
    couplings = [{"pair": [qubit, qubit + 1],
                  "zz_khz": 1800.0 - 150.0 * qubit}
                 for qubit in range(n_qubits - 1)]
    return DeviceProfile.from_dict({
        "name": f"bench-dense-{n_qubits}q",
        "defaults": {"readout": {"p0_given_1": 0.01,
                                 "p1_given_0": 0.004},
                     "gates": {"x90": 24, "cz": 64, "measure": 340}},
        "qubits": qubits,
        "couplings": couplings,
    })


def measure_calibrated_workload(program, n_qubits: int,
                                profile: DeviceProfile,
                                uncached_shots: int,
                                cached_shots: int) -> dict:
    """One ``backend="auto"`` entry with a calibrated device profile.

    The engine routes once (Clifford/noise analysis over the program
    and the profile-composed channels) and the entry records the
    decision next to the throughput numbers, plus the profile's
    content fingerprint — the same key component that invalidates
    compiled artifacts when a single calibration value changes.
    """
    uncached_rate, engine = _measure(program, n_qubits, False,
                                     uncached_shots, backend="auto",
                                     profile=profile)
    cached_rate, cached_engine = _measure(program, n_qubits, True,
                                          cached_shots, backend="auto",
                                          profile=profile)
    batched_rate, batched_engine = _measure(program, n_qubits, True,
                                            cached_shots, backend="auto",
                                            profile=profile, batch=True)
    return {
        "qubits": n_qubits,
        "backend": engine.backend,
        "routing": engine.routing.as_dict(),
        "profile": {"name": profile.name,
                    "qubits": len(profile.qubits),
                    "couplings": len(profile.couplings),
                    "fingerprint": profile.fingerprint()},
        "noisy": True,
        "uncached_shots_per_s": round(uncached_rate, 2),
        "uncached_us_per_shot": round(1e6 / uncached_rate, 1),
        "cached_shots_per_s": round(cached_rate, 2),
        "cached_us_per_shot": round(1e6 / cached_rate, 1),
        "speedup": round(cached_rate / uncached_rate, 1),
        "batched_shots_per_s": round(batched_rate, 2),
        "batch_width": auto_batch_width(batched_engine._qpu),
        "batch_speedup": round(batched_rate / cached_rate, 2),
        "trace_cache": _cache_stats(cached_engine.trace_cache),
        "batched_trace_cache": _cache_stats(
            batched_engine.trace_cache, batched=True),
    }


def measure_dense_workload(program, n_qubits: int,
                           uncached_shots: int, cached_shots: int,
                           noise_factory=None) -> dict:
    """One dense (statevector) sweep entry.

    On the ideal substrate the interesting comparison is GEMM fusion
    on vs off; on a noisy substrate it is the compiled noise-site
    program vs the PR 4 timed device-level replay loop
    (``trace_cache_compiled_noise=False``).
    """
    uncached_rate, _ = _measure(program, n_qubits, False,
                                uncached_shots, noise_factory,
                                backend="statevector")
    entry = {
        "qubits": n_qubits,
        "backend": "statevector",
        "noisy": noise_factory is not None,
        "uncached_shots_per_s": round(uncached_rate, 2),
    }
    if noise_factory is None:
        unfused_rate, _ = _measure(program, n_qubits, True,
                                   cached_shots, backend="statevector",
                                   trace_cache_dense_fusion=False)
        fused_rate, engine = _measure(program, n_qubits, True,
                                      cached_shots,
                                      backend="statevector")
        entry.update({
            "unfused_shots_per_s": round(unfused_rate, 2),
            "cached_shots_per_s": round(fused_rate, 2),
            "speedup": round(fused_rate / uncached_rate, 1),
            "fusion_speedup": round(fused_rate / unfused_rate, 2),
        })
    else:
        device_rate, _ = _measure(program, n_qubits, True,
                                  cached_shots, noise_factory,
                                  backend="statevector",
                                  trace_cache_compiled_noise=False)
        compiled_rate, engine = _measure(program, n_qubits, True,
                                         cached_shots, noise_factory,
                                         backend="statevector")
        entry.update({
            "device_replay_shots_per_s": round(device_rate, 2),
            "cached_shots_per_s": round(compiled_rate, 2),
            "speedup": round(compiled_rate / uncached_rate, 1),
            "speedup_vs_device_replay": round(
                compiled_rate / device_rate, 2),
        })
    batched_rate, batched_engine = _measure(
        program, n_qubits, True, cached_shots, noise_factory,
        backend="statevector", batch=True)
    entry.update({
        "batched_shots_per_s": round(batched_rate, 2),
        "batch_width": auto_batch_width(batched_engine._qpu),
        "batch_speedup": round(
            batched_rate / entry["cached_shots_per_s"], 2),
    })
    entry["trace_cache"] = _cache_stats(engine.trace_cache)
    entry["batched_trace_cache"] = _cache_stats(
        batched_engine.trace_cache, batched=True)
    return entry


def measure_service_sweep(quick: bool = False) -> dict:
    """Sharded shot-sweep service vs the serial engine.

    The cycle-accurate-bound regime (trace cache **off**) is where
    sharding pays: every shot costs a full event-driven simulation, so
    N workers approach N-fold throughput.  The serial baseline and
    every service run are asserted bit-identical before any rate is
    reported — a perf number for a wrong result would be worthless.
    Worker counts beyond the machine's cores are measured anyway (the
    numbers just stop scaling), so the entry is comparable across
    runners; ``cpus`` records the budget the run actually had.
    """
    import os

    from repro.service.client import ServiceClient
    from repro.service.server import ServiceHandle

    n_data, n_qubits = (3, 5) if quick else (5, 9)
    shots = 24 if quick else 256
    program = build_repetition_chain_program(
        n_data, rounds=CHAIN_ROUNDS, encode_one=True)
    text = program.to_asm()
    config = scalar_config(trace_cache=False)
    engine = ShotEngine(program, config=config, backend="stabilizer",
                        n_qubits=n_qubits)
    start = time.perf_counter()
    serial = engine.run(shots)
    serial_rate = shots / (time.perf_counter() - start)
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    entry = {
        "qubits": n_qubits,
        "backend": "stabilizer",
        "shots": shots,
        "cpus": cpus,
        "serial_shots_per_s": round(serial_rate, 2),
        "workers": {},
    }
    worker_counts = (1,) if quick else (1, 2, 4)
    for n_workers in worker_counts:
        with ServiceHandle.start(n_workers=n_workers) as handle:
            client = ServiceClient(handle.host, handle.port)
            # Warm-up: one-shot shards fan out so every worker
            # compiles its engine before the measured job.
            client.run_sweep(text, shots=4 * n_workers, seed=shots,
                             backend="stabilizer",
                             config={"trace_cache": False},
                             shard_shots=1)
            start = time.perf_counter()
            result, event = client.run_sweep(
                text, shots=shots, backend="stabilizer",
                config={"trace_cache": False})
            rate = shots / (time.perf_counter() - start)
        assert result.counts == serial.counts, "service != serial"
        assert result.total_ns == serial.total_ns, "service != serial"
        entry["workers"][str(n_workers)] = {
            "shots_per_s": round(rate, 2),
            "speedup_vs_serial": round(rate / serial_rate, 2),
            "shards": event["shards"],
        }
    return entry


def histogram_digest(result) -> str:
    """Stable digest of a shot histogram (counts + total duration).

    The CI warm-start smoke job runs the quick suite twice against one
    artifact directory and compares these digests across runs — a warm
    start that changed a single count or nanosecond would show up as a
    digest mismatch, not a buried diff.
    """
    body = json.dumps([sorted((str(key), count)
                              for key, count in result.counts.items()),
                       result.total_ns])
    return hashlib.sha256(body.encode()).hexdigest()


def _measure_warm_cell(program, n_qubits: int, shots: int,
                       directory: pathlib.Path, backend: str,
                       noise_factory=None) -> tuple:
    """One engine lifetime against ``directory``: build, run, sync.

    Startup is timed separately from the shot loop because the
    artifact cache moves work between them: a cold engine compiles
    during the shots (misses) and publishes at the end; a warm engine
    pays a load at construction and replays from shot one.
    """
    config = scalar_config(trace_cache=True,
                           artifact_cache_dir=str(directory))
    noise = noise_factory() if noise_factory is not None else None
    start = time.perf_counter()
    engine = ShotEngine(program, config=config, backend=backend,
                        n_qubits=n_qubits, noise=noise)
    startup_s = time.perf_counter() - start
    start = time.perf_counter()
    result = engine.run(shots)
    run_s = time.perf_counter() - start
    return engine, result, startup_s, run_s


def _engine_side(engine, startup_s: float, run_s: float,
                 shots: int) -> dict:
    artifacts = engine.artifacts
    return {
        "startup_s": round(startup_s, 6),
        "run_s": round(run_s, 6),
        "shots_per_s": round(shots / run_s, 2),
        "trace_cache_misses": engine.trace_cache.misses,
        "artifact_cache": artifacts.stats(),
    }


def measure_artifact_warm_start(quick: bool = False,
                                artifact_dir: pathlib.Path | None = None
                                ) -> dict:
    """Warm-vs-cold engine startup through the persistent artifact cache.

    Two identical engines run back to back against one artifact
    directory.  The first compiles every decision path it meets and
    publishes the trie on exit; the second maps that artifact at
    construction and replays from its very first shot — the number
    this workload exists to show is the second engine running the
    whole sweep with **zero trace-cache misses**, bit-identical to the
    first (asserted here, not just reported).

    With ``artifact_dir`` (the ``--artifact-cache`` flag) the
    directory persists across invocations, so a *second run of this
    script* starts warm too — that is the CI smoke contract: run the
    quick suite twice, assert run two reports ``first.warm_loads >= 1``
    and the ``histogram_sha256`` digests match run one's.
    """
    tmp = None
    if artifact_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="qcp-artifact-bench-")
        base = pathlib.Path(tmp.name)
    else:
        base = pathlib.Path(artifact_dir)
    try:
        cells = {}
        if quick:
            specs = [("stabilizer_ideal", "stabilizer", None, 5, 9)]
            shots = 40
        else:
            specs = [
                ("stabilizer_ideal", "stabilizer", None, 13, 25),
                ("stabilizer_noisy", "stabilizer", chain_noise_model,
                 13, 25),
                ("statevector_noisy", "statevector", chain_noise_model,
                 3, 5),
            ]
            shots = 300
        for name, backend, noise_factory, n_data, n_qubits in specs:
            program = build_repetition_chain_program(
                n_data, rounds=CHAIN_ROUNDS, encode_one=True)
            directory = base / name
            first_engine, first_result, first_startup, first_run = \
                _measure_warm_cell(program, n_qubits, shots, directory,
                                   backend, noise_factory)
            warm_engine, warm_result, warm_startup, warm_run = \
                _measure_warm_cell(program, n_qubits, shots, directory,
                                   backend, noise_factory)
            assert warm_result.counts == first_result.counts, \
                f"{name}: warm != cold histogram"
            assert warm_result.total_ns == first_result.total_ns, \
                f"{name}: warm != cold total_ns"
            assert warm_engine.artifacts.warm_loads == 1, \
                f"{name}: warm engine did not load the artifact"
            assert warm_engine.trace_cache.misses == 0, \
                f"{name}: warm engine still compiled"
            first_total = first_startup + first_run
            warm_total = warm_startup + warm_run
            cells[name] = {
                "qubits": n_qubits,
                "backend": backend,
                "noisy": noise_factory is not None,
                "shots": shots,
                "first": _engine_side(first_engine, first_startup,
                                      first_run, shots),
                "warm": _engine_side(warm_engine, warm_startup,
                                     warm_run, shots),
                "warm_speedup": round(first_total / warm_total, 2),
                "histogram_sha256": histogram_digest(first_result),
            }
        return {"artifact_dir_persistent": artifact_dir is not None,
                "cells": cells}
    finally:
        if tmp is not None:
            tmp.cleanup()


def measure_service_warm_start(artifact_dir: pathlib.Path | None = None
                               ) -> dict:
    """Two worker pools sharing one artifact directory.

    Pool one's workers compile cold and publish; pool two's workers —
    brand-new processes — find the artifacts and start warm.  Reports
    sweep wall time for each pool plus the per-worker warm-load
    counters from ``/stats``, asserting the histograms bit-identical
    before any number is emitted.
    """
    from repro.service.client import ServiceClient
    from repro.service.server import ServiceHandle

    n_data, n_qubits = 5, 9
    shots = 128
    program = build_repetition_chain_program(
        n_data, rounds=CHAIN_ROUNDS, encode_one=True)
    text = program.to_asm()
    tmp = None
    if artifact_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="qcp-artifact-svc-")
        artifact_dir = pathlib.Path(tmp.name)
    directory = pathlib.Path(artifact_dir) / "service"

    def pool_run() -> tuple[float, object, dict]:
        with ServiceHandle.start(
                n_workers=2,
                artifact_cache_dir=str(directory)) as handle:
            client = ServiceClient(handle.host, handle.port)
            start = time.perf_counter()
            result, _ = client.run_sweep(
                text, shots=shots, seed=7, backend="stabilizer",
                config={"trace_cache": True})
            elapsed = time.perf_counter() - start
            stats = client.stats()
        return elapsed, result, stats

    try:
        cold_s, cold_result, _ = pool_run()
        warm_s, warm_result, warm_stats = pool_run()
    finally:
        if tmp is not None:
            tmp.cleanup()
    assert warm_result.counts == cold_result.counts, "warm pool != cold"
    assert warm_result.total_ns == cold_result.total_ns, \
        "warm pool != cold"
    warm_loads = sum(
        worker.get("artifact_cache", {}).get("warm_loads", 0)
        for worker in warm_stats["worker_cache"].values())
    assert warm_loads >= 1, "no warm worker in the second pool"
    return {
        "qubits": n_qubits,
        "shots": shots,
        "n_workers": 2,
        "cold_pool_sweep_s": round(cold_s, 6),
        "warm_pool_sweep_s": round(warm_s, 6),
        "warm_pool_speedup": round(cold_s / warm_s, 2),
        "warm_pool_worker_warm_loads": warm_loads,
        "histogram_sha256": histogram_digest(cold_result),
    }


def run_suite(quick: bool = False,
              artifact_dir: pathlib.Path | None = None) -> dict:
    workloads: dict[str, dict] = {}
    sizes = CHAIN_SIZES[:1] if quick else CHAIN_SIZES
    noisy_sizes = NOISY_CHAIN_SIZES[:1] if quick else NOISY_CHAIN_SIZES
    uncached_shots = 5 if quick else 20
    cached_shots = 50 if quick else 400
    for n_data, n_qubits in sizes:
        program = build_repetition_chain_program(
            n_data, rounds=CHAIN_ROUNDS, encode_one=True)
        workloads[f"repetition_chain_{n_qubits}q"] = measure_workload(
            program, n_qubits, uncached_shots, cached_shots)
    for n_data, n_qubits in noisy_sizes:
        program = build_repetition_chain_program(
            n_data, rounds=CHAIN_ROUNDS, encode_one=True)
        workloads[f"repetition_chain_noisy_{n_qubits}q"] = \
            measure_workload(program, n_qubits, uncached_shots,
                             cached_shots,
                             noise_factory=chain_noise_model)
    dense_sizes = DENSE_CHAIN_SIZES[:1] if quick else DENSE_CHAIN_SIZES
    for n_data, n_qubits in dense_sizes:
        program = build_repetition_chain_program(
            n_data, rounds=CHAIN_ROUNDS, encode_one=True)
        workloads[f"repetition_chain_dense_{n_qubits}q"] = \
            measure_dense_workload(program, n_qubits, uncached_shots,
                                   cached_shots)
        workloads[f"repetition_chain_dense_noisy_{n_qubits}q"] = \
            measure_dense_workload(program, n_qubits, uncached_shots,
                                   cached_shots,
                                   noise_factory=chain_noise_model)
    # Calibrated device profiles through ``backend="auto"``: one
    # Pauli-compatible calibration the router keeps on the tableau,
    # and one amplitude-level calibration that forces the *same
    # Clifford chain* onto the dense statevector.  Both cells run in
    # --quick so the CI smoke covers each routing outcome.
    program = build_repetition_chain_program(
        5, rounds=CHAIN_ROUNDS, encode_one=True)
    workloads["repetition_chain_calibrated_9q"] = \
        measure_calibrated_workload(program, 9, chain_readout_profile(9),
                                    uncached_shots, cached_shots)
    program = build_repetition_chain_program(
        3, rounds=CHAIN_ROUNDS, encode_one=True)
    workloads["repetition_chain_calibrated_dense_5q"] = \
        measure_calibrated_workload(program, 5, chain_dense_profile(5),
                                    uncached_shots, cached_shots)
    if not quick:
        program = build_shor_syndrome_program(rounds=3)
        workloads["steane_shor_37q"] = measure_workload(
            program, STEANE_QUBITS, uncached_shots, cached_shots)
        # High path entropy: two fair-coin RUS loops.  Cached shots
        # equal uncached here — the point is the LRU-bounded trie and
        # throughput parity, not a replay speedup.
        program = build_rus_blocks(2)
        workloads["rus_fair_coin_2x"] = measure_workload(
            program, 6, 200, 200, max_nodes=RUS_MAX_NODES)
        # SDK-authored dynamic workloads: feed-forward corrections,
        # RUS acceptance and a prioritized multi-program mix.
        program = build_teleport_chain_program(3)
        workloads["teleport_chain_3hop"] = measure_workload(
            program, teleport_chain_qubits(3), uncached_shots,
            cached_shots)
        program = build_distillation_program(3)
        workloads["distillation_rus_5q"] = measure_workload(
            program, DISTILLATION_QUBITS, uncached_shots, cached_shots)
        program = build_superscalar_mix_program()
        workloads["superscalar_mix_8q"] = measure_workload(
            program, SUPERSCALAR_MIX_QUBITS, uncached_shots,
            cached_shots)
        # Surface-code memories at the standard noise point: the
        # deepest path-entropy workloads (one MRCE-reset decision per
        # stabilizer per round), reported with the seeded golden
        # logical error count the tier-1 tests pin.
        for distance in (3, 5):
            layout = surface_layout(distance)
            program = build_surface_memory_program(distance, rounds=2)
            entry = measure_workload(
                program, layout.n_qubits, uncached_shots, cached_shots,
                noise_factory=surface_noise_model)
            entry["rounds"] = 2
            entry["logical_errors_per_100"] = surface_logical_error_rate(
                distance, rounds=2, shots=100).logical_errors
            workloads[f"surface_d{distance}_{layout.n_qubits}q"] = entry
    workloads["service_sweep"] = measure_service_sweep(quick)
    workloads["artifact_warm_start"] = measure_artifact_warm_start(
        quick, artifact_dir)
    if not quick:
        workloads["service_warm_start"] = measure_service_warm_start(
            artifact_dir)
    return {
        "schema": "bench-shots/v8",
        "description": ("Shot throughput of the compile-once ShotEngine "
                        "with the cycle-accurate simulator (uncached) vs "
                        "trace-cache replay (cached = serial per-shot "
                        "loop, batched = lockstep cohorts at the "
                        "reported batch_width), on ideal and noisy "
                        "substrates; dense entries compare GEMM-fused "
                        "replay and the compiled noise-site program "
                        "against their uncompiled counterparts; the "
                        "service_sweep entry shards a cycle-accurate-"
                        "bound sweep across the shot-sweep service's "
                        "worker pool and reports per-worker-count "
                        "speedup over the serial engine (results "
                        "asserted bit-identical first); the "
                        "artifact_warm_start / service_warm_start "
                        "entries time a second engine (and a second "
                        "worker pool) starting from the persistent "
                        "compiled-trace artifact cache, asserting the "
                        "warm side replays with zero trace-cache "
                        "misses and bit-identical histograms; v7 adds "
                        "the SDK-authored dynamic workloads (teleport "
                        "chain, RUS distillation, superscalar mix) and "
                        "the surface-code d=3/d=5 memories at the "
                        "standard noise point, each carrying its "
                        "seeded logical_errors_per_100 golden; v8 adds "
                        "the calibrated device-profile chains run "
                        "through backend='auto' — each entry records "
                        "the routing decision (Clifford/noise analysis "
                        "over the profile-composed channels) and the "
                        "profile's content fingerprint next to the "
                        "throughput numbers."),
        "config": {"backend": "stabilizer + statevector (dense sweep)",
                   "chain_rounds": CHAIN_ROUNDS,
                   "noise": "PauliChannel(px=1e-3) + "
                            "ReadoutError(0.005, 0.002)",
                   "rus_max_nodes": RUS_MAX_NODES,
                   "quick": quick,
                   "artifact_cache": (str(artifact_dir)
                                      if artifact_dir is not None
                                      else None),
                   "python": platform.python_version()},
        "workloads": workloads,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="two small workloads, tiny shot counts "
                             "(CI smoke: exercises the perf path, "
                             "asserts nothing about timing)")
    parser.add_argument("--artifact-cache", type=pathlib.Path,
                        metavar="DIR", default=None,
                        help="persistent compiled-trace artifact "
                             "directory for the warm-start workloads; "
                             "a second invocation against the same DIR "
                             "starts warm (the CI smoke job relies on "
                             "this). Default: fresh temp dir per run.")
    parser.add_argument("-o", "--output", type=pathlib.Path,
                        default=DEFAULT_OUTPUT,
                        help=f"output path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)
    report = run_suite(quick=args.quick,
                       artifact_dir=args.artifact_cache)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    header = f"{'workload':<28} {'uncached/s':>11} {'cached/s':>10} " \
             f"{'batched/s':>10} {'speedup':>8} {'batch':>6}"
    print(header)
    for name, data in report["workloads"].items():
        if name == "artifact_warm_start":
            for cell, info in data["cells"].items():
                print(f"warm_start:{cell:<17} first "
                      f"{info['first']['startup_s'] + info['first']['run_s']:.3f}s, "
                      f"warm {info['warm']['startup_s'] + info['warm']['run_s']:.3f}s "
                      f"({info['warm_speedup']}x, "
                      f"{info['warm']['trace_cache_misses']} warm misses)")
            continue
        if name == "service_warm_start":
            print(f"{name:<28} cold pool {data['cold_pool_sweep_s']:.3f}s, "
                  f"warm pool {data['warm_pool_sweep_s']:.3f}s "
                  f"({data['warm_pool_speedup']}x, "
                  f"{data['warm_pool_worker_warm_loads']} worker warm loads)")
            continue
        if name == "service_sweep":
            scaling = ", ".join(
                f"{w}w {info['speedup_vs_serial']}x"
                for w, info in data["workers"].items())
            print(f"{name:<28} {data['serial_shots_per_s']:>11} "
                  f"service: {scaling} ({data['cpus']} cpus)")
            continue
        batched = data.get("batched_shots_per_s")
        batch_speedup = data.get("batch_speedup")
        print(f"{name:<28} {data['uncached_shots_per_s']:>11} "
              f"{data['cached_shots_per_s']:>10} "
              f"{batched if batched is not None else '-':>10} "
              f"{data['speedup']:>7}x "
              f"{f'{batch_speedup}x' if batch_speedup is not None else '-':>6}")
        stats = data.get("batched_trace_cache")
        if stats and (stats["wavefront_splits"]
                      or stats["serial_fallbacks"]):
            print(f"{'':<28} batched: {stats['batched_shots']} shots, "
                  f"{stats['wavefront_splits']} wavefront splits, "
                  f"{stats['serial_fallbacks']} serial fallbacks")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
