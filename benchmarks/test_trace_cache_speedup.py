"""Trace-cache shot throughput: decision-trie replay vs cycle-accurate.

The PR 1 compile-once ShotEngine removed per-shot *setup* cost but still
re-executed the cycle-accurate control-stack simulation for every shot
(~35 shots/s on the 37-qubit Steane Shor-syndrome workload).  The trace
cache exploits the paper's determinism insight: behaviour between
measurements is a pure function of the control-flow decisions, so shots
sharing a decision path replay recorded traces straight into the QPU
backend — here compiled further into sign-column bit operations on the
stabilizer tableau.  This benchmark quantifies the speedup and asserts
the results stay bit-identical.
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.benchlib.repetition import build_repetition_chain_program
from repro.benchlib.steane import N_QUBITS as STEANE_QUBITS
from repro.benchlib.steane import build_shor_syndrome_program
from repro.qcp import ShotEngine, scalar_config

UNCACHED_SHOTS = 20
CACHED_SHOTS = 400
IDENTITY_SHOTS = 25
CHAIN_DATA, CHAIN_QUBITS = 26, 51


def rate(program, n_qubits: int, trace_cache: bool, shots: int):
    # Batching off: this sweep measures the *serial* replay loop the
    # PR 2 speedup figures were taken against; the batched cohort
    # engine has its own benchmark below.
    engine = ShotEngine(program,
                        config=scalar_config(trace_cache=trace_cache,
                                             trace_cache_batch=False),
                        backend="stabilizer", n_qubits=n_qubits)
    start = time.perf_counter()
    result = engine.run(shots)
    return shots / (time.perf_counter() - start), result, engine


def sweep():
    steane = build_shor_syndrome_program(rounds=3)
    chain = build_repetition_chain_program(CHAIN_DATA, rounds=2,
                                           encode_one=True)
    rows = {}
    for name, program, qubits in (
            ("steane_37q", steane, STEANE_QUBITS),
            (f"chain_{CHAIN_QUBITS}q", chain, CHAIN_QUBITS)):
        uncached, _, _ = rate(program, qubits, False, UNCACHED_SHOTS)
        cached, _, engine = rate(program, qubits, True, CACHED_SHOTS)
        _, ref, _ = rate(program, qubits, False, IDENTITY_SHOTS)
        _, replayed, _ = rate(program, qubits, True, IDENTITY_SHOTS)
        rows[name] = {
            "uncached": uncached, "cached": cached,
            "speedup": cached / uncached,
            "identical": (replayed.counts == ref.counts
                          and replayed.total_ns == ref.total_ns),
            "cache": engine.trace_cache,
        }
    return rows


def test_trace_cache_throughput(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = [[name,
              f"{data['uncached']:.1f}",
              f"{data['cached']:.1f}",
              f"{data['speedup']:.0f}x",
              f"{data['cache'].hits}/{data['cache'].misses}",
              "yes" if data["identical"] else "NO"]
             for name, data in rows.items()]
    report("trace_cache", format_table(
        ["workload", "cycle-accurate shots/s", "trace-cache shots/s",
         "speedup", "hits/misses", "bit-identical"],
        table,
        title=("Outcome-keyed trace cache vs cycle-accurate shot "
               "execution (stabilizer backend)")))

    for name, data in rows.items():
        # Histograms and completion times must be bit-identical: the
        # cache is an execution strategy, not an approximation.
        assert data["identical"], f"{name} diverged"
        # Replay skips the event kernel entirely; the PR target is
        # >= 10x on QEC workloads whose shots share decision paths
        # (measured 110-170x; asserted loosely for noisy CI runners).
        assert data["speedup"] >= 10.0, \
            f"{name}: only {data['speedup']:.1f}x"
        # On an ideal substrate these workloads have one decision path:
        # every shot after the first replays from the trie.
        assert data["cache"].misses <= 2


def noisy_sweep():
    from benchmarks.perf_report import chain_noise_model

    chain = build_repetition_chain_program(13, rounds=2, encode_one=True)

    def noisy_rate(trace_cache: bool, shots: int):
        engine = ShotEngine(
            chain, config=scalar_config(trace_cache=trace_cache,
                                        trace_cache_batch=False),
            backend="stabilizer", n_qubits=25,
            noise=chain_noise_model())
        start = time.perf_counter()
        result = engine.run(shots)
        return shots / (time.perf_counter() - start), result, engine

    uncached, _, _ = noisy_rate(False, UNCACHED_SHOTS)
    cached, _, engine = noisy_rate(True, CACHED_SHOTS)
    _, ref, _ = noisy_rate(False, IDENTITY_SHOTS)
    _, replayed, _ = noisy_rate(True, IDENTITY_SHOTS)
    return {
        "uncached": uncached, "cached": cached,
        "speedup": cached / uncached,
        "identical": (replayed.counts == ref.counts
                      and replayed.total_ns == ref.total_ns),
        "cache": engine.trace_cache,
    }


def test_noisy_trace_cache_throughput(benchmark, report):
    """Noise-aware replay: noisy substrates no longer bypass the cache.

    Noise draws are replayed positionally from the per-shot reseeded
    channel rng, and divergent shots resume at the frontier, so the
    noisy repetition chain keeps a large fraction of the ideal-path
    speedup (measured ~13x at 25q; asserted >= 3x for noisy CI
    runners) while staying bit-identical.
    """
    data = benchmark.pedantic(noisy_sweep, rounds=1, iterations=1)
    cache = data["cache"]
    report("trace_cache_noisy", format_table(
        ["workload", "cycle-accurate shots/s", "trace-cache shots/s",
         "speedup", "hits/misses (resumes)", "bit-identical"],
        [["chain_noisy_25q",
          f"{data['uncached']:.1f}", f"{data['cached']:.1f}",
          f"{data['speedup']:.1f}x",
          f"{cache.hits}/{cache.misses} ({cache.resumes})",
          "yes" if data["identical"] else "NO"]],
        title=("Noise-aware trace cache vs cycle-accurate shot "
               "execution (stabilizer backend, Pauli+readout noise)")))
    assert data["identical"], "noisy replay diverged"
    assert data["speedup"] >= 3.0, f"only {data['speedup']:.1f}x"
    # Noise forces divergence: the frontier-resume path must be live.
    assert cache.resumes > 0


def dense_noisy_sweep():
    """Compiled noise-site replay vs the PR 4 timed device loop.

    Both strategies replay the same trie on the same noisy dense
    substrate; only the per-shot execution differs (flat prebound
    closures vs the per-op timed Python loop), so the rate ratio
    isolates exactly the compilation win.  Rates are best-of-2 to
    damp scheduler noise.
    """
    from benchmarks.perf_report import chain_noise_model

    chain = build_repetition_chain_program(5, rounds=2, encode_one=True)

    def dense_engine(**config_changes):
        engine = ShotEngine(
            chain, config=scalar_config(trace_cache_batch=False,
                                        **config_changes),
            backend="statevector", n_qubits=9,
            noise=chain_noise_model())
        engine.run(30)  # warm the trie and the compiled programs
        return engine

    device_engine = dense_engine(trace_cache_compiled_noise=False)
    engine = dense_engine()
    # Interleaved best-of-3 so clock drift and CPU contention hit
    # both strategies alike.
    device_rate = compiled_rate = 0.0
    shots = 400
    for _ in range(3):
        start = time.perf_counter()
        device_engine.run(shots)
        device_rate = max(device_rate,
                          shots / (time.perf_counter() - start))
        start = time.perf_counter()
        engine.run(shots)
        compiled_rate = max(compiled_rate,
                            shots / (time.perf_counter() - start))

    def histogram(**config_changes):
        engine = ShotEngine(
            chain, config=scalar_config(**config_changes),
            backend="statevector", n_qubits=9,
            noise=chain_noise_model())
        return engine.run(IDENTITY_SHOTS)

    reference = histogram(trace_cache=False)
    compiled = histogram()
    device = histogram(trace_cache_compiled_noise=False)
    return {
        "device": device_rate, "compiled": compiled_rate,
        "speedup": compiled_rate / device_rate,
        "identical": (compiled.counts == reference.counts
                      and compiled.total_ns == reference.total_ns
                      and device.counts == reference.counts
                      and device.total_ns == reference.total_ns),
        "cache": engine.trace_cache,
    }


def test_dense_compiled_noise_throughput(benchmark, report):
    """The compiled dense pipeline must beat the PR 4 device loop 3x.

    The noise-site program pre-resolves idle-decay durations, channel
    sites and ZZ windows and GEMM-fuses the unitary runs between
    them, so the per-shot cost collapses to the irreducible numpy
    kernels plus the live measurement draws (measured ~3.3-3.6x on
    the 9-qubit noisy chain; asserted at 3x for noisy CI runners —
    the ratio of two rates measured back-to-back is far more stable
    than either absolute rate).
    """
    data = benchmark.pedantic(dense_noisy_sweep, rounds=1, iterations=1)
    cache = data["cache"]
    report("trace_cache_dense_noisy", format_table(
        ["workload", "device-replay shots/s", "compiled shots/s",
         "speedup", "hits/misses (resumes)", "bit-identical"],
        [["chain_dense_noisy_9q",
          f"{data['device']:.1f}", f"{data['compiled']:.1f}",
          f"{data['speedup']:.1f}x",
          f"{cache.hits}/{cache.misses} ({cache.resumes})",
          "yes" if data["identical"] else "NO"]],
        title=("Compiled noise-site dense replay vs timed device-level "
               "replay (statevector backend, Pauli+readout noise)")))
    assert data["identical"], "dense replay diverged"
    assert data["speedup"] >= 3.0, f"only {data['speedup']:.1f}x"


def batched_sweep():
    """Shot-batched cohort replay vs the serial per-shot replay loop.

    Both engines replay the *same* trie on the same ideal stabilizer
    substrate; only the shot loop differs (bit-plane cohorts advanced
    in lockstep vs one `_replay_signs` pass per shot), so the rate
    ratio isolates the batching win.  Rates are interleaved best-of-3
    so clock drift and CPU contention hit both strategies alike.
    """
    chain = build_repetition_chain_program(5, rounds=6, encode_one=True)

    def engine_for(**config_changes):
        engine = ShotEngine(chain,
                            config=scalar_config(**config_changes),
                            backend="stabilizer", n_qubits=9)
        engine.run(50)  # warm the trie and the compiled sign programs
        return engine

    serial_engine = engine_for(trace_cache_batch=False)
    batched_engine = engine_for()
    serial_rate = batched_rate = 0.0
    shots = 3000
    for _ in range(3):
        start = time.perf_counter()
        serial_engine.run(shots)
        serial_rate = max(serial_rate,
                          shots / (time.perf_counter() - start))
        start = time.perf_counter()
        batched_engine.run(shots)
        batched_rate = max(batched_rate,
                           shots / (time.perf_counter() - start))

    def histogram(**config_changes):
        engine = ShotEngine(chain,
                            config=scalar_config(**config_changes),
                            backend="stabilizer", n_qubits=9)
        return engine.run(IDENTITY_SHOTS)

    reference = histogram(trace_cache=False)
    batched = histogram()
    cache = batched_engine.trace_cache
    return {
        "serial": serial_rate, "batched": batched_rate,
        "speedup": batched_rate / serial_rate,
        "identical": (batched.counts == reference.counts
                      and batched.total_ns == reference.total_ns),
        "cache": cache,
        "accounted": cache.hits + cache.misses == 50 + 3 * shots,
    }


def test_batched_replay_throughput(benchmark, report):
    """Shot batching must beat serial cached replay 3x on the 9q chain.

    The bit-plane cohort engine pays the per-shot floor (rng seeding,
    decision bookkeeping) once per shot but the trie walk, sign XORs
    and leaf snapshots once per *cohort*, so cached throughput rises
    well past the serial replay loop (measured ~3.5-4.2x on the
    ideal 9-qubit chain; asserted at 3x for noisy CI runners — the
    interleaved rate ratio is far more stable than either absolute
    rate).
    """
    data = benchmark.pedantic(batched_sweep, rounds=1, iterations=1)
    cache = data["cache"]
    report("trace_cache_batched", format_table(
        ["workload", "serial-replay shots/s", "batched shots/s",
         "speedup", "batched shots (splits)", "bit-identical"],
        [["chain_9q_r6",
          f"{data['serial']:.1f}", f"{data['batched']:.1f}",
          f"{data['speedup']:.1f}x",
          f"{cache.batched_shots} ({cache.wavefront_splits})",
          "yes" if data["identical"] else "NO"]],
        title=("Shot-batched cohort replay vs serial per-shot replay "
               "(stabilizer backend, bit-plane sign columns)")))
    assert data["identical"], "batched replay diverged"
    assert data["accounted"], "hits+misses lost shots"
    # Every shot after the per-run warm leader must replay in cohorts.
    assert cache.batched_shots > 0
    assert cache.serial_fallbacks == 0
    assert data["speedup"] >= 3.0, f"only {data['speedup']:.1f}x"
