"""Trace-cache shot throughput: decision-trie replay vs cycle-accurate.

The PR 1 compile-once ShotEngine removed per-shot *setup* cost but still
re-executed the cycle-accurate control-stack simulation for every shot
(~35 shots/s on the 37-qubit Steane Shor-syndrome workload).  The trace
cache exploits the paper's determinism insight: behaviour between
measurements is a pure function of the control-flow decisions, so shots
sharing a decision path replay recorded traces straight into the QPU
backend — here compiled further into sign-column bit operations on the
stabilizer tableau.  This benchmark quantifies the speedup and asserts
the results stay bit-identical.
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.benchlib.repetition import build_repetition_chain_program
from repro.benchlib.steane import N_QUBITS as STEANE_QUBITS
from repro.benchlib.steane import build_shor_syndrome_program
from repro.qcp import ShotEngine, scalar_config

UNCACHED_SHOTS = 20
CACHED_SHOTS = 400
IDENTITY_SHOTS = 25
CHAIN_DATA, CHAIN_QUBITS = 26, 51


def rate(program, n_qubits: int, trace_cache: bool, shots: int):
    engine = ShotEngine(program,
                        config=scalar_config(trace_cache=trace_cache),
                        backend="stabilizer", n_qubits=n_qubits)
    start = time.perf_counter()
    result = engine.run(shots)
    return shots / (time.perf_counter() - start), result, engine


def sweep():
    steane = build_shor_syndrome_program(rounds=3)
    chain = build_repetition_chain_program(CHAIN_DATA, rounds=2,
                                           encode_one=True)
    rows = {}
    for name, program, qubits in (
            ("steane_37q", steane, STEANE_QUBITS),
            (f"chain_{CHAIN_QUBITS}q", chain, CHAIN_QUBITS)):
        uncached, _, _ = rate(program, qubits, False, UNCACHED_SHOTS)
        cached, _, engine = rate(program, qubits, True, CACHED_SHOTS)
        _, ref, _ = rate(program, qubits, False, IDENTITY_SHOTS)
        _, replayed, _ = rate(program, qubits, True, IDENTITY_SHOTS)
        rows[name] = {
            "uncached": uncached, "cached": cached,
            "speedup": cached / uncached,
            "identical": (replayed.counts == ref.counts
                          and replayed.total_ns == ref.total_ns),
            "cache": engine.trace_cache,
        }
    return rows


def test_trace_cache_throughput(benchmark, report):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = [[name,
              f"{data['uncached']:.1f}",
              f"{data['cached']:.1f}",
              f"{data['speedup']:.0f}x",
              f"{data['cache'].hits}/{data['cache'].misses}",
              "yes" if data["identical"] else "NO"]
             for name, data in rows.items()]
    report("trace_cache", format_table(
        ["workload", "cycle-accurate shots/s", "trace-cache shots/s",
         "speedup", "hits/misses", "bit-identical"],
        table,
        title=("Outcome-keyed trace cache vs cycle-accurate shot "
               "execution (stabilizer backend)")))

    for name, data in rows.items():
        # Histograms and completion times must be bit-identical: the
        # cache is an execution strategy, not an approximation.
        assert data["identical"], f"{name} diverged"
        # Replay skips the event kernel entirely; the PR target is
        # >= 10x on QEC workloads whose shots share decision paths
        # (measured 110-170x; asserted loosely for noisy CI runners).
        assert data["speedup"] >= 10.0, \
            f"{name}: only {data['speedup']:.1f}x"
        # On an ideal substrate these workloads have one decision path:
        # every shot after the first replays from the trie.
        assert data["cache"].misses <= 2
