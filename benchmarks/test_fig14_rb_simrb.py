"""Figure 14: individual RB vs. simultaneous RB on q0 and q1.

Paper landmarks (10-qubit chip, qubit pair q0/q1): individual RB gate
fidelities ~99.5 % / 99.4 %; simultaneous RB drops them to ~98.7 % /
99.1 % because of the always-on ZZ interaction.  The headline curves
here use exact channel evolution (the infinite-shot limit); a
full-stack validation pass then executes RB sequences through the
QuAPE system itself — the paper's actual point: the microarchitecture
can apply gates to different qubits simultaneously.
"""

from __future__ import annotations

from repro.analysis import format_comparison, format_table
from repro.experiments import run_rb, run_simrb_study
from repro.qpu import paper_noise_model

LENGTHS = [1, 4, 8, 14, 22, 32, 44, 58, 74]
SAMPLES = 16


def run_study():
    return run_simrb_study(samples=SAMPLES, lengths=LENGTHS,
                           backend="exact", seed=7)


def test_fig14_rb_vs_simrb(benchmark, report):
    study = benchmark.pedantic(run_study, rounds=1, iterations=1)
    rows = []
    for kind, qubit, fidelity in study.summary_rows():
        paper = {("RB", 0): 99.5, ("RB", 1): 99.4,
                 ("simRB", 0): 98.7, ("simRB", 1): 99.1}[(kind, qubit)]
        rows.append([kind, f"q{qubit}", round(fidelity * 100, 2), paper])
    curves = []
    for qubit in (0, 1):
        curves.append(f"RB q{qubit} survival:    "
                      + " ".join(f"{s:.3f}"
                                 for s in study.individual[qubit]
                                 .survival[qubit]))
        curves.append(f"simRB q{qubit} survival: "
                      + " ".join(f"{s:.3f}"
                                 for s in study.simultaneous
                                 .survival[qubit]))
    text = format_table(
        ["experiment", "qubit", "measured fidelity (%)",
         "paper fidelity (%)"], rows,
        title="Figure 14 - RB vs simultaneous RB gate fidelities")
    report("fig14_rb_simrb",
           text + "\nsequence lengths: " + str(LENGTHS) + "\n"
           + "\n".join(curves))

    for qubit in (0, 1):
        individual = study.individual_fidelity(qubit)
        simultaneous = study.simultaneous_fidelity(qubit)
        # Individual RB sits near the paper's ~99.5 %.
        assert 0.992 <= individual <= 0.998
        # simRB is measurably lower (ZZ), by roughly the paper's drop.
        assert simultaneous < individual
        assert 0.002 <= individual - simultaneous <= 0.012


def test_fig14_full_stack_validation(benchmark, report):
    """RB sequences through the whole QuAPE control stack.

    Checks the paper's validation claim: the superscalar issues the two
    qubits' pulses simultaneously and the survival statistics match the
    exact-channel reference within Monte-Carlo error.
    """

    def run_stack():
        seeds = iter(range(50_000))

        def noise():
            return paper_noise_model(seed=next(seeds))

        stack = run_rb(noise, driven=(0, 1), lengths=[1, 8, 20, 36],
                       samples=20, backend="quape", seed=11)
        exact = run_rb(noise, driven=(0, 1), lengths=[1, 8, 20, 36],
                       samples=20, backend="exact", seed=11)
        return stack, exact

    stack, exact = benchmark.pedantic(run_stack, rounds=1, iterations=1)
    rows = []
    for index, length in enumerate(stack.lengths):
        rows.append([length,
                     round(stack.survival[0][index], 3),
                     round(exact.survival[0][index], 3),
                     round(stack.survival[1][index], 3),
                     round(exact.survival[1][index], 3)])
    report("fig14_full_stack_validation", format_table(
        ["length", "stack q0", "exact q0", "stack q1", "exact q1"], rows,
        title="simRB through the full QuAPE stack vs exact channels"))
    for qubit in (0, 1):
        for got, want in zip(stack.survival[qubit],
                             exact.survival[qubit]):
            assert abs(got - want) < 0.12  # Monte-Carlo tolerance
