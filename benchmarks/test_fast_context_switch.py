"""Section 7 validation: the fast context switch.

Paper claims: (1) RB instructions execute correctly while an active
qubit reset waits for its measurement result; (2) switching the context
of a simple feedback control takes three clock cycles.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.isa import ProgramBuilder
from repro.qcp import QuAPESystem, scalar_config, superscalar_config
from repro.qpu import PRNGQPU
from repro.qpu.readout import DeterministicReadout

PAPER_SWITCH_CYCLES = 3


def reset_plus_rb_program():
    """Active reset on q0 interleaved with an RB fragment on q1."""
    builder = ProgramBuilder("reset_rb")
    builder.qmeas(0)
    builder.mrce(0, 0, "i", "x")
    for gate in ("x90", "y90", "x90", "ym90", "x90", "y90",
                 "xm90", "y90"):
        builder.qop(gate, [1], timing=2)
    builder.halt()
    return builder.build()


def run_configuration(fast: bool):
    config = (superscalar_config(8) if fast
              else scalar_config(fast_context_switch=False))
    qpu = PRNGQPU(2, DeterministicReadout(outcomes={0: [1]}))
    system = QuAPESystem(program=reset_plus_rb_program(), config=config,
                         qpu=qpu, n_qubits=2)
    result = system.run()
    rb_times = [r.time_ns for r in result.trace.issues
                if r.qubits == (1,)]
    reset_time = next(r.time_ns for r in result.trace.issues
                      if r.gate == "x" and r.qubits == (0,))
    delivery = system.results.history[-1].time_ns
    return {"rb_done": max(rb_times), "rb_deltas":
            [b - a for a, b in zip(rb_times, rb_times[1:])],
            "reset_issue": reset_time, "delivery": delivery,
            "total": result.total_ns}


def test_fast_context_switch(benchmark, report):
    outcome = benchmark.pedantic(
        lambda: {"fast": run_configuration(True),
                 "baseline": run_configuration(False)},
        rounds=1, iterations=1)
    fast, baseline = outcome["fast"], outcome["baseline"]
    switch_cycles = (fast["reset_issue"] - fast["delivery"]) // 10
    rows = [
        ["RB fragment finished (ns)", fast["rb_done"],
         baseline["rb_done"]],
        ["conditional X issued (ns)", fast["reset_issue"],
         baseline["reset_issue"]],
        ["program total (ns)", fast["total"], baseline["total"]],
        ["context switch cycles", switch_cycles, "pipeline stall"],
    ]
    report("fast_context_switch", format_table(
        ["quantity", "QuAPE (fast context switch)",
         "baseline (blocking MRCE)"], rows,
        title=("Section 7 - active reset + RB during the measurement "
               "wait")))

    # (1) RB proceeds during the wait under QuAPE but is blocked by the
    # baseline's pipeline stall.
    assert fast["rb_done"] < fast["delivery"]
    assert baseline["rb_done"] > baseline["delivery"]
    # Timing control of the RB pulses is undisturbed (20 ns grid).
    assert all(delta == 20 for delta in fast["rb_deltas"])
    # (2) The switch takes exactly the paper's three cycles.
    assert switch_cycles == PAPER_SWITCH_CYCLES
