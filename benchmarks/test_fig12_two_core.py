"""Figure 12: two-core vs. uniprocessor execution time on the suite.

Paper setup: "we simply divide the part of the program with parallel
operations into two blocks, each corresponding to half of the qubits";
the two-core implementation achieves an average 1.30x speedup over the
uniprocessor.  Expected shape: every benchmark is at least as fast on
two cores, highly parallel benchmarks (hs16) gain the most, serial
Toffoli networks (rd84_143) gain the least.
"""

from __future__ import annotations

from repro.analysis import format_comparison, format_table
from repro.benchlib import SUITE
from repro.compiler import compile_circuit
from repro.qcp import QuAPESystem, scalar_config

PAPER_AVERAGE_SPEEDUP = 1.30


def sweep():
    results = {}
    for spec in SUITE:
        circuit = spec.circuit()
        compiled = compile_circuit(circuit, partition="halves",
                                   n_parts=2)
        times = {}
        for count in (1, 2):
            system = QuAPESystem(program=compiled.program,
                                 config=scalar_config(),
                                 n_processors=count,
                                 n_qubits=circuit.n_qubits)
            times[count] = system.run().total_ns
        results[spec.name] = times
    return results


def test_fig12_two_core_speedup(benchmark, report):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    speedups = []
    for spec in SUITE:
        times = results[spec.name]
        speedup = times[1] / times[2]
        speedups.append(speedup)
        rows.append([spec.name, round(times[1] / 1000.0, 2),
                     round(times[2] / 1000.0, 2), round(speedup, 2)])
    average = sum(speedups) / len(speedups)
    comparison = format_comparison("average two-core speedup",
                                   PAPER_AVERAGE_SPEEDUP, average)
    report("fig12_two_core", format_table(
        ["benchmark", "1-core (us)", "2-core (us)", "speedup"], rows,
        title="Figure 12 - execution time, two-core vs uniprocessor")
        + "\n" + comparison)
    # Shape assertions.
    assert all(speedup >= 0.99 for speedup in speedups)
    by_name = dict(zip((s.name for s in SUITE), speedups))
    assert by_name["hs16"] == max(speedups)
    assert by_name["hs16"] >= 1.5
    assert by_name["rd84_143"] <= 1.1
    assert 1.05 <= average <= 1.5
