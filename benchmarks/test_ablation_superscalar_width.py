"""Ablation: quantum superscalar width (the paper's 8-way choice).

Sweeps the issue width from scalar to 16-way on the most and least
parallel benchmarks.  Expected: TR halves per doubling while the
workload still has unexploited QOLP, then saturates — the trade-off
behind the paper's 8-way design point (hs16's widest step is 16, so
16-way buys little beyond 8-way given the dispatch pipeline).
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.benchlib import get_benchmark
from repro.compiler import compile_circuit
from repro.qcp import QuAPESystem, scalar_config, superscalar_config

WIDTHS = (1, 2, 4, 8, 16)
BENCHMARKS = ("hs16", "rd84_143")


def average_tr(program, width: int) -> float:
    config = scalar_config() if width == 1 else superscalar_config(width)
    system = QuAPESystem(program=program, config=config)
    return system.run().tr_report().average


def sweep():
    results = {}
    for name in BENCHMARKS:
        program = compile_circuit(get_benchmark(name).circuit()).program
        results[name] = [average_tr(program, width) for width in WIDTHS]
    return results


def test_ablation_superscalar_width(benchmark, report):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[name] + [round(tr, 2) for tr in series]
            for name, series in results.items()]
    report("ablation_superscalar_width", format_table(
        ["benchmark"] + [f"{w}-way avg TR" for w in WIDTHS], rows,
        title="Ablation - average TR vs superscalar width"))

    hs16 = results["hs16"]
    rd84 = results["rd84_143"]
    # TR decreases monotonically with width on both workloads.
    assert hs16 == sorted(hs16, reverse=True)
    assert rd84 == sorted(rd84, reverse=True)
    # Parallel workload: near-ideal scaling up to width 8.
    for narrow, wide in zip(hs16[:3], hs16[1:4]):
        assert narrow / wide >= 1.8
    # Serial workload saturates early: width 4 -> 16 buys < 15 %.
    assert rd84[2] / rd84[4] <= 1.15
