"""Figure 13: average TR, 8-way superscalar vs. scalar baseline.

Paper setup: TR computed with 10 ns clock time and 20 ns gate time over
the seven benchmarks.  Landmarks: average 4.04x reduction; hs16 reaches
the 8.00x theoretical bound; rd84_143 improves least (1.60x); the last
two benchmarks have baseline *average* TR below 1 but maximum TR of 4.5
and 9; the superscalar reaches TR <= 1 on every step of every
benchmark.
"""

from __future__ import annotations

from repro.analysis import format_comparison, format_table
from repro.benchlib import SUITE
from repro.compiler import compile_circuit
from repro.qcp import QuAPESystem, scalar_config, superscalar_config

PAPER_AVERAGE_IMPROVEMENT = 4.04
PAPER_HS16_IMPROVEMENT = 8.00


def sweep():
    results = {}
    for spec in SUITE:
        compiled = compile_circuit(spec.circuit())
        reports = {}
        for label, config in (("base", scalar_config()),
                              ("super", superscalar_config(8))):
            system = QuAPESystem(program=compiled.program, config=config)
            reports[label] = system.run().tr_report()
        results[spec.name] = reports
    return results


def test_fig13_superscalar_tr(benchmark, report):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    improvements = {}
    for spec in SUITE:
        base = results[spec.name]["base"]
        super_ = results[spec.name]["super"]
        improvement = base.average / super_.average
        improvements[spec.name] = improvement
        rows.append([spec.name, round(base.average, 2),
                     round(base.maximum, 1), round(super_.average, 2),
                     round(super_.maximum, 2), round(improvement, 2)])
    average = sum(improvements.values()) / len(improvements)
    lines = [
        format_table(
            ["benchmark", "baseline avg TR", "baseline max TR",
             "8-way avg TR", "8-way max TR", "improvement"], rows,
            title=("Figure 13 - average TR, 8-way superscalar vs "
                   "baseline (TR = 1 deadline)")),
        format_comparison("average improvement",
                          PAPER_AVERAGE_IMPROVEMENT, average),
        format_comparison("hs16 improvement", PAPER_HS16_IMPROVEMENT,
                          improvements["hs16"]),
    ]
    report("fig13_superscalar_tr", "\n".join(lines))

    # hs16 hits the 8x theoretical bound of an 8-way design.
    assert improvements["hs16"] >= 7.5
    # rd84_143 improves least among benchmarks with baseline TR >= 1.
    assert improvements["rd84_143"] <= 2.5
    # The last two benchmarks: baseline average below 1, large maxima.
    for name in ("sym9_148", "bv_n16"):
        assert results[name]["base"].average < 1.0
        assert results[name]["base"].maximum >= 4.0
    # The superscalar meets the deadline on every step everywhere.
    for spec in SUITE:
        assert results[spec.name]["super"].meets_deadline, spec.name
    # Overall improvement in the paper's band.
    assert 3.0 <= average <= 5.0
